//! Executable forms of the paper's Theorems 1–5: not just "consistent",
//! but consistent with exactly the *currency* each method promises
//! (Table 1's currency column).

// Integration tests are exempt from the panic-freedom policy
// (mirrors `allow-unwrap-in-tests` in clippy.toml and the `#[cfg(test)]`
// carve-out in `cargo xtask lint`).
#![allow(clippy::unwrap_used)]
use bpush_client::{CacheParams, ClientCache, QueryExecutor, QueryOutcome};
use bpush_core::validator::SerializabilityValidator;
use bpush_core::{CacheMode, Method};
use bpush_server::{BroadcastServer, ServerOptions};
use bpush_types::config::MultiversionLayout;
use bpush_types::{ClientConfig, ClientId, Cycle, ItemValue, ServerConfig, Slot};

fn server_config() -> ServerConfig {
    ServerConfig {
        broadcast_size: 150,
        update_range: 80,
        server_read_range: 150,
        updates_per_cycle: 12,
        txns_per_cycle: 4,
        offset: 0, // maximum overlap: plenty of invalidations to exercise
        versions_retained: 40,
        ..ServerConfig::default()
    }
}

fn client_config() -> ClientConfig {
    ClientConfig {
        read_range: 80,
        reads_per_query: 6,
        think_time: 2,
        ..ClientConfig::default()
    }
}

/// Runs `budget` queries of `method` against a fresh server; returns the
/// outcomes and the server for ground-truth inspection.
fn run_method(method: Method, budget: u32, seed: u64) -> (Vec<QueryOutcome>, BroadcastServer) {
    let mut server = BroadcastServer::new(
        server_config(),
        method.server_options(MultiversionLayout::Overflow),
        seed,
    )
    .unwrap();
    let cache = match method.cache_mode() {
        CacheMode::None => None,
        mode => Some(ClientCache::new(CacheParams {
            mode,
            current_capacity: 25,
            old_capacity: if mode == CacheMode::Multiversion {
                15
            } else {
                0
            },
            items_per_bucket: 1,
        })),
    };
    let mut client = QueryExecutor::new(
        ClientId::new(0),
        client_config(),
        method.build_protocol(),
        cache,
        budget,
        seed ^ 0xABCD,
    )
    .unwrap();
    let mut outcomes = Vec::new();
    let mut start = Slot::ZERO;
    while !client.is_done() {
        let bcast = server.run_cycle();
        outcomes.extend(client.run_cycle(&bcast, start, true).unwrap());
        start = start.plus(bcast.total_slots());
    }
    (outcomes, server)
}

/// Whether `value` of `item` is exactly the value current at database
/// state `state`, per the server's ground truth.
fn current_at(
    server: &BroadcastServer,
    item: bpush_types::ItemId,
    value: ItemValue,
    state: Cycle,
) -> bool {
    if value.version() > state {
        return false;
    }
    match server.history().next_overwrite(item, value) {
        None => true,
        Some(next) => next.version() > state,
    }
}

/// Theorem 1: a committed invalidation-only query reads the values of the
/// database state broadcast at the cycle of its last read — the state at
/// which it commits. Every value must still be current at the finish
/// cycle's snapshot.
#[test]
fn theorem1_invalidation_only_reads_commit_snapshot() {
    let (outcomes, server) = run_method(Method::InvalidationOnly, 40, 11);
    let committed: Vec<_> = outcomes.iter().filter(|o| o.committed()).collect();
    assert!(!committed.is_empty(), "need committed queries to check");
    for o in &committed {
        for r in &o.reads {
            assert!(
                current_at(&server, r.item, r.value, o.finished_cycle),
                "query {} read a value stale at its commit snapshot {}",
                o.id,
                o.finished_cycle
            );
        }
    }
}

/// Theorem 2: a committed multiversion-broadcast query reads exactly the
/// database state broadcast at `c_0`, the cycle of its first read.
#[test]
fn theorem2_multiversion_reads_first_read_snapshot() {
    let (outcomes, server) = run_method(Method::MultiversionBroadcast, 40, 22);
    let committed: Vec<_> = outcomes.iter().filter(|o| o.committed()).collect();
    assert!(!committed.is_empty());
    // the method accepts every query within the retention budget
    assert_eq!(committed.len(), outcomes.len(), "multiversion accepts all");
    for o in &committed {
        let c0 = o.first_read_cycle.expect("cacheless method reads on air");
        for r in &o.reads {
            assert!(
                current_at(&server, r.item, r.value, c0),
                "query {} read a value not in its c0={c0} snapshot",
                o.id
            );
        }
    }
}

/// Theorem 3: a committed SGT query is serializable together with all
/// server update transactions (checked against the full conflict graph),
/// and its currency lies between the first-read and commit snapshots:
/// the witnessed serialization interval must not end before the query
/// began.
#[test]
fn theorem3_sgt_serializable() {
    let (outcomes, server) = run_method(Method::Sgt, 40, 33);
    let committed: Vec<_> = outcomes.iter().filter(|o| o.committed()).collect();
    assert!(!committed.is_empty());
    let validator = SerializabilityValidator::new(server.history());
    for o in &committed {
        validator
            .check_serializable(server.conflict_graph(), &o.reads)
            .unwrap_or_else(|e| panic!("query {}: {e}", o.id));
    }
}

/// SGT accepts strictly more than invalidation-only on identical
/// workloads in aggregate (its whole point, §3.3).
#[test]
fn sgt_dominates_invalidation_only_in_aggregate() {
    let (inv, _) = run_method(Method::InvalidationOnly, 60, 44);
    let (sgt, _) = run_method(Method::Sgt, 60, 44);
    let commits = |os: &[QueryOutcome]| os.iter().filter(|o| o.committed()).count();
    assert!(
        commits(&sgt) >= commits(&inv),
        "sgt {} vs inv {}",
        commits(&sgt),
        commits(&inv)
    );
}

/// Theorem 4: a committed versioned-cache query reads a single consistent
/// snapshot (validated), and it keeps committing *after* an invalidation
/// whenever the cache can serve old-enough values — so with a warm cache
/// its accept rate must beat the plain cached method's.
#[test]
fn theorem4_versioned_cache_survives_invalidation() {
    let (plain, server_a) = run_method(Method::InvalidationCache, 60, 55);
    let (versioned, server_b) = run_method(Method::InvalidationVersionedCache, 60, 55);
    let commits = |os: &[QueryOutcome]| os.iter().filter(|o| o.committed()).count();
    assert!(
        commits(&versioned) >= commits(&plain),
        "versioned {} vs plain {}",
        commits(&versioned),
        commits(&plain)
    );
    for (outcomes, server) in [(&plain, &server_a), (&versioned, &server_b)] {
        let validator = SerializabilityValidator::new(server.history());
        for o in outcomes.iter().filter(|o| o.committed()) {
            validator
                .check(&o.reads)
                .unwrap_or_else(|e| panic!("query {}: {e}", o.id));
        }
    }
}

/// Theorem 5: a committed multiversion-caching query observes exactly one
/// prefix snapshot (the `c_u − 1` state): the interval check must pass,
/// and the witnessed interval must be anchored no earlier than the cycle
/// the query started minus one.
#[test]
fn theorem5_multiversion_caching_snapshot() {
    let (outcomes, server) = run_method(Method::MultiversionCaching, 60, 66);
    let committed: Vec<_> = outcomes.iter().filter(|o| o.committed()).collect();
    assert!(!committed.is_empty());
    let validator = SerializabilityValidator::new(server.history());
    for o in &committed {
        let interval = validator
            .check(&o.reads)
            .unwrap_or_else(|e| panic!("query {}: {e}", o.id));
        // currency: the snapshot is never older than the state at which
        // the query's first value was overwritten; in particular every
        // value read was written before the query finished
        if let Some(after) = interval.after {
            assert!(after.cycle() <= o.finished_cycle);
        }
    }
}

/// §3.2: a `V`-multiversion server guarantees every query of span ≤ V;
/// with retention cut to 1 the same workload sees aborts, and those
/// aborts are honest (no inconsistent commits either way).
#[test]
fn retention_bound_is_sharp() {
    let (full, _) = run_method(Method::MultiversionBroadcast, 40, 77);
    assert!(full.iter().all(|o| o.committed()), "V covers every span");

    let mut server = BroadcastServer::new(
        ServerConfig {
            versions_retained: 1,
            ..server_config()
        },
        ServerOptions::multiversion(MultiversionLayout::Overflow),
        77,
    )
    .unwrap();
    let mut client = QueryExecutor::new(
        ClientId::new(0),
        ClientConfig {
            reads_per_query: 12,
            ..client_config()
        },
        Method::MultiversionBroadcast.build_protocol(),
        None,
        40,
        77 ^ 0xABCD,
    )
    .unwrap();
    let mut outcomes = Vec::new();
    let mut start = Slot::ZERO;
    while !client.is_done() {
        let bcast = server.run_cycle();
        outcomes.extend(client.run_cycle(&bcast, start, true).unwrap());
        start = start.plus(bcast.total_slots());
    }
    assert!(
        outcomes.iter().any(|o| !o.committed()),
        "span > V queries must risk aborts"
    );
    let validator = SerializabilityValidator::new(server.history());
    for o in outcomes.iter().filter(|o| o.committed()) {
        validator.check(&o.reads).unwrap();
    }
}
