//! Shape-level reproduction checks for §5's results, at the quick scale:
//! the *orderings* and *trends* the paper reports must hold, even though
//! absolute numbers come from our simulated substrate.

// Integration tests are exempt from the panic-freedom policy
// (mirrors `allow-unwrap-in-tests` in clippy.toml and the `#[cfg(test)]`
// carve-out in `cargo xtask lint`).
#![allow(clippy::unwrap_used)]
use bpush_core::Method;
use bpush_sim::experiments::{self, fig5, fig6, fig8, Scale};
use bpush_sim::{Simulation, Table};

fn column(t: &Table, name: &str) -> usize {
    t.columns
        .iter()
        .position(|c| c == name)
        .unwrap_or_else(|| panic!("no column {name} in {:?}", t.columns))
}

fn cell(t: &Table, row: usize, col: &str) -> f64 {
    t.rows[row][column(t, col)].parse().unwrap()
}

/// Figure 5 (left): for every query size, the method ordering holds —
/// multiversion ≡ 0 aborts, SGT+cache no worse than plain invalidation,
/// caching never hurts the invalidation method.
#[test]
fn fig5_left_method_ordering() {
    let t = fig5::left(Scale::Quick).unwrap();
    for row in 0..t.len() {
        let inv = cell(&t, row, "inv-only");
        let inv_cache = cell(&t, row, "inv+cache");
        let sgt_cache = cell(&t, row, "sgt+cache");
        let mv = cell(&t, row, "multiversion");
        assert_eq!(mv, 0.0, "row {row}: multiversion aborts nothing");
        assert!(
            sgt_cache <= inv + 1e-9,
            "row {row}: sgt+cache ({sgt_cache}) must not abort more than inv-only ({inv})"
        );
        assert!(
            inv_cache <= inv + 5.0,
            "row {row}: caching must not materially hurt inv-only"
        );
    }
    // abort rate grows with query size for the invalidation family
    let first = cell(&t, 0, "inv-only");
    let last = cell(&t, t.len() - 1, "inv-only");
    assert!(
        last >= first,
        "bigger queries abort more: {first} -> {last}"
    );
}

/// Figure 5 (right): abort rates decline as the update pattern moves away
/// from the client read pattern.
#[test]
fn fig5_right_offset_decline() {
    let t = fig5::right(Scale::Quick).unwrap();
    for method in ["inv-only", "sgt"] {
        let first = cell(&t, 0, method);
        let last = cell(&t, t.len() - 1, method);
        assert!(
            last <= first + 1e-9,
            "{method}: abort rate must fall with offset ({first} -> {last})"
        );
    }
}

/// Figure 6: more updates, more aborts; and at the top of the sweep the
/// versioned cache holds up at least as well as plain SGT (the paper's
/// crossover at U ≳ D/4).
#[test]
fn fig6_update_volume() {
    let t = fig6::run(Scale::Quick).unwrap();
    let last = t.len() - 1;
    for method in ["inv-only", "sgt"] {
        assert!(
            cell(&t, last, method) >= cell(&t, 0, method) - 1e-9,
            "{method} must degrade with updates"
        );
    }
    let vc_last = cell(&t, last, "inv+vcache");
    let inv_last = cell(&t, last, "inv-only");
    assert!(
        vc_last <= inv_last + 1e-9,
        "versioned cache must beat plain invalidation at high update volume \
         ({vc_last} vs {inv_last})"
    );
}

/// Figure 8 (left): latency grows with query size, and is roughly half a
/// cycle per broadcast read for the cacheless current-state method.
#[test]
fn fig8_left_latency_shape() {
    let t = fig8::left(Scale::Quick).unwrap();
    let mv_first = cell(&t, 0, "multiversion");
    let mv_last = cell(&t, t.len() - 1, "multiversion");
    assert!(mv_last > mv_first, "latency grows with reads");
    // half-a-cycle-per-read ballpark for the first row (4 reads -> ~2
    // cycles); allow generous slack for think time and commit effects
    let inv_first = cell(&t, 0, "inv-only");
    if inv_first > 0.0 {
        assert!(
            (0.5..=6.0).contains(&inv_first),
            "4-read query should take a few cycles, got {inv_first}"
        );
    }
}

/// Figure 8 (right): multiversion latency declines as the offset grows
/// (fewer reads detour to the overflow area).
#[test]
fn fig8_right_offset_decline() {
    let t = fig8::right(Scale::Quick).unwrap();
    let first: f64 = t.rows.first().unwrap()[1].parse().unwrap();
    let last: f64 = t.rows.last().unwrap()[1].parse().unwrap();
    assert!(
        last <= first + 0.35,
        "mv latency should not grow with offset: {first} -> {last}"
    );
}

/// Table 1's concurrency column: multiversion accepts everything; the
/// cached invalidation variants accept at least as much as the bare one.
#[test]
fn table1_concurrency_ordering() {
    let base = experiments::defaults(Scale::Quick);
    let accept = |method: Method| -> f64 {
        let cfg = experiments::config_for(method, base.clone());
        let m = Simulation::new(cfg, method).unwrap().run().unwrap();
        assert_eq!(m.violations, 0);
        100.0 - m.abort_pct()
    };
    let inv = accept(Method::InvalidationOnly);
    let inv_cache = accept(Method::InvalidationCache);
    let inv_vcache = accept(Method::InvalidationVersionedCache);
    let mv = accept(Method::MultiversionBroadcast);
    assert_eq!(mv, 100.0);
    assert!(inv_cache >= inv - 3.0, "cache helps: {inv_cache} vs {inv}");
    assert!(
        inv_vcache >= inv_cache - 3.0,
        "versioned cache helps more: {inv_vcache} vs {inv_cache}"
    );
}

/// The scalability claim of §1: clients never interact, so a client's
/// behaviour is *bit-identical* whether it runs alone or among many —
/// performance is independent of the client population.
#[test]
fn scalability_population_independence() {
    use bpush_client::QueryExecutor;
    use bpush_server::BroadcastServer;
    use bpush_types::seed::SeedSequence;
    use bpush_types::{ClientId, Slot};

    let cfg = experiments::defaults(Scale::Quick);
    let seeds = SeedSequence::new(cfg.seed);

    let run_population = |n_clients: u32| -> Vec<(bool, u64)> {
        let mut server = BroadcastServer::new(
            cfg.server.clone(),
            Method::InvalidationOnly.server_options(Default::default()),
            seeds.derive(&["server"]),
        )
        .unwrap();
        let mut clients: Vec<QueryExecutor> = (0..n_clients)
            .map(|i| {
                QueryExecutor::new(
                    ClientId::new(i),
                    cfg.client.clone(),
                    Method::InvalidationOnly.build_protocol(),
                    None,
                    cfg.queries_per_client,
                    seeds.derive(&["client", &i.to_string()]),
                )
                .unwrap()
            })
            .collect();
        let mut zero_outcomes = Vec::new();
        let mut start = Slot::ZERO;
        while clients.iter().any(|c| !c.is_done()) {
            let bcast = server.run_cycle();
            for client in &mut clients {
                let outs = client.run_cycle(&bcast, start, true).unwrap();
                if client.client() == ClientId::new(0) {
                    zero_outcomes.extend(outs.iter().map(|o| (o.committed(), o.latency_slots())));
                }
            }
            start = start.plus(bcast.total_slots());
        }
        zero_outcomes
    };

    let alone = run_population(1);
    let crowded = run_population(8);
    assert_eq!(
        alone, crowded,
        "client 0 must behave identically regardless of population size"
    );
}
