//! Exhaustive model checking on a tiny universe: enumerate **every**
//! possible server update pattern over a few items and cycles, drive a
//! deterministic client script under each method, and verify that no
//! committed readset is ever inconsistent. Where proptest samples, this
//! test covers the whole space.

// Integration tests are exempt from the panic-freedom policy
// (mirrors `allow-unwrap-in-tests` in clippy.toml and the `#[cfg(test)]`
// carve-out in `cargo xtask lint`).
#![allow(clippy::unwrap_used)]
use bpush_client::{CacheParams, ClientCache, QueryExecutor};
use bpush_core::validator::SerializabilityValidator;
use bpush_core::{CacheMode, Method};
use bpush_server::{BroadcastServer, ServerOptions, ServerTxn};
use bpush_types::config::MultiversionLayout;
use bpush_types::{ClientConfig, ClientId, Cycle, ItemId, Slot, TxnId};

/// Exhaustive model checking: bit `i + cycle * N_ITEMS` of a pattern
/// decides whether item `i` is updated during that cycle, and *every*
/// pattern is driven through the real server pipeline via
/// [`ScriptedWorkload`].
const N_ITEMS: u32 = 3;
const N_CYCLES: u64 = 3;

/// The scripted update sets for one enumeration pattern.
fn script_of(pattern: u32) -> Vec<Vec<ItemId>> {
    (0..N_CYCLES)
        .map(|cycle| {
            (0..N_ITEMS)
                .filter(|i| pattern & (1 << (i + (cycle as u32) * N_ITEMS)) != 0)
                .map(ItemId::new)
                .collect()
        })
        .collect()
}

fn run_pattern(method: Method, pattern: u32, seed: u64) -> (usize, usize) {
    let config = bpush_types::ServerConfig {
        broadcast_size: N_ITEMS,
        update_range: N_ITEMS,
        server_read_range: N_ITEMS,
        updates_per_cycle: 1,
        txns_per_cycle: 1,
        offset: 0,
        theta: 0.5,
        versions_retained: 3,
        ..bpush_types::ServerConfig::default()
    };
    let server = BroadcastServer::new(
        config,
        method.server_options(MultiversionLayout::Overflow),
        seed,
    )
    .expect("valid");
    let mut server = server.with_workload(Box::new(bpush_server::ScriptedWorkload::new(
        script_of(pattern),
    )));
    let cache = match method.cache_mode() {
        CacheMode::None => None,
        mode => Some(ClientCache::new(CacheParams {
            mode,
            current_capacity: 2,
            old_capacity: if mode == CacheMode::Multiversion {
                2
            } else {
                0
            },
            items_per_bucket: 1,
        })),
    };
    let client_config = ClientConfig {
        read_range: N_ITEMS,
        reads_per_query: 2,
        think_time: 1,
        cache: bpush_types::CacheConfig {
            capacity: 2,
            old_version_fraction: if method.cache_mode() == CacheMode::Multiversion {
                0.4
            } else {
                0.0
            },
        },
        ..ClientConfig::default()
    };
    let mut client = QueryExecutor::new(
        ClientId::new(0),
        client_config,
        method.build_protocol(),
        cache,
        4,
        seed ^ 0x5a5a,
    )
    .expect("valid");

    let mut outcomes = Vec::new();
    let mut start = Slot::ZERO;
    for _ in 0..(N_CYCLES * 8) {
        let bcast = server.run_cycle();
        outcomes.extend(client.run_cycle(&bcast, start, true).expect("cycle runs"));
        start = start.plus(bcast.total_slots());
        if client.is_done() {
            break;
        }
    }
    let validator = SerializabilityValidator::new(server.history());
    let mut committed = 0;
    for o in outcomes.iter().filter(|o| o.committed()) {
        committed += 1;
        validator
            .check_serializable(server.conflict_graph(), &o.reads)
            .unwrap_or_else(|e| panic!("{method} pattern {pattern:b} seed {seed}: {e}"));
    }
    (committed, outcomes.len())
}

/// Exhaustively enumerate every update pattern over the tiny universe
/// (2^(items x cycles) = 512 patterns), for every method and two client
/// seeds; every committed readset must be consistent, and across the
/// sweep both commits and aborts must occur.
#[test]
fn exhaustive_tiny_universe() {
    let patterns = 1u32 << (N_ITEMS as u64 * N_CYCLES);
    for method in Method::ALL {
        let mut commits = 0usize;
        let mut total = 0usize;
        for pattern in 0..patterns {
            for seed in [1u64, 2] {
                let (c, t) = run_pattern(method, pattern, seed);
                commits += c;
                total += t;
            }
        }
        assert!(total > 0, "{method}: nothing ran");
        assert!(commits > 0, "{method}: nothing ever committed");
    }
}

/// The scripted pipeline really applies the scripted updates: the
/// all-ones pattern updates every item every scripted cycle.
#[test]
fn scripted_pattern_reaches_history() {
    let config = bpush_types::ServerConfig {
        broadcast_size: N_ITEMS,
        update_range: N_ITEMS,
        server_read_range: N_ITEMS,
        updates_per_cycle: 1,
        txns_per_cycle: 1,
        theta: 0.5,
        offset: 0,
        ..bpush_types::ServerConfig::default()
    };
    let all_ones = (1u32 << (N_ITEMS as u64 * N_CYCLES)) - 1;
    let mut server = BroadcastServer::new(config, ServerOptions::plain(), 0)
        .expect("valid")
        .with_workload(Box::new(bpush_server::ScriptedWorkload::new(script_of(
            all_ones,
        ))));
    for _ in 0..(N_CYCLES + 1) {
        server.run_cycle();
    }
    for i in 0..N_ITEMS {
        assert_eq!(
            server.history().writes_of(ItemId::new(i)).len(),
            N_CYCLES as usize,
            "item {i} must be written every scripted cycle"
        );
    }
}

/// The scripted-transaction path of the server: committing handwritten
/// transactions through `ServerTxn` validates the read-before-write
/// invariant end to end.
#[test]
fn server_txn_invariants_hold_under_enumeration() {
    // every subset of a 3-item write set, with the mandated read-superset
    for mask in 0u32..8 {
        let writes: Vec<ItemId> = (0..3)
            .filter(|i| mask & (1 << i) != 0)
            .map(ItemId::new)
            .collect();
        let mut reads = writes.clone();
        reads.push(ItemId::new(0)); // extra read is always allowed
        let txn = ServerTxn::new(TxnId::new(Cycle::ZERO, 0), reads, writes.clone());
        for w in &writes {
            assert!(txn.writes_item(*w));
            assert!(txn.reads_item(*w), "read-before-write holds");
        }
    }
}
