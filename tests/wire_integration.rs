//! Cross-crate integration: the control information a real server
//! broadcasts survives the wire codec bit-exactly.

// Integration tests are exempt from the panic-freedom policy
// (mirrors `allow-unwrap-in-tests` in clippy.toml and the `#[cfg(test)]`
// carve-out in `cargo xtask lint`).
#![allow(clippy::unwrap_used)]
use bpush_broadcast::wire::{
    decode_augmented, decode_diff, decode_invalidation, encode_augmented, encode_diff,
    encode_invalidation, WireParams,
};
use bpush_types::Granularity;

/// End to end: the control information a real server broadcasts survives
/// the wire.
#[test]
fn server_control_info_round_trips() {
    use bpush_server::{BroadcastServer, ServerOptions};
    let config = bpush_types::ServerConfig {
        broadcast_size: 200,
        update_range: 100,
        server_read_range: 200,
        updates_per_cycle: 15,
        txns_per_cycle: 8,
        ..bpush_types::ServerConfig::default()
    };
    let wire = WireParams::derive(200, 1, 8, 16);
    let mut server = BroadcastServer::new(config, ServerOptions::sgt(), 5).unwrap();
    for _ in 0..6 {
        let bcast = server.run_cycle();
        let ctrl = bcast.control();
        let n = ctrl.cycle();

        let inv_bytes = encode_invalidation(ctrl.invalidation(), wire);
        let inv = decode_invalidation(&inv_bytes, wire, n, 1, Granularity::Item, 1).unwrap();
        assert_eq!(&inv, ctrl.invalidation());

        if let Some(aug) = ctrl.augmented() {
            let bytes = encode_augmented(aug, n, wire);
            assert_eq!(&decode_augmented(&bytes, wire, n).unwrap(), aug);
        }
        if let Some(diff) = ctrl.graph_diff() {
            let bytes = encode_diff(diff, n, wire);
            assert_eq!(&decode_diff(&bytes, wire, n).unwrap(), diff);
        }
    }
}
