//! The master invariant, across every method and a wide configuration
//! space: **no committed read-only transaction ever observes an
//! inconsistent database state** (§2.2) — whatever the granularity,
//! layout, report window, cache size or disconnection pattern.

// Integration tests are exempt from the panic-freedom policy
// (mirrors `allow-unwrap-in-tests` in clippy.toml and the `#[cfg(test)]`
// carve-out in `cargo xtask lint`).
#![allow(clippy::unwrap_used)]
use proptest::prelude::*;

use bpush_core::Method;
use bpush_sim::Simulation;
use bpush_types::config::MultiversionLayout;
use bpush_types::{CacheConfig, ClientConfig, Granularity, ServerConfig, SimConfig};

fn base_config(seed: u64) -> SimConfig {
    SimConfig {
        server: ServerConfig {
            broadcast_size: 200,
            update_range: 100,
            server_read_range: 200,
            updates_per_cycle: 15,
            txns_per_cycle: 5,
            offset: 20,
            versions_retained: 6,
            ..ServerConfig::default()
        },
        client: ClientConfig {
            read_range: 100,
            reads_per_query: 6,
            cache: CacheConfig {
                capacity: 30,
                ..CacheConfig::default()
            },
            ..ClientConfig::default()
        },
        n_clients: 3,
        queries_per_client: 12,
        warmup_cycles: 2,
        max_cycles: 50_000,
        seed,
    }
}

fn assert_clean(config: SimConfig, method: Method, layout: MultiversionLayout, label: &str) {
    let metrics = Simulation::with_layout(config, method, layout)
        .unwrap_or_else(|e| panic!("{label}: {e}"))
        .run()
        .unwrap_or_else(|e| panic!("{label}: {e}"));
    assert_eq!(
        metrics.violations, 0,
        "{label}: {} committed readsets violated serializability",
        metrics.violations
    );
    assert!(metrics.queries > 0, "{label}: no queries measured");
}

#[test]
fn all_methods_default_config() {
    for method in Method::ALL {
        assert_clean(
            base_config(1),
            method,
            MultiversionLayout::Overflow,
            method.name(),
        );
    }
}

#[test]
fn multiversion_clustered_layout() {
    assert_clean(
        base_config(2),
        Method::MultiversionBroadcast,
        MultiversionLayout::Clustered,
        "multiversion/clustered",
    );
}

#[test]
fn bucket_granularity_is_conservative_not_wrong() {
    for method in [
        Method::InvalidationOnly,
        Method::InvalidationCache,
        Method::InvalidationVersionedCache,
        Method::MultiversionCaching,
    ] {
        let mut cfg = base_config(3);
        cfg.server.granularity = Granularity::Bucket;
        cfg.server.items_per_bucket = 5;
        assert_clean(
            cfg,
            method,
            MultiversionLayout::Overflow,
            &format!("{}/bucket-granularity", method.name()),
        );
    }
}

#[test]
fn windowed_reports_stay_consistent() {
    for window in [2u32, 4] {
        for method in [
            Method::InvalidationOnly,
            Method::InvalidationVersionedCache,
            Method::Sgt,
            Method::MultiversionCaching,
        ] {
            let mut cfg = base_config(4);
            cfg.server.report_window = window;
            assert_clean(
                cfg,
                method,
                MultiversionLayout::Overflow,
                &format!("{}/window-{window}", method.name()),
            );
        }
    }
}

#[test]
fn disconnections_never_break_consistency() {
    for method in Method::ALL {
        let mut cfg = base_config(5);
        cfg.client.disconnect_prob = 0.3;
        cfg.server.versions_retained = 16;
        assert_clean(
            cfg,
            method,
            MultiversionLayout::Overflow,
            &format!("{}/disconnect", method.name()),
        );
    }
    // the versioned-items SGT variant under heavy gaps
    let mut cfg = base_config(6);
    cfg.client.disconnect_prob = 0.4;
    assert_clean(
        cfg,
        Method::SgtVersionedItems,
        MultiversionLayout::Overflow,
        "sgt+versions/disconnect",
    );
}

#[test]
fn tiny_caches_and_huge_queries() {
    let mut cfg = base_config(7);
    cfg.client.cache.capacity = 3;
    cfg.client.reads_per_query = 20;
    cfg.server.versions_retained = 48;
    for method in Method::ALL {
        assert_clean(
            cfg.clone(),
            method,
            MultiversionLayout::Overflow,
            &format!("{}/tiny-cache", method.name()),
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 12,
        .. ProptestConfig::default()
    })]

    /// Randomized configurations: any method, any update volume, offset,
    /// query size, cache size, disconnect rate, window and granularity —
    /// committed readsets are always consistent.
    #[test]
    fn randomized_configurations_stay_consistent(
        seed in 0u64..1000,
        method_idx in 0usize..Method::ALL.len(),
        updates in 5u32..60,
        offset in 0u32..100,
        reads in 2u32..12,
        cache in 0u32..40,
        disconnect in 0u32..4,
        window in 1u32..4,
        bucket_grain in proptest::bool::ANY,
    ) {
        let method = Method::ALL[method_idx];
        let mut cfg = base_config(seed);
        cfg.server.updates_per_cycle = updates;
        cfg.server.offset = offset;
        cfg.server.report_window = window;
        cfg.server.versions_retained = 4 * reads + 8;
        if bucket_grain {
            cfg.server.granularity = Granularity::Bucket;
            cfg.server.items_per_bucket = 4;
        }
        cfg.client.reads_per_query = reads;
        cfg.client.cache.capacity = cache;
        cfg.client.disconnect_prob = f64::from(disconnect) * 0.1;
        cfg.n_clients = 2;
        cfg.queries_per_client = 8;

        let metrics = Simulation::new(cfg, method)
            .expect("valid config")
            .run()
            .expect("run completes");
        prop_assert_eq!(metrics.violations, 0, "{} violated consistency", method);
    }
}
