//! A minimal, dependency-free stand-in for the [`proptest`] crate.
//!
//! The bpush workspace builds in fully offline environments, so it
//! vendors the *subset* of the proptest API its property tests use:
//!
//! * the [`proptest!`] macro (with the optional
//!   `#![proptest_config(...)]` header),
//! * [`prop_assert!`], [`prop_assert_eq!`], [`prop_assert_ne!`],
//!   [`prop_assume!`],
//! * [`Strategy`] with [`Strategy::prop_map`],
//! * range strategies for integers and floats, tuple strategies,
//!   [`collection::vec`], [`collection::btree_set`],
//!   [`bool::ANY`](crate::bool::ANY) and
//!   [`bool::weighted`](crate::bool::weighted).
//!
//! Differences from upstream, by design:
//!
//! * **No shrinking.** A failing case reports its inputs (via the
//!   assertion message) and the case number, not a minimized input.
//! * **Deterministic.** Each test's input stream is seeded from the
//!   test's name (override the per-test case count with the
//!   `PROPTEST_CASES` environment variable). There is no persistence
//!   file because there is no entropy to persist.
//!
//! [`proptest`]: https://docs.rs/proptest/1

#![forbid(unsafe_code)]
#![deny(missing_docs)]

use std::ops::Range;

/// Everything a property-test file needs.
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, ProptestConfig,
        Strategy, TestCaseError,
    };
}

/// Per-test configuration (a pared-down `proptest::test_runner::Config`).
/// Construct with functional-update syntax:
/// `ProptestConfig { cases: 64, ..ProptestConfig::default() }`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of successful cases required for the test to pass.
    pub cases: u32,
    /// Upper bound on [`prop_assume!`] rejections before the test errors
    /// out as vacuous.
    pub max_global_rejects: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        let cases = std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(64);
        ProptestConfig {
            cases,
            max_global_rejects: 4096,
        }
    }
}

/// Why a single generated case did not pass.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// An assertion failed; the property does not hold.
    Fail(String),
    /// The case was rejected by [`prop_assume!`]; try another.
    Reject,
}

impl TestCaseError {
    /// A failure with the given message.
    pub fn fail(msg: String) -> Self {
        TestCaseError::Fail(msg)
    }
}

/// The deterministic generator feeding the strategies: SplitMix64 seeded
/// from the test's name.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// A stream derived deterministically from `name` (FNV-1a).
    pub fn deterministic(name: &str) -> Self {
        let mut h: u64 = 0xCBF2_9CE4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng { state: h }
    }

    /// The next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A uniform draw from `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A uniform draw below `n` (`0` when `n == 0`).
    pub fn below(&mut self, n: u64) -> u64 {
        if n == 0 {
            return 0;
        }
        (u128::from(self.next_u64()) * u128::from(n) >> 64) as u64
    }
}

/// A value generator (a pared-down `proptest::strategy::Strategy`;
/// generation only, no shrink tree).
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }
}

/// The [`Strategy::prop_map`] adapter.
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;

    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! impl_range_strategy_int {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                let wide = (u128::from(rng.next_u64()) * span) >> 64;
                self.start.wrapping_add(wide as $t)
            }
        }
    )*};
}

impl_range_strategy_int!(u8, u16, u32, u64, usize, i32, i64);

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.next_f64() * (self.end - self.start)
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($s:ident / $i:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$i.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A/0)
    (A/0, B/1)
    (A/0, B/1, C/2)
    (A/0, B/1, C/2, D/3)
    (A/0, B/1, C/2, D/3, E/4)
    (A/0, B/1, C/2, D/3, E/4, F/5)
}

/// Collection strategies.
pub mod collection {
    use super::{Range, Strategy, TestRng};
    use std::collections::BTreeSet;

    /// A `Vec` of `element` values with a length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    /// A `BTreeSet` of `element` values with a target size drawn from
    /// `size` (possibly smaller if the element domain is exhausted).
    pub fn btree_set<S>(element: S, size: Range<usize>) -> BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        BTreeSetStrategy { element, size }
    }

    /// See [`vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let span = self.size.end.saturating_sub(self.size.start).max(1);
            let len = self.size.start + rng.below(span as u64) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// See [`btree_set`].
    #[derive(Debug, Clone)]
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    impl<S> Strategy for BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let span = self.size.end.saturating_sub(self.size.start).max(1);
            let target = self.size.start + rng.below(span as u64) as usize;
            let mut set = BTreeSet::new();
            // cap the attempts: small element domains may not be able to
            // fill the target size
            for _ in 0..(target * 8 + 8) {
                if set.len() >= target {
                    break;
                }
                set.insert(self.element.generate(rng));
            }
            set
        }
    }
}

/// Boolean strategies (shadows the primitive's name, as upstream does).
pub mod bool {
    use super::{Strategy, TestRng};

    /// Uniformly random booleans.
    #[derive(Debug, Clone, Copy)]
    pub struct Any;

    /// The uniform boolean strategy.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = ::core::primitive::bool;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            rng.next_u64() & 1 == 1
        }
    }

    /// `true` with probability `p`.
    pub fn weighted(p: f64) -> Weighted {
        Weighted { p }
    }

    /// See [`weighted`].
    #[derive(Debug, Clone, Copy)]
    pub struct Weighted {
        p: f64,
    }

    impl Strategy for Weighted {
        type Value = ::core::primitive::bool;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            rng.next_f64() < self.p
        }
    }
}

/// A constant strategy (upstream's `Just`).
#[derive(Debug, Clone, Copy)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

impl<T, S: Strategy<Value = T> + ?Sized> Strategy for &S {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        (**self).generate(rng)
    }
}

/// Declares property tests.
///
/// Supported grammar (the subset the workspace uses):
///
/// ```text
/// proptest! {
///     #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]
///
///     /// Doc comment.
///     #[test]
///     fn my_property(x in 0u32..100, ys in proptest::collection::vec(0u8..4, 0..10)) {
///         prop_assert!(x < 100);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_body! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_body! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_body {
    ( ($cfg:expr)
      $( $(#[$meta:meta])*
         fn $name:ident ( $( $arg:ident in $strat:expr ),+ $(,)? ) $body:block
      )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let mut rng = $crate::TestRng::deterministic(stringify!($name));
                let mut passed: u32 = 0;
                let mut rejected: u32 = 0;
                while passed < config.cases {
                    $( let $arg = $crate::Strategy::generate(&($strat), &mut rng); )+
                    let outcome: ::std::result::Result<(), $crate::TestCaseError> =
                        (|| { $body ::std::result::Result::Ok(()) })();
                    match outcome {
                        ::std::result::Result::Ok(()) => passed += 1,
                        ::std::result::Result::Err($crate::TestCaseError::Reject) => {
                            rejected += 1;
                            assert!(
                                rejected <= config.max_global_rejects,
                                "{} rejected too many cases ({} passed, {} rejected)",
                                stringify!($name),
                                passed,
                                rejected,
                            );
                        }
                        ::std::result::Result::Err($crate::TestCaseError::Fail(msg)) => {
                            panic!(
                                "property {} failed at case {}: {}",
                                stringify!($name),
                                passed,
                                msg,
                            );
                        }
                    }
                }
            }
        )*
    };
}

/// Asserts a condition inside a [`proptest!`] body, failing the current
/// case (not panicking directly) when false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(
                format!("assertion failed: {}: {}", stringify!($cond), format!($($fmt)+)),
            ));
        }
    };
}

/// Asserts equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (__l, __r) = (&$a, &$b);
        if !(*__l == *__r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
                stringify!($a),
                stringify!($b),
                __l,
                __r,
            )));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$a, &$b);
        if !(*__l == *__r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} == {} ({})\n  left: {:?}\n right: {:?}",
                stringify!($a),
                stringify!($b),
                format!($($fmt)+),
                __l,
                __r,
            )));
        }
    }};
}

/// Asserts inequality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (__l, __r) = (&$a, &$b);
        if *__l == *__r {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} != {}\n  both: {:?}",
                stringify!($a),
                stringify!($b),
                __l,
            )));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$a, &$b);
        if *__l == *__r {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} != {} ({})\n  both: {:?}",
                stringify!($a),
                stringify!($b),
                format!($($fmt)+),
                __l,
            )));
        }
    }};
}

/// Rejects the current case (without failing the test) when the
/// assumption is false.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::TestRng;
    use crate::Strategy as _;

    #[test]
    fn deterministic_rng_is_stable_across_calls() {
        let mut a = TestRng::deterministic("x");
        let mut b = TestRng::deterministic("x");
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = TestRng::deterministic("y");
        assert_ne!(TestRng::deterministic("x").next_u64(), c.next_u64());
    }

    #[test]
    fn range_strategies_respect_bounds() {
        let mut rng = TestRng::deterministic("bounds");
        for _ in 0..500 {
            let x = (3u32..9).generate(&mut rng);
            assert!((3..9).contains(&x));
            let f = (0.5f64..0.75).generate(&mut rng);
            assert!((0.5..0.75).contains(&f));
        }
    }

    #[test]
    fn vec_strategy_sizes_in_range() {
        let mut rng = TestRng::deterministic("vec");
        for _ in 0..200 {
            let v = crate::collection::vec(0u8..4, 2..6).generate(&mut rng);
            assert!((2..6).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 4));
        }
    }

    #[test]
    fn btree_set_strategy_is_sized_and_sorted() {
        let mut rng = TestRng::deterministic("set");
        for _ in 0..200 {
            let s = crate::collection::btree_set(0u32..1000, 0..6).generate(&mut rng);
            assert!(s.len() < 6);
        }
    }

    #[test]
    fn tuple_and_map_compose() {
        let mut rng = TestRng::deterministic("tuple");
        let strat = (0u32..10, 0u64..5).prop_map(|(a, b)| u64::from(a) + b);
        for _ in 0..100 {
            assert!(strat.generate(&mut rng) < 15);
        }
    }

    proptest! {
        /// The macro itself works end to end.
        #[test]
        fn macro_end_to_end(x in 0u32..50, flag in crate::bool::ANY) {
            prop_assume!(x != 13);
            prop_assert!(x < 50);
            if flag {
                prop_assert_ne!(x, 13);
            }
            prop_assert_eq!(x, x, "reflexivity for {}", x);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 7, ..ProptestConfig::default() })]

        /// The config header is honored.
        #[test]
        fn config_header_accepted(_x in 0u8..2) {
            prop_assert!(true);
        }
    }
}
