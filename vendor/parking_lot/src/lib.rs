//! A minimal, dependency-free stand-in for the [`parking_lot`] crate.
//!
//! The bpush workspace builds in fully offline environments, so it
//! vendors the subset of the parking_lot 0.12 API it uses: [`Mutex`] and
//! [`RwLock`] whose guards are obtained infallibly. The implementation
//! wraps [`std::sync`], recovering from poisoning instead of propagating
//! it — which matches parking_lot's semantics (no lock poisoning) and is
//! exactly why the workspace standardizes on this API: no `unwrap()` on
//! every lock acquisition. (`xtask lint` rule L5 enforces the standard.)
//!
//! [`parking_lot`]: https://docs.rs/parking_lot/0.12

#![forbid(unsafe_code)]
#![deny(missing_docs)]

// lint: allow(locks) — this crate *is* the workspace's lock shim; it must
// wrap std::sync primitives to exist.
use std::sync;

/// A mutual-exclusion lock with infallible, poison-free acquisition.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

/// The guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// A new mutex holding `value`.
    pub fn new(value: T) -> Self {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning its value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available. Never fails: a
    /// poisoned lock (a holder panicked) is recovered, as in parking_lot.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner
            .lock()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Tries to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

/// A readers-writer lock with infallible, poison-free acquisition.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

/// The guard returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// The guard returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// A new lock holding `value`.
    pub fn new(value: T) -> Self {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }

    /// Consumes the lock, returning its value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access, recovering from poisoning.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner
            .read()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Acquires exclusive write access, recovering from poisoning.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner
            .write()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn mutex_try_lock_contended() {
        let m = Mutex::new(0);
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn mutex_recovers_from_poison() {
        let m = std::sync::Arc::new(Mutex::new(7));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison it");
        })
        .join();
        // a parking_lot-style lock just keeps working
        assert_eq!(*m.lock(), 7);
    }

    #[test]
    fn rwlock_round_trip() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(l.into_inner(), vec![1, 2, 3]);
    }
}
