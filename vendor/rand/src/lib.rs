//! A minimal, dependency-free stand-in for the [`rand`] crate.
//!
//! The bpush workspace builds in fully offline environments, so it
//! vendors the *subset* of the `rand 0.8` API it actually uses rather
//! than depending on crates.io:
//!
//! * [`rngs::StdRng`] — a deterministic xoshiro256++ generator,
//! * [`SeedableRng`] — `from_seed` / `seed_from_u64`,
//! * [`Rng`] — `gen`, `gen_bool`, `gen_range` over the integer and
//!   float types the simulators sample.
//!
//! The value *streams* differ from upstream `rand` (which uses ChaCha12
//! for `StdRng`); everything in this workspace that consumes randomness
//! is seeded explicitly, so reproducibility within the workspace is
//! preserved — which is all the determinism rules (see `xtask lint`)
//! require. No thread-local or entropy-based constructors are provided,
//! *by design*: every generator must be seeded.
//!
//! [`rand`]: https://docs.rs/rand/0.8

#![forbid(unsafe_code)]
#![deny(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// The core of a random number generator: a stream of `u64`s.
pub trait RngCore {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniformly random bits (the high half of
    /// [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// A generator that can be constructed from a seed.
pub trait SeedableRng: Sized {
    /// The raw seed type.
    type Seed: Default + AsMut<[u8]>;

    /// Constructs the generator from a raw seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Constructs the generator from a `u64`, expanding it into a full
    /// seed with SplitMix64 (the same expansion upstream `rand` uses).
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = SplitMix64::new(state);
        for chunk in seed.as_mut().chunks_mut(8) {
            let bytes = sm.next_u64().to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
        Self::from_seed(seed)
    }
}

/// SplitMix64: the seed-expansion generator (public so tests can derive
/// auxiliary streams cheaply).
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// A new stream from `state`.
    pub fn new(state: u64) -> Self {
        SplitMix64 { state }
    }

    /// The next value of the stream.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Types samplable uniformly over their whole domain (the stand-in for
/// `rand::distributions::Standard`).
pub trait SampleStandard {
    /// Draws one uniformly distributed value.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl SampleStandard for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl SampleStandard for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl SampleStandard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl SampleStandard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1)
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Types samplable uniformly from a sub-range (the stand-in for
/// `rand::distributions::uniform::SampleUniform`).
pub trait SampleUniform: Sized {
    /// Draws uniformly from `[lo, hi)` (or `[lo, hi]` when `inclusive`).
    ///
    /// Implementations may assume the caller verified the range is
    /// non-empty; [`Rng::gen_range`] checks that.
    fn sample_uniform<R: RngCore + ?Sized>(
        rng: &mut R,
        lo: Self,
        hi: Self,
        inclusive: bool,
    ) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_uniform<R: RngCore + ?Sized>(
                rng: &mut R,
                lo: Self,
                hi: Self,
                inclusive: bool,
            ) -> Self {
                let span = (hi as u128).wrapping_sub(lo as u128)
                    + u128::from(inclusive);
                if span == 0 {
                    // inclusive range covering the whole domain
                    return Self::sample_wide(rng);
                }
                // widening-multiply range reduction (unbiased enough for
                // simulation purposes; spans here are far below 2^64)
                let wide = u128::from(rng.next_u64()) * span >> 64;
                lo.wrapping_add(wide as $t)
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i32, i64);

/// Helper giving every integer a full-domain draw (used only for the
/// degenerate `lo..=MAX` case).
trait SampleWide {
    fn sample_wide<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_sample_wide {
    ($($t:ty),*) => {$(
        impl SampleWide for $t {
            fn sample_wide<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_sample_wide!(u8, u16, u32, u64, usize, i32, i64);

impl SampleUniform for f64 {
    fn sample_uniform<R: RngCore + ?Sized>(
        rng: &mut R,
        lo: Self,
        hi: Self,
        _inclusive: bool,
    ) -> Self {
        lo + f64::sample_standard(rng) * (hi - lo)
    }
}

/// Range shapes accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Whether the range contains no values.
    fn is_empty_range(&self) -> bool;
    /// Draws a value from the range.
    fn sample_in<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform + PartialOrd + Copy> SampleRange<T> for Range<T> {
    fn is_empty_range(&self) -> bool {
        self.start >= self.end
    }

    fn sample_in<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_uniform(rng, self.start, self.end, false)
    }
}

impl<T: SampleUniform + PartialOrd + Copy> SampleRange<T> for RangeInclusive<T> {
    fn is_empty_range(&self) -> bool {
        self.start() > self.end()
    }

    fn sample_in<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_uniform(rng, *self.start(), *self.end(), true)
    }
}

/// User-facing sampling methods, blanket-implemented for every
/// [`RngCore`] (mirrors `rand::Rng`).
pub trait Rng: RngCore {
    /// A uniformly distributed value of `T`.
    fn gen<T: SampleStandard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }

    /// A uniform draw from `range`.
    ///
    /// # Panics
    /// Panics if the range is empty, matching upstream `rand`.
    fn gen_range<T, Rg>(&mut self, range: Rg) -> T
    where
        T: SampleUniform,
        Rg: SampleRange<T>,
    {
        assert!(!range.is_empty_range(), "cannot sample empty range");
        range.sample_in(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// The provided generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++.
    ///
    /// # Example
    /// ```
    /// use rand::rngs::StdRng;
    /// use rand::{Rng, SeedableRng};
    ///
    /// let mut a = StdRng::seed_from_u64(7);
    /// let mut b = StdRng::seed_from_u64(7);
    /// assert_eq!(a.gen::<u64>(), b.gen::<u64>());
    /// ```
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // xoshiro256++ by Blackman & Vigna (public domain reference)
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, word) in s.iter_mut().enumerate() {
                let mut bytes = [0u8; 8];
                bytes.copy_from_slice(&seed[i * 8..(i + 1) * 8]);
                *word = u64::from_le_bytes(bytes);
            }
            // an all-zero state would be a fixed point; nudge it
            if s == [0; 4] {
                s = [
                    0x9E37_79B9_7F4A_7C15,
                    0x6A09_E667_F3BC_C909,
                    0xBB67_AE85_84CA_A73B,
                    0x3C6E_F372_FE94_F82B,
                ];
            }
            StdRng { s }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert!((0..16).any(|_| a.next_u64() != b.next_u64()));
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let x: f64 = r.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut r = StdRng::seed_from_u64(4);
        for _ in 0..1000 {
            let x = r.gen_range(10u32..20);
            assert!((10..20).contains(&x));
            let y = r.gen_range(5u64..=5);
            assert_eq!(y, 5);
            let z = r.gen_range(-3i64..3);
            assert!((-3..3).contains(&z));
            let f = r.gen_range(2.0f64..4.0);
            assert!((2.0..4.0).contains(&f));
        }
    }

    #[test]
    fn gen_range_is_roughly_uniform() {
        let mut r = StdRng::seed_from_u64(5);
        let mut counts = [0u32; 8];
        for _ in 0..8000 {
            counts[r.gen_range(0usize..8)] += 1;
        }
        for &c in &counts {
            assert!((700..1300).contains(&c), "skewed bucket: {counts:?}");
        }
    }

    #[test]
    fn gen_bool_matches_probability() {
        let mut r = StdRng::seed_from_u64(6);
        let hits = (0..10_000).filter(|_| r.gen_bool(0.25)).count();
        assert!((2200..2800).contains(&hits), "p=0.25 gave {hits}/10000");
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut r = StdRng::seed_from_u64(7);
        let _ = r.gen_range(5u32..5);
    }

    #[test]
    fn next_u32_uses_high_bits() {
        let mut a = StdRng::seed_from_u64(8);
        let mut b = StdRng::seed_from_u64(8);
        use super::RngCore;
        assert_eq!(a.next_u32(), (b.next_u64() >> 32) as u32);
    }
}
