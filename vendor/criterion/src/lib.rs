//! A minimal, dependency-free stand-in for the [`criterion`] crate.
//!
//! The bpush workspace builds in fully offline environments, so it
//! vendors the subset of the criterion 0.5 API its benches use. Instead
//! of statistical sampling, each benchmark routine is warmed up once and
//! timed over a small fixed number of iterations, printing one
//! `name ... time/iter` line. That keeps `cargo bench` runnable (a smoke
//! test and a coarse regression signal) without the real harness;
//! swap the real criterion back in for publishable numbers.
//!
//! [`criterion`]: https://docs.rs/criterion/0.5

#![forbid(unsafe_code)]
#![deny(missing_docs)]

use std::fmt;
use std::time::Instant;

/// Re-export of [`std::hint::black_box`] under criterion's name.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// How batched inputs are grouped (accepted for API compatibility; the
/// stub runs every batch the same way).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One batch per iteration.
    PerIteration,
}

/// A benchmark identifier: function name plus an optional parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// An id made of a function name and a parameter value.
    pub fn new(function: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            name: format!("{}/{}", function.into(), parameter),
        }
    }

    /// An id carrying only a parameter value.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            name: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.name)
    }
}

/// Drives one benchmark routine.
#[derive(Debug)]
pub struct Bencher {
    iters: u64,
    elapsed_ns: u128,
}

impl Bencher {
    fn new(iters: u64) -> Self {
        Bencher {
            iters,
            elapsed_ns: 0,
        }
    }

    /// Times `routine` over the configured number of iterations.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let _ = black_box(routine()); // warm-up, untimed
        let start = Instant::now();
        for _ in 0..self.iters {
            let _ = black_box(routine());
        }
        self.elapsed_ns = start.elapsed().as_nanos();
    }

    /// Times `routine` over fresh inputs produced by `setup`; setup time
    /// is excluded from the measurement.
    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        let _ = black_box(routine(setup())); // warm-up, untimed
        let mut total: u128 = 0;
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            let _ = black_box(routine(input));
            total += start.elapsed().as_nanos();
        }
        self.elapsed_ns = total;
    }
}

/// The benchmark harness handle passed to every bench function.
#[derive(Debug)]
pub struct Criterion {
    iters: u64,
}

impl Default for Criterion {
    fn default() -> Self {
        let iters = std::env::var("BPUSH_BENCH_ITERS")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(10);
        Criterion { iters }
    }
}

impl Criterion {
    /// Accepted for API compatibility with criterion's generated mains.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Runs a named benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher::new(self.iters);
        f(&mut b);
        Self::report(name, &b);
        self
    }

    /// Runs a parameterized benchmark.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher::new(self.iters);
        f(&mut b, input);
        Self::report(&id.to_string(), &b);
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
        }
    }

    fn report(name: &str, b: &Bencher) {
        let per_iter = b.elapsed_ns / u128::from(b.iters.max(1));
        println!(
            "bench {name:<50} {per_iter:>12} ns/iter (stub harness, {} iters)",
            b.iters
        );
    }
}

/// A group of related benchmarks sharing a name prefix.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the stub ignores sample sizing.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for API compatibility; the stub ignores measurement time.
    pub fn measurement_time(&mut self, _d: std::time::Duration) -> &mut Self {
        self
    }

    /// Runs a named benchmark within the group.
    pub fn bench_function<F>(&mut self, name: impl fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher::new(self.criterion.iters);
        f(&mut b);
        Criterion::report(&format!("{}/{}", self.name, name), &b);
        self
    }

    /// Runs a parameterized benchmark within the group.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher::new(self.criterion.iters);
        f(&mut b, input);
        Criterion::report(&format!("{}/{}", self.name, id), &b);
        self
    }

    /// Ends the group (criterion parity; the stub needs no teardown).
    pub fn finish(self) {}
}

/// Declares a group of benchmark functions (criterion-compatible; the
/// `config = ...` form is accepted and its expression discarded).
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        #[doc = "Runs this benchmark group (criterion stub)."]
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        #[doc = "Runs this benchmark group (criterion stub)."]
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Declares the benchmark binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sum_to(n: u64) -> u64 {
        (0..n).sum()
    }

    #[test]
    fn bench_function_runs_routine() {
        let mut c = Criterion::default();
        let mut runs = 0u32;
        c.bench_function("sum", |b| {
            b.iter(|| {
                runs += 1;
                sum_to(100)
            })
        });
        assert!(runs > 1, "warm-up plus measured iterations");
    }

    #[test]
    fn bench_with_input_passes_input() {
        let mut c = Criterion::default();
        c.bench_with_input(BenchmarkId::new("sum", 7), &7u64, |b, &n| {
            b.iter(|| sum_to(n))
        });
        c.bench_with_input(BenchmarkId::from_parameter(9), &9u64, |b, &n| {
            b.iter_batched(|| n, sum_to, BatchSize::SmallInput)
        });
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("f", 3).to_string(), "f/3");
        assert_eq!(BenchmarkId::from_parameter("x").to_string(), "x");
    }
}
