//! A deliberately broken protocol fixture.
//!
//! The checker must be able to *find* bugs, not just bless correct code.
//! [`BrokenInvalidation`] is the §3.1 invalidation-only method with its
//! staleness comparison shifted by one cycle: where the genuine
//! implementation dooms a query whose readset item was updated at or
//! after the query's verified database state, this one compares against
//! `verified.next()` and therefore ignores updates that land exactly at
//! the verified state. A query that reads item `x`, then hears a control
//! reporting an update of `x` dated precisely at its verified state,
//! survives — and can go on to read another item written by the *same*
//! update transaction, committing a readset that mixes the transaction's
//! before- and after-images.
//!
//! The conformance battery in `crates/core` does not catch this (its
//! invalidation probes all land strictly after the verified state); the
//! model checker does, at every scope down to [`crate::Scope::ci`]. The
//! minimized counterexample is pinned in `tests/mc_replay.rs`.

use std::collections::{BTreeMap, BTreeSet};

use bpush_broadcast::ControlInfo;
use bpush_core::{
    AbortReason, CacheMode, ReadCandidate, ReadConstraint, ReadDirective, ReadOnlyProtocol,
    ReadOutcome,
};
use bpush_types::{Cycle, ItemId, QueryId};

#[derive(Debug, Clone)]
struct QState {
    verified: Cycle,
    readset: BTreeSet<ItemId>,
    doomed: Option<AbortReason>,
}

/// Invalidation-only processing with an off-by-one staleness check — a
/// seeded bug used to demonstrate the checker finds real violations. See
/// the module docs for the failure mode.
#[derive(Debug, Clone, Default)]
pub struct BrokenInvalidation {
    queries: BTreeMap<QueryId, QState>,
}

impl BrokenInvalidation {
    /// A fresh instance with no active queries.
    pub fn new() -> Self {
        BrokenInvalidation::default()
    }
}

impl ReadOnlyProtocol for BrokenInvalidation {
    fn name(&self) -> &'static str {
        "broken-invalidation"
    }

    fn cache_mode(&self) -> CacheMode {
        CacheMode::None
    }

    fn on_control(&mut self, ctrl: &ControlInfo) {
        let report = ctrl.invalidation();
        for q in self.queries.values_mut() {
            if q.doomed.is_some() {
                continue;
            }
            // BUG (deliberate): the genuine method asks
            // `report.stale_at(x, q.verified)` — an update at exactly the
            // verified state invalidates the readset. Probing one cycle
            // later lets that boundary update slip through unnoticed.
            if q.readset
                .iter()
                .any(|&x| report.stale_at(x, q.verified.next()))
            {
                q.doomed = Some(AbortReason::Invalidated);
            } else {
                q.verified = ctrl.cycle();
            }
        }
    }

    fn on_missed_cycle(&mut self, _cycle: Cycle) {
        for q in self.queries.values_mut() {
            if q.doomed.is_none() {
                q.doomed = Some(AbortReason::Disconnected);
            }
        }
    }

    fn begin_query(&mut self, q: QueryId, now: Cycle) {
        let prev = self.queries.insert(
            q,
            QState {
                verified: now,
                readset: BTreeSet::new(),
                doomed: None,
            },
        );
        assert!(prev.is_none(), "query ids must not be reused");
    }

    fn read_directive(&self, q: QueryId, _item: ItemId, now: Cycle) -> ReadDirective {
        match self.queries[&q].doomed {
            Some(reason) => ReadDirective::Doom(reason),
            None => ReadDirective::Read(ReadConstraint {
                state: now,
                cache_only: false,
            }),
        }
    }

    fn apply_read(
        &mut self,
        q: QueryId,
        item: ItemId,
        candidate: &ReadCandidate,
        now: Cycle,
    ) -> ReadOutcome {
        let state = self.queries.get_mut(&q);
        let Some(state) = state else {
            return ReadOutcome::Rejected(AbortReason::VersionUnavailable);
        };
        if let Some(reason) = state.doomed {
            return ReadOutcome::Rejected(reason);
        }
        if !candidate.current_at(now) {
            state.doomed = Some(AbortReason::VersionUnavailable);
            return ReadOutcome::Rejected(AbortReason::VersionUnavailable);
        }
        state.readset.insert(item);
        ReadOutcome::Accepted
    }

    fn finish_query(&mut self, q: QueryId) {
        self.queries.remove(&q);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bpush_broadcast::InvalidationReport;
    use bpush_types::Granularity;

    fn ctrl(cycle: u64, stale: &[u32]) -> ControlInfo {
        let items: Vec<ItemId> = stale.iter().copied().map(ItemId::new).collect();
        let report = InvalidationReport::new(Cycle::new(cycle), 1, items, Granularity::Item, 1);
        ControlInfo::new(Cycle::new(cycle), report, None, None)
    }

    #[test]
    fn misses_updates_at_the_verified_boundary() {
        let mut p = BrokenInvalidation::new();
        let q = QueryId::new(0);
        p.on_control(&ctrl(0, &[]));
        p.begin_query(q, Cycle::ZERO);
        // Read x0 during cycle 0; verified state stays 0.
        let cand = ReadCandidate {
            value: bpush_types::ItemValue::initial(),
            last_writer_tag: None,
            valid_from: Cycle::ZERO,
            valid_until: None,
            source: bpush_core::Source::BroadcastCurrent,
        };
        assert_eq!(
            p.apply_read(q, ItemId::new(0), &cand, Cycle::ZERO),
            ReadOutcome::Accepted
        );
        // Cycle 1's control dates the update of x0 at cycle 0 — exactly
        // the query's verified state. The genuine comparison
        // `stale_at(x, verified)` sees it (0 >= 0) and dooms; the broken
        // `stale_at(x, verified.next())` does not (0 >= 1 fails), so the
        // query sails on with a stale readset.
        let report =
            InvalidationReport::new(Cycle::new(1), 1, [ItemId::new(0)], Granularity::Item, 1);
        assert!(
            report.stale_at(ItemId::new(0), Cycle::ZERO),
            "genuine check would doom"
        );
        p.on_control(&ctrl(1, &[0]));
        assert!(
            matches!(
                p.read_directive(q, ItemId::new(1), Cycle::new(1)),
                ReadDirective::Read(_)
            ),
            "the bug: the boundary update is invisible and the query survives"
        );
        let cand2 = ReadCandidate {
            value: bpush_types::ItemValue::written_by(bpush_types::TxnId::new(Cycle::ZERO, 0)),
            last_writer_tag: None,
            valid_from: Cycle::ZERO,
            valid_until: None,
            source: bpush_core::Source::BroadcastCurrent,
        };
        assert_eq!(
            p.apply_read(q, ItemId::new(1), &cand2, Cycle::new(1)),
            ReadOutcome::Accepted
        );
        p.finish_query(q);
    }

    #[test]
    fn missed_cycles_still_doom() {
        let mut p = BrokenInvalidation::new();
        let q = QueryId::new(0);
        p.begin_query(q, Cycle::ZERO);
        p.on_missed_cycle(Cycle::new(1));
        assert!(matches!(
            p.read_directive(q, ItemId::new(0), Cycle::new(2)),
            ReadDirective::Doom(AbortReason::Disconnected)
        ));
    }
}
