//! Replayable bounded executions and their text serialization.

use std::fmt;

use bpush_types::{Cycle, ItemId};

use crate::spec::ProtocolSpec;

/// One read attempt of the checked query.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReadSpec {
    /// The item read.
    pub item: ItemId,
    /// The cycle during which the read happens (a heard cycle at or after
    /// [`Schedule::begin`]).
    pub cycle: Cycle,
    /// Whether the model offers the ground-truth cache entry for the
    /// constrained state (`true`) or an on-air version (`false`).
    pub from_cache: bool,
}

/// A complete bounded execution: the server's scripted commits plus every
/// client-side choice. Deterministically replayable via
/// [`crate::run_schedule`]; serialized with [`Schedule::render`] and
/// re-read with [`Schedule::parse`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Schedule {
    /// Database/broadcast size (item ids `0..items`).
    pub items: u32,
    /// Old versions the server retains in multiversion mode.
    pub versions: u32,
    /// Number of broadcast cycles simulated.
    pub cycles: u64,
    /// Per cycle, the write sets of its committed update transactions in
    /// serial order (index = cycle number; may be shorter than `cycles`).
    pub commits: Vec<Vec<Vec<ItemId>>>,
    /// The cycles the client misses entirely, ascending.
    pub missed: Vec<Cycle>,
    /// The cycle at which the query begins (must be heard).
    pub begin: Cycle,
    /// The query's reads, in order, at non-decreasing cycles.
    pub reads: Vec<ReadSpec>,
}

/// A schedule that failed parsing or validation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScheduleError(String);

impl ScheduleError {
    fn new(msg: impl Into<String>) -> Self {
        ScheduleError(msg.into())
    }
}

impl fmt::Display for ScheduleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid mc schedule: {}", self.0)
    }
}

impl std::error::Error for ScheduleError {}

impl Schedule {
    /// Checks the internal invariants replay relies on.
    ///
    /// # Errors
    /// Returns [`ScheduleError`] when any bound or ordering constraint is
    /// broken (cycles out of range, reads before `begin` or during missed
    /// cycles, descending read cycles, items outside the universe).
    pub fn validate(&self) -> Result<(), ScheduleError> {
        if self.items == 0 || self.cycles == 0 {
            return Err(ScheduleError::new("items and cycles must be positive"));
        }
        if self.commits.len() as u64 > self.cycles {
            return Err(ScheduleError::new("more commit cycles than the horizon"));
        }
        for (c, txns) in self.commits.iter().enumerate() {
            for writes in txns {
                if writes.is_empty() {
                    return Err(ScheduleError::new(format!("empty write set at cycle {c}")));
                }
                if let Some(x) = writes.iter().find(|x| x.index() >= self.items) {
                    return Err(ScheduleError::new(format!(
                        "write of out-of-range item {x:?}"
                    )));
                }
            }
        }
        if self.missed.windows(2).any(|w| w[0] >= w[1]) {
            return Err(ScheduleError::new(
                "missed cycles must be strictly ascending",
            ));
        }
        if let Some(m) = self.missed.iter().find(|m| m.number() >= self.cycles) {
            return Err(ScheduleError::new(format!(
                "missed cycle {m} outside the horizon"
            )));
        }
        if self.begin.number() >= self.cycles {
            return Err(ScheduleError::new("begin cycle outside the horizon"));
        }
        if self.missed.contains(&self.begin) {
            return Err(ScheduleError::new(
                "query cannot begin during a missed cycle",
            ));
        }
        let mut prev = self.begin;
        for r in &self.reads {
            if r.item.index() >= self.items {
                return Err(ScheduleError::new(format!(
                    "read of out-of-range item {:?}",
                    r.item
                )));
            }
            if r.cycle < prev {
                return Err(ScheduleError::new(
                    "read cycles must be non-decreasing from begin",
                ));
            }
            if r.cycle.number() >= self.cycles {
                return Err(ScheduleError::new("read cycle outside the horizon"));
            }
            if self.missed.contains(&r.cycle) {
                return Err(ScheduleError::new(format!(
                    "read during missed cycle {}",
                    r.cycle
                )));
            }
            prev = r.cycle;
        }
        Ok(())
    }

    /// Serializes the schedule (with the protocol it exercises) into the
    /// replayable `mc-schedule v1` text format.
    pub fn render(&self, spec: ProtocolSpec) -> String {
        use fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "mc-schedule v1");
        let _ = writeln!(out, "protocol {}", spec.name());
        let _ = writeln!(out, "items {}", self.items);
        let _ = writeln!(out, "versions {}", self.versions);
        let _ = writeln!(out, "cycles {}", self.cycles);
        for (c, txns) in self.commits.iter().enumerate() {
            for writes in txns {
                let _ = write!(out, "commit {c}");
                for x in writes {
                    let _ = write!(out, " {}", x.index());
                }
                let _ = writeln!(out);
            }
        }
        for m in &self.missed {
            let _ = writeln!(out, "miss {}", m.number());
        }
        let _ = writeln!(out, "begin {}", self.begin.number());
        for r in &self.reads {
            let _ = writeln!(
                out,
                "read {} @{} {}",
                r.item.index(),
                r.cycle.number(),
                if r.from_cache { "cache" } else { "air" }
            );
        }
        out
    }

    /// Parses the `mc-schedule v1` text format back into the protocol and
    /// schedule it encodes, validating the result.
    ///
    /// # Errors
    /// Returns [`ScheduleError`] on any malformed line or broken
    /// invariant.
    pub fn parse(text: &str) -> Result<(ProtocolSpec, Schedule), ScheduleError> {
        let mut lines = text
            .lines()
            .map(str::trim)
            .filter(|l| !l.is_empty() && !l.starts_with('#'));
        if lines.next() != Some("mc-schedule v1") {
            return Err(ScheduleError::new("missing `mc-schedule v1` header"));
        }
        let mut spec: Option<ProtocolSpec> = None;
        let mut items: Option<u32> = None;
        let mut versions: Option<u32> = None;
        let mut cycles: Option<u64> = None;
        let mut commits: Vec<Vec<Vec<ItemId>>> = Vec::new();
        let mut missed: Vec<Cycle> = Vec::new();
        let mut begin: Option<Cycle> = None;
        let mut reads: Vec<ReadSpec> = Vec::new();
        for line in lines {
            let mut words = line.split_whitespace();
            let key = words.next().unwrap_or_default();
            match key {
                "protocol" => {
                    let name = words
                        .next()
                        .ok_or_else(|| ScheduleError::new("protocol needs a name"))?;
                    spec =
                        Some(ProtocolSpec::parse(name).ok_or_else(|| {
                            ScheduleError::new(format!("unknown protocol `{name}`"))
                        })?);
                }
                "items" => items = Some(parse_num(words.next(), "items")?),
                "versions" => versions = Some(parse_num(words.next(), "versions")?),
                "cycles" => cycles = Some(parse_num(words.next(), "cycles")?),
                "commit" => {
                    let c: usize = parse_num(words.next(), "commit cycle")?;
                    let writes: Vec<ItemId> = words
                        .map(|w| parse_num(Some(w), "commit item").map(ItemId::new))
                        .collect::<Result<_, _>>()?;
                    if commits.len() <= c {
                        commits.resize(c + 1, Vec::new());
                    }
                    commits[c].push(writes);
                }
                "miss" => missed.push(Cycle::new(parse_num(words.next(), "miss cycle")?)),
                "begin" => begin = Some(Cycle::new(parse_num(words.next(), "begin cycle")?)),
                "read" => {
                    let item = ItemId::new(parse_num(words.next(), "read item")?);
                    let at = words
                        .next()
                        .ok_or_else(|| ScheduleError::new("read needs @cycle"))?;
                    let cycle = Cycle::new(parse_num(at.strip_prefix('@'), "read cycle")?);
                    let from_cache = match words.next() {
                        Some("cache") => true,
                        Some("air") | None => false,
                        Some(other) => {
                            return Err(ScheduleError::new(format!(
                                "unknown read source `{other}`"
                            )))
                        }
                    };
                    reads.push(ReadSpec {
                        item,
                        cycle,
                        from_cache,
                    });
                }
                other => return Err(ScheduleError::new(format!("unknown directive `{other}`"))),
            }
        }
        let spec = spec.ok_or_else(|| ScheduleError::new("missing protocol line"))?;
        let schedule = Schedule {
            items: items.ok_or_else(|| ScheduleError::new("missing items line"))?,
            versions: versions.ok_or_else(|| ScheduleError::new("missing versions line"))?,
            cycles: cycles.ok_or_else(|| ScheduleError::new("missing cycles line"))?,
            commits,
            missed,
            begin: begin.ok_or_else(|| ScheduleError::new("missing begin line"))?,
            reads,
        };
        schedule.validate()?;
        Ok((spec, schedule))
    }
}

fn parse_num<T: std::str::FromStr>(word: Option<&str>, what: &str) -> Result<T, ScheduleError> {
    word.ok_or_else(|| ScheduleError::new(format!("missing {what}")))?
        .parse()
        .map_err(|_| ScheduleError::new(format!("malformed {what}")))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Schedule {
        Schedule {
            items: 2,
            versions: 2,
            cycles: 2,
            commits: vec![vec![vec![ItemId::new(0), ItemId::new(1)]]],
            missed: Vec::new(),
            begin: Cycle::ZERO,
            reads: vec![
                ReadSpec {
                    item: ItemId::new(0),
                    cycle: Cycle::ZERO,
                    from_cache: false,
                },
                ReadSpec {
                    item: ItemId::new(1),
                    cycle: Cycle::new(1),
                    from_cache: true,
                },
            ],
        }
    }

    #[test]
    fn render_parse_round_trip() {
        let s = sample();
        let text = s.render(ProtocolSpec::BrokenInvalidation);
        assert!(text.starts_with("mc-schedule v1\nprotocol broken-invalidation\n"));
        assert!(text.contains("commit 0 0 1\n"));
        assert!(text.contains("read 1 @1 cache\n"));
        let (spec, parsed) = Schedule::parse(&text).unwrap();
        assert_eq!(spec, ProtocolSpec::BrokenInvalidation);
        assert_eq!(parsed, s);
    }

    #[test]
    fn comments_and_blank_lines_are_ignored() {
        let text = "mc-schedule v1\n# a counterexample\nprotocol inv-only\n\nitems 2\nversions 2\ncycles 1\nbegin 0\n";
        let (spec, s) = Schedule::parse(text).unwrap();
        assert_eq!(spec.name(), "inv-only");
        assert!(s.reads.is_empty());
        assert!(s.commits.is_empty());
    }

    #[test]
    fn validation_rejects_broken_invariants() {
        let mut s = sample();
        s.reads[1].cycle = Cycle::new(7);
        assert!(s.validate().is_err(), "read outside horizon");

        let mut s = sample();
        s.missed = vec![Cycle::ZERO];
        assert!(s.validate().is_err(), "begin during missed cycle");

        let mut s = sample();
        s.reads.swap(0, 1);
        assert!(s.validate().is_err(), "descending read cycles");

        let mut s = sample();
        s.commits[0][0].push(ItemId::new(9));
        assert!(s.validate().is_err(), "write outside the item universe");
    }

    #[test]
    fn parse_errors_are_reported() {
        assert!(Schedule::parse("not a schedule").is_err());
        assert!(Schedule::parse("mc-schedule v1\nprotocol nope\n").is_err());
        assert!(
            Schedule::parse("mc-schedule v1\nitems 2\nversions 2\ncycles 1\nbegin 0\n")
                .unwrap_err()
                .to_string()
                .contains("protocol")
        );
        assert!(Schedule::parse("mc-schedule v1\nprotocol sgt\nitems 2\nversions 2\ncycles 1\nbegin 0\nread 0 0 air\n").is_err(), "read cycle needs @");
    }
}
