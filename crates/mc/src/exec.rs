//! Deterministic execution of one bounded schedule against the real
//! protocol implementations.

use bpush_core::instrument::Instrumented;
use bpush_core::validator::{ConsistencyViolation, ReadRecord, SerializabilityValidator};
use bpush_core::wirefed::WireFed;
use bpush_core::{
    AbortReason, Method, ProtocolStep, ReadCandidate, ReadConstraint, ReadDirective,
    ReadOnlyProtocol, ReadOutcome, Source,
};
use bpush_obs::{Actor, EventKind, MonitorConfig, MonitorVerdict, Monitors, Obs};
use bpush_types::{BpushError, Cycle, ItemValue, QueryId};

use crate::fnv64;
use crate::ground::GroundTruth;
use crate::schedule::{ReadSpec, Schedule};
use crate::spec::ProtocolSpec;

/// How the client under test hears its broadcast control information.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FeedMode {
    /// In-memory [`ControlInfo`](bpush_broadcast::ControlInfo) structs,
    /// as the simulator's in-process clients historically consumed.
    #[default]
    Struct,
    /// Wire-format segments: every control report is encoded, framed,
    /// byte-buffered and decoded before the protocol sees it
    /// ([`bpush_core::wirefed::WireFed`]). A faithful codec makes this
    /// mode bit-identical to [`FeedMode::Struct`] — same fates, same
    /// readsets, same canonical state hashes — which the conformance
    /// battery asserts for every method.
    Wire,
}

/// The outcome of replaying one bounded execution.
#[derive(Debug, Clone)]
pub struct Execution {
    /// Whether the checked query ran to commit.
    pub committed: bool,
    /// Why the query aborted, when it did.
    pub abort: Option<AbortReason>,
    /// The committed (or partial, on abort) readset, in read order.
    pub reads: Vec<ReadRecord>,
    /// The consistency violation found in a committed readset, if any.
    /// Only populated by [`crate::run_schedule`] (the raw client runner
    /// leaves it `None`).
    pub violation: Option<ConsistencyViolation>,
    /// One canonical state hash per simulated cycle, covering the
    /// database version vector and the protocol's debug snapshot; used
    /// by the checker to count distinct explored states.
    pub state_hashes: Vec<u64>,
}

/// The client half of a bounded execution (the server half being the
/// commit script baked into [`GroundTruth`]).
#[derive(Debug, Clone)]
pub(crate) struct ClientChoices {
    pub(crate) begin: Cycle,
    pub(crate) missed: Vec<Cycle>,
    pub(crate) reads: Vec<ReadSpec>,
}

/// Runs one query through `spec`'s protocol over the scripted broadcasts,
/// feeding every interaction through the [`ProtocolStep`] replay seam so
/// the transcript is exactly what a serialized counterexample replays.
///
/// When `obs` is enabled, the protocol runs wrapped in the
/// [`Instrumented`] decorator (whose `debug_snapshot` delegates, so
/// state hashes stay bit-identical to the bare run) and the query's
/// final fate is emitted as a `QueryCommitted` / `QueryAborted` event.
/// With a disabled [`Obs`] instrumentation costs one `Option` check.
pub(crate) fn run_client_obs(
    spec: ProtocolSpec,
    choices: &ClientChoices,
    gt: &GroundTruth,
    obs: &Obs,
    feed: FeedMode,
) -> Execution {
    let base: Box<dyn ReadOnlyProtocol> = match feed {
        FeedMode::Struct => spec.build(),
        FeedMode::Wire => Box::new(WireFed::new(spec.build(), gt.wire_params)),
    };
    let mut protocol: Box<dyn ReadOnlyProtocol> = if obs.is_enabled() {
        Box::new(Instrumented::with_obs(base, obs.clone(), Actor::Client(0)))
    } else {
        base
    };
    let q = QueryId::new(0);
    let mut begun = false;
    let mut finished = false;
    let mut abort: Option<AbortReason> = None;
    let mut reads: Vec<ReadRecord> = Vec::new();
    let mut state_hashes: Vec<u64> = Vec::new();
    let mut next_read = 0usize;

    for bcast in &gt.bcasts {
        let now = bcast.cycle();
        if choices.missed.contains(&now) {
            protocol.step(&ProtocolStep::MissedCycle(now));
        } else {
            protocol.step(&ProtocolStep::Control(bcast.control().clone()));
        }
        if now == choices.begin {
            protocol.step(&ProtocolStep::BeginQuery(q, now));
            begun = true;
        }
        while begun && !finished && choices.reads.get(next_read).is_some_and(|r| r.cycle == now) {
            let r = choices.reads[next_read];
            next_read += 1;
            match protocol.read_directive(q, r.item, now) {
                ReadDirective::Doom(reason) => {
                    abort = Some(reason);
                }
                ReadDirective::Read(constraint) => {
                    match candidate_for(gt, bcast, r, constraint, spec) {
                        None => abort = Some(AbortReason::VersionUnavailable),
                        Some(candidate) => {
                            let outcome = protocol.step(&ProtocolStep::ApplyRead {
                                q,
                                item: r.item,
                                candidate,
                                now,
                            });
                            match outcome {
                                Some(ReadOutcome::Accepted) => {
                                    reads.push(ReadRecord::new(r.item, candidate.value));
                                }
                                Some(ReadOutcome::Rejected(reason)) => abort = Some(reason),
                                None => abort = Some(AbortReason::VersionUnavailable),
                            }
                        }
                    }
                }
            }
            if abort.is_some() {
                protocol.step(&ProtocolStep::FinishQuery(q));
                finished = true;
            }
        }
        state_hashes.push(fnv64(&format!(
            "{now}|{}|{}|begun={begun} abort={abort:?} reads={reads:?} next={next_read}",
            gt.version_vector(now),
            protocol.debug_snapshot(),
        )));
    }

    let committed = begun && !finished && next_read == choices.reads.len();
    if begun && !finished {
        protocol.step(&ProtocolStep::FinishQuery(q));
    }
    if begun && obs.is_enabled() {
        let last = gt.bcasts.last().map_or(Cycle::ZERO, |b| b.cycle());
        let kind = if committed {
            EventKind::QueryCommitted {
                query: q.number(),
                // The model has no slot clock; latency is whole cycles.
                latency_slots: last.number().saturating_sub(choices.begin.number()),
            }
        } else {
            EventKind::QueryAborted {
                query: q.number(),
                reason: abort.unwrap_or(AbortReason::VersionUnavailable),
            }
        };
        obs.emit(last, Actor::Client(0), kind);
    }
    Execution {
        committed,
        abort,
        reads,
        violation: None,
        state_hashes,
    }
}

/// Materializes the value the modelled client offers the protocol for
/// read `r` under `constraint`.
///
/// The candidate's validity interval is *exact ground truth* —
/// `valid_from` is the value's version and `valid_until` the version of
/// its overwriter from the server's [`WriteHistory`] — rather than the
/// conservative bounds a real cache or broadcast listing would carry.
/// Exact bounds are sound in both directions: they are a superset of any
/// conservative source (every violation reachable with real bounds is
/// reachable here), and they are truthful (a protocol that accepts an
/// exactly-bounded candidate it should reject is genuinely wrong, never a
/// modelling artifact).
///
/// [`WriteHistory`]: bpush_server::WriteHistory
fn candidate_for(
    gt: &GroundTruth,
    bcast: &bpush_broadcast::Bcast,
    r: ReadSpec,
    constraint: ReadConstraint,
    spec: ProtocolSpec,
) -> Option<ReadCandidate> {
    let history = gt.server.history();
    let from_cache = r.from_cache && spec.uses_cache();
    if constraint.cache_only && !from_cache {
        return None;
    }
    let (value, cache) = if from_cache {
        // The modelled cache is ideal: it holds whichever committed value
        // was current at the constrained state (a superset of what any
        // real autoprefetch cache could hold — see the function docs).
        let value = history
            .writes_of(r.item)
            .iter()
            .rev()
            .find(|v| v.version() <= constraint.state)
            .copied()
            .unwrap_or_else(ItemValue::initial);
        (value, true)
    } else {
        let current = bcast.current(r.item)?;
        if current.value().version() <= constraint.state {
            (current.value(), false)
        } else {
            let (_, old) = bcast.best_version_at_most(r.item, constraint.state)?;
            (old, false)
        }
    };
    let valid_until = history.next_overwrite(r.item, value).map(|v| v.version());
    let still_current = valid_until.map_or(true, |w| bcast.cycle() < w);
    let source = match (cache, still_current) {
        (true, true) => Source::CacheCurrent,
        (true, false) => Source::CacheOld,
        (false, true) => Source::BroadcastCurrent,
        (false, false) => Source::BroadcastOld,
    };
    Some(ReadCandidate {
        value,
        last_writer_tag: value.writer(),
        valid_from: value.version(),
        valid_until,
        source,
    })
}

/// Replays a complete serialized [`Schedule`]: rebuilds the ground truth,
/// runs the client, and — when the query commits — checks the readset
/// with [`SerializabilityValidator::check_serializable`], recording any
/// violation on the returned [`Execution`].
///
/// # Errors
/// Returns [`BpushError`] when the schedule fails validation or the
/// server configuration it implies is rejected.
pub fn run_schedule(spec: ProtocolSpec, schedule: &Schedule) -> Result<Execution, BpushError> {
    run_schedule_traced(spec, schedule, &Obs::off())
}

/// [`run_schedule`] with an explicit [`FeedMode`]: `FeedMode::Wire`
/// replays the same schedule with every control report roundtripped
/// through the wire codec before the protocol hears it.
///
/// # Errors
/// Returns [`BpushError`] when the schedule fails validation or the
/// server configuration it implies is rejected.
pub fn run_schedule_fed(
    spec: ProtocolSpec,
    schedule: &Schedule,
    feed: FeedMode,
) -> Result<Execution, BpushError> {
    run_schedule_impl(spec, schedule, &Obs::off(), feed)
}

/// [`run_schedule_fed`] with an observability sink attached: the replay
/// streams per-operation events into `obs` exactly as
/// [`run_schedule_traced`] does, with the protocol additionally hearing
/// its control reports through the chosen [`FeedMode`].
///
/// # Errors
/// Returns [`BpushError`] when the schedule fails validation or the
/// server configuration it implies is rejected.
pub fn run_schedule_traced_fed(
    spec: ProtocolSpec,
    schedule: &Schedule,
    obs: &Obs,
    feed: FeedMode,
) -> Result<Execution, BpushError> {
    run_schedule_impl(spec, schedule, obs, feed)
}

/// [`run_schedule`] with an observability sink attached: the replay
/// streams per-operation events (control processing, read accepts and
/// rejects, the query's fate) into `obs`, from which a chrome-trace or
/// NDJSON export of the counterexample can be rendered. The returned
/// [`Execution`] is bit-identical to the untraced replay.
///
/// # Errors
/// Returns [`BpushError`] when the schedule fails validation or the
/// server configuration it implies is rejected.
pub fn run_schedule_traced(
    spec: ProtocolSpec,
    schedule: &Schedule,
    obs: &Obs,
) -> Result<Execution, BpushError> {
    run_schedule_impl(spec, schedule, obs, FeedMode::Struct)
}

/// Single-lane online monitors matched to `spec`'s published invariant
/// family ([`Method::monitor_policy`]): the broken fixture is audited
/// against the rules of the genuine method it corrupts.
pub fn monitors_for_spec(spec: ProtocolSpec, reads: usize) -> Monitors {
    let method = match spec {
        ProtocolSpec::Genuine(m) => m,
        ProtocolSpec::BrokenInvalidation => Method::InvalidationOnly,
    };
    let (policy, coverage) = method.monitor_policy();
    let mut cfg = MonitorConfig::new(1, policy, coverage);
    cfg.reads_per_query = u32::try_from(reads).unwrap_or(u32::MAX).max(1);
    Monitors::new(cfg)
}

/// [`run_schedule`] with fresh online monitors attached: the replay
/// streams through the instrumentation decorator into a single-lane
/// monitor engine, and the verdict comes back alongside the execution.
/// A fresh engine per replay matters — mc executions restart at cycle
/// zero, which a reused engine's stream monitor would rightly flag as a
/// cycle regression.
///
/// # Errors
/// Returns [`BpushError`] when the schedule fails validation or the
/// server configuration it implies is rejected.
pub fn run_schedule_monitored(
    spec: ProtocolSpec,
    schedule: &Schedule,
) -> Result<(Execution, MonitorVerdict), BpushError> {
    let monitors = monitors_for_spec(spec, schedule.reads.len());
    let obs = Obs::off().with_monitors(monitors.clone());
    let exec = run_schedule_traced(spec, schedule, &obs)?;
    Ok((exec, monitors.verdict()))
}

fn run_schedule_impl(
    spec: ProtocolSpec,
    schedule: &Schedule,
    obs: &Obs,
    feed: FeedMode,
) -> Result<Execution, BpushError> {
    schedule
        .validate()
        .map_err(|e| BpushError::invalid_config(e.to_string()))?;
    let gt = GroundTruth::build(
        spec,
        schedule.items,
        schedule.versions,
        schedule.cycles,
        &schedule.commits,
    )?;
    let choices = ClientChoices {
        begin: schedule.begin,
        missed: schedule.missed.clone(),
        reads: schedule.reads.clone(),
    };
    let mut exec = run_client_obs(spec, &choices, &gt, obs, feed);
    if exec.committed {
        let validator = SerializabilityValidator::new(gt.server.history());
        exec.violation = validator
            .check_serializable(gt.server.conflict_graph(), &exec.reads)
            .err();
    }
    Ok(exec)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bpush_core::Method;
    use bpush_types::ItemId;

    fn boundary_schedule() -> Schedule {
        Schedule {
            items: 2,
            versions: 2,
            cycles: 2,
            commits: vec![vec![vec![ItemId::new(0), ItemId::new(1)]]],
            missed: Vec::new(),
            begin: Cycle::ZERO,
            reads: vec![
                ReadSpec {
                    item: ItemId::new(0),
                    cycle: Cycle::ZERO,
                    from_cache: false,
                },
                ReadSpec {
                    item: ItemId::new(1),
                    cycle: Cycle::new(1),
                    from_cache: false,
                },
            ],
        }
    }

    #[test]
    fn genuine_invalidation_aborts_the_boundary_schedule() {
        let exec = run_schedule(
            ProtocolSpec::Genuine(Method::InvalidationOnly),
            &boundary_schedule(),
        )
        .unwrap();
        assert!(!exec.committed);
        assert_eq!(exec.abort, Some(AbortReason::Invalidated));
        assert!(exec.violation.is_none());
    }

    #[test]
    fn broken_invalidation_commits_a_torn_readset() {
        let exec = run_schedule(ProtocolSpec::BrokenInvalidation, &boundary_schedule()).unwrap();
        assert!(
            exec.committed,
            "the seeded bug lets the torn readset commit"
        );
        let v = exec
            .violation
            .expect("torn readset must violate serializability");
        assert_eq!(
            v.fresh_writer, v.stale_overwrite,
            "one txn plays both roles"
        );
        assert_eq!(exec.reads.len(), 2);
        assert_eq!(exec.state_hashes.len(), 2);
    }

    /// Instrumentation transparency at the model-checker level: the
    /// traced replay must be bit-identical to the bare replay — same
    /// fate, same readset, same per-cycle state hashes — and the
    /// counters the trace derives must reconcile with the [`Execution`].
    #[test]
    fn traced_replay_is_bit_identical_and_reconciles() {
        for spec in ProtocolSpec::genuine() {
            let bare = run_schedule(spec, &boundary_schedule()).unwrap();
            let obs = Obs::recording(1 << 12);
            let traced = run_schedule_traced(spec, &boundary_schedule(), &obs).unwrap();

            assert_eq!(bare.committed, traced.committed, "{spec}");
            assert_eq!(bare.abort, traced.abort, "{spec}");
            assert_eq!(bare.reads, traced.reads, "{spec}");
            assert_eq!(
                bare.state_hashes, traced.state_hashes,
                "{spec}: instrumentation perturbed the canonical state hashes"
            );

            let snap = obs.snapshot().expect("recording sink");
            assert_eq!(
                snap.counter("queries.committed"),
                u64::from(traced.committed),
                "{spec}"
            );
            assert_eq!(
                snap.counter("queries.aborted"),
                u64::from(!traced.committed),
                "{spec}"
            );
            assert_eq!(
                snap.counter("reads.accepted"),
                traced.reads.len() as u64,
                "{spec}"
            );
        }
    }

    #[test]
    fn quiet_schedule_commits_cleanly_everywhere() {
        let schedule = Schedule {
            commits: Vec::new(),
            ..boundary_schedule()
        };
        for spec in ProtocolSpec::genuine() {
            let exec = run_schedule(spec, &schedule).unwrap();
            assert!(exec.committed, "{spec}: nothing changed, nothing can abort");
            assert!(exec.violation.is_none(), "{spec}");
        }
    }
}
