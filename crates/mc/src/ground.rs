//! Ground truth for a bounded execution: the scripted broadcast server.
//!
//! The checker drives a real [`BroadcastServer`] with a
//! [`ScriptedWorkload`] so that the write history, serialization graph,
//! control information, and on-air content are exactly the production
//! artifacts — the model checks the shipped code paths, not a
//! re-implementation of them.

use bpush_broadcast::wire::WireParams;
use bpush_server::{BroadcastServer, ScriptedWorkload};
use bpush_types::{BpushError, Cycle, ItemId, ServerConfig};

use crate::spec::ProtocolSpec;

/// The server-side truth of one bounded execution: every broadcast cycle
/// plus the server that produced them (for its [`WriteHistory`] and
/// conflict graph).
///
/// [`WriteHistory`]: bpush_server::WriteHistory
#[derive(Debug)]
pub(crate) struct GroundTruth {
    /// The broadcasts of cycles `0..cycles`, in order.
    pub(crate) bcasts: Vec<bpush_broadcast::Bcast>,
    /// The server after the final cycle.
    pub(crate) server: BroadcastServer,
    /// Per cycle, the database version vector (latest committed version
    /// of every item) rendered as a stable string — the server half of
    /// the checker's canonical state hash.
    pub(crate) version_vectors: Vec<String>,
    /// Wire widths sized for this bounded universe, used when the
    /// client runs wire-fed ([`crate::FeedMode::Wire`]).
    pub(crate) wire_params: WireParams,
}

impl GroundTruth {
    /// Runs the scripted commits through a real server.
    ///
    /// `commits[c]` holds the write sets of the update transactions
    /// committed during cycle `c`, in serial order; trailing cycles with
    /// no entry commit nothing.
    pub(crate) fn build(
        spec: ProtocolSpec,
        items: u32,
        versions: u32,
        cycles: u64,
        commits: &[Vec<Vec<ItemId>>],
    ) -> Result<GroundTruth, BpushError> {
        let config = ServerConfig {
            broadcast_size: items,
            update_range: items,
            server_read_range: items,
            theta: 0.5,
            offset: 0,
            txns_per_cycle: 1,
            updates_per_cycle: 1,
            versions_retained: versions,
            report_window: 1,
            ..ServerConfig::default()
        };
        let mut script = commits.to_vec();
        script.resize(usize::try_from(cycles).unwrap_or(usize::MAX), Vec::new());
        let mut server = BroadcastServer::new(config, spec.server_options(), 0)?
            .with_workload(Box::new(ScriptedWorkload::with_transactions(script)));
        let mut bcasts = Vec::new();
        let mut version_vectors = Vec::new();
        for _ in 0..cycles {
            let bcast = server.run_cycle();
            version_vectors.push(render_version_vector(&server, items));
            bcasts.push(bcast);
        }
        let span = u32::try_from(cycles).unwrap_or(u32::MAX);
        Ok(GroundTruth {
            bcasts,
            server,
            version_vectors,
            wire_params: WireParams::derive(items.max(1), 1, 1, span),
        })
    }

    /// The database version vector in force during `cycle`.
    pub(crate) fn version_vector(&self, cycle: Cycle) -> &str {
        let i = usize::try_from(cycle.number()).unwrap_or(usize::MAX);
        self.version_vectors.get(i).map_or("", String::as_str)
    }
}

/// Renders the latest committed version of every item, e.g.
/// `[0:T0.0@1, 1:init, 2:T1.0@2]`.
fn render_version_vector(server: &BroadcastServer, items: u32) -> String {
    use std::fmt::Write as _;
    let mut out = String::from("[");
    for i in 0..items {
        let item = ItemId::new(i);
        if i > 0 {
            out.push_str(", ");
        }
        match server
            .history()
            .writes_of(item)
            .last()
            .and_then(|v| v.writer().map(|w| (w, v.version())))
        {
            Some((writer, version)) => {
                let _ = write!(out, "{i}:{writer}@{}", version.number());
            }
            None => {
                let _ = write!(out, "{i}:init");
            }
        }
    }
    out.push(']');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use bpush_core::Method;

    #[test]
    fn scripted_commits_reach_history_and_air() {
        let commits = vec![vec![vec![ItemId::new(0), ItemId::new(1)]]];
        let gt = GroundTruth::build(
            ProtocolSpec::Genuine(Method::InvalidationOnly),
            2,
            2,
            2,
            &commits,
        )
        .unwrap();
        assert_eq!(gt.bcasts.len(), 2);
        assert_eq!(gt.bcasts[1].cycle(), Cycle::new(1));
        // The cycle-0 transaction wrote both items; their committed
        // versions appear in the history and the cycle-1 vector.
        assert_eq!(gt.server.history().writes_of(ItemId::new(0)).len(), 1);
        assert!(gt.version_vector(Cycle::ZERO).contains("0:T"));
        assert_eq!(
            gt.version_vector(Cycle::ZERO),
            gt.version_vector(Cycle::new(1))
        );
        assert_eq!(gt.version_vector(Cycle::new(9)), "");
    }

    #[test]
    fn empty_script_keeps_items_initial() {
        let gt = GroundTruth::build(ProtocolSpec::BrokenInvalidation, 2, 2, 1, &[]).unwrap();
        assert_eq!(gt.version_vector(Cycle::ZERO), "[0:init, 1:init]");
    }
}
