//! The protocols the checker can drive.

use std::fmt;

use bpush_core::{Method, ReadOnlyProtocol};
use bpush_server::ServerOptions;
use bpush_types::config::MultiversionLayout;

use crate::broken::BrokenInvalidation;

/// A protocol under test: a genuine shipped method, or the deliberately
/// broken fixture used to prove the checker can find bugs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProtocolSpec {
    /// A genuine shipped method.
    Genuine(Method),
    /// The §3.1 invalidation-only method with its staleness comparison
    /// off by one cycle (see [`BrokenInvalidation`]): it misses
    /// invalidations of items updated exactly at the query's verified
    /// state and therefore commits torn readsets.
    BrokenInvalidation,
}

impl ProtocolSpec {
    /// Every genuine method: [`Method::ALL`] plus the
    /// disconnection-enhanced SGT variant, which is excluded from `ALL`
    /// but ships all the same.
    pub fn genuine() -> Vec<ProtocolSpec> {
        Method::ALL
            .iter()
            .copied()
            .chain([Method::SgtVersionedItems])
            .map(ProtocolSpec::Genuine)
            .collect()
    }

    /// The spec's stable name, usable with [`ProtocolSpec::parse`].
    pub fn name(self) -> &'static str {
        match self {
            ProtocolSpec::Genuine(m) => m.name(),
            ProtocolSpec::BrokenInvalidation => "broken-invalidation",
        }
    }

    /// Resolves a stable name back to the spec.
    pub fn parse(name: &str) -> Option<ProtocolSpec> {
        if name == "broken-invalidation" {
            return Some(ProtocolSpec::BrokenInvalidation);
        }
        Method::ALL
            .iter()
            .copied()
            .chain([Method::SgtVersionedItems])
            .find(|m| m.name() == name)
            .map(ProtocolSpec::Genuine)
    }

    /// A fresh client-side protocol instance.
    pub fn build(self) -> Box<dyn ReadOnlyProtocol> {
        match self {
            ProtocolSpec::Genuine(m) => m.build_protocol(),
            ProtocolSpec::BrokenInvalidation => Box::new(BrokenInvalidation::new()),
        }
    }

    /// The server-side support the protocol needs.
    pub fn server_options(self) -> ServerOptions {
        match self {
            ProtocolSpec::Genuine(m) => m.server_options(MultiversionLayout::Overflow),
            ProtocolSpec::BrokenInvalidation => ServerOptions::plain(),
        }
    }

    /// Whether the method reads through a client cache (and the checker
    /// must therefore enumerate cache-hit/miss choices).
    pub fn uses_cache(self) -> bool {
        match self {
            ProtocolSpec::Genuine(m) => m.uses_cache(),
            ProtocolSpec::BrokenInvalidation => false,
        }
    }
}

impl fmt::Display for ProtocolSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn genuine_covers_all_eight_methods() {
        let specs = ProtocolSpec::genuine();
        assert_eq!(specs.len(), 8, "Method::ALL plus SgtVersionedItems");
        assert!(specs.contains(&ProtocolSpec::Genuine(Method::SgtVersionedItems)));
        assert!(!specs.contains(&ProtocolSpec::BrokenInvalidation));
    }

    #[test]
    fn names_round_trip() {
        for spec in ProtocolSpec::genuine()
            .into_iter()
            .chain([ProtocolSpec::BrokenInvalidation])
        {
            assert_eq!(ProtocolSpec::parse(spec.name()), Some(spec), "{spec}");
        }
        assert_eq!(ProtocolSpec::parse("no-such-protocol"), None);
    }

    #[test]
    fn broken_fixture_builds_and_is_cacheless() {
        let spec = ProtocolSpec::BrokenInvalidation;
        assert!(!spec.uses_cache());
        assert_eq!(spec.build().name(), "broken-invalidation");
        assert!(!spec.server_options().sgt_info);
    }
}
