//! Bounds of the exhaustively explored execution space.

use bpush_types::ItemId;

/// The small-scope bounds the checker enumerates exhaustively.
///
/// Every bounded execution varies, within these bounds:
///
/// * the update transactions committed per cycle (which write sets, in
///   which serial order),
/// * the cycles the client misses entirely (doze intervals),
/// * the cycle at which the query begins,
/// * the item and cycle of every read, and
/// * whether each read is offered a cache hit or an on-air version.
///
/// Two deliberate economies keep the space small without losing
/// violations:
///
/// * commits are enumerated only for the first `cycles − 1` cycles — a
///   transaction committed during the final cycle becomes visible after
///   the horizon, so no read can observe it and no readset edge can
///   involve it;
/// * missed cycles are enumerated only *after* the query begins — with a
///   single checked query, a miss before `begin` influences nothing the
///   query can observe (controls heard while no query is active only
///   advance per-protocol bookkeeping that `begin_query` resets).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Scope {
    /// Number of database items (ids `0..items`); also the broadcast size.
    pub items: u32,
    /// Broadcast horizon: cycles `0..cycles` are simulated.
    pub cycles: u64,
    /// Maximum update transactions committed per cycle.
    pub max_txns_per_cycle: usize,
    /// Maximum writes per update transaction.
    pub max_writes_per_txn: usize,
    /// Reads performed by the checked query.
    pub reads_per_query: usize,
    /// Maximum broadcast cycles the client may miss (doze intervals).
    pub max_missed_cycles: usize,
    /// Old versions the server retains in multiversion mode.
    pub versions_retained: u32,
}

impl Scope {
    /// The sub-second scope CI runs on every push: two items, two cycles,
    /// one transaction per cycle. Small, but still large enough for the
    /// seeded [`crate::BrokenInvalidation`] fixture to be caught.
    pub fn ci() -> Self {
        Scope {
            items: 2,
            cycles: 2,
            max_txns_per_cycle: 1,
            max_writes_per_txn: 2,
            reads_per_query: 2,
            max_missed_cycles: 0,
            versions_retained: 2,
        }
    }

    /// Parses a scope preset name (`"ci"` or `"default"`).
    pub fn parse(name: &str) -> Option<Scope> {
        match name {
            "ci" => Some(Scope::ci()),
            "default" => Some(Scope::default()),
            _ => None,
        }
    }

    /// The preset's name, if this scope equals one.
    pub fn preset_name(&self) -> Option<&'static str> {
        if *self == Scope::ci() {
            Some("ci")
        } else if *self == Scope::default() {
            Some("default")
        } else {
            None
        }
    }

    /// All candidate transaction write sets: the non-empty subsets of the
    /// item universe with at most `max_writes_per_txn` items, ordered by
    /// size then contents.
    pub(crate) fn write_sets(&self) -> Vec<Vec<ItemId>> {
        let n = self.items.min(16);
        let mut sets: Vec<Vec<ItemId>> = Vec::new();
        for mask in 1u32..(1u32 << n) {
            if mask.count_ones() as usize > self.max_writes_per_txn {
                continue;
            }
            let set: Vec<ItemId> = (0..n)
                .filter(|i| mask & (1 << i) != 0)
                .map(ItemId::new)
                .collect();
            sets.push(set);
        }
        sets.sort_by(|a, b| (a.len(), a.as_slice()).cmp(&(b.len(), b.as_slice())));
        sets
    }
}

impl Default for Scope {
    /// The default exhaustive scope of `cargo xtask mc`: three items over
    /// three cycles, up to two update transactions per cycle, queries of
    /// two reads, and up to one doze interval.
    fn default() -> Self {
        Scope {
            items: 3,
            cycles: 3,
            max_txns_per_cycle: 2,
            max_writes_per_txn: 2,
            reads_per_query: 2,
            max_missed_cycles: 1,
            versions_retained: 2,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_parse_and_name() {
        assert_eq!(Scope::parse("ci"), Some(Scope::ci()));
        assert_eq!(Scope::parse("default"), Some(Scope::default()));
        assert_eq!(Scope::parse("huge"), None);
        assert_eq!(Scope::ci().preset_name(), Some("ci"));
        assert_eq!(Scope::default().preset_name(), Some("default"));
        let odd = Scope {
            items: 9,
            ..Scope::ci()
        };
        assert_eq!(odd.preset_name(), None);
    }

    #[test]
    fn write_sets_are_bounded_subsets() {
        let sets = Scope::default().write_sets();
        // 3 singletons + 3 pairs out of 3 items
        assert_eq!(sets.len(), 6);
        assert!(sets.iter().all(|s| !s.is_empty() && s.len() <= 2));
        assert_eq!(sets[0], vec![ItemId::new(0)]);
        assert_eq!(sets[5], vec![ItemId::new(1), ItemId::new(2)]);

        let ci = Scope::ci().write_sets();
        assert_eq!(ci.len(), 3, "{{0}}, {{1}}, {{0,1}}");
    }
}
