//! Human- and machine-readable rendering of checker results.

use std::fmt::Write as _;

use crate::checker::McReport;
use crate::scope::Scope;

/// Renders a run's reports as an aligned text table with a per-protocol
/// verdict, the format `cargo xtask mc` prints by default.
pub fn render_text(scope: &Scope, reports: &[McReport]) -> String {
    let mut out = String::new();
    let scope_name = scope.preset_name().unwrap_or("custom");
    let _ = writeln!(
        out,
        "model check: scope {scope_name} ({} items, {} cycles, {} reads/query)",
        scope.items, scope.cycles, scope.reads_per_query
    );
    let _ = writeln!(
        out,
        "{:<20} {:>10} {:>10} {:>10} {:>10}  verdict",
        "protocol", "executions", "committed", "aborted", "states"
    );
    for r in reports {
        let verdict = if r.passed() { "pass" } else { "VIOLATION" };
        let _ = writeln!(
            out,
            "{:<20} {:>10} {:>10} {:>10} {:>10}  {verdict}",
            r.spec.name(),
            r.executions,
            r.committed,
            r.aborted,
            r.distinct_states
        );
        if let Some(v) = &r.violation {
            let _ = writeln!(out, "  witness: {}", v.witness);
            for line in v.schedule.render(r.spec).lines() {
                let _ = writeln!(out, "  | {line}");
            }
        }
    }
    out
}

/// Renders a run's reports as a single JSON object for CI annotation.
///
/// Schema (stable; checked by `tests/json_schema.rs` in `crates/xtask`):
///
/// ```json
/// {
///   "scope": "ci",
///   "passed": true,
///   "reports": [
///     {
///       "protocol": "inv-only",
///       "executions": 32,
///       "committed": 20,
///       "aborted": 12,
///       "distinct_states": 40,
///       "deduped_validations": 3,
///       "violation": null
///     }
///   ]
/// }
/// ```
///
/// A non-null `violation` is an object with string fields
/// `fresh_writer`, `stale_overwrite`, and `schedule` (the serialized
/// `mc-schedule v1` text).
pub fn render_json(scope: &Scope, reports: &[McReport]) -> String {
    let mut out = String::from("{");
    let _ = write!(
        out,
        "\"scope\":{},\"passed\":{},\"reports\":[",
        json_string(scope.preset_name().unwrap_or("custom")),
        reports.iter().all(McReport::passed)
    );
    for (i, r) in reports.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"protocol\":{},\"executions\":{},\"committed\":{},\"aborted\":{},\"distinct_states\":{},\"deduped_validations\":{},\"violation\":",
            json_string(r.spec.name()),
            r.executions,
            r.committed,
            r.aborted,
            r.distinct_states,
            r.deduped_validations
        );
        match &r.violation {
            None => out.push_str("null"),
            Some(v) => {
                let _ = write!(
                    out,
                    "{{\"fresh_writer\":{},\"stale_overwrite\":{},\"schedule\":{}}}",
                    json_string(&v.witness.fresh_writer.to_string()),
                    json_string(&v.witness.stale_overwrite.to_string()),
                    json_string(&v.schedule.render(r.spec))
                );
            }
        }
        out.push('}');
    }
    out.push_str("]}");
    out
}

/// Escapes `s` as a JSON string literal (quotes included).
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if u32::from(c) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", u32::from(c));
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::checker::check_spec;
    use crate::spec::ProtocolSpec;

    #[test]
    fn text_report_names_the_verdict() {
        let scope = Scope::ci();
        let reports = vec![
            check_spec(
                ProtocolSpec::Genuine(bpush_core::Method::InvalidationOnly),
                &scope,
            )
            .unwrap(),
            check_spec(ProtocolSpec::BrokenInvalidation, &scope).unwrap(),
        ];
        let text = render_text(&scope, &reports);
        assert!(text.contains("inv-only"));
        assert!(text.contains("pass"));
        assert!(text.contains("VIOLATION"));
        assert!(
            text.contains("| mc-schedule v1"),
            "counterexample is inlined:\n{text}"
        );
    }

    #[test]
    fn json_report_is_well_formed() {
        let scope = Scope::ci();
        let reports = vec![check_spec(ProtocolSpec::BrokenInvalidation, &scope).unwrap()];
        let json = render_json(&scope, &reports);
        assert!(json.starts_with("{\"scope\":\"ci\",\"passed\":false,"));
        assert!(json.contains("\"protocol\":\"broken-invalidation\""));
        assert!(json.contains("\"schedule\":\"mc-schedule v1\\n"));
        assert!(json.ends_with("]}"));
    }

    #[test]
    fn json_strings_escape_control_characters() {
        assert_eq!(json_string("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
        assert_eq!(json_string("\u{1}"), "\"\\u0001\"");
    }
}
