//! Exhaustive enumeration of the bounded execution space.

use std::collections::BTreeSet;

use bpush_core::validator::{ConsistencyViolation, SerializabilityValidator};
use bpush_types::{BpushError, Cycle, ItemId};

use crate::exec::{monitors_for_spec, run_client_obs, run_schedule, ClientChoices, FeedMode};
use crate::fnv64;
use crate::ground::GroundTruth;
use crate::minimize::minimize;
use crate::schedule::{ReadSpec, Schedule};
use crate::scope::Scope;
use crate::spec::ProtocolSpec;

/// A minimized, replayable counterexample.
#[derive(Debug, Clone)]
pub struct McViolation {
    /// The minimized schedule; serialize with [`Schedule::render`].
    pub schedule: Schedule,
    /// The witness pair from re-running the minimized schedule.
    pub witness: ConsistencyViolation,
}

/// What exhaustive checking of one protocol found.
#[derive(Debug, Clone)]
pub struct McReport {
    /// The protocol checked.
    pub spec: ProtocolSpec,
    /// Bounded executions run.
    pub executions: u64,
    /// Executions in which the query committed.
    pub committed: u64,
    /// Executions in which the query aborted.
    pub aborted: u64,
    /// Distinct canonical states (database version vector × protocol
    /// snapshot × query progress) encountered across all executions.
    pub distinct_states: u64,
    /// Committed readsets skipped because an identical (commit script,
    /// readset) pair had already been validated.
    pub deduped_validations: u64,
    /// The first violation found, minimized — `None` means the protocol
    /// passed the scope exhaustively.
    pub violation: Option<McViolation>,
}

impl McReport {
    /// Whether the protocol survived the scope without a violation.
    pub fn passed(&self) -> bool {
        self.violation.is_none()
    }
}

/// Exhaustively checks one protocol at the given scope: every commit
/// script × every client choice, validating each committed readset with
/// [`SerializabilityValidator::check_serializable`]. Stops at (and
/// minimizes) the first violation.
///
/// # Errors
/// Returns [`BpushError`] if the scope implies an invalid server
/// configuration.
pub fn check_spec(spec: ProtocolSpec, scope: &Scope) -> Result<McReport, BpushError> {
    check_spec_traced(spec, scope, &bpush_obs::Obs::off())
}

/// [`check_spec`] with an explicit [`FeedMode`]: `FeedMode::Wire` runs
/// every bounded execution with the protocol hearing wire-decoded
/// control reports instead of in-memory structs. With a faithful codec
/// the returned report — executions, committed/aborted split, distinct
/// canonical states — is bit-identical to the struct-fed check.
///
/// # Errors
/// Returns [`BpushError`] if the scope implies an invalid server
/// configuration.
pub fn check_spec_fed(
    spec: ProtocolSpec,
    scope: &Scope,
    feed: FeedMode,
) -> Result<McReport, BpushError> {
    check_spec_impl(spec, scope, &bpush_obs::Obs::off(), feed)
}

/// [`check_spec`] with an observability sink attached: every bounded
/// execution streams its per-operation events into `obs` (the protocol
/// runs wrapped in the instrumentation decorator, whose snapshots
/// delegate, so the report — executions, committed/aborted split,
/// distinct states — is bit-identical to the untraced check).
///
/// # Errors
/// Returns [`BpushError`] if the scope implies an invalid server
/// configuration.
pub fn check_spec_traced(
    spec: ProtocolSpec,
    scope: &Scope,
    obs: &bpush_obs::Obs,
) -> Result<McReport, BpushError> {
    check_spec_impl(spec, scope, obs, FeedMode::Struct)
}

fn check_spec_impl(
    spec: ProtocolSpec,
    scope: &Scope,
    obs: &bpush_obs::Obs,
    feed: FeedMode,
) -> Result<McReport, BpushError> {
    let scripts = commit_scripts(scope);
    let choices = client_choices(scope, spec.uses_cache());
    let mut report = McReport {
        spec,
        executions: 0,
        committed: 0,
        aborted: 0,
        distinct_states: 0,
        deduped_validations: 0,
        violation: None,
    };
    let mut states: BTreeSet<u64> = BTreeSet::new();
    let mut validated: BTreeSet<u64> = BTreeSet::new();
    'scripts: for script in &scripts {
        let gt = GroundTruth::build(
            spec,
            scope.items,
            scope.versions_retained,
            scope.cycles,
            script,
        )?;
        let validator = SerializabilityValidator::new(gt.server.history());
        for choice in &choices {
            let exec = run_client_obs(spec, choice, &gt, obs, feed);
            report.executions += 1;
            states.extend(exec.state_hashes.iter().copied());
            if !exec.committed {
                report.aborted += 1;
                continue;
            }
            report.committed += 1;
            let key = fnv64(&format!("{script:?}|{:?}", exec.reads));
            if !validated.insert(key) {
                report.deduped_validations += 1;
                continue;
            }
            if let Err(found) =
                validator.check_serializable(gt.server.conflict_graph(), &exec.reads)
            {
                let schedule = Schedule {
                    items: scope.items,
                    versions: scope.versions_retained,
                    cycles: scope.cycles,
                    commits: script.clone(),
                    missed: choice.missed.clone(),
                    begin: choice.begin,
                    reads: choice.reads.clone(),
                };
                let minimized = minimize(spec, &schedule)?;
                let witness = run_schedule(spec, &minimized)?.violation.unwrap_or(found);
                report.violation = Some(McViolation {
                    schedule: minimized,
                    witness,
                });
                break 'scripts;
            }
        }
    }
    report.distinct_states = states.len() as u64;
    Ok(report)
}

/// The outcome of a per-execution differential audit of the online
/// monitors against the checker's exhaustive ground truth.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MonitorAudit {
    /// Bounded executions audited.
    pub executions: u64,
    /// Executions in which the query committed.
    pub committed: u64,
    /// Executions the monitors flagged (any violation retained or
    /// dropped).
    pub flagged: u64,
    /// Committed executions whose readset failed serializability — the
    /// checker's ground-truth notion of an invalid execution.
    pub invalid: u64,
    /// Ground-truth-invalid executions the monitors stayed silent on:
    /// missed detections. Zero is the oracle claim.
    pub invalid_unflagged: u64,
    /// Executions whose monitored replay diverged from the bare replay
    /// in fate, readset, or canonical per-cycle state hashes — the
    /// monitors must be observers, never participants. Zero always.
    pub perturbed: u64,
}

/// Runs every bounded execution of `spec` at `scope` twice — bare, then
/// with a fresh single-lane monitor engine attached — and scores the
/// monitors against the checker's ground truth: valid executions must
/// pass, ground-truth violations must be flagged, and attaching the
/// monitors must not perturb the replay (bit-identical fates, readsets
/// and canonical state hashes). Unlike [`check_spec`], the sweep never
/// stops early, so the tallies cover the whole space.
///
/// # Errors
/// Returns [`BpushError`] if the scope implies an invalid server
/// configuration.
pub fn audit_monitors(spec: ProtocolSpec, scope: &Scope) -> Result<MonitorAudit, BpushError> {
    let scripts = commit_scripts(scope);
    let choices = client_choices(scope, spec.uses_cache());
    let mut audit = MonitorAudit::default();
    for script in &scripts {
        let gt = GroundTruth::build(
            spec,
            scope.items,
            scope.versions_retained,
            scope.cycles,
            script,
        )?;
        let validator = SerializabilityValidator::new(gt.server.history());
        for choice in &choices {
            let bare = run_client_obs(spec, choice, &gt, &bpush_obs::Obs::off(), FeedMode::Struct);
            let monitors = monitors_for_spec(spec, scope.reads_per_query);
            let obs = bpush_obs::Obs::off().with_monitors(monitors.clone());
            let watched = run_client_obs(spec, choice, &gt, &obs, FeedMode::Struct);
            audit.executions += 1;
            if watched.committed != bare.committed
                || watched.abort != bare.abort
                || watched.reads != bare.reads
                || watched.state_hashes != bare.state_hashes
            {
                audit.perturbed += 1;
            }
            let flagged = !monitors.verdict().pass();
            if flagged {
                audit.flagged += 1;
            }
            if watched.committed {
                audit.committed += 1;
                if validator
                    .check_serializable(gt.server.conflict_graph(), &watched.reads)
                    .is_err()
                {
                    audit.invalid += 1;
                    if !flagged {
                        audit.invalid_unflagged += 1;
                    }
                }
            }
        }
    }
    Ok(audit)
}

/// Checks every genuine protocol at the given scope.
///
/// # Errors
/// Returns [`BpushError`] if the scope implies an invalid server
/// configuration.
pub fn check_all(scope: &Scope) -> Result<Vec<McReport>, BpushError> {
    ProtocolSpec::genuine()
        .into_iter()
        .map(|spec| check_spec(spec, scope))
        .collect()
}

/// Every commit script: for each of the first `cycles − 1` cycles, an
/// ordered sequence of up to `max_txns_per_cycle` transactions drawn
/// (with repetition) from the scope's write sets.
fn commit_scripts(scope: &Scope) -> Vec<Vec<Vec<Vec<ItemId>>>> {
    let write_sets = scope.write_sets();
    let per_cycle = txn_sequences(&write_sets, scope.max_txns_per_cycle);
    let commit_cycles = usize::try_from(scope.cycles.saturating_sub(1)).unwrap_or(usize::MAX);
    let mut scripts: Vec<Vec<Vec<Vec<ItemId>>>> = vec![Vec::new()];
    for _ in 0..commit_cycles {
        let mut next = Vec::with_capacity(scripts.len() * per_cycle.len());
        for script in &scripts {
            for seq in &per_cycle {
                let mut s = script.clone();
                s.push(seq.clone());
                next.push(s);
            }
        }
        scripts = next;
    }
    scripts
}

/// Ordered sequences of length `0..=max_len` over `write_sets`, with
/// repetition, shortest first.
fn txn_sequences(write_sets: &[Vec<ItemId>], max_len: usize) -> Vec<Vec<Vec<ItemId>>> {
    let mut out: Vec<Vec<Vec<ItemId>>> = vec![Vec::new()];
    let mut frontier: Vec<Vec<Vec<ItemId>>> = vec![Vec::new()];
    for _ in 0..max_len {
        let mut next = Vec::with_capacity(frontier.len() * write_sets.len());
        for seq in &frontier {
            for ws in write_sets {
                let mut s = seq.clone();
                s.push(ws.clone());
                next.push(s);
            }
        }
        out.extend(next.iter().cloned());
        frontier = next;
    }
    out
}

/// Every client choice within the scope: begin cycle × missed-cycle
/// subsets (after begin) × non-decreasing read placements over heard
/// cycles × ordered tuples of distinct items × cache-hit choices.
fn client_choices(scope: &Scope, uses_cache: bool) -> Vec<ClientChoices> {
    let mut out = Vec::new();
    let flags = cache_flag_vectors(scope.reads_per_query, uses_cache);
    for begin in 0..scope.cycles {
        for missed in missed_subsets(scope, begin) {
            let heard: Vec<Cycle> = (begin..scope.cycles)
                .map(Cycle::new)
                .filter(|c| !missed.contains(c))
                .collect();
            for placement in nondecreasing_sequences(&heard, scope.reads_per_query) {
                for items in distinct_item_tuples(scope.items, scope.reads_per_query) {
                    for flag in &flags {
                        let reads: Vec<ReadSpec> = items
                            .iter()
                            .zip(&placement)
                            .zip(flag)
                            .map(|((&item, &cycle), &from_cache)| ReadSpec {
                                item,
                                cycle,
                                from_cache,
                            })
                            .collect();
                        out.push(ClientChoices {
                            begin: Cycle::new(begin),
                            missed: missed.clone(),
                            reads,
                        });
                    }
                }
            }
        }
    }
    out
}

/// Ascending subsets of the cycles strictly after `begin`, of size at
/// most `max_missed_cycles`.
fn missed_subsets(scope: &Scope, begin: u64) -> Vec<Vec<Cycle>> {
    let candidates: Vec<Cycle> = (begin + 1..scope.cycles).map(Cycle::new).collect();
    let n = candidates.len().min(16);
    let mut out = Vec::new();
    for mask in 0u32..(1u32 << n) {
        if mask.count_ones() as usize > scope.max_missed_cycles {
            continue;
        }
        out.push(
            (0..n)
                .filter(|i| mask & (1 << i) != 0)
                .map(|i| candidates[i])
                .collect(),
        );
    }
    out.sort();
    out
}

/// Non-decreasing sequences of length `len` over the (sorted) `heard`
/// cycles.
fn nondecreasing_sequences(heard: &[Cycle], len: usize) -> Vec<Vec<Cycle>> {
    let mut out = Vec::new();
    let mut current = Vec::with_capacity(len);
    fn recurse(
        heard: &[Cycle],
        len: usize,
        start: usize,
        current: &mut Vec<Cycle>,
        out: &mut Vec<Vec<Cycle>>,
    ) {
        if current.len() == len {
            out.push(current.clone());
            return;
        }
        for i in start..heard.len() {
            current.push(heard[i]);
            recurse(heard, len, i, current, out);
            current.pop();
        }
    }
    recurse(heard, len, 0, &mut current, &mut out);
    out
}

/// Ordered tuples of `len` distinct items from `0..items`.
fn distinct_item_tuples(items: u32, len: usize) -> Vec<Vec<ItemId>> {
    let mut out = Vec::new();
    let mut current = Vec::with_capacity(len);
    let mut used = vec![false; items as usize];
    fn recurse(
        items: u32,
        len: usize,
        used: &mut Vec<bool>,
        current: &mut Vec<ItemId>,
        out: &mut Vec<Vec<ItemId>>,
    ) {
        if current.len() == len {
            out.push(current.clone());
            return;
        }
        for i in 0..items {
            if used[i as usize] {
                continue;
            }
            used[i as usize] = true;
            current.push(ItemId::new(i));
            recurse(items, len, used, current, out);
            current.pop();
            used[i as usize] = false;
        }
    }
    recurse(items, len, &mut used, &mut current, &mut out);
    out
}

/// All boolean vectors of length `len` when the method caches (air-only
/// otherwise).
fn cache_flag_vectors(len: usize, uses_cache: bool) -> Vec<Vec<bool>> {
    if !uses_cache {
        return vec![vec![false; len]];
    }
    let n = len.min(16);
    (0u32..(1u32 << n))
        .map(|mask| (0..n).map(|i| mask & (1 << i) != 0).collect())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn enumeration_sizes_match_the_ci_scope() {
        let scope = Scope::ci();
        assert_eq!(commit_scripts(&scope).len(), 4, "∅, {{0}}, {{1}}, {{0,1}}");
        assert_eq!(client_choices(&scope, false).len(), 8);
        assert_eq!(client_choices(&scope, true).len(), 32);
    }

    #[test]
    fn broken_fixture_is_caught_and_minimized_at_ci_scope() {
        let report = check_spec(ProtocolSpec::BrokenInvalidation, &Scope::ci()).unwrap();
        let v = report.violation.expect("the seeded bug must be found");
        assert_eq!(v.schedule.commits.len(), 1, "one commit cycle");
        assert_eq!(v.schedule.commits[0].len(), 1, "one transaction");
        assert_eq!(v.schedule.reads.len(), 2, "two reads");
        assert_eq!(v.witness.fresh_writer, v.witness.stale_overwrite);
    }

    /// The acceptance criterion for `mc --scope ci` under tracing: the
    /// report's statistics — executions, committed/aborted split,
    /// distinct canonical states, dedup count — must be bit-identical
    /// with instrumentation enabled, and the event-derived counters
    /// must reconcile with the report exactly.
    #[test]
    fn ci_scope_stats_are_bit_identical_under_tracing() {
        for spec in [
            ProtocolSpec::Genuine(bpush_core::Method::InvalidationOnly),
            ProtocolSpec::Genuine(bpush_core::Method::Sgt),
        ] {
            let bare = check_spec(spec, &Scope::ci()).unwrap();
            let obs = bpush_obs::Obs::recording(1 << 12);
            let traced = check_spec_traced(spec, &Scope::ci(), &obs).unwrap();

            assert_eq!(bare.executions, traced.executions, "{spec}");
            assert_eq!(bare.committed, traced.committed, "{spec}");
            assert_eq!(bare.aborted, traced.aborted, "{spec}");
            assert_eq!(bare.distinct_states, traced.distinct_states, "{spec}");
            assert_eq!(
                bare.deduped_validations, traced.deduped_validations,
                "{spec}"
            );
            assert_eq!(bare.passed(), traced.passed(), "{spec}");

            let snap = obs.snapshot().expect("recording sink");
            assert_eq!(
                snap.counter("queries.committed"),
                traced.committed,
                "{spec}"
            );
            assert_eq!(snap.counter("queries.aborted"), traced.aborted, "{spec}");
        }
    }

    /// The ground-truth oracle for the online monitors: every
    /// mc-enumerated execution of every genuine protocol passes its
    /// monitors (no false positives across the exhaustive ci space),
    /// and attaching the monitors never perturbs a replay — same
    /// fates, same readsets, same canonical state hashes.
    #[test]
    fn monitors_pass_every_genuine_execution_at_ci_scope() {
        for spec in ProtocolSpec::genuine() {
            let audit = audit_monitors(spec, &Scope::ci()).unwrap();
            assert!(audit.executions >= 8, "{spec}");
            assert_eq!(
                audit.flagged, 0,
                "{spec}: monitors flagged a valid execution"
            );
            assert_eq!(audit.invalid, 0, "{spec}: a genuine method violated");
            assert_eq!(
                audit.perturbed, 0,
                "{spec}: monitors perturbed the replay (state hashes diverged)"
            );
        }
    }

    /// The detection half of the oracle: every ground-truth-invalid
    /// execution of the broken fixture is flagged by the monitors, and
    /// the monitors catch strictly more than the end-state validator
    /// (they also flag runs that accept a doomed read but happen to
    /// dodge a torn commit).
    #[test]
    fn monitors_flag_every_broken_violation_at_ci_scope() {
        let audit = audit_monitors(ProtocolSpec::BrokenInvalidation, &Scope::ci()).unwrap();
        assert!(audit.invalid > 0, "the seeded bug must produce violations");
        assert_eq!(
            audit.invalid_unflagged, 0,
            "a ground-truth violation escaped the monitors"
        );
        assert!(audit.flagged >= audit.invalid);
        assert_eq!(audit.perturbed, 0);
    }

    /// Monitored single-schedule replay agrees with the audit on the
    /// pinned boundary counterexample.
    #[test]
    fn monitored_replay_flags_the_minimized_counterexample() {
        let report = check_spec(ProtocolSpec::BrokenInvalidation, &Scope::ci()).unwrap();
        let minimized = report.violation.expect("seeded bug is found").schedule;
        let (exec, verdict) =
            crate::exec::run_schedule_monitored(ProtocolSpec::BrokenInvalidation, &minimized)
                .unwrap();
        assert!(exec.committed, "the counterexample commits");
        assert!(exec.violation.is_some(), "…a torn readset");
        assert!(!verdict.pass(), "…which the monitors flag online");
        let (exec, verdict) = crate::exec::run_schedule_monitored(
            ProtocolSpec::Genuine(bpush_core::Method::InvalidationOnly),
            &minimized,
        )
        .unwrap();
        assert!(
            !exec.committed,
            "the genuine method aborts the same schedule"
        );
        assert!(verdict.pass(), "…and its monitors stay silent");
    }

    #[test]
    fn genuine_invalidation_passes_ci_scope() {
        let report = check_spec(
            ProtocolSpec::Genuine(bpush_core::Method::InvalidationOnly),
            &Scope::ci(),
        )
        .unwrap();
        assert!(report.passed(), "{:?}", report.violation);
        assert!(report.executions >= 32);
        assert!(report.committed + report.aborted == report.executions);
        assert!(report.distinct_states > 0);
    }
}
