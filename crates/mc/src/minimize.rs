//! Greedy delta-debugging of violating schedules.

use bpush_types::BpushError;

use crate::exec::run_schedule;
use crate::schedule::Schedule;
use crate::spec::ProtocolSpec;

/// Shrinks a violating schedule to a locally minimal one: repeatedly
/// drops whole update transactions, individual writes, reads, and missed
/// cycles — keeping each deletion only if the shrunk schedule still
/// violates — until a fixpoint. Deterministic: candidates are tried in a
/// fixed order, so the same input always minimizes to the same
/// counterexample.
///
/// If `schedule` does not violate to begin with, it is returned
/// unchanged.
///
/// # Errors
/// Returns [`BpushError`] only if a shrink candidate unexpectedly fails
/// to execute (all candidates preserve the schedule invariants by
/// construction).
pub fn minimize(spec: ProtocolSpec, schedule: &Schedule) -> Result<Schedule, BpushError> {
    let mut best = schedule.clone();
    if !violates(spec, &best)? {
        return Ok(best);
    }
    loop {
        let mut shrunk = false;
        for candidate in shrink_candidates(&best) {
            if candidate.validate().is_err() {
                continue;
            }
            if violates(spec, &candidate)? {
                best = candidate;
                shrunk = true;
                break;
            }
        }
        if !shrunk {
            return Ok(best);
        }
    }
}

fn violates(spec: ProtocolSpec, schedule: &Schedule) -> Result<bool, BpushError> {
    Ok(run_schedule(spec, schedule)?.violation.is_some())
}

/// Every one-step shrink of `schedule`, most aggressive first (whole
/// transactions before single writes, structure before choices).
fn shrink_candidates(schedule: &Schedule) -> Vec<Schedule> {
    let mut out = Vec::new();
    // Drop a whole update transaction.
    for c in 0..schedule.commits.len() {
        for t in 0..schedule.commits[c].len() {
            let mut s = schedule.clone();
            s.commits[c].remove(t);
            trim_commits(&mut s);
            out.push(s);
        }
    }
    // Drop a single write from a transaction (removing it entirely when
    // its write set empties).
    for c in 0..schedule.commits.len() {
        for t in 0..schedule.commits[c].len() {
            for w in 0..schedule.commits[c][t].len() {
                let mut s = schedule.clone();
                s.commits[c][t].remove(w);
                if s.commits[c][t].is_empty() {
                    s.commits[c].remove(t);
                }
                trim_commits(&mut s);
                out.push(s);
            }
        }
    }
    // Drop a read.
    for r in 0..schedule.reads.len() {
        let mut s = schedule.clone();
        s.reads.remove(r);
        out.push(s);
    }
    // Hear a previously missed cycle.
    for m in 0..schedule.missed.len() {
        let mut s = schedule.clone();
        s.missed.remove(m);
        out.push(s);
    }
    out
}

fn trim_commits(s: &mut Schedule) {
    while s.commits.last().is_some_and(Vec::is_empty) {
        s.commits.pop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule::ReadSpec;
    use bpush_types::{Cycle, ItemId};

    #[test]
    fn minimizes_a_padded_violation_to_the_core() {
        // The boundary violation plus noise: an extra unrelated commit on
        // cycle 1 and an extra read of item 0.
        let padded = Schedule {
            items: 3,
            versions: 2,
            cycles: 3,
            commits: vec![
                vec![vec![ItemId::new(0), ItemId::new(1)]],
                vec![vec![ItemId::new(2)]],
            ],
            missed: Vec::new(),
            begin: Cycle::ZERO,
            reads: vec![
                ReadSpec {
                    item: ItemId::new(0),
                    cycle: Cycle::ZERO,
                    from_cache: false,
                },
                ReadSpec {
                    item: ItemId::new(2),
                    cycle: Cycle::ZERO,
                    from_cache: false,
                },
                ReadSpec {
                    item: ItemId::new(1),
                    cycle: Cycle::new(1),
                    from_cache: false,
                },
            ],
        };
        let min = minimize(ProtocolSpec::BrokenInvalidation, &padded).unwrap();
        assert_eq!(
            min.commits,
            vec![vec![vec![ItemId::new(0), ItemId::new(1)]]]
        );
        assert_eq!(min.reads.len(), 2, "the noise read is shrunk away");
        assert!(run_schedule(ProtocolSpec::BrokenInvalidation, &min)
            .unwrap()
            .violation
            .is_some());
    }

    #[test]
    fn non_violating_schedules_pass_through() {
        let quiet = Schedule {
            items: 2,
            versions: 2,
            cycles: 1,
            commits: Vec::new(),
            missed: Vec::new(),
            begin: Cycle::ZERO,
            reads: Vec::new(),
        };
        assert_eq!(
            minimize(ProtocolSpec::BrokenInvalidation, &quiet).unwrap(),
            quiet
        );
    }
}
