//! Exhaustive small-scope model checker for the read-only transaction
//! processing methods of Pitoura & Chrysanthis.
//!
//! The checker enumerates **every** bounded execution within a
//! [`Scope`] — all interleavings of server update-transaction commits,
//! broadcast-cycle boundaries, per-item read positions, client doze
//! intervals, and cache hit/miss choices — and validates each committed
//! query's readset against the serialization-graph criterion of §2.2
//! ([`bpush_core::validator::SerializabilityValidator::check_serializable`]).
//! Violations are shrunk by greedy delta-debugging ([`minimize`]) into
//! deterministic counterexamples serialized in the `mc-schedule v1`
//! text format ([`Schedule::render`]) and replayed by
//! [`run_schedule`] — the regression harness in `tests/mc_replay.rs`
//! replays a checked-in counterexample on every `cargo test`.
//!
//! Small-scope checking complements the per-method conformance battery
//! (`bpush_core::conformance`) and the random workloads of `bpush-sim`:
//! the battery probes protocol *contracts* pointwise, the simulator
//! samples large executions, and the checker proves the absence of
//! serializability violations over an exhaustively covered space of
//! small ones. The seeded [`BrokenInvalidation`] fixture — which passes
//! the conformance battery — demonstrates the checker finds real bugs
//! the other layers miss.
//!
//! Drive it with `cargo xtask mc [--scope ci|default] [--json]`.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

mod broken;
mod checker;
mod exec;
mod ground;
mod minimize;
mod report;
mod schedule;
mod scope;
mod spec;

pub use broken::BrokenInvalidation;
pub use checker::{
    audit_monitors, check_all, check_spec, check_spec_fed, check_spec_traced, McReport,
    McViolation, MonitorAudit,
};
pub use exec::{
    monitors_for_spec, run_schedule, run_schedule_fed, run_schedule_monitored, run_schedule_traced,
    run_schedule_traced_fed, Execution, FeedMode,
};
pub use minimize::minimize;
pub use report::{render_json, render_text};
pub use schedule::{ReadSpec, Schedule, ScheduleError};
pub use scope::Scope;
pub use spec::ProtocolSpec;

/// FNV-1a over a canonical state string: cheap, deterministic across
/// runs and platforms (unlike `DefaultHasher`, whose output is
/// unspecified), and collision-safe enough for counting distinct states
/// in a space of at most a few million.
pub(crate) fn fnv64(s: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv64_matches_reference_vectors() {
        // Standard FNV-1a 64-bit test vectors.
        assert_eq!(fnv64(""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv64("a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv64("foobar"), 0x85944171f73967e8);
    }
}
