//! Runs the seeded-bug fixture through the bpush-core conformance
//! battery — and proves it **passes**.
//!
//! `BrokenInvalidation` mis-shifts the staleness boundary by one cycle,
//! yet every pointwise contract the battery probes still holds: the
//! battery exercises single-step protocol obligations, not cross-cycle
//! serializability. That partiality is exactly the gap the model
//! checker fills — `tests/mc_replay.rs` pins the counterexample the
//! checker finds for this same fixture at CI scope.
//!
//! (This file is also the `L4/conformance` evidence `cargo xtask lint`
//! scans for: it names `BrokenInvalidation` next to the battery run.)

// Integration tests are exempt from the panic-freedom policy
// (mirrors `allow-unwrap-in-tests` in clippy.toml and the `#[cfg(test)]`
// carve-out in `cargo xtask lint`).
#![allow(clippy::unwrap_used)]

use bpush_core::conformance;
use bpush_mc::BrokenInvalidation;

/// The battery cannot tell the broken fixture from a genuine protocol:
/// its staleness check only misfires across a cycle boundary, which the
/// battery's single-control-step probes never cross.
#[test]
fn broken_invalidation_passes_the_conformance_battery() {
    let violations = conformance::check(&|| Box::new(BrokenInvalidation::new()));
    assert!(
        violations.is_empty(),
        "the fixture is supposed to slip past the battery (that is the \
         point of the model checker); it was caught instead:\n{}",
        violations
            .iter()
            .map(|v| format!("  {v}"))
            .collect::<Vec<_>>()
            .join("\n")
    );
}
