//! The wire-fed conformance battery (acceptance criterion of the
//! sans-IO refactor): every genuine method, raw and instrumented, run
//! wire-fed and struct-fed over the same bounded executions, must
//! produce identical fates, identical readsets, identical operation
//! counters (including the per-`AbortReason` breakdowns), and
//! byte-identical canonical state hashes. Any encode/decode divergence
//! in the wire codec shows up here as a mismatch.

use bpush_mc::{
    check_spec, check_spec_fed, run_schedule, run_schedule_fed, run_schedule_traced,
    run_schedule_traced_fed, FeedMode, ProtocolSpec, ReadSpec, Schedule, Scope,
};
use bpush_obs::Obs;
use bpush_types::{Cycle, ItemId};

/// A schedule whose commit script invalidates a read across a cycle
/// boundary — the minimal execution that makes every report kind
/// (invalidation, and on SGT servers the augmented report and graph
/// diff) carry real content over the wire.
fn boundary_schedule() -> Schedule {
    Schedule {
        items: 2,
        versions: 2,
        cycles: 2,
        commits: vec![vec![vec![ItemId::new(0), ItemId::new(1)]]],
        missed: Vec::new(),
        begin: Cycle::ZERO,
        reads: vec![
            ReadSpec {
                item: ItemId::new(0),
                cycle: Cycle::ZERO,
                from_cache: false,
            },
            ReadSpec {
                item: ItemId::new(1),
                cycle: Cycle::new(1),
                from_cache: false,
            },
        ],
    }
}

/// A longer schedule with a missed cycle, so disconnection handling and
/// multi-cycle report windows also cross the wire.
fn doze_schedule() -> Schedule {
    Schedule {
        items: 2,
        versions: 2,
        cycles: 3,
        commits: vec![vec![vec![ItemId::new(0)]], vec![vec![ItemId::new(1)]]],
        missed: vec![Cycle::new(1)],
        begin: Cycle::ZERO,
        reads: vec![
            ReadSpec {
                item: ItemId::new(0),
                cycle: Cycle::ZERO,
                from_cache: false,
            },
            ReadSpec {
                item: ItemId::new(1),
                cycle: Cycle::new(2),
                from_cache: false,
            },
        ],
    }
}

/// Raw protocols: wire-fed replays are bit-identical to struct-fed
/// replays for every genuine method on every probe schedule.
#[test]
fn wire_fed_replays_are_bit_identical_raw() {
    for schedule in [boundary_schedule(), doze_schedule()] {
        for spec in ProtocolSpec::genuine() {
            let struct_fed = run_schedule(spec, &schedule).unwrap();
            let wire_fed = run_schedule_fed(spec, &schedule, FeedMode::Wire).unwrap();
            assert_eq!(struct_fed.committed, wire_fed.committed, "{spec}");
            assert_eq!(struct_fed.abort, wire_fed.abort, "{spec}");
            assert_eq!(struct_fed.reads, wire_fed.reads, "{spec}");
            assert_eq!(
                struct_fed.state_hashes, wire_fed.state_hashes,
                "{spec}: the wire perturbed the canonical state hashes"
            );
        }
    }
}

/// Instrumented protocols: the full event-derived counter set —
/// including the per-`AbortReason` dimensions — matches between the
/// wire-fed and struct-fed runs, and the hashes still agree.
#[test]
fn wire_fed_replays_are_bit_identical_instrumented() {
    for schedule in [boundary_schedule(), doze_schedule()] {
        for spec in ProtocolSpec::genuine() {
            let obs_a = Obs::recording(1 << 12);
            let obs_b = Obs::recording(1 << 12);
            let struct_fed = run_schedule_traced(spec, &schedule, &obs_a).unwrap();
            let wire_fed =
                run_schedule_traced_fed(spec, &schedule, &obs_b, FeedMode::Wire).unwrap();
            assert_eq!(struct_fed.committed, wire_fed.committed, "{spec}");
            assert_eq!(struct_fed.abort, wire_fed.abort, "{spec}");
            assert_eq!(struct_fed.state_hashes, wire_fed.state_hashes, "{spec}");
            let snap_a = obs_a.snapshot().expect("recording");
            let snap_b = obs_b.snapshot().expect("recording");
            assert_eq!(
                snap_a.counters, snap_b.counters,
                "{spec}: wire-fed counters diverged"
            );
        }
    }
}

/// The exhaustive check itself runs wire-fed: for every genuine method
/// the whole ci-scope report — executions, committed/aborted split,
/// distinct canonical states, dedup count, verdict — is bit-identical
/// to the struct-fed check. `distinct_states` equality is the strong
/// claim: the two modes explored exactly the same canonical state sets.
#[test]
fn ci_scope_exhaustive_check_is_feed_invariant() {
    for spec in ProtocolSpec::genuine() {
        let struct_fed = check_spec(spec, &Scope::ci()).unwrap();
        let wire_fed = check_spec_fed(spec, &Scope::ci(), FeedMode::Wire).unwrap();
        assert_eq!(struct_fed.executions, wire_fed.executions, "{spec}");
        assert_eq!(struct_fed.committed, wire_fed.committed, "{spec}");
        assert_eq!(struct_fed.aborted, wire_fed.aborted, "{spec}");
        assert_eq!(
            struct_fed.distinct_states, wire_fed.distinct_states,
            "{spec}: wire-fed exploration reached different states"
        );
        assert_eq!(
            struct_fed.deduped_validations, wire_fed.deduped_validations,
            "{spec}"
        );
        assert_eq!(struct_fed.passed(), wire_fed.passed(), "{spec}");
    }
}

/// The seeded bug is still found wire-fed: transporting reports over
/// the wire must not mask genuine protocol defects.
#[test]
fn wire_fed_checker_still_catches_the_broken_fixture() {
    let report = check_spec_fed(
        ProtocolSpec::BrokenInvalidation,
        &Scope::ci(),
        FeedMode::Wire,
    )
    .unwrap();
    assert!(
        report.violation.is_some(),
        "the seeded bug must be found wire-fed too"
    );
}
