//! Property cross-check between the model-checking executor and the
//! serializability validator: for random bounded schedules, the verdict
//! `run_schedule` reports must agree with a validator built against an
//! *independently reconstructed* server — and committed executions of
//! genuine methods must never violate.

// Integration tests are exempt from the panic-freedom policy
// (mirrors `allow-unwrap-in-tests` in clippy.toml and the `#[cfg(test)]`
// carve-out in `cargo xtask lint`).
#![allow(clippy::unwrap_used)]

use bpush_core::validator::SerializabilityValidator;
use bpush_mc::{run_schedule, run_schedule_monitored, ProtocolSpec, ReadSpec, Schedule};
use bpush_server::{BroadcastServer, ScriptedWorkload};
use bpush_types::{Cycle, ItemId, ServerConfig};
use proptest::prelude::*;

const ITEMS: u32 = 3;
const CYCLES: u64 = 3;
const VERSIONS: u32 = 2;

/// Builds a schedule that satisfies `Schedule::validate` by
/// construction: commits land in cycles `0..CYCLES-1`, the query begins
/// at cycle 0, hears every cycle, and reads distinct items at
/// non-decreasing cycles.
fn build_schedule(raw_commits: &[(u8, u8)], raw_reads: &[(u8, u8, bool)]) -> Schedule {
    let mut commits: Vec<Vec<Vec<ItemId>>> = Vec::new();
    for &(cycle, mask) in raw_commits {
        let cycle = usize::from(cycle) % usize::try_from(CYCLES - 1).unwrap();
        let writes: Vec<ItemId> = (0..ITEMS)
            .filter(|i| mask >> i & 1 == 1)
            .map(ItemId::new)
            .collect();
        if writes.is_empty() {
            continue;
        }
        if commits.len() <= cycle {
            commits.resize(cycle + 1, Vec::new());
        }
        commits[cycle].push(writes);
    }

    let mut reads: Vec<ReadSpec> = Vec::new();
    let mut cycles: Vec<u64> = raw_reads
        .iter()
        .map(|&(_, c, _)| u64::from(c) % CYCLES)
        .collect();
    cycles.sort_unstable();
    for (&(item, _, from_cache), &cycle) in raw_reads.iter().zip(&cycles) {
        let item = ItemId::new(u32::from(item) % ITEMS);
        if reads.iter().any(|r| r.item == item) {
            continue;
        }
        reads.push(ReadSpec {
            item,
            cycle: Cycle::new(cycle),
            from_cache,
        });
    }

    Schedule {
        items: ITEMS,
        versions: VERSIONS,
        cycles: CYCLES,
        commits,
        missed: Vec::new(),
        begin: Cycle::ZERO,
        reads,
    }
}

/// Replays the schedule's commit script through a second, independently
/// constructed server (same path `GroundTruth` uses internally, but
/// built here from first principles) and returns it after `CYCLES`
/// cycles.
fn independent_server(spec: ProtocolSpec, schedule: &Schedule) -> BroadcastServer {
    let config = ServerConfig {
        broadcast_size: ITEMS,
        update_range: ITEMS,
        server_read_range: ITEMS,
        theta: 0.5,
        offset: 0,
        txns_per_cycle: 1,
        updates_per_cycle: 1,
        versions_retained: VERSIONS,
        report_window: 1,
        ..ServerConfig::default()
    };
    let mut script = schedule.commits.clone();
    script.resize(usize::try_from(CYCLES).unwrap(), Vec::new());
    let mut server = BroadcastServer::new(config, spec.server_options(), 0)
        .unwrap()
        .with_workload(Box::new(ScriptedWorkload::with_transactions(script)));
    for _ in 0..CYCLES {
        server.run_cycle();
    }
    server
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 96, ..ProptestConfig::default() })]

    /// The executor's verdict agrees with a validator over the
    /// independently rebuilt history: the reported violation is `Some`
    /// exactly when the graph check rejects the committed readset (and
    /// the interval check agrees — the scripted server commits
    /// serially, so prefix-consistency and graph-serializability
    /// coincide).
    #[test]
    fn executor_and_validator_agree(
        spec_pick in 0usize..8,
        raw_commits in proptest::collection::vec((0u8..4, 0u8..8), 0..4),
        raw_reads in proptest::collection::vec((0u8..8, 0u8..4, proptest::bool::ANY), 1..4),
    ) {
        let spec = ProtocolSpec::genuine()[spec_pick % ProtocolSpec::genuine().len()];
        let schedule = build_schedule(&raw_commits, &raw_reads);
        let exec = run_schedule(spec, &schedule).unwrap();

        if !exec.committed {
            prop_assert!(
                exec.violation.is_none(),
                "aborted executions are never validated"
            );
            return Ok(());
        }
        prop_assert_eq!(exec.reads.len(), schedule.reads.len());

        let server = independent_server(spec, &schedule);
        let validator = SerializabilityValidator::new(server.history());
        let graph_verdict = validator
            .check_serializable(server.conflict_graph(), &exec.reads)
            .err();
        prop_assert_eq!(
            exec.violation.is_none(),
            graph_verdict.is_none(),
            "executor verdict {:?} disagrees with independent validator {:?} for {:?}",
            &exec.violation, &graph_verdict, &schedule
        );
        prop_assert_eq!(
            validator.is_consistent(&exec.reads),
            graph_verdict.is_none(),
            "interval and graph checks split on {:?}",
            &exec.reads
        );
    }

    /// Soundness of the genuine methods at random points of the bounded
    /// space: whatever a genuine protocol lets commit is serializable.
    /// (The exhaustive sweep in `cargo xtask mc` proves this for the
    /// whole space; this pins the same invariant into `cargo test`.)
    #[test]
    fn genuine_commits_are_serializable(
        spec_pick in 0usize..8,
        raw_commits in proptest::collection::vec((0u8..4, 0u8..8), 0..4),
        raw_reads in proptest::collection::vec((0u8..8, 0u8..4, proptest::bool::ANY), 1..4),
    ) {
        let spec = ProtocolSpec::genuine()[spec_pick % ProtocolSpec::genuine().len()];
        let schedule = build_schedule(&raw_commits, &raw_reads);
        let exec = run_schedule(spec, &schedule).unwrap();
        if exec.committed {
            prop_assert!(
                exec.violation.is_none(),
                "{} committed a non-serializable readset under {:?}: {:?}",
                spec, &schedule, &exec.violation
            );
        }
    }

    /// Differential check of the online monitors against the executor's
    /// ground truth at random points of the bounded space: genuine
    /// methods never trip their monitors, the monitored replay is
    /// bit-identical to the bare one, and every non-serializable commit
    /// of the broken fixture is flagged online.
    #[test]
    fn monitors_agree_with_the_executor(
        spec_pick in 0usize..8,
        raw_commits in proptest::collection::vec((0u8..4, 0u8..8), 0..4),
        raw_reads in proptest::collection::vec((0u8..8, 0u8..4, proptest::bool::ANY), 1..4),
    ) {
        let schedule = build_schedule(&raw_commits, &raw_reads);

        let spec = ProtocolSpec::genuine()[spec_pick % ProtocolSpec::genuine().len()];
        let bare = run_schedule(spec, &schedule).unwrap();
        let (watched, verdict) = run_schedule_monitored(spec, &schedule).unwrap();
        prop_assert_eq!(bare.committed, watched.committed, "{}", spec);
        prop_assert_eq!(bare.abort, watched.abort, "{}", spec);
        prop_assert_eq!(&bare.reads, &watched.reads, "{}", spec);
        prop_assert_eq!(
            &bare.state_hashes, &watched.state_hashes,
            "{}: monitors perturbed the canonical state hashes", spec
        );
        prop_assert!(
            verdict.pass(),
            "{} tripped its monitors on a valid execution under {:?}:\n{}",
            spec, &schedule, verdict.render()
        );

        let (broken, verdict) =
            run_schedule_monitored(ProtocolSpec::BrokenInvalidation, &schedule).unwrap();
        if broken.committed && broken.violation.is_some() {
            prop_assert!(
                !verdict.pass(),
                "a torn commit escaped the monitors under {:?}", &schedule
            );
        }
    }
}
