//! Regression harness for the model checker: replays the checked-in
//! minimized counterexample against the seeded `BrokenInvalidation`
//! fixture, pins the exact schedule the checker minimizes to at CI
//! scope, and proves every genuine method passes that scope — all on
//! every `cargo test`.

// Integration tests are exempt from the panic-freedom policy
// (mirrors `allow-unwrap-in-tests` in clippy.toml and the `#[cfg(test)]`
// carve-out in `cargo xtask lint`).
#![allow(clippy::unwrap_used)]

use std::path::Path;

use bpush_mc::{check_spec, run_schedule, ProtocolSpec, Schedule, Scope};
use bpush_types::{Cycle, ItemId};

fn fixture_text() -> String {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("fixtures")
        .join("broken-invalidation.ci.mc");
    std::fs::read_to_string(path).expect("fixture counterexample is checked in")
}

/// The checked-in `mc-schedule v1` file replays to the same
/// serializability violation the checker originally reported.
#[test]
fn checked_in_counterexample_still_violates() {
    let (spec, schedule) = Schedule::parse(&fixture_text()).expect("fixture parses");
    assert_eq!(spec, ProtocolSpec::BrokenInvalidation);

    let exec = run_schedule(spec, &schedule).expect("replay runs");
    assert!(
        exec.committed,
        "the torn readset must slip through and commit"
    );
    assert_eq!(exec.reads.len(), 2);

    let witness = exec.violation.expect("replay reproduces the violation");
    assert_eq!(
        witness.to_string(),
        "readset mixes a value written by T0.0 with a value already \
         overwritten by T0.0"
    );
    assert_eq!(witness.fresh_writer, witness.stale_overwrite);
}

/// The same schedule replayed against the genuine invalidation-only
/// method aborts instead of committing: the bug, not the harness,
/// produces the violation.
#[test]
fn genuine_protocol_rejects_the_same_schedule() {
    let (_, schedule) = Schedule::parse(&fixture_text()).expect("fixture parses");
    let spec = ProtocolSpec::parse("inv-only").expect("known method");
    let exec = run_schedule(spec, &schedule).expect("replay runs");
    assert!(
        !exec.committed,
        "a genuine invalidation protocol must doom the query at the \
         cycle-1 control"
    );
    assert!(exec.violation.is_none());
}

/// Running the checker end-to-end at CI scope minimizes the broken
/// fixture's violation to exactly the checked-in schedule.
#[test]
fn checker_minimizes_to_the_checked_in_schedule() {
    let report = check_spec(ProtocolSpec::BrokenInvalidation, &Scope::ci()).expect("checker runs");
    assert!(!report.passed());

    let violation = report.violation.expect("a counterexample is reported");
    let (spec, pinned) = Schedule::parse(&fixture_text()).expect("fixture parses");
    assert_eq!(
        violation.schedule,
        pinned,
        "minimization drifted from the checked-in counterexample;\ngot:\n{}",
        violation.schedule.render(spec)
    );

    // Pin the canonical schedule structurally too, so a stale fixture
    // file cannot mask a drift.
    assert_eq!(pinned.items, 2);
    assert_eq!(pinned.versions, 2);
    assert_eq!(pinned.cycles, 2);
    assert_eq!(
        pinned.commits,
        vec![vec![vec![ItemId::new(0), ItemId::new(1)]]]
    );
    assert!(pinned.missed.is_empty());
    assert_eq!(pinned.begin, Cycle::ZERO);
    assert_eq!(pinned.reads.len(), 2);
    assert_eq!(
        (
            pinned.reads[0].item,
            pinned.reads[0].cycle,
            pinned.reads[0].from_cache
        ),
        (ItemId::new(0), Cycle::new(0), false)
    );
    assert_eq!(
        (
            pinned.reads[1].item,
            pinned.reads[1].cycle,
            pinned.reads[1].from_cache
        ),
        (ItemId::new(1), Cycle::new(1), false)
    );

    // Exploration statistics are deterministic at a fixed scope.
    assert_eq!(
        (report.executions, report.committed, report.aborted),
        (27, 27, 0)
    );
    assert_eq!(report.distinct_states, 34);
}

/// Every genuine method passes the CI scope — the gate
/// `cargo xtask mc --scope ci` enforces in CI.
#[test]
fn all_genuine_methods_pass_ci_scope() {
    for spec in ProtocolSpec::genuine() {
        let report = check_spec(spec, &Scope::ci()).expect("checker runs");
        assert!(
            report.passed(),
            "{spec} reported a violation at CI scope:\n{:?}",
            report.violation
        );
        assert!(report.executions > 0);
        assert_eq!(report.committed + report.aborted, report.executions);
    }
}

/// `render` → `parse` is lossless for the fixture schedule.
#[test]
fn fixture_round_trips_through_the_text_format() {
    let (spec, schedule) = Schedule::parse(&fixture_text()).expect("fixture parses");
    let rendered = schedule.render(spec);
    let (spec2, schedule2) = Schedule::parse(&rendered).expect("rendered form parses");
    assert_eq!(spec, spec2);
    assert_eq!(schedule, schedule2);
}
