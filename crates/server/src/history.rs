//! The ground-truth write log used for after-the-fact serializability
//! checking.
//!
//! The simulation's correctness tests verify the paper's theorems: every
//! committed read-only transaction must have read a subset of *some*
//! consistent database state — equivalently, there must exist a point in
//! the server's (serial) history at which all values it read were
//! simultaneously current. [`WriteHistory`] records every committed write
//! forever (it is test infrastructure, never broadcast) and answers the
//! question that check needs: *which write superseded this value, and
//! when?*

use std::collections::BTreeMap;

use bpush_types::{ItemId, ItemValue};

/// Complete write log: for every item, all committed values in serial
/// order (the initial load first).
///
/// # Example
/// ```
/// use bpush_server::WriteHistory;
/// use bpush_types::{Cycle, ItemId, ItemValue, TxnId};
///
/// let mut h = WriteHistory::new();
/// let x = ItemId::new(0);
/// let t = TxnId::new(Cycle::new(1), 0);
/// h.record(x, ItemValue::written_by(t));
/// assert_eq!(h.next_overwrite(x, ItemValue::initial()), Some(ItemValue::written_by(t)));
/// assert_eq!(h.next_overwrite(x, ItemValue::written_by(t)), None);
/// ```
#[derive(Debug, Clone, Default)]
pub struct WriteHistory {
    writes: BTreeMap<ItemId, Vec<ItemValue>>,
}

impl WriteHistory {
    /// An empty history (every item implicitly starts at its initial
    /// load).
    pub fn new() -> Self {
        WriteHistory::default()
    }

    /// Records a committed write. Writes must arrive in serial order per
    /// item.
    ///
    /// # Panics
    /// In debug builds, panics if `value` is not newer than the last
    /// recorded write of `item`.
    pub fn record(&mut self, item: ItemId, value: ItemValue) {
        let log = self.writes.entry(item).or_default();
        debug_assert!(
            log.last()
                .map_or(true, |last| last.writer() < value.writer()),
            "writes must be recorded in serial order"
        );
        log.push(value);
    }

    /// All recorded writes of `item` in serial order (excluding the
    /// implicit initial load).
    pub fn writes_of(&self, item: ItemId) -> &[ItemValue] {
        self.writes.get(&item).map_or(&[], Vec::as_slice)
    }

    /// The value that superseded `value` on `item`, or `None` if `value`
    /// is still current (or was never recorded — an initial load with no
    /// writes).
    pub fn next_overwrite(&self, item: ItemId, value: ItemValue) -> Option<ItemValue> {
        let log = self.writes_of(item);
        match value.writer() {
            None => log.first().copied(),
            Some(w) => {
                let idx = log
                    .iter()
                    .position(|v| v.writer() == Some(w))
                    // lint: allow(panic) — the surrounding branch proved the writer is in this log
                    .expect("read value must have been committed");
                log.get(idx + 1).copied()
            }
        }
    }

    /// Number of items with at least one write.
    pub fn touched_items(&self) -> usize {
        self.writes.len()
    }

    /// Total recorded writes.
    pub fn total_writes(&self) -> usize {
        self.writes.values().map(Vec::len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bpush_types::{Cycle, TxnId};

    fn val(cycle: u64, seq: u32) -> ItemValue {
        ItemValue::written_by(TxnId::new(Cycle::new(cycle), seq))
    }

    #[test]
    fn empty_history() {
        let h = WriteHistory::new();
        let x = ItemId::new(0);
        assert_eq!(h.writes_of(x), &[]);
        assert_eq!(h.next_overwrite(x, ItemValue::initial()), None);
        assert_eq!(h.touched_items(), 0);
        assert_eq!(h.total_writes(), 0);
    }

    #[test]
    fn overwrite_chain() {
        let mut h = WriteHistory::new();
        let x = ItemId::new(3);
        h.record(x, val(1, 0));
        h.record(x, val(1, 2));
        h.record(x, val(4, 0));
        assert_eq!(h.next_overwrite(x, ItemValue::initial()), Some(val(1, 0)));
        assert_eq!(h.next_overwrite(x, val(1, 0)), Some(val(1, 2)));
        assert_eq!(h.next_overwrite(x, val(1, 2)), Some(val(4, 0)));
        assert_eq!(h.next_overwrite(x, val(4, 0)), None);
        assert_eq!(h.touched_items(), 1);
        assert_eq!(h.total_writes(), 3);
        assert_eq!(h.writes_of(x).len(), 3);
    }

    #[test]
    #[should_panic(expected = "must have been committed")]
    fn unknown_read_value_panics() {
        let h = WriteHistory::new();
        // claim we read a value written by a transaction that never wrote
        let mut h2 = h.clone();
        h2.record(ItemId::new(0), val(1, 0));
        let _ = h2.next_overwrite(ItemId::new(0), val(9, 9));
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "serial order")]
    fn out_of_order_write_rejected() {
        let mut h = WriteHistory::new();
        let x = ItemId::new(0);
        h.record(x, val(2, 0));
        h.record(x, val(1, 0));
    }
}
