//! The broadcast-push server simulator.
//!
//! §2 of *Pitoura & Chrysanthis 1999* assumes a server that periodically
//! broadcasts the content of a database while update transactions commit
//! against it; each cycle's bcast is a transaction-consistent snapshot of
//! the database as of the beginning of the cycle. This crate builds that
//! server from scratch:
//!
//! * [`MultiversionStore`] — the database, retaining the old versions the
//!   multiversion broadcast method needs (§3.2) and garbage-collecting
//!   the rest,
//! * [`WriteHistory`] — the complete ground-truth write log used by the
//!   serializability validator in `bpush-core`,
//! * [`ServerTxn`] / [`WorkloadGenerator`] — the update-transaction
//!   workload of §5.1 (N transactions per cycle, reads four times more
//!   frequent than writes, Zipf-skewed with an offset against the client
//!   read pattern),
//! * [`ConflictTracker`] — derives the conflict edges among committed
//!   transactions that the SGT method broadcasts (§3.3),
//! * [`BroadcastServer`] — ties everything together and emits one
//!   [`bpush_broadcast::Bcast`] per cycle, preceded by the control
//!   information each protocol requires.
//!
//! # Example
//!
//! ```
//! use bpush_server::{BroadcastServer, ServerOptions};
//! use bpush_types::ServerConfig;
//!
//! let config = ServerConfig { broadcast_size: 100, update_range: 50,
//!     server_read_range: 100, updates_per_cycle: 10,
//!     ..ServerConfig::default() };
//! let mut server = BroadcastServer::new(config, ServerOptions::default(), 42)?;
//! let bcast = server.run_cycle();           // cycle 0: initial snapshot
//! assert_eq!(bcast.item_count(), 100);
//! let bcast = server.run_cycle();           // cycle 1
//! assert!(!bcast.control().invalidation().is_empty(), "cycle 0 made updates");
//! # Ok::<(), bpush_types::BpushError>(())
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]
#![warn(missing_debug_implementations)]

mod conflicts;
mod database;
mod history;
mod server;
mod txn;
mod workload;

pub use conflicts::ConflictTracker;
pub use database::MultiversionStore;
pub use history::WriteHistory;
pub use server::{BroadcastMode, BroadcastServer, ServerOptions};
pub use txn::ServerTxn;
pub use workload::{ScriptedWorkload, WorkloadGenerator, WorkloadSource};
