//! The server's multiversion database.

use bpush_types::{Cycle, ItemId, ItemValue, TxnId};

/// The server database: every item's committed values, newest last.
///
/// In plain (single-version) operation only the current value matters; in
/// multiversion operation (§3.2) the store retains enough superseded
/// values to broadcast the previous `V` cycles' worth, and
/// [`MultiversionStore::gc`] discards the rest (the paper's "at each
/// cycle `k`, the server discards the `k − S` version").
///
/// # On-air retention rule
///
/// A superseded value must stay on air at cycle `n` while a transaction
/// with span ≤ V could still need it. A value is needed by a transaction
/// whose first read happened at some cycle `c_0 ≥ n − V + 1` and that is
/// the largest version `≤ c_0`; that is exactly the case when the value
/// was superseded during one of the last `V − 1` cycles, i.e. its
/// successor's version exceeds `n − V + 1`.
#[derive(Debug, Clone)]
pub struct MultiversionStore {
    /// `versions[item][..]`, ascending by version; last is current.
    versions: Vec<Vec<ItemValue>>,
}

impl MultiversionStore {
    /// Creates a database of `n_items` items holding their initial load.
    ///
    /// # Panics
    /// Panics if `n_items` is zero.
    pub fn new(n_items: u32) -> Self {
        assert!(n_items > 0, "database must be non-empty");
        MultiversionStore {
            versions: vec![vec![ItemValue::initial()]; n_items as usize],
        }
    }

    /// Number of items.
    pub fn len(&self) -> usize {
        self.versions.len()
    }

    /// Whether the store is empty (never true; kept for API symmetry).
    pub fn is_empty(&self) -> bool {
        self.versions.is_empty()
    }

    /// Whether `item` exists.
    pub fn contains(&self, item: ItemId) -> bool {
        item.as_usize() < self.versions.len()
    }

    /// The current value of `item`.
    ///
    /// # Panics
    /// Panics if `item` is out of range.
    pub fn current(&self, item: ItemId) -> ItemValue {
        *self.versions[item.as_usize()]
            .last()
            // lint: allow(panic) — every chain is seeded with the initial value at construction
            .expect("every item has at least its initial value")
    }

    /// All retained values of `item`, ascending by version (current last).
    ///
    /// # Panics
    /// Panics if `item` is out of range.
    pub fn retained(&self, item: ItemId) -> &[ItemValue] {
        &self.versions[item.as_usize()]
    }

    /// Applies a committed write of `writer` to `item`.
    ///
    /// # Panics
    /// Panics if `item` is out of range, or (debug only) if the write is
    /// not newer than the current value — the commit pipeline feeds writes
    /// in serial order.
    pub fn apply_write(&mut self, item: ItemId, writer: TxnId) {
        let value = ItemValue::written_by(writer);
        let chain = &mut self.versions[item.as_usize()];
        debug_assert!(
            chain
                .last()
                .map_or(true, |last| { last.writer().map_or(true, |w| w < writer) }),
            "writes must arrive in serial order"
        );
        if let Some(last) = chain.last() {
            if last.version() == value.version() {
                // Two writes in the same cycle: only the later one is ever
                // broadcast (the snapshot reflects cycle boundaries), so
                // replace in place.
                // lint: allow(panic) — every chain is seeded with the initial value at construction
                *chain.last_mut().expect("nonempty") = value;
                return;
            }
        }
        chain.push(value);
    }

    /// The superseded values of `item` that must be broadcast at cycle
    /// `now` by a server retaining `retain` old cycles (see the type-level
    /// retention rule), most recent first.
    ///
    /// # Panics
    /// Panics if `item` is out of range.
    pub fn on_air_old_versions(&self, item: ItemId, now: Cycle, retain: u32) -> Vec<ItemValue> {
        let chain = &self.versions[item.as_usize()];
        let mut out = Vec::new();
        // skip the current value (last); walk older values newest-first
        for i in (0..chain.len().saturating_sub(1)).rev() {
            let successor = chain[i + 1];
            // still needed iff superseded within the last `retain - 1`
            // cycles: successor.version > now - retain + 1
            let needed = u64::from(retain) > 1
                && successor
                    .version()
                    .number()
                    .saturating_add(u64::from(retain))
                    > now.number().saturating_add(1);
            if needed {
                out.push(chain[i]);
            } else {
                break; // older values were superseded even earlier
            }
        }
        out
    }

    /// Garbage-collects values no longer needed at cycle `now` by a server
    /// retaining `retain` old cycles. The current value always survives.
    pub fn gc(&mut self, now: Cycle, retain: u32) {
        for chain in &mut self.versions {
            if chain.len() <= 1 {
                continue;
            }
            // keep index i (non-current) iff chain[i+1].version + retain > now + 1
            let cutoff = chain.len() - 1;
            let mut first_kept = cutoff;
            for i in (0..cutoff).rev() {
                let needed = u64::from(retain) > 1
                    && chain[i + 1]
                        .version()
                        .number()
                        .saturating_add(u64::from(retain))
                        > now.number().saturating_add(1);
                if needed {
                    first_kept = i;
                } else {
                    break;
                }
            }
            if first_kept > 0 {
                chain.drain(..first_kept);
            }
        }
    }

    /// Iterates over `(item, current value)` in item order.
    pub fn iter_current(&self) -> impl Iterator<Item = (ItemId, ItemValue)> + '_ {
        self.versions
            .iter()
            .enumerate()
            // lint: allow(panic, casts) — every chain is seeded with the initial value at construction; the item count is bounded by broadcast_size: u32
            .map(|(i, chain)| (ItemId::new(i as u32), *chain.last().expect("nonempty")))
    }

    /// Total number of retained values across all items (used by space
    /// accounting tests).
    pub fn total_retained(&self) -> usize {
        self.versions.iter().map(Vec::len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn txn(cycle: u64, seq: u32) -> TxnId {
        TxnId::new(Cycle::new(cycle), seq)
    }

    #[test]
    fn initial_state() {
        let db = MultiversionStore::new(5);
        assert_eq!(db.len(), 5);
        assert!(!db.is_empty());
        assert!(db.contains(ItemId::new(4)));
        assert!(!db.contains(ItemId::new(5)));
        assert_eq!(db.current(ItemId::new(0)), ItemValue::initial());
        assert_eq!(db.total_retained(), 5);
    }

    #[test]
    fn writes_stack_versions() {
        let mut db = MultiversionStore::new(2);
        let x = ItemId::new(0);
        db.apply_write(x, txn(0, 0));
        db.apply_write(x, txn(2, 1));
        assert_eq!(db.current(x).writer(), Some(txn(2, 1)));
        assert_eq!(db.retained(x).len(), 3);
        assert_eq!(db.retained(x)[0], ItemValue::initial());
        // untouched item unchanged
        assert_eq!(db.current(ItemId::new(1)), ItemValue::initial());
    }

    #[test]
    fn same_cycle_rewrite_replaces() {
        let mut db = MultiversionStore::new(1);
        let x = ItemId::new(0);
        db.apply_write(x, txn(1, 0));
        db.apply_write(x, txn(1, 3));
        assert_eq!(db.retained(x).len(), 2, "one version per cycle");
        assert_eq!(db.current(x).writer(), Some(txn(1, 3)));
    }

    #[test]
    fn on_air_old_versions_window() {
        let mut db = MultiversionStore::new(1);
        let x = ItemId::new(0);
        db.apply_write(x, txn(0, 0)); // version 1, supersedes initial at cycle 1
        db.apply_write(x, txn(3, 0)); // version 4, supersedes v1 at cycle 4
        db.apply_write(x, txn(5, 0)); // version 6 (current)

        // At cycle 6 with retain = 3: a value is on air iff its successor's
        // version > 6 - 3 + 1 = 4. v4's successor is v6 (> 4): on air.
        // v1's successor is v4 (not > 4): off air, and so is v0.
        let on_air = db.on_air_old_versions(x, Cycle::new(6), 3);
        assert_eq!(on_air.len(), 1);
        assert_eq!(on_air[0].version(), Cycle::new(4));

        // With a wide window everything is on air, most recent first.
        let all = db.on_air_old_versions(x, Cycle::new(6), 100);
        assert_eq!(all.len(), 3);
        assert!(all[0].version() > all[1].version());
        assert!(all[1].version() > all[2].version());

        // retain = 1 keeps nothing old on air.
        assert!(db.on_air_old_versions(x, Cycle::new(6), 1).is_empty());
    }

    #[test]
    fn gc_discards_exactly_off_air_values() {
        let mut db = MultiversionStore::new(1);
        let x = ItemId::new(0);
        db.apply_write(x, txn(0, 0));
        db.apply_write(x, txn(3, 0));
        db.apply_write(x, txn(5, 0));
        db.gc(Cycle::new(6), 3);
        // only v4 (still on air) and the current v6 remain
        assert_eq!(db.retained(x).len(), 2);
        assert_eq!(db.retained(x)[0].version(), Cycle::new(4));
        // gc is idempotent
        db.gc(Cycle::new(6), 3);
        assert_eq!(db.retained(x).len(), 2);
        // advancing time eventually drops v4 too
        db.gc(Cycle::new(9), 3);
        assert_eq!(db.retained(x).len(), 1);
    }

    #[test]
    fn gc_retain_one_keeps_only_current() {
        let mut db = MultiversionStore::new(1);
        let x = ItemId::new(0);
        db.apply_write(x, txn(0, 0));
        db.apply_write(x, txn(1, 0));
        db.gc(Cycle::new(2), 1);
        assert_eq!(db.retained(x).len(), 1);
        assert_eq!(db.current(x).writer(), Some(txn(1, 0)));
    }

    #[test]
    fn iter_current_in_item_order() {
        let mut db = MultiversionStore::new(3);
        db.apply_write(ItemId::new(1), txn(0, 0));
        let items: Vec<ItemId> = db.iter_current().map(|(x, _)| x).collect();
        assert_eq!(items, vec![ItemId::new(0), ItemId::new(1), ItemId::new(2)]);
        let (_, v) = db.iter_current().nth(1).unwrap();
        assert_eq!(v.writer(), Some(txn(0, 0)));
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn zero_items_rejected() {
        let _ = MultiversionStore::new(0);
    }
}
