//! The broadcast server: snapshot emission plus the commit pipeline.

use std::collections::VecDeque;

use bpush_broadcast::organization::{
    BroadcastDisks, DiskSpec, Flat, IndexedFlat, MultiversionClustered, MultiversionOverflow,
    OldVersions,
};
use bpush_broadcast::{AugmentedReport, Bcast, ControlInfo, InvalidationReport, ItemRecord};
use bpush_obs::{Actor, Obs};
use bpush_sgraph::GraphDiff;
use bpush_types::config::MultiversionLayout;
use bpush_types::{BpushError, Cycle, ItemId, ServerConfig, TxnId};

use crate::conflicts::ConflictTracker;
use crate::database::MultiversionStore;
use crate::history::WriteHistory;
use crate::workload::{WorkloadGenerator, WorkloadSource};

/// What the server puts on air each cycle.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub enum BroadcastMode {
    /// Flat organization, current versions only (§5.1 default).
    #[default]
    Plain,
    /// Multiversion broadcast (§3.2) under the chosen layout; the server
    /// retains and broadcasts old versions supporting spans up to the
    /// configured [`ServerConfig::versions_retained`].
    Multiversion(MultiversionLayout),
    /// Broadcast-disk organization (§7 extension), current versions only.
    Disks(Vec<DiskSpec>),
    /// Flat organization with `segments` replicated on-air index copies
    /// ((1, m) indexing, §2.1), current versions only.
    IndexedFlat {
        /// Number of replicated index copies per cycle.
        segments: u32,
    },
}

/// Server-side protocol support switches.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ServerOptions {
    /// The on-air organization and version retention.
    pub mode: BroadcastMode,
    /// Broadcast SGT control information (§3.3): last-writer tags on every
    /// item, the augmented invalidation report and the per-cycle graph
    /// difference.
    pub sgt_info: bool,
}

impl ServerOptions {
    /// Plain flat broadcast with invalidation reports only.
    pub fn plain() -> Self {
        ServerOptions::default()
    }

    /// Multiversion broadcast under `layout`.
    pub fn multiversion(layout: MultiversionLayout) -> Self {
        ServerOptions {
            mode: BroadcastMode::Multiversion(layout),
            sgt_info: false,
        }
    }

    /// Flat broadcast with full SGT control information.
    pub fn sgt() -> Self {
        ServerOptions {
            mode: BroadcastMode::Plain,
            sgt_info: true,
        }
    }
}

/// The broadcast-push server (§2): every call to
/// [`BroadcastServer::run_cycle`] emits the bcast for the current cycle —
/// a transaction-consistent snapshot of the database as of the cycle's
/// beginning, preceded by control information describing the *previous*
/// cycle's updates — and then commits the cycle's update transactions.
#[derive(Debug)]
pub struct BroadcastServer {
    config: ServerConfig,
    options: ServerOptions,
    db: MultiversionStore,
    history: WriteHistory,
    workload: Box<dyn WorkloadSource>,
    conflicts: ConflictTracker,
    next_cycle: Cycle,
    /// Updated-item sets of recent cycles, newest last, for windowed
    /// invalidation reports (§5.2.2).
    recent_updates: VecDeque<(Cycle, Vec<ItemId>)>,
    /// SGT control info produced by the previous cycle's commits.
    pending_sgt: Option<(GraphDiff, Vec<(ItemId, TxnId)>)>,
    /// The full conflict serialization graph of all committed server
    /// transactions — ground truth for the serializability validator
    /// (never broadcast).
    validation_graph: bpush_sgraph::SerializationGraph,
    /// Observability sink; the no-op handle unless installed via
    /// [`BroadcastServer::with_obs`].
    obs: Obs,
}

impl BroadcastServer {
    /// Creates a server over a freshly loaded database.
    ///
    /// # Errors
    /// Returns [`BpushError::InvalidConfig`] for invalid configurations,
    /// including a broadcast-disk partitioning that does not cover the
    /// database.
    pub fn new(
        config: ServerConfig,
        options: ServerOptions,
        seed: u64,
    ) -> Result<Self, BpushError> {
        config.validate()?;
        if let BroadcastMode::IndexedFlat { segments } = &options.mode {
            if *segments == 0 {
                return Err(BpushError::invalid_config(
                    "indexed-flat mode needs at least one index segment",
                ));
            }
        }
        if let BroadcastMode::Disks(specs) = &options.mode {
            let covered: u32 = specs.iter().map(|d| d.items).sum();
            if covered != config.broadcast_size {
                return Err(BpushError::invalid_config(
                    "broadcast-disk partitioning must cover exactly the broadcast set",
                ));
            }
        }
        let workload = WorkloadGenerator::new(&config, seed)?;
        let horizon = config.versions_retained.max(8) * 2;
        Ok(BroadcastServer {
            db: MultiversionStore::new(config.broadcast_size),
            history: WriteHistory::new(),
            workload: Box::new(workload),
            conflicts: ConflictTracker::new(horizon),
            next_cycle: Cycle::ZERO,
            recent_updates: VecDeque::new(),
            pending_sgt: None,
            validation_graph: bpush_sgraph::SerializationGraph::new(),
            config,
            options,
            obs: Obs::off(),
        })
    }

    /// Routes the server's per-cycle work into `obs`: each
    /// [`BroadcastServer::run_cycle`] is bracketed by a `server.cycle`
    /// span and feeds the `bcast.slots` size histogram.
    #[must_use]
    pub fn with_obs(mut self, obs: Obs) -> Self {
        self.obs = obs;
        self
    }

    /// Replaces the update workload with a custom [`WorkloadSource`]
    /// (e.g. a [`crate::ScriptedWorkload`] for deterministic tests or a
    /// replayed trace). Must be called before the first
    /// [`BroadcastServer::run_cycle`].
    ///
    /// # Panics
    /// Panics if cycles have already run (the history would be split
    /// across workloads).
    #[must_use]
    pub fn with_workload(mut self, workload: Box<dyn WorkloadSource>) -> Self {
        assert_eq!(
            self.next_cycle,
            Cycle::ZERO,
            "workload must be set before the first cycle"
        );
        self.workload = workload;
        self
    }

    /// The server configuration.
    pub fn config(&self) -> &ServerConfig {
        &self.config
    }

    /// The options in effect.
    pub fn options(&self) -> &ServerOptions {
        &self.options
    }

    /// The cycle the next [`BroadcastServer::run_cycle`] call will emit.
    pub fn next_cycle(&self) -> Cycle {
        self.next_cycle
    }

    /// The ground-truth write history (for validation; never broadcast).
    pub fn history(&self) -> &WriteHistory {
        &self.history
    }

    /// The full conflict serialization graph of every transaction the
    /// server has committed (for validation; never broadcast). Precedence
    /// edges from readers older than the tracker's horizon are elided.
    pub fn conflict_graph(&self) -> &bpush_sgraph::SerializationGraph {
        &self.validation_graph
    }

    /// Read access to the database (tests and validators).
    pub fn database(&self) -> &MultiversionStore {
        &self.db
    }

    /// The span bound the server's version retention supports: `S` in
    /// multiversion mode, 1 otherwise.
    pub fn span_supported(&self) -> u32 {
        match self.options.mode {
            BroadcastMode::Multiversion(_) => self.config.versions_retained,
            _ => 1,
        }
    }

    fn build_control(&self, cycle: Cycle) -> ControlInfo {
        let window = self.config.report_window;
        let horizon = cycle.checked_sub(u64::from(window));
        let updated = self
            .recent_updates
            .iter()
            .filter(|(c, _)| horizon.map_or(true, |h| *c >= h))
            .flat_map(|(c, items)| items.iter().map(move |&x| (x, *c)));
        let invalidation = InvalidationReport::with_dated(
            cycle,
            window,
            updated,
            self.config.granularity,
            self.config.items_per_bucket,
        );
        let (augmented, diff) = if self.options.sgt_info {
            match &self.pending_sgt {
                Some((diff, fw)) => (
                    Some(AugmentedReport::new(cycle.prev(), fw.iter().copied())),
                    Some(diff.clone()),
                ),
                None => (None, None),
            }
        } else {
            (None, None)
        };
        ControlInfo::new(cycle, invalidation, augmented, diff)
    }

    fn snapshot_records(&self) -> Vec<ItemRecord> {
        self.db
            .iter_current()
            .map(|(item, value)| {
                let tag = if self.options.sgt_info {
                    value.writer()
                } else {
                    None
                };
                ItemRecord::new(item, value, tag)
            })
            .collect()
    }

    fn old_versions(&self, cycle: Cycle) -> Vec<OldVersions> {
        match self.options.mode {
            BroadcastMode::Multiversion(_) => {
                let span = self.config.versions_retained;
                (0..self.config.broadcast_size)
                    .filter_map(|i| {
                        let item = ItemId::new(i);
                        let chain = self.db.on_air_old_versions(item, cycle, span);
                        (!chain.is_empty()).then_some((item, chain))
                    })
                    .collect()
            }
            _ => Vec::new(),
        }
    }

    /// Emits the bcast for the current cycle, then commits the cycle's
    /// update transactions (whose effects appear from the next cycle on).
    pub fn run_cycle(&mut self) -> Bcast {
        let cycle = self.next_cycle;
        let _cycle_span = self.obs.span("server.cycle", cycle, Actor::Server);
        let control = self.build_control(cycle);
        let records = self.snapshot_records();
        let old = self.old_versions(cycle);
        let ipb = self.config.items_per_bucket;
        let bcast = match &self.options.mode {
            BroadcastMode::Plain => Flat::new(ipb).assemble(cycle, control, records, old),
            BroadcastMode::Multiversion(MultiversionLayout::Overflow) => {
                MultiversionOverflow::new(ipb).assemble(cycle, control, records, old)
            }
            BroadcastMode::Multiversion(MultiversionLayout::Clustered) => {
                MultiversionClustered::new().assemble(cycle, control, records, old)
            }
            BroadcastMode::Disks(specs) => {
                BroadcastDisks::new(specs.clone()).assemble(cycle, control, records, old)
            }
            BroadcastMode::IndexedFlat { segments } => {
                IndexedFlat::new(*segments, ipb).assemble(cycle, control, records, old)
            }
        };

        // Commit this cycle's update transactions.
        let txns = self.workload.generate_cycle(cycle);
        let mut updated = Vec::new();
        for txn in &txns {
            self.conflicts.commit(txn);
            for &x in txn.writes() {
                self.db.apply_write(x, txn.id());
            }
        }
        // Record history once per item per cycle (the bcast only ever
        // carries cycle-final values; intermediate same-cycle values are
        // invisible to clients, matching MultiversionStore semantics).
        let mut final_writer: std::collections::BTreeMap<ItemId, TxnId> =
            std::collections::BTreeMap::new();
        for txn in &txns {
            for &x in txn.writes() {
                final_writer.insert(x, txn.id());
            }
        }
        for (&x, &w) in &final_writer {
            self.history
                .record(x, bpush_types::ItemValue::written_by(w));
            updated.push(x);
        }
        let (diff, first_writers) = self.conflicts.end_cycle(cycle);
        self.validation_graph.apply_diff(&diff);
        self.pending_sgt = Some((diff, first_writers));

        self.recent_updates.push_back((cycle, updated));
        while self.recent_updates.len() > self.config.report_window as usize {
            self.recent_updates.pop_front();
        }

        self.next_cycle = cycle.next();
        self.db.gc(self.next_cycle, self.span_supported());
        if self.obs.is_enabled() {
            self.obs.counter_add("server.cycles", 1);
            self.obs.record("bcast.slots", bcast.total_slots());
        }
        bcast
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bpush_types::Granularity;

    fn small_config() -> ServerConfig {
        ServerConfig {
            broadcast_size: 100,
            update_range: 50,
            server_read_range: 100,
            updates_per_cycle: 10,
            txns_per_cycle: 5,
            versions_retained: 3,
            ..ServerConfig::default()
        }
    }

    #[test]
    fn first_cycle_is_initial_snapshot() {
        let mut s = BroadcastServer::new(small_config(), ServerOptions::plain(), 1).unwrap();
        let b = s.run_cycle();
        assert_eq!(b.cycle(), Cycle::ZERO);
        assert_eq!(b.item_count(), 100);
        assert!(b.control().invalidation().is_empty());
        assert!(b.control().graph_diff().is_none());
        for rec in b.records() {
            assert_eq!(rec.value(), bpush_types::ItemValue::initial());
        }
        assert_eq!(s.next_cycle(), Cycle::new(1));
    }

    #[test]
    fn second_cycle_reports_first_cycles_updates() {
        let mut s = BroadcastServer::new(small_config(), ServerOptions::plain(), 1).unwrap();
        s.run_cycle();
        let b = s.run_cycle();
        let report = b.control().invalidation();
        assert_eq!(report.len(), 10, "10 distinct updates per cycle");
        // the snapshot reflects exactly the reported updates
        for item in report.items() {
            let rec = b.current(item).unwrap();
            assert_eq!(rec.value().version(), Cycle::new(1));
        }
        // un-reported items are untouched
        let untouched = (0..100)
            .map(ItemId::new)
            .find(|x| !report.invalidates(*x))
            .unwrap();
        assert_eq!(
            b.current(untouched).unwrap().value(),
            bpush_types::ItemValue::initial()
        );
    }

    #[test]
    fn snapshot_is_cycle_consistent() {
        // Every value in the cycle-n bcast must have version <= n.
        let mut s = BroadcastServer::new(small_config(), ServerOptions::plain(), 2).unwrap();
        for _ in 0..5 {
            let b = s.run_cycle();
            for rec in b.records() {
                assert!(rec.value().version() <= b.cycle());
            }
        }
    }

    #[test]
    fn sgt_mode_broadcasts_control_info_and_tags() {
        let mut s = BroadcastServer::new(small_config(), ServerOptions::sgt(), 3).unwrap();
        s.run_cycle();
        let b = s.run_cycle();
        let diff = b.control().graph_diff().expect("diff broadcast");
        assert_eq!(diff.cycle(), Cycle::ZERO);
        assert_eq!(diff.committed().len(), 5);
        let aug = b.control().augmented().expect("augmented report");
        assert_eq!(aug.len(), 10);
        // every reported item's first writer committed during cycle 0
        for (_, t) in aug.entries() {
            assert_eq!(t.cycle(), Cycle::ZERO);
        }
        // updated items carry last-writer tags
        for item in b.control().invalidation().items() {
            let rec = b.current(item).unwrap();
            assert!(rec.last_writer().is_some());
            assert_eq!(rec.last_writer(), rec.value().writer());
        }
    }

    #[test]
    fn plain_mode_omits_sgt_info() {
        let mut s = BroadcastServer::new(small_config(), ServerOptions::plain(), 3).unwrap();
        s.run_cycle();
        let b = s.run_cycle();
        assert!(b.control().graph_diff().is_none());
        assert!(b.control().augmented().is_none());
        for rec in b.records() {
            assert!(rec.last_writer().is_none());
        }
    }

    #[test]
    fn multiversion_overflow_carries_old_versions() {
        let opts = ServerOptions::multiversion(MultiversionLayout::Overflow);
        let mut s = BroadcastServer::new(small_config(), opts, 4).unwrap();
        s.run_cycle();
        s.run_cycle();
        let b = s.run_cycle(); // cycle 2: items updated in cycles 0-1 have old versions
        assert!(b.overflow_slots() > 0, "old versions on air");
        // every item updated during cycle 1 has its pre-update value on air
        let report = b.control().invalidation();
        for item in report.items() {
            let old = b.old_versions_of(item);
            assert!(!old.is_empty(), "{item} lost its old version");
            // the old chain is strictly newer-first and all versions < current
            let cur = b.current(item).unwrap().value().version();
            for (_, v) in old {
                assert!(v.version() < cur);
            }
        }
    }

    #[test]
    fn multiversion_supports_span_bound() {
        let opts = ServerOptions::multiversion(MultiversionLayout::Overflow);
        let s = BroadcastServer::new(small_config(), opts, 4).unwrap();
        assert_eq!(s.span_supported(), 3);
        let p = BroadcastServer::new(small_config(), ServerOptions::plain(), 4).unwrap();
        assert_eq!(p.span_supported(), 1);
    }

    #[test]
    fn multiversion_read_rule_finds_snapshot_values() {
        // After several cycles, best_version_at_most(x, c0) must equal the
        // value x had at the beginning of cycle c0, for c0 within the span
        // window.
        let opts = ServerOptions::multiversion(MultiversionLayout::Overflow);
        let mut s = BroadcastServer::new(small_config(), opts, 5).unwrap();
        let mut snapshots = Vec::new();
        for _ in 0..6 {
            let b = s.run_cycle();
            let snap: std::collections::HashMap<ItemId, Cycle> = b
                .records()
                .map(|r| (r.item(), r.value().version()))
                .collect();
            snapshots.push(snap);
            if b.cycle().number() >= 2 {
                let c0 = b.cycle().prev(); // one cycle back: within span 3
                let want = &snapshots[c0.number() as usize];
                for i in 0..100u32 {
                    let item = ItemId::new(i);
                    let got = b
                        .best_version_at_most(item, c0)
                        .unwrap_or_else(|| panic!("{item} missing at {c0}"));
                    assert_eq!(got.1.version(), want[&item], "{item} at {c0}");
                }
            }
        }
    }

    #[test]
    fn windowed_reports_cover_multiple_cycles() {
        let config = ServerConfig {
            report_window: 3,
            ..small_config()
        };
        let mut s = BroadcastServer::new(config, ServerOptions::plain(), 6).unwrap();
        for _ in 0..4 {
            s.run_cycle();
        }
        let b = s.run_cycle(); // cycle 4 reports cycles 2-4's... window 3 => cycles 2,3 (and 4 not yet)
                               // ten distinct updates per cycle, overlapping hot sets: report is
                               // larger than a single cycle's worth but bounded by 3x
        let n = b.control().invalidation().len();
        assert!(n > 10, "windowed report covers several cycles: {n}");
        assert!(n <= 30);
        assert_eq!(b.control().invalidation().window(), 3);
    }

    #[test]
    fn bucket_granularity_report() {
        let config = ServerConfig {
            granularity: Granularity::Bucket,
            items_per_bucket: 10,
            ..small_config()
        };
        let mut s = BroadcastServer::new(config, ServerOptions::plain(), 7).unwrap();
        s.run_cycle();
        let b = s.run_cycle();
        let report = b.control().invalidation();
        assert!(report.len() <= 10, "at most one entry per bucket");
        assert!(report.buckets().count() > 0);
    }

    #[test]
    fn disks_mode_validates_partitioning() {
        let bad = ServerOptions {
            mode: BroadcastMode::Disks(vec![DiskSpec {
                items: 10,
                rel_freq: 2,
            }]),
            sgt_info: false,
        };
        assert!(BroadcastServer::new(small_config(), bad, 0).is_err());

        let good = ServerOptions {
            mode: BroadcastMode::Disks(vec![
                DiskSpec {
                    items: 20,
                    rel_freq: 2,
                },
                DiskSpec {
                    items: 80,
                    rel_freq: 1,
                },
            ]),
            sgt_info: false,
        };
        let mut s = BroadcastServer::new(small_config(), good, 0).unwrap();
        let b = s.run_cycle();
        assert_eq!(b.occurrences_of(ItemId::new(0)).len(), 2);
        assert_eq!(b.occurrences_of(ItemId::new(99)).len(), 1);
    }

    #[test]
    fn history_records_cycle_final_values() {
        let mut s = BroadcastServer::new(small_config(), ServerOptions::plain(), 8).unwrap();
        for _ in 0..3 {
            s.run_cycle();
        }
        assert!(s.history().total_writes() > 0);
        // every recorded write's version matches a cycle boundary <= now
        for i in 0..100u32 {
            for v in s.history().writes_of(ItemId::new(i)) {
                assert!(v.version() <= s.next_cycle());
            }
        }
    }

    #[test]
    fn gc_bounds_version_storage() {
        let opts = ServerOptions::multiversion(MultiversionLayout::Overflow);
        let mut s = BroadcastServer::new(small_config(), opts, 9).unwrap();
        for _ in 0..30 {
            s.run_cycle();
        }
        // at most span+1-ish versions per item survive GC
        let total = s.database().total_retained();
        assert!(
            total <= 100 * (3 + 1),
            "GC must bound retention, got {total}"
        );
    }
}
