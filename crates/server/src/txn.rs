//! Server update transactions.

use std::fmt;

use bpush_types::{ItemId, TxnId};

/// One committed server update transaction: its identifier, the items it
/// read and the items it wrote.
///
/// Following §3.3, the readset includes the writeset (every transaction
/// reads an item before writing it).
///
/// # Example
/// ```
/// use bpush_server::ServerTxn;
/// use bpush_types::{Cycle, ItemId, TxnId};
/// let t = ServerTxn::new(
///     TxnId::new(Cycle::new(1), 0),
///     vec![ItemId::new(1), ItemId::new(2)],
///     vec![ItemId::new(1)],
/// );
/// assert!(t.reads_item(ItemId::new(2)));
/// assert!(t.writes_item(ItemId::new(1)));
/// assert_eq!(t.ops(), 3);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServerTxn {
    id: TxnId,
    reads: Vec<ItemId>,
    writes: Vec<ItemId>,
}

impl ServerTxn {
    /// Creates a transaction.
    ///
    /// # Panics
    /// Panics if the readset does not include the writeset.
    pub fn new(id: TxnId, reads: Vec<ItemId>, writes: Vec<ItemId>) -> Self {
        assert!(
            writes.iter().all(|w| reads.contains(w)),
            "readset must include writeset (transactions read before writing)"
        );
        ServerTxn { id, reads, writes }
    }

    /// The transaction identifier (commit cycle + serial position).
    pub fn id(&self) -> TxnId {
        self.id
    }

    /// Items read (a superset of the items written).
    pub fn reads(&self) -> &[ItemId] {
        &self.reads
    }

    /// Items written.
    pub fn writes(&self) -> &[ItemId] {
        &self.writes
    }

    /// Whether the transaction read `item`.
    pub fn reads_item(&self, item: ItemId) -> bool {
        self.reads.contains(&item)
    }

    /// Whether the transaction wrote `item`.
    pub fn writes_item(&self, item: ItemId) -> bool {
        self.writes.contains(&item)
    }

    /// Total operations (`c` in the paper's size model): reads plus
    /// writes.
    pub fn ops(&self) -> usize {
        self.reads.len() + self.writes.len()
    }
}

impl fmt::Display for ServerTxn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}[r:{} w:{}]",
            self.id,
            self.reads.len(),
            self.writes.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bpush_types::Cycle;

    #[test]
    fn accessors() {
        let t = ServerTxn::new(
            TxnId::new(Cycle::new(2), 1),
            vec![ItemId::new(0), ItemId::new(1)],
            vec![ItemId::new(0)],
        );
        assert_eq!(t.id(), TxnId::new(Cycle::new(2), 1));
        assert_eq!(t.reads().len(), 2);
        assert_eq!(t.writes(), &[ItemId::new(0)]);
        assert!(t.reads_item(ItemId::new(1)));
        assert!(!t.writes_item(ItemId::new(1)));
        assert_eq!(t.ops(), 3);
        assert_eq!(t.to_string(), "T2.1[r:2 w:1]");
    }

    #[test]
    #[should_panic(expected = "readset must include writeset")]
    fn blind_writes_rejected() {
        let _ = ServerTxn::new(
            TxnId::new(Cycle::ZERO, 0),
            vec![ItemId::new(1)],
            vec![ItemId::new(2)],
        );
    }

    #[test]
    fn read_only_server_txn_is_allowed() {
        let t = ServerTxn::new(TxnId::new(Cycle::ZERO, 0), vec![ItemId::new(1)], vec![]);
        assert_eq!(t.ops(), 1);
        assert!(t.writes().is_empty());
    }
}
