//! The server update-transaction workload of §5.1.

use rand::rngs::StdRng;
use rand::SeedableRng;

use bpush_types::zipf::AccessPattern;
use bpush_types::{BpushError, Cycle, ItemId, ServerConfig, TxnId};

use crate::txn::ServerTxn;

/// A source of per-cycle server update transactions.
///
/// The default is the Zipf [`WorkloadGenerator`] of §5.1; tests and
/// applications can inject exact update sequences with
/// [`ScriptedWorkload`], or implement the trait for replayed traces.
pub trait WorkloadSource: std::fmt::Debug + Send {
    /// The transactions committed during `cycle`, in serial order. Ids
    /// must be `TxnId::new(cycle, 0..n)` and every transaction must read
    /// what it writes.
    fn generate_cycle(&mut self, cycle: Cycle) -> Vec<ServerTxn>;
}

/// Replays a fixed per-cycle script of update transactions; cycles beyond
/// the script commit nothing. Each scripted transaction writes (and
/// reads) exactly the listed items, so the server's resulting
/// [`crate::WriteHistory`] is a deterministic function of the script —
/// the construction the `bpush-mc` model checker enumerates over.
///
/// # Example
/// ```
/// use bpush_server::{ScriptedWorkload, WorkloadSource};
/// use bpush_types::{Cycle, ItemId};
///
/// // One transaction per cycle:
/// let mut w = ScriptedWorkload::new(vec![
///     vec![ItemId::new(1), ItemId::new(2)],
///     vec![],
///     vec![ItemId::new(1)],
/// ]);
/// assert_eq!(w.generate_cycle(Cycle::new(0)).len(), 1);
/// assert!(w.generate_cycle(Cycle::new(1)).is_empty());
/// assert_eq!(w.generate_cycle(Cycle::new(2))[0].writes().len(), 1);
/// assert!(w.generate_cycle(Cycle::new(3)).is_empty(), "script exhausted");
///
/// // Several transactions per cycle, in serial order:
/// let mut w = ScriptedWorkload::with_transactions(vec![vec![
///     vec![ItemId::new(1)],
///     vec![ItemId::new(2), ItemId::new(3)],
/// ]]);
/// let txns = w.generate_cycle(Cycle::new(0));
/// assert_eq!(txns.len(), 2);
/// assert_eq!(txns[1].writes().len(), 2);
/// ```
#[derive(Debug, Clone)]
pub struct ScriptedWorkload {
    /// Per cycle, the write sets of that cycle's transactions in serial
    /// order (empty write sets are dropped).
    script: Vec<Vec<Vec<ItemId>>>,
}

impl ScriptedWorkload {
    /// Creates the workload from per-cycle update sets, one transaction
    /// per non-empty cycle.
    pub fn new(script: Vec<Vec<ItemId>>) -> Self {
        ScriptedWorkload::with_transactions(script.into_iter().map(|w| vec![w]).collect())
    }

    /// Creates the workload from per-cycle *transaction* scripts: for
    /// each cycle, the write sets of the transactions committed during
    /// it, in serial order. Empty write sets are skipped so transaction
    /// sequence numbers stay contiguous from 0 as the
    /// [`WorkloadSource`] contract requires.
    pub fn with_transactions(script: Vec<Vec<Vec<ItemId>>>) -> Self {
        let script = script
            .into_iter()
            .map(|txns| txns.into_iter().filter(|w| !w.is_empty()).collect())
            .collect();
        ScriptedWorkload { script }
    }

    /// Number of scripted cycles.
    pub fn len(&self) -> usize {
        self.script.len()
    }

    /// Whether the script is empty.
    pub fn is_empty(&self) -> bool {
        self.script.is_empty()
    }
}

impl WorkloadSource for ScriptedWorkload {
    fn generate_cycle(&mut self, cycle: Cycle) -> Vec<ServerTxn> {
        let Ok(idx) = usize::try_from(cycle.number()) else {
            return Vec::new();
        };
        let txns = match self.script.get(idx) {
            Some(t) => t,
            None => return Vec::new(),
        };
        txns.iter()
            .zip(0u32..)
            .map(|(writes, seq)| {
                ServerTxn::new(TxnId::new(cycle, seq), writes.clone(), writes.clone())
            })
            .collect()
    }
}

/// Generates the per-cycle server transactions: `N` transactions that
/// together update `U` *distinct* items per cycle, each transaction
/// performing four reads per write, with both patterns Zipf(θ)-skewed.
/// The write pattern is shifted by the configured offset against the
/// (zero-offset) client read pattern; server reads have zero offset with
/// the server update set, exactly as in Figure 4.
///
/// # Example
/// ```
/// use bpush_server::WorkloadGenerator;
/// use bpush_types::{Cycle, ServerConfig};
///
/// let config = ServerConfig::default();
/// let mut gen = WorkloadGenerator::new(&config, 7)?;
/// let txns = gen.generate_cycle(Cycle::new(0));
/// assert_eq!(txns.len(), 10);
/// let updates: usize = txns.iter().map(|t| t.writes().len()).sum();
/// assert_eq!(updates, 50);
/// # Ok::<(), bpush_types::BpushError>(())
/// ```
#[derive(Debug)]
pub struct WorkloadGenerator {
    write_pattern: AccessPattern,
    read_pattern: AccessPattern,
    txns_per_cycle: u32,
    updates_per_cycle: u32,
    reads_per_write: u32,
    rng: StdRng,
}

impl WorkloadGenerator {
    /// Builds the generator from the server configuration.
    ///
    /// # Errors
    /// Returns [`BpushError::InvalidConfig`] if the configuration is
    /// invalid (see [`ServerConfig::validate`]).
    pub fn new(config: &ServerConfig, seed: u64) -> Result<Self, BpushError> {
        config.validate()?;
        // Writes: Zipf over the update range, shifted by the offset that
        // models disagreement with the client pattern.
        let write_pattern = AccessPattern::new(config.update_range, config.theta, config.offset)?;
        // Server reads: Zipf over the (wider) server read range with zero
        // offset relative to the update set, i.e. the same shift.
        let read_pattern =
            AccessPattern::new(config.server_read_range, config.theta, config.offset)?;
        Ok(WorkloadGenerator {
            write_pattern,
            read_pattern,
            txns_per_cycle: config.txns_per_cycle,
            updates_per_cycle: config.updates_per_cycle,
            reads_per_write: 4,
            rng: StdRng::seed_from_u64(seed),
        })
    }

    /// The write access pattern in use.
    pub fn write_pattern(&self) -> &AccessPattern {
        &self.write_pattern
    }

    /// Generates the transactions committed during `cycle`, in serial
    /// order.
    pub fn generate_cycle(&mut self, cycle: Cycle) -> Vec<ServerTxn> {
        self.generate_cycle_impl(cycle)
    }

    /// Generates the transactions committed during `cycle`, in serial
    /// order.
    fn generate_cycle_impl(&mut self, cycle: Cycle) -> Vec<ServerTxn> {
        // Draw the cycle's distinct update set, hottest-biased.
        let updates = self
            .write_pattern
            .sample_distinct(&mut self.rng, self.updates_per_cycle as usize);

        // Partition it among the N transactions round-robin so every
        // transaction gets ⌈U/N⌉ or ⌊U/N⌋ writes.
        let mut txns = Vec::with_capacity(self.txns_per_cycle as usize);
        for seq in 0..self.txns_per_cycle {
            let writes: Vec<ItemId> = updates
                .iter()
                .copied()
                .skip(seq as usize)
                .step_by(self.txns_per_cycle as usize)
                .collect();
            // Reads: the writes (read-before-write) plus 4 extra reads per
            // write from the server read pattern.
            let extra_reads = writes.len() * self.reads_per_write as usize;
            let mut reads = writes.clone();
            for _ in 0..extra_reads {
                reads.push(self.read_pattern.sample(&mut self.rng));
            }
            txns.push(ServerTxn::new(TxnId::new(cycle, seq), reads, writes));
        }
        txns
    }
}

impl WorkloadSource for WorkloadGenerator {
    fn generate_cycle(&mut self, cycle: Cycle) -> Vec<ServerTxn> {
        self.generate_cycle_impl(cycle)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    fn config() -> ServerConfig {
        ServerConfig::default()
    }

    #[test]
    fn cycle_updates_are_distinct_and_budgeted() {
        let mut gen = WorkloadGenerator::new(&config(), 1).unwrap();
        for c in 0..5 {
            let txns = gen.generate_cycle(Cycle::new(c));
            assert_eq!(txns.len(), 10);
            let all_writes: Vec<ItemId> = txns
                .iter()
                .flat_map(|t| t.writes().iter().copied())
                .collect();
            assert_eq!(all_writes.len(), 50);
            let distinct: HashSet<_> = all_writes.iter().collect();
            assert_eq!(distinct.len(), 50, "updates are distinct within a cycle");
        }
    }

    #[test]
    fn writes_stay_in_update_range() {
        let mut gen = WorkloadGenerator::new(&config(), 2).unwrap();
        let txns = gen.generate_cycle(Cycle::ZERO);
        for t in &txns {
            for w in t.writes() {
                assert!(w.index() < 500, "update range is 500");
            }
        }
    }

    #[test]
    fn reads_are_four_times_writes() {
        let mut gen = WorkloadGenerator::new(&config(), 3).unwrap();
        let txns = gen.generate_cycle(Cycle::ZERO);
        for t in &txns {
            assert_eq!(t.reads().len(), t.writes().len() * 5, "writes + 4x reads");
        }
    }

    #[test]
    fn serial_order_ids() {
        let mut gen = WorkloadGenerator::new(&config(), 4).unwrap();
        let txns = gen.generate_cycle(Cycle::new(7));
        for (i, t) in txns.iter().enumerate() {
            assert_eq!(t.id(), TxnId::new(Cycle::new(7), i as u32));
        }
    }

    #[test]
    fn offset_shifts_write_hot_spot() {
        let cfg_hot = ServerConfig {
            offset: 0,
            ..config()
        };
        let cfg_shifted = ServerConfig {
            offset: 250,
            ..config()
        };
        let count_low = |cfg: &ServerConfig| -> usize {
            let mut gen = WorkloadGenerator::new(cfg, 5).unwrap();
            (0..20)
                .flat_map(|c| gen.generate_cycle(Cycle::new(c)))
                .flat_map(|t| t.writes().to_vec())
                .filter(|w| w.index() < 50)
                .count()
        };
        assert!(
            count_low(&cfg_hot) > 3 * count_low(&cfg_shifted),
            "zero offset concentrates updates on the client-hot low items"
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let mut a = WorkloadGenerator::new(&config(), 9).unwrap();
        let mut b = WorkloadGenerator::new(&config(), 9).unwrap();
        assert_eq!(a.generate_cycle(Cycle::ZERO), b.generate_cycle(Cycle::ZERO));
    }

    #[test]
    fn scripted_multi_txn_cycles_keep_serial_order() {
        let x = ItemId::new;
        let mut w = ScriptedWorkload::with_transactions(vec![
            vec![vec![x(0)], vec![], vec![x(1), x(2)]],
            vec![],
            vec![vec![x(0)]],
        ]);
        assert_eq!(w.len(), 3);
        assert!(!w.is_empty());
        let c0 = w.generate_cycle(Cycle::ZERO);
        assert_eq!(c0.len(), 2, "empty write sets are dropped");
        assert_eq!(c0[0].id(), TxnId::new(Cycle::ZERO, 0));
        assert_eq!(c0[1].id(), TxnId::new(Cycle::ZERO, 1));
        assert_eq!(c0[1].writes(), &[x(1), x(2)]);
        assert_eq!(c0[1].reads(), c0[1].writes(), "txns read what they write");
        assert!(w.generate_cycle(Cycle::new(1)).is_empty());
        assert_eq!(w.generate_cycle(Cycle::new(2)).len(), 1);
        assert!(w.generate_cycle(Cycle::new(9)).is_empty());
    }

    #[test]
    fn invalid_config_is_rejected() {
        let bad = ServerConfig {
            update_range: 0,
            ..config()
        };
        assert!(WorkloadGenerator::new(&bad, 0).is_err());
    }
}
