//! Conflict tracking among committed server transactions.
//!
//! The SGT method (§3.3) needs, each cycle, the *difference* of the
//! server's conflict serialization graph: for every transaction committed
//! during the cycle, the edges connecting it to previously committed
//! transactions, plus the augmented invalidation report mapping every
//! updated item to the *first* transaction that wrote it during the cycle
//! (Claim 2). [`ConflictTracker`] derives both from the committed
//! transactions as they are fed through it in serial order.
//!
//! Edge rules (standard conflict serializability, with histories strict
//! and serial):
//!
//! * dependency: `last_writer(x) → T` when `T` reads `x`,
//! * write–write: `last_writer(x) → T` when `T` writes `x`,
//! * precedence (anti-dependency): `R' → T` for every transaction `R'`
//!   that read `x` since its last write, when `T` writes `x`.

use std::collections::{BTreeMap, BTreeSet};

use bpush_sgraph::GraphDiff;
use bpush_types::{Cycle, ItemId, TxnId};

use crate::txn::ServerTxn;

/// Derives per-cycle SGT control information from the serial commit
/// stream.
#[derive(Debug, Clone)]
pub struct ConflictTracker {
    last_writer: BTreeMap<ItemId, TxnId>,
    readers_since_write: BTreeMap<ItemId, BTreeSet<TxnId>>,
    /// Readers older than this many cycles are pruned at cycle end; any
    /// precedence edge they could still induce would be pruned at the
    /// client anyway (Lemma 1 keeps only the last `S` subgraphs).
    reader_horizon: u32,
    // per-cycle accumulation
    cycle_edges: Vec<(TxnId, TxnId)>,
    cycle_edge_set: BTreeSet<(TxnId, TxnId)>,
    cycle_committed: Vec<TxnId>,
    cycle_first_writers: BTreeMap<ItemId, TxnId>,
}

impl ConflictTracker {
    /// Creates a tracker. `reader_horizon` bounds how many cycles a
    /// read-item record is retained for precedence-edge derivation; it
    /// must be at least the largest client span of interest.
    ///
    /// # Panics
    /// Panics if `reader_horizon` is zero.
    pub fn new(reader_horizon: u32) -> Self {
        assert!(reader_horizon > 0, "reader horizon must be positive");
        ConflictTracker {
            last_writer: BTreeMap::new(),
            readers_since_write: BTreeMap::new(),
            reader_horizon,
            cycle_edges: Vec::new(),
            cycle_edge_set: BTreeSet::new(),
            cycle_committed: Vec::new(),
            cycle_first_writers: BTreeMap::new(),
        }
    }

    fn push_edge(&mut self, from: TxnId, to: TxnId) {
        if from == to {
            return;
        }
        debug_assert!(
            from < to,
            "conflict edges run old -> new in a serial history"
        );
        if self.cycle_edge_set.insert((from, to)) {
            self.cycle_edges.push((from, to));
        }
    }

    /// Processes a committed transaction. Transactions must be fed in
    /// serial order; all of a cycle's transactions must be committed
    /// before [`ConflictTracker::end_cycle`] is called for it.
    pub fn commit(&mut self, txn: &ServerTxn) {
        let id = txn.id();
        self.cycle_committed.push(id);
        for &x in txn.reads() {
            if let Some(&w) = self.last_writer.get(&x) {
                self.push_edge(w, id);
            }
            self.readers_since_write.entry(x).or_default().insert(id);
        }
        for &x in txn.writes() {
            if let Some(readers) = self.readers_since_write.get(&x) {
                let edges: Vec<TxnId> = readers.iter().copied().filter(|&r| r != id).collect();
                for r in edges {
                    self.push_edge(r, id);
                }
            }
            if let Some(&w) = self.last_writer.get(&x) {
                self.push_edge(w, id);
            }
            self.last_writer.insert(x, id);
            self.readers_since_write.insert(x, BTreeSet::from([id]));
            self.cycle_first_writers.entry(x).or_insert(id);
        }
    }

    /// Closes `cycle`, returning the graph difference and the
    /// `(item → first writer)` entries for the augmented report. Both are
    /// broadcast at the beginning of cycle `cycle + 1`.
    pub fn end_cycle(&mut self, cycle: Cycle) -> (GraphDiff, Vec<(ItemId, TxnId)>) {
        debug_assert!(
            self.cycle_committed.iter().all(|t| t.cycle() == cycle),
            "all buffered commits must belong to the closing cycle"
        );
        let diff = GraphDiff::new(
            cycle,
            std::mem::take(&mut self.cycle_committed),
            std::mem::take(&mut self.cycle_edges),
        );
        self.cycle_edge_set.clear();
        let mut first_writers: Vec<(ItemId, TxnId)> = std::mem::take(&mut self.cycle_first_writers)
            .into_iter()
            .collect();
        first_writers.sort();

        // prune stale readers
        if let Some(horizon_start) = cycle.checked_sub(u64::from(self.reader_horizon)) {
            for readers in self.readers_since_write.values_mut() {
                readers.retain(|t| t.cycle() >= horizon_start);
            }
            self.readers_since_write.retain(|_, r| !r.is_empty());
        }
        (diff, first_writers)
    }

    /// The last committed writer of `item`, if any.
    pub fn last_writer(&self, item: ItemId) -> Option<TxnId> {
        self.last_writer.get(&item).copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn id(cycle: u64, seq: u32) -> TxnId {
        TxnId::new(Cycle::new(cycle), seq)
    }

    fn x(i: u32) -> ItemId {
        ItemId::new(i)
    }

    #[test]
    fn dependency_edge_from_last_writer() {
        let mut tr = ConflictTracker::new(8);
        tr.commit(&ServerTxn::new(id(0, 0), vec![x(1)], vec![x(1)]));
        let (d0, fw0) = tr.end_cycle(Cycle::new(0));
        assert_eq!(d0.committed(), &[id(0, 0)]);
        assert!(d0.edges().is_empty(), "first writer conflicts with nobody");
        assert_eq!(fw0, vec![(x(1), id(0, 0))]);

        // next cycle: a reader of x(1) depends on the writer
        tr.commit(&ServerTxn::new(id(1, 0), vec![x(1)], vec![]));
        let (d1, fw1) = tr.end_cycle(Cycle::new(1));
        assert_eq!(d1.edges(), &[(id(0, 0), id(1, 0))]);
        assert!(fw1.is_empty());
    }

    #[test]
    fn precedence_edge_from_earlier_reader() {
        let mut tr = ConflictTracker::new(8);
        tr.commit(&ServerTxn::new(id(0, 0), vec![x(5)], vec![])); // reads x5
        tr.end_cycle(Cycle::new(0));
        tr.commit(&ServerTxn::new(id(1, 0), vec![x(5)], vec![x(5)])); // overwrites it
        let (d, fw) = tr.end_cycle(Cycle::new(1));
        assert_eq!(d.edges(), &[(id(0, 0), id(1, 0))]);
        assert_eq!(fw, vec![(x(5), id(1, 0))]);
    }

    #[test]
    fn write_write_edge_and_first_writer_per_cycle() {
        let mut tr = ConflictTracker::new(8);
        tr.commit(&ServerTxn::new(id(0, 0), vec![x(2)], vec![x(2)]));
        tr.commit(&ServerTxn::new(id(0, 1), vec![x(2)], vec![x(2)]));
        let (d, fw) = tr.end_cycle(Cycle::new(0));
        // T0.1 read x2 (from T0.0) and overwrote it: one deduped edge
        assert_eq!(d.edges(), &[(id(0, 0), id(0, 1))]);
        // the first writer of the cycle is T0.0, not the last
        assert_eq!(fw, vec![(x(2), id(0, 0))]);
        assert_eq!(tr.last_writer(x(2)), Some(id(0, 1)));
    }

    #[test]
    fn no_self_edges() {
        let mut tr = ConflictTracker::new(8);
        // reads then writes the same item: reader set contains itself
        tr.commit(&ServerTxn::new(id(0, 0), vec![x(1)], vec![x(1)]));
        let (d, _) = tr.end_cycle(Cycle::new(0));
        assert!(d.edges().is_empty());
    }

    #[test]
    fn edges_are_deduped() {
        let mut tr = ConflictTracker::new(8);
        tr.commit(&ServerTxn::new(
            id(0, 0),
            vec![x(1), x(2)],
            vec![x(1), x(2)],
        ));
        tr.end_cycle(Cycle::new(0));
        // reads both items written by T0.0 -> still a single edge
        tr.commit(&ServerTxn::new(id(1, 0), vec![x(1), x(2)], vec![]));
        let (d, _) = tr.end_cycle(Cycle::new(1));
        assert_eq!(d.edges().len(), 1);
    }

    #[test]
    fn reader_horizon_prunes_stale_readers() {
        let mut tr = ConflictTracker::new(2);
        tr.commit(&ServerTxn::new(id(0, 0), vec![x(9)], vec![]));
        tr.end_cycle(Cycle::new(0));
        for c in 1..5u64 {
            tr.end_cycle(Cycle::new(c));
        }
        // the cycle-0 reader is long outside the horizon; overwriting x9
        // yields no precedence edge anymore
        tr.commit(&ServerTxn::new(id(5, 0), vec![x(9)], vec![x(9)]));
        let (d, _) = tr.end_cycle(Cycle::new(5));
        assert!(d.edges().is_empty());
    }

    #[test]
    fn multi_cycle_chain_builds_transitive_path() {
        let mut tr = ConflictTracker::new(8);
        tr.commit(&ServerTxn::new(id(0, 0), vec![x(1)], vec![x(1)]));
        tr.end_cycle(Cycle::new(0));
        tr.commit(&ServerTxn::new(id(1, 0), vec![x(1), x(2)], vec![x(2)]));
        let (d1, _) = tr.end_cycle(Cycle::new(1));
        tr.commit(&ServerTxn::new(id(2, 0), vec![x(2), x(3)], vec![x(3)]));
        let (d2, _) = tr.end_cycle(Cycle::new(2));
        // apply both diffs to a graph: path T0.0 -> T1.0 -> T2.0
        let mut g = bpush_sgraph::SerializationGraph::new();
        g.apply_diff(&d1);
        g.apply_diff(&d2);
        assert!(g.path_exists(
            bpush_sgraph::Node::Txn(id(0, 0)),
            bpush_sgraph::Node::Txn(id(2, 0))
        ));
        assert!(g.is_acyclic());
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_horizon_rejected() {
        let _ = ConflictTracker::new(0);
    }
}
