//! Property tests for the workload and statistics substrate.

// Integration tests are exempt from the panic-freedom policy
// (mirrors `allow-unwrap-in-tests` in clippy.toml and the `#[cfg(test)]`
// carve-out in `cargo xtask lint`).
#![allow(clippy::unwrap_used)]
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

use bpush_types::seed::SeedSequence;
use bpush_types::stats::{Ratio, Summary};
use bpush_types::zipf::{AccessPattern, ZipfSampler};
use bpush_types::ItemId;

proptest! {
    /// The Zipf pmf is a proper, monotonically decreasing distribution
    /// for any valid (n, θ).
    #[test]
    fn zipf_is_a_distribution(n in 1usize..300, theta in 0.0f64..2.0) {
        let z = ZipfSampler::new(n, theta).expect("valid");
        let total: f64 = (0..n).map(|i| z.pmf(i)).sum();
        prop_assert!((total - 1.0).abs() < 1e-6);
        for i in 1..n {
            prop_assert!(z.pmf(i) <= z.pmf(i - 1) + 1e-12);
        }
    }

    /// Samples always fall in range, and the pattern's offset is a pure
    /// rotation: access probabilities are a permutation of the pmf.
    #[test]
    fn pattern_offset_is_a_rotation(
        range in 1u32..200,
        theta in 0.0f64..1.5,
        offset in 0u32..500,
        seed in 0u64..1000,
    ) {
        let p = AccessPattern::new(range, theta, offset).expect("valid");
        let mut rng = StdRng::seed_from_u64(seed);
        for _ in 0..32 {
            prop_assert!(p.sample(&mut rng).index() < range);
        }
        let total: f64 = (0..range).map(|i| p.access_probability(ItemId::new(i))).sum();
        prop_assert!((total - 1.0).abs() < 1e-6);
        // the hottest item carries the rank-0 mass
        let z = ZipfSampler::new(range as usize, theta).expect("valid");
        prop_assert!((p.access_probability(p.hottest()) - z.pmf(0)).abs() < 1e-12);
    }

    /// `sample_distinct` returns exactly-n distinct in-range items for
    /// any feasible n.
    #[test]
    fn sample_distinct_properties(
        range in 1u32..64,
        theta in 0.0f64..1.5,
        frac in 0.0f64..1.0,
        seed in 0u64..1000,
    ) {
        let n = ((f64::from(range) * frac) as usize).max(1).min(range as usize);
        let p = AccessPattern::new(range, theta, 0).expect("valid");
        let mut rng = StdRng::seed_from_u64(seed);
        let items = p.sample_distinct(&mut rng, n);
        prop_assert_eq!(items.len(), n);
        let set: std::collections::HashSet<_> = items.iter().collect();
        prop_assert_eq!(set.len(), n);
        prop_assert!(items.iter().all(|x| x.index() < range));
    }

    /// Summary::merge is associative-enough: merging any split equals the
    /// sequential summary (mean/variance/extremes).
    #[test]
    fn summary_merge_equals_sequential(
        xs in proptest::collection::vec(-1e6f64..1e6, 0..200),
        split in 0usize..200,
    ) {
        let split = split.min(xs.len());
        let whole: Summary = xs.iter().copied().collect();
        let mut left: Summary = xs[..split].iter().copied().collect();
        let right: Summary = xs[split..].iter().copied().collect();
        left.merge(&right);
        prop_assert_eq!(left.count(), whole.count());
        prop_assert!((left.mean() - whole.mean()).abs() <= 1e-6 * (1.0 + whole.mean().abs()));
        prop_assert!(
            (left.variance() - whole.variance()).abs()
                <= 1e-5 * (1.0 + whole.variance().abs())
        );
        prop_assert_eq!(left.min(), whole.min());
        prop_assert_eq!(left.max(), whole.max());
    }

    /// Ratio bookkeeping is exact under merging.
    #[test]
    fn ratio_merge_is_exact(
        a in proptest::collection::vec(proptest::bool::ANY, 0..100),
        b in proptest::collection::vec(proptest::bool::ANY, 0..100),
    ) {
        let mut ra = Ratio::new();
        for &x in &a { ra.record(x); }
        let mut rb = Ratio::new();
        for &x in &b { rb.record(x); }
        ra.merge(&rb);
        let hits = a.iter().chain(&b).filter(|&&x| x).count() as u64;
        prop_assert_eq!(ra.hits(), hits);
        prop_assert_eq!(ra.total(), (a.len() + b.len()) as u64);
    }

    /// Seed derivation: distinct paths (under a shared root) never
    /// collide in practice, and derivation is stable.
    #[test]
    fn seed_paths_do_not_collide(root in 0u64..10_000, a in 0u32..500, b in 0u32..500) {
        prop_assume!(a != b);
        let seq = SeedSequence::new(root);
        let sa = seq.derive(&["client", &a.to_string()]);
        let sb = seq.derive(&["client", &b.to_string()]);
        prop_assert_ne!(sa, sb);
        prop_assert_eq!(sa, SeedSequence::new(root).derive(&["client", &a.to_string()]));
    }
}
