//! Skewed access-pattern generation (the workload model of §5.1).
//!
//! The paper drives both the client read pattern and the server update
//! pattern from Zipf distributions with parameter `θ` over sub-ranges of
//! the broadcast set, with an *offset* parameter that shifts one
//! distribution relative to the other to model disagreement between what
//! clients read and what the server updates.
//!
//! [`ZipfSampler`] samples ranks from a finite Zipf distribution;
//! [`AccessPattern`] maps sampled ranks onto item identifiers within a
//! range and applies the offset shift.

use rand::Rng;

use crate::error::BpushError;
use crate::ids::ItemId;

/// A finite Zipf(θ) distribution over ranks `0..n` (rank 0 hottest).
///
/// Probability of rank `i` is proportional to `1 / (i + 1)^θ`. `θ = 0`
/// degenerates to the uniform distribution; the paper's default is
/// `θ = 0.95`. Sampling is `O(log n)` by binary search over the
/// precomputed CDF.
///
/// # Example
/// ```
/// use bpush_types::zipf::ZipfSampler;
/// use rand::SeedableRng;
///
/// let zipf = ZipfSampler::new(100, 0.95)?;
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let rank = zipf.sample(&mut rng);
/// assert!(rank < 100);
/// # Ok::<(), bpush_types::BpushError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ZipfSampler {
    /// Cumulative distribution; `cdf[i]` is `P(rank <= i)`, `cdf[n-1] == 1`.
    cdf: Vec<f64>,
    theta: f64,
}

impl ZipfSampler {
    /// Builds a Zipf sampler over `n` ranks with skew `theta`.
    ///
    /// # Errors
    /// Returns [`BpushError::InvalidConfig`] if `n == 0`, or if `theta` is
    /// negative or not finite.
    pub fn new(n: usize, theta: f64) -> Result<Self, BpushError> {
        if n == 0 {
            return Err(BpushError::invalid_config("zipf range must be non-empty"));
        }
        if !theta.is_finite() || theta < 0.0 {
            return Err(BpushError::invalid_config(
                "zipf theta must be finite and non-negative",
            ));
        }
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for i in 0..n {
            acc += 1.0 / ((i + 1) as f64).powf(theta);
            cdf.push(acc);
        }
        // lint: allow(panic) — n == 0 was rejected above
        let total = *cdf.last().expect("n > 0");
        for p in &mut cdf {
            *p /= total;
        }
        Ok(ZipfSampler { cdf, theta })
    }

    /// Number of ranks.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// Whether the distribution has a single rank.
    pub fn is_empty(&self) -> bool {
        false // construction guarantees n > 0; kept for C-ITER symmetry
    }

    /// The skew parameter θ.
    pub fn theta(&self) -> f64 {
        self.theta
    }

    /// Probability mass of `rank`.
    ///
    /// # Panics
    /// Panics if `rank` is out of range.
    pub fn pmf(&self, rank: usize) -> f64 {
        if rank == 0 {
            self.cdf[0]
        } else {
            self.cdf[rank] - self.cdf[rank - 1]
        }
    }

    /// Samples a rank in `0..self.len()`, rank 0 being the hottest.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.gen();
        // partition_point returns the first index whose cdf >= u.
        self.cdf.partition_point(|&p| p < u).min(self.cdf.len() - 1)
    }
}

/// A Zipf access pattern over a contiguous range of items with an offset
/// shift, as used for both client reads and server writes in §5.1.
///
/// Rank `r` (0 = hottest) maps to item `(r + offset) mod range_len`.
/// With `offset = 0` the hottest item of this pattern is item 0 — the same
/// as every other zero-offset pattern, which models maximum overlap
/// between the client read set and the server update set; increasing
/// `offset` shifts the hot spot away.
///
/// # Example
/// ```
/// use bpush_types::zipf::AccessPattern;
/// use rand::SeedableRng;
///
/// let reads = AccessPattern::new(500, 0.95, 0)?;
/// let writes = AccessPattern::new(500, 0.95, 100)?;
/// assert_eq!(reads.hottest().index(), 0);
/// assert_eq!(writes.hottest().index(), 100);
/// let mut rng = rand::rngs::StdRng::seed_from_u64(7);
/// assert!(reads.sample(&mut rng).index() < 500);
/// # Ok::<(), bpush_types::BpushError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct AccessPattern {
    zipf: ZipfSampler,
    range_len: u32,
    offset: u32,
}

impl AccessPattern {
    /// Builds an access pattern over items `0..range_len` with skew
    /// `theta`, hot spot shifted by `offset` positions.
    ///
    /// # Errors
    /// Returns [`BpushError::InvalidConfig`] if `range_len == 0` or
    /// `theta` is invalid (see [`ZipfSampler::new`]).
    pub fn new(range_len: u32, theta: f64, offset: u32) -> Result<Self, BpushError> {
        let zipf = ZipfSampler::new(range_len as usize, theta)?;
        Ok(AccessPattern {
            zipf,
            range_len,
            offset: offset % range_len,
        })
    }

    /// The item a given rank maps to.
    ///
    /// # Panics
    /// Panics if `rank >= self.range_len()`.
    pub fn item_at_rank(&self, rank: u32) -> ItemId {
        assert!(rank < self.range_len, "rank out of range");
        ItemId::new((rank + self.offset) % self.range_len)
    }

    /// The most frequently accessed item.
    pub fn hottest(&self) -> ItemId {
        self.item_at_rank(0)
    }

    /// Number of distinct items this pattern can produce.
    pub fn range_len(&self) -> u32 {
        self.range_len
    }

    /// The configured hot-spot shift.
    pub fn offset(&self) -> u32 {
        self.offset
    }

    /// Probability that a single access hits `item`.
    pub fn access_probability(&self, item: ItemId) -> f64 {
        if item.index() >= self.range_len {
            return 0.0;
        }
        let rank = ((u64::from(item.index()) + u64::from(self.range_len) - u64::from(self.offset))
            % u64::from(self.range_len)) as u32;
        self.zipf.pmf(rank as usize)
    }

    /// Samples one item access.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> ItemId {
        self.item_at_rank(self.zipf.sample(rng) as u32)
    }

    /// Samples `n` *distinct* items, hottest-biased, in sample order.
    ///
    /// This is used to draw a query's readset and a server transaction's
    /// write set. Rejection sampling is fine because `n` is always far
    /// smaller than the range in the paper's parameter space.
    ///
    /// # Panics
    /// Panics if `n` exceeds the range length (a distinct draw would never
    /// terminate).
    pub fn sample_distinct<R: Rng + ?Sized>(&self, rng: &mut R, n: usize) -> Vec<ItemId> {
        assert!(
            n <= self.range_len as usize,
            "cannot draw {n} distinct items from a range of {}",
            self.range_len
        );
        let mut out = Vec::with_capacity(n);
        // Membership-only set: BTreeSet keeps the whole sampling path
        // free of hash-order dependence (and off the L11 taint radar).
        let mut seen = std::collections::BTreeSet::new();
        // Guard against pathological rejection by falling back to a sweep
        // once we have rejected too many times (only reachable when n is
        // close to the range length).
        let mut rejections = 0usize;
        while out.len() < n {
            let x = self.sample(rng);
            if seen.insert(x) {
                out.push(x);
            } else {
                rejections += 1;
                if rejections > 64 * n + 1024 {
                    for raw in 0..self.range_len {
                        let x = ItemId::new(raw);
                        if out.len() < n && seen.insert(x) {
                            out.push(x);
                        }
                    }
                }
            }
        }
        out
    }
}

/// Degree of overlap between two access patterns: the probability mass
/// that pattern `a` places on the `k` hottest items of pattern `b`.
///
/// Used by experiments to report the read/update overlap that Figure 5
/// (right) sweeps via the offset parameter.
pub fn overlap(a: &AccessPattern, b: &AccessPattern, k: u32) -> f64 {
    (0..k.min(b.range_len()))
        .map(|rank| a.access_probability(b.item_at_rank(rank)))
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn zipf_rejects_bad_params() {
        assert!(ZipfSampler::new(0, 0.95).is_err());
        assert!(ZipfSampler::new(10, -1.0).is_err());
        assert!(ZipfSampler::new(10, f64::NAN).is_err());
        assert!(ZipfSampler::new(10, f64::INFINITY).is_err());
    }

    #[test]
    fn zipf_cdf_is_normalized_and_monotone() {
        let z = ZipfSampler::new(100, 0.95).unwrap();
        assert_eq!(z.len(), 100);
        assert!((z.cdf.last().unwrap() - 1.0).abs() < 1e-12);
        for w in z.cdf.windows(2) {
            assert!(w[0] < w[1]);
        }
    }

    #[test]
    fn zipf_pmf_sums_to_one_and_decreases() {
        let z = ZipfSampler::new(50, 0.95).unwrap();
        let total: f64 = (0..50).map(|i| z.pmf(i)).sum();
        assert!((total - 1.0).abs() < 1e-9);
        for i in 1..50 {
            assert!(z.pmf(i) < z.pmf(i - 1));
        }
    }

    #[test]
    fn zipf_theta_zero_is_uniform() {
        let z = ZipfSampler::new(10, 0.0).unwrap();
        for i in 0..10 {
            assert!((z.pmf(i) - 0.1).abs() < 1e-12);
        }
    }

    #[test]
    fn zipf_sampling_respects_skew() {
        let z = ZipfSampler::new(100, 0.95).unwrap();
        let mut rng = StdRng::seed_from_u64(42);
        let mut counts = [0usize; 100];
        for _ in 0..50_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        // Hottest rank must dominate a mid and a cold rank decisively.
        assert!(counts[0] > counts[10] && counts[10] > counts[90]);
        // Empirical mass of rank 0 within 20% of pmf.
        let emp = counts[0] as f64 / 50_000.0;
        assert!((emp - z.pmf(0)).abs() < 0.2 * z.pmf(0));
    }

    #[test]
    fn pattern_offset_shifts_hot_spot() {
        let p = AccessPattern::new(500, 0.95, 100).unwrap();
        assert_eq!(p.hottest(), ItemId::new(100));
        assert_eq!(p.item_at_rank(1), ItemId::new(101));
        // wraps around the range
        assert_eq!(p.item_at_rank(499), ItemId::new(99));
        assert_eq!(p.offset(), 100);
        assert_eq!(p.range_len(), 500);
    }

    #[test]
    fn pattern_offset_wraps_modulo_range() {
        let p = AccessPattern::new(100, 0.5, 250).unwrap();
        assert_eq!(p.offset(), 50);
    }

    #[test]
    fn access_probability_matches_rank_pmf() {
        let p = AccessPattern::new(100, 0.95, 30).unwrap();
        let z = ZipfSampler::new(100, 0.95).unwrap();
        assert!((p.access_probability(ItemId::new(30)) - z.pmf(0)).abs() < 1e-12);
        assert!((p.access_probability(ItemId::new(31)) - z.pmf(1)).abs() < 1e-12);
        assert_eq!(p.access_probability(ItemId::new(100)), 0.0);
    }

    #[test]
    fn sample_distinct_yields_unique_items() {
        let p = AccessPattern::new(50, 0.95, 0).unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        let items = p.sample_distinct(&mut rng, 20);
        assert_eq!(items.len(), 20);
        let set: std::collections::HashSet<_> = items.iter().collect();
        assert_eq!(set.len(), 20);
    }

    #[test]
    fn sample_distinct_full_range_terminates() {
        let p = AccessPattern::new(16, 1.2, 3).unwrap();
        let mut rng = StdRng::seed_from_u64(5);
        let items = p.sample_distinct(&mut rng, 16);
        let set: std::collections::HashSet<_> = items.iter().collect();
        assert_eq!(set.len(), 16);
    }

    #[test]
    #[should_panic(expected = "distinct items")]
    fn sample_distinct_overdraw_panics() {
        let p = AccessPattern::new(4, 0.95, 0).unwrap();
        let mut rng = StdRng::seed_from_u64(5);
        let _ = p.sample_distinct(&mut rng, 5);
    }

    #[test]
    fn overlap_decreases_with_offset() {
        let reads = AccessPattern::new(500, 0.95, 0).unwrap();
        let w0 = AccessPattern::new(500, 0.95, 0).unwrap();
        let w100 = AccessPattern::new(500, 0.95, 100).unwrap();
        let w250 = AccessPattern::new(500, 0.95, 250).unwrap();
        let o0 = overlap(&reads, &w0, 50);
        let o100 = overlap(&reads, &w100, 50);
        let o250 = overlap(&reads, &w250, 50);
        assert!(o0 > o100, "offset 0 must overlap most: {o0} vs {o100}");
        assert!(
            o100 > o250,
            "overlap must fall with offset: {o100} vs {o250}"
        );
    }
}
