//! Summary statistics used by the experiment harness.

use std::fmt;

/// Scale of the fixed-point observation quantization: 2⁻²⁰ (about six
/// decimal digits of fraction). Integer-valued observations — most of
/// the harness's metrics — are represented exactly.
const SCALE: f64 = (1u64 << 20) as f64;

/// Running summary of a stream of observations, kept as exact
/// fixed-point integer sums.
///
/// Observations are quantized to multiples of 2⁻²⁰ at [`Summary::record`]
/// time and accumulated as 128-bit integer sums of values and squared
/// values. Integer addition is associative and commutative, so
/// [`Summary::merge`] is *exact*: however a stream is partitioned into
/// sub-summaries, merging them in any grouping or order reproduces the
/// bit-identical summary — the property the sharded runner's
/// shard-count invariance rests on (DESIGN §8a). The previous Welford
/// representation merged means and M2 terms in floating point, which
/// drifted by last-ulp amounts depending on the grouping.
///
/// # Example
/// ```
/// use bpush_types::stats::Summary;
/// let mut s = Summary::new();
/// for x in [1.0, 2.0, 3.0, 4.0] {
///     s.record(x);
/// }
/// assert_eq!(s.count(), 4);
/// assert!((s.mean() - 2.5).abs() < 1e-12);
/// assert!((s.variance() - 5.0 / 3.0).abs() < 1e-12);
/// assert_eq!(s.min(), Some(1.0));
/// assert_eq!(s.max(), Some(4.0));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Summary {
    count: u64,
    /// Σ round(x·2²⁰), exact.
    sum: i128,
    /// Σ round(x·2²⁰)², exact.
    sum_sq: i128,
    min: f64,
    max: f64,
}

impl Summary {
    /// An empty summary.
    pub fn new() -> Self {
        Summary {
            count: 0,
            sum: 0,
            sum_sq: 0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Records one observation.
    pub fn record(&mut self, x: f64) {
        self.count += 1;
        // `as` conversion saturates at the i128 range and maps NaN to 0
        let q = (x * SCALE).round() as i128;
        self.sum = self.sum.saturating_add(q);
        self.sum_sq = self.sum_sq.saturating_add(q.saturating_mul(q));
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Arithmetic mean; 0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            (self.sum as f64 / SCALE) / self.count as f64
        }
    }

    /// Unbiased sample variance; 0 with fewer than two observations.
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            return 0.0;
        }
        let n = i128::from(self.count);
        // n·Σq² − (Σq)² ≥ 0 holds exactly on the integer sums
        // (Cauchy–Schwarz); checked arithmetic guards the astronomically
        // unlikely i128 overflow, falling back to a float evaluation of
        // the same sums — still a pure function of the exact sums, so
        // merge exactness is unaffected.
        let numerator = n
            .checked_mul(self.sum_sq)
            .zip(self.sum.checked_mul(self.sum))
            .map_or_else(
                || {
                    let nf = self.count as f64;
                    (nf * self.sum_sq as f64 - self.sum as f64 * self.sum as f64).max(0.0)
                },
                |(a, b)| (a - b) as f64,
            );
        let nf = self.count as f64;
        numerator / (nf * (nf - 1.0)) / (SCALE * SCALE)
    }

    /// Sample standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest observation, if any.
    pub fn min(&self) -> Option<f64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest observation, if any.
    pub fn max(&self) -> Option<f64> {
        (self.count > 0).then_some(self.max)
    }

    /// Merges another summary into this one (parallel sweeps). Exact:
    /// integer sums add, so merging commutes and associates bit for bit.
    pub fn merge(&mut self, other: &Summary) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.sum_sq = self.sum_sq.saturating_add(other.sum_sq);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

impl fmt::Display for Summary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "n={} mean={:.4} sd={:.4}",
            self.count,
            self.mean(),
            self.std_dev()
        )
    }
}

impl Extend<f64> for Summary {
    fn extend<T: IntoIterator<Item = f64>>(&mut self, iter: T) {
        for x in iter {
            self.record(x);
        }
    }
}

impl FromIterator<f64> for Summary {
    fn from_iter<T: IntoIterator<Item = f64>>(iter: T) -> Self {
        let mut s = Summary::new();
        s.extend(iter);
        s
    }
}

/// A success/total counter reported as a rate (e.g. abort rate, hit rate).
///
/// # Example
/// ```
/// use bpush_types::stats::Ratio;
/// let mut r = Ratio::new();
/// r.record(true);
/// r.record(false);
/// r.record(false);
/// assert_eq!(r.total(), 3);
/// assert!((r.rate() - 1.0 / 3.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Hash)]
pub struct Ratio {
    hits: u64,
    total: u64,
}

impl Ratio {
    /// An empty counter.
    pub fn new() -> Self {
        Ratio::default()
    }

    /// A counter with `hits` of `total` events pre-recorded, for pooling
    /// tallies kept elsewhere as plain integers.
    ///
    /// # Panics
    /// Panics if `hits > total`.
    pub fn from_counts(hits: u64, total: u64) -> Self {
        assert!(hits <= total, "hits cannot exceed total");
        Ratio { hits, total }
    }

    /// Records one event; `hit` marks it as counting toward the numerator.
    pub fn record(&mut self, hit: bool) {
        self.total += 1;
        if hit {
            self.hits += 1;
        }
    }

    /// Events counted toward the numerator.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Total events recorded.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// `hits / total`; 0 when empty.
    pub fn rate(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.hits as f64 / self.total as f64
        }
    }

    /// Merges another counter into this one.
    pub fn merge(&mut self, other: &Ratio) {
        self.hits += other.hits;
        self.total += other.total;
    }
}

impl fmt::Display for Ratio {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}/{} ({:.2}%)",
            self.hits,
            self.total,
            self.rate() * 100.0
        )
    }
}

/// A fixed-resolution histogram over non-negative values with
/// logarithmic-ish bucketing, for latency quantiles.
///
/// Buckets are `[0,1), [1,2), ..., [15,16), [16,18), [18,20), ...` —
/// exact up to 16, then 12.5% relative resolution. Quantiles return the
/// lower edge of the containing bucket.
///
/// # Example
/// ```
/// use bpush_types::stats::Histogram;
/// let mut h = Histogram::new();
/// for x in 0..100 {
///     h.record(x as f64);
/// }
/// assert_eq!(h.count(), 100);
/// let p50 = h.quantile(0.5);
/// assert!((45.0..=55.0).contains(&p50), "{p50}");
/// assert!(h.quantile(1.0) >= 90.0);
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Histogram {
    /// bucket index -> count
    buckets: std::collections::BTreeMap<u32, u64>,
    count: u64,
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Histogram::default()
    }

    fn bucket_of(x: f64) -> u32 {
        let x = x.max(0.0);
        if x < 16.0 {
            return x as u32;
        }
        // 8 sub-buckets per power of two above 16
        let exp = x.log2().floor() as u32; // >= 4
        let base = 2f64.powi(exp as i32);
        let sub = ((x - base) / (base / 8.0)) as u32;
        16 + (exp - 4) * 8 + sub.min(7)
    }

    fn bucket_lower(idx: u32) -> f64 {
        if idx < 16 {
            return f64::from(idx);
        }
        let rel = idx - 16;
        let exp = rel / 8 + 4;
        let sub = rel % 8;
        let base = 2f64.powi(exp as i32);
        base + f64::from(sub) * base / 8.0
    }

    /// Records one observation (negative values clamp to zero).
    pub fn record(&mut self, x: f64) {
        *self.buckets.entry(Self::bucket_of(x)).or_insert(0) += 1;
        self.count += 1;
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Whether the histogram is empty.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// The `q`-quantile (lower bucket edge); 0 when empty.
    ///
    /// # Panics
    /// Panics if `q` is not within `[0, 1]`.
    pub fn quantile(&self, q: f64) -> f64 {
        assert!((0.0..=1.0).contains(&q), "quantile must be in [0, 1]");
        if self.count == 0 {
            return 0.0;
        }
        let target = ((self.count as f64 * q).ceil() as u64).max(1);
        let mut seen = 0;
        for (&idx, &n) in &self.buckets {
            seen += n;
            if seen >= target {
                return Self::bucket_lower(idx);
            }
        }
        // lint: allow(panic) — count > 0 was checked at the top, so buckets is nonempty
        Self::bucket_lower(*self.buckets.keys().last().expect("nonempty"))
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for (&idx, &n) in &other.buckets {
            *self.buckets.entry(idx).or_insert(0) += n;
        }
        self.count += other.count;
    }
}

impl Extend<f64> for Histogram {
    fn extend<T: IntoIterator<Item = f64>>(&mut self, iter: T) {
        for x in iter {
            self.record(x);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_summary_is_neutral() {
        let s = Summary::new();
        assert_eq!(s.count(), 0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.variance(), 0.0);
        assert_eq!(s.min(), None);
        assert_eq!(s.max(), None);
    }

    #[test]
    fn single_observation() {
        let s: Summary = [5.0].into_iter().collect();
        assert_eq!(s.count(), 1);
        assert_eq!(s.mean(), 5.0);
        assert_eq!(s.variance(), 0.0);
        assert_eq!(s.min(), Some(5.0));
        assert_eq!(s.max(), Some(5.0));
    }

    #[test]
    fn merge_equals_sequential_exactly() {
        let xs: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0).collect();
        let whole: Summary = xs.iter().copied().collect();
        let mut left: Summary = xs[..37].iter().copied().collect();
        let right: Summary = xs[37..].iter().copied().collect();
        left.merge(&right);
        // integer sums: not approximately — bit-identically
        assert_eq!(left, whole);
    }

    /// The shard-count invariance contract (DESIGN §8a): every way of
    /// partitioning a stream into sub-summaries merges to the
    /// bit-identical summary, whatever the grouping.
    #[test]
    fn merge_is_partition_invariant() {
        let xs: Vec<f64> = (0..96).map(|i| (f64::from(i) * 0.7).cos() * 1e6).collect();
        let whole: Summary = xs.iter().copied().collect();
        for parts in [1usize, 2, 3, 4, 8, 96] {
            let chunk = xs.len() / parts;
            let mut merged = Summary::new();
            for piece in xs.chunks(chunk) {
                let s: Summary = piece.iter().copied().collect();
                merged.merge(&s);
            }
            assert_eq!(merged, whole, "{parts} partitions");
        }
        // and merging right-to-left gives the same bits as left-to-right
        let mut reversed = Summary::new();
        for piece in xs.chunks(24).rev() {
            let s: Summary = piece.iter().copied().collect();
            reversed.merge(&s);
        }
        assert_eq!(reversed, whole);
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a: Summary = [1.0, 2.0].into_iter().collect();
        let before = a;
        a.merge(&Summary::new());
        assert_eq!(a, before);
        let mut e = Summary::new();
        e.merge(&before);
        assert_eq!(e, before);
    }

    #[test]
    fn ratio_counts_and_merges() {
        let mut a = Ratio::new();
        a.record(true);
        a.record(false);
        let mut b = Ratio::new();
        b.record(true);
        b.record(true);
        a.merge(&b);
        assert_eq!(a.hits(), 3);
        assert_eq!(a.total(), 4);
        assert!((a.rate() - 0.75).abs() < 1e-12);
        assert_eq!(a.to_string(), "3/4 (75.00%)");
    }

    #[test]
    fn empty_ratio_rate_is_zero() {
        assert_eq!(Ratio::new().rate(), 0.0);
    }

    #[test]
    fn histogram_buckets_are_monotone_and_invertible() {
        let mut prev = -1.0f64;
        for idx in 0..64 {
            let lo = Histogram::bucket_lower(idx);
            assert!(lo > prev, "bucket {idx} lower {lo} <= {prev}");
            prev = lo;
            // the lower edge maps back into its own bucket
            assert_eq!(Histogram::bucket_of(lo), idx, "edge of bucket {idx}");
        }
    }

    #[test]
    fn histogram_quantiles() {
        let mut h = Histogram::new();
        for i in 0..1000 {
            h.record(f64::from(i) / 10.0); // 0.0 .. 99.9
        }
        assert_eq!(h.count(), 1000);
        assert!(!h.is_empty());
        let p50 = h.quantile(0.5);
        assert!((40.0..=56.0).contains(&p50), "{p50}");
        let p99 = h.quantile(0.99);
        assert!(p99 >= 90.0, "{p99}");
        assert_eq!(h.quantile(0.0), 0.0);
    }

    #[test]
    fn histogram_merge_adds_counts() {
        let mut a = Histogram::new();
        a.extend([1.0, 2.0]);
        let mut b = Histogram::new();
        b.extend([100.0]);
        a.merge(&b);
        assert_eq!(a.count(), 3);
        assert!(a.quantile(1.0) >= 96.0);
    }

    #[test]
    fn empty_histogram_quantile_is_zero() {
        assert_eq!(Histogram::new().quantile(0.9), 0.0);
    }

    #[test]
    #[should_panic(expected = "quantile")]
    fn histogram_rejects_bad_quantile() {
        let _ = Histogram::new().quantile(1.5);
    }

    #[test]
    fn summary_display_nonempty() {
        let s: Summary = [1.0, 3.0].into_iter().collect();
        let text = s.to_string();
        assert!(text.contains("n=2"));
        assert!(text.contains("mean=2.0000"));
    }
}
