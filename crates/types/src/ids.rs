//! Strongly-typed identifiers used throughout the workspace.
//!
//! Every quantity that is conceptually an identifier or a discrete clock is
//! wrapped in a newtype so that e.g. a broadcast [`Cycle`] can never be
//! confused with an [`ItemId`] or a time [`Slot`].

use std::fmt;

/// Identifier of a data item (a database record, addressed by its search
/// key as in §2.1 of the paper).
///
/// Items are dense: a database of size `D` uses ids `0..D`.
///
/// # Example
/// ```
/// use bpush_types::ItemId;
/// let x = ItemId::new(3);
/// assert_eq!(x.index(), 3);
/// assert_eq!(format!("{x}"), "item#3");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ItemId(u32);

impl ItemId {
    /// Wraps a raw item index.
    pub const fn new(index: u32) -> Self {
        ItemId(index)
    }

    /// The raw dense index of this item (`0..D`).
    pub const fn index(self) -> u32 {
        self.0
    }

    /// Index as `usize`, convenient for slice addressing.
    pub const fn as_usize(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for ItemId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "item#{}", self.0)
    }
}

impl From<u32> for ItemId {
    fn from(index: u32) -> Self {
        ItemId(index)
    }
}

/// Identifier of a bucket, the smallest logical unit of the broadcast
/// (the disk-block analog of §2.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct BucketId(u32);

impl BucketId {
    /// Wraps a raw bucket index.
    pub const fn new(index: u32) -> Self {
        BucketId(index)
    }

    /// The raw dense index of this bucket within a bcast.
    pub const fn index(self) -> u32 {
        self.0
    }

    /// Index as `usize`.
    pub const fn as_usize(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for BucketId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "bucket#{}", self.0)
    }
}

impl From<u32> for BucketId {
    fn from(index: u32) -> Self {
        BucketId(index)
    }
}

/// A broadcast cycle number ("bcycle"): one full period of the broadcast.
///
/// Cycle `n` carries the database state produced by all server
/// transactions committed before the beginning of cycle `n` (§2.2).
/// Cycles start at zero and increase monotonically; they double as version
/// numbers for item values (§3.2).
///
/// # Example
/// ```
/// use bpush_types::Cycle;
/// let c = Cycle::new(5);
/// assert_eq!(c.next(), Cycle::new(6));
/// assert_eq!(c.distance_from(Cycle::new(2)), 3);
/// assert_eq!(Cycle::new(2).checked_sub(5), None);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Cycle(u64);

impl Cycle {
    /// The first broadcast cycle.
    pub const ZERO: Cycle = Cycle(0);

    /// Wraps a raw cycle number.
    pub const fn new(n: u64) -> Self {
        Cycle(n)
    }

    /// The raw cycle number.
    pub const fn number(self) -> u64 {
        self.0
    }

    /// The cycle immediately after this one.
    #[must_use]
    pub const fn next(self) -> Cycle {
        Cycle(self.0.saturating_add(1))
    }

    /// The cycle immediately before this one.
    ///
    /// # Panics
    /// Panics if `self` is [`Cycle::ZERO`].
    #[must_use]
    pub fn prev(self) -> Cycle {
        Cycle(
            self.0
                .checked_sub(1)
                // lint: allow(panic) — documented panic: no predecessor of cycle zero
                .expect("cycle zero has no predecessor"),
        )
    }

    /// Number of cycles elapsed since `earlier`.
    ///
    /// # Panics
    /// Panics if `earlier` is after `self`.
    pub fn distance_from(self, earlier: Cycle) -> u64 {
        self.0
            .checked_sub(earlier.0)
            // lint: allow(panic) — documented panic: negative distance is a caller bug
            .expect("`earlier` must not be after `self`")
    }

    /// `self - n` cycles, or `None` on underflow.
    pub fn checked_sub(self, n: u64) -> Option<Cycle> {
        self.0.checked_sub(n).map(Cycle)
    }

    /// `self + n` cycles.
    #[must_use]
    pub const fn plus(self, n: u64) -> Cycle {
        Cycle(self.0.saturating_add(n))
    }
}

impl fmt::Display for Cycle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cycle#{}", self.0)
    }
}

impl From<u64> for Cycle {
    fn from(n: u64) -> Self {
        Cycle(n)
    }
}

/// Identifier of a server (update) transaction.
///
/// Following §3.3 of the paper, transaction identifiers are unique within a
/// broadcast cycle; a full identifier is the pair *(commit cycle, sequence
/// within cycle)*. Because the server executes transactions of a cycle in a
/// strict serial order, `TxnId`'s `Ord` is exactly the server's
/// serialization order, which the serializability validator relies on.
///
/// # Example
/// ```
/// use bpush_types::{Cycle, TxnId};
/// let a = TxnId::new(Cycle::new(3), 0);
/// let b = TxnId::new(Cycle::new(3), 1);
/// let c = TxnId::new(Cycle::new(4), 0);
/// assert!(a < b && b < c);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TxnId {
    cycle: Cycle,
    seq: u32,
}

impl TxnId {
    /// Creates a transaction id committed during `cycle` with in-cycle
    /// sequence number `seq`.
    pub const fn new(cycle: Cycle, seq: u32) -> Self {
        TxnId { cycle, seq }
    }

    /// The broadcast cycle during which this transaction committed.
    pub const fn cycle(self) -> Cycle {
        self.cycle
    }

    /// The serial position of this transaction within its commit cycle.
    pub const fn seq(self) -> u32 {
        self.seq
    }
}

impl fmt::Display for TxnId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "T{}.{}", self.cycle.number(), self.seq)
    }
}

/// Identifier of a simulated client.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ClientId(u32);

impl ClientId {
    /// Wraps a raw client index.
    pub const fn new(index: u32) -> Self {
        ClientId(index)
    }

    /// The raw client index.
    pub const fn index(self) -> u32 {
        self.0
    }
}

impl fmt::Display for ClientId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "client#{}", self.0)
    }
}

/// Identifier of a client read-only transaction (query), unique within a
/// client.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct QueryId(u64);

impl QueryId {
    /// Wraps a raw query sequence number.
    pub const fn new(n: u64) -> Self {
        QueryId(n)
    }

    /// The raw query sequence number.
    pub const fn number(self) -> u64 {
        self.0
    }

    /// The next query id issued by the same client.
    #[must_use]
    pub const fn next(self) -> QueryId {
        QueryId(self.0.saturating_add(1))
    }
}

impl fmt::Display for QueryId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Q{}", self.0)
    }
}

/// A discrete point on the broadcast channel's timeline, measured in
/// bucket-transmission units since the start of the simulation.
///
/// One slot is the time it takes to broadcast one bucket; all latency
/// bookkeeping is done in slots and reported in cycles.
///
/// # Example
/// ```
/// use bpush_types::Slot;
/// let s = Slot::new(10);
/// assert_eq!(s.plus(5).value(), 15);
/// assert_eq!(s.cycles_at(4), 2.5);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Slot(u64);

impl Slot {
    /// The start of the timeline.
    pub const ZERO: Slot = Slot(0);

    /// Wraps a raw slot count.
    pub const fn new(n: u64) -> Self {
        Slot(n)
    }

    /// The raw slot count.
    pub const fn value(self) -> u64 {
        self.0
    }

    /// `self + n` slots.
    #[must_use]
    pub const fn plus(self, n: u64) -> Slot {
        Slot(self.0.saturating_add(n))
    }

    /// Slots elapsed since `earlier`.
    ///
    /// # Panics
    /// Panics if `earlier` is after `self`.
    pub fn since(self, earlier: Slot) -> u64 {
        self.0
            .checked_sub(earlier.0)
            // lint: allow(panic) — documented panic: negative distance is a caller bug
            .expect("`earlier` must not be after `self`")
    }

    /// This instant expressed in cycles, given a cycle length in slots.
    ///
    /// # Panics
    /// Panics if `cycle_len` is zero.
    pub fn cycles_at(self, cycle_len: u64) -> f64 {
        assert!(cycle_len > 0, "cycle length must be positive");
        self.0 as f64 / cycle_len as f64
    }
}

impl fmt::Display for Slot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "slot#{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn item_id_roundtrip_and_display() {
        let x = ItemId::new(17);
        assert_eq!(x.index(), 17);
        assert_eq!(x.as_usize(), 17);
        assert_eq!(x, ItemId::from(17));
        assert_eq!(x.to_string(), "item#17");
    }

    #[test]
    fn bucket_id_roundtrip() {
        let b = BucketId::new(4);
        assert_eq!(b.index(), 4);
        assert_eq!(b.as_usize(), 4);
        assert_eq!(BucketId::from(4), b);
        assert_eq!(b.to_string(), "bucket#4");
    }

    #[test]
    fn cycle_arithmetic() {
        let c = Cycle::new(10);
        assert_eq!(c.next(), Cycle::new(11));
        assert_eq!(c.prev(), Cycle::new(9));
        assert_eq!(c.plus(5), Cycle::new(15));
        assert_eq!(c.distance_from(Cycle::new(4)), 6);
        assert_eq!(c.checked_sub(10), Some(Cycle::ZERO));
        assert_eq!(c.checked_sub(11), None);
    }

    #[test]
    #[should_panic(expected = "no predecessor")]
    fn cycle_zero_has_no_prev() {
        let _ = Cycle::ZERO.prev();
    }

    #[test]
    #[should_panic(expected = "must not be after")]
    fn cycle_distance_underflow_panics() {
        let _ = Cycle::new(3).distance_from(Cycle::new(4));
    }

    #[test]
    fn txn_id_orders_by_cycle_then_seq() {
        let mut v = vec![
            TxnId::new(Cycle::new(2), 1),
            TxnId::new(Cycle::new(1), 9),
            TxnId::new(Cycle::new(2), 0),
        ];
        v.sort();
        assert_eq!(
            v,
            vec![
                TxnId::new(Cycle::new(1), 9),
                TxnId::new(Cycle::new(2), 0),
                TxnId::new(Cycle::new(2), 1),
            ]
        );
        assert_eq!(v[0].to_string(), "T1.9");
        assert_eq!(v[0].cycle(), Cycle::new(1));
        assert_eq!(v[0].seq(), 9);
    }

    #[test]
    fn slot_arithmetic_and_cycle_conversion() {
        let s = Slot::new(12);
        assert_eq!(s.plus(3).value(), 15);
        assert_eq!(s.since(Slot::new(2)), 10);
        assert!((s.cycles_at(8) - 1.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "cycle length must be positive")]
    fn slot_cycles_at_zero_len_panics() {
        let _ = Slot::new(1).cycles_at(0);
    }

    #[test]
    fn query_id_increments() {
        let q = QueryId::new(7);
        assert_eq!(q.next().number(), 8);
        assert_eq!(q.to_string(), "Q7");
    }

    /// Tick arithmetic saturates at the top of the counter instead of
    /// overflowing (L15 discipline); everywhere below the boundary the
    /// behavior is the plain increment the protocol always had.
    #[test]
    fn tick_arithmetic_saturates_at_the_counter_top() {
        assert_eq!(Cycle::new(u64::MAX).next(), Cycle::new(u64::MAX));
        assert_eq!(Cycle::new(u64::MAX - 1).next(), Cycle::new(u64::MAX));
        assert_eq!(Cycle::new(u64::MAX).plus(5), Cycle::new(u64::MAX));
        assert_eq!(Cycle::new(7).plus(u64::MAX), Cycle::new(u64::MAX));
        assert_eq!(QueryId::new(u64::MAX).next(), QueryId::new(u64::MAX));
        assert_eq!(Slot::new(u64::MAX).plus(2), Slot::new(u64::MAX));
        // Below the boundary nothing changed.
        assert_eq!(Cycle::new(41).next(), Cycle::new(42));
        assert_eq!(Cycle::new(40).plus(2), Cycle::new(42));
        assert_eq!(QueryId::new(41).next(), QueryId::new(42));
        assert_eq!(Slot::new(40).plus(2), Slot::new(42));
    }

    #[test]
    fn ids_are_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ItemId>();
        assert_send_sync::<BucketId>();
        assert_send_sync::<Cycle>();
        assert_send_sync::<TxnId>();
        assert_send_sync::<ClientId>();
        assert_send_sync::<QueryId>();
        assert_send_sync::<Slot>();
    }
}
