//! Why a read-only transaction aborts.
//!
//! The reason taxonomy is shared vocabulary: protocols (in `bpush-core`)
//! produce [`AbortReason`]s, while the observability layer (`bpush-obs`)
//! and the experiment harness consume them as a *dimension* — fixed
//! per-reason counter arrays indexed by [`AbortReason::index`]. Keeping
//! the type here (rather than in `bpush-core`) lets the tracer carry
//! typed payloads without depending on the protocol crate.

use std::fmt;

/// Why a query was (or must be) aborted.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
// bpush-lint: protocol_enum — why a read-only transaction restarted
pub enum AbortReason {
    /// An item the query had read was updated (invalidation-only method).
    Invalidated,
    /// The version the query needs is no longer obtainable (multiversion
    /// methods: fell off air and not in cache).
    VersionUnavailable,
    /// Accepting the read would close a serialization-graph cycle (SGT).
    CycleDetected,
    /// The client missed a broadcast cycle the method cannot tolerate.
    Disconnected,
}

impl AbortReason {
    /// Every reason, in [`AbortReason::index`] order. The canonical
    /// iteration order for per-reason breakdowns.
    pub const ALL: [AbortReason; AbortReason::COUNT] = [
        AbortReason::Invalidated,
        AbortReason::VersionUnavailable,
        AbortReason::CycleDetected,
        AbortReason::Disconnected,
    ];

    /// Number of reasons; the length of per-reason counter arrays.
    pub const COUNT: usize = 4;

    /// A dense index in `0..COUNT`, stable across runs, for fixed-array
    /// per-reason counters.
    pub const fn index(self) -> usize {
        match self {
            AbortReason::Invalidated => 0,
            AbortReason::VersionUnavailable => 1,
            AbortReason::CycleDetected => 2,
            AbortReason::Disconnected => 3,
        }
    }

    /// A short stable machine-readable label ("invalidated", ...), used
    /// as the per-reason dimension in metric names and trace payloads.
    pub const fn label(self) -> &'static str {
        match self {
            AbortReason::Invalidated => "invalidated",
            AbortReason::VersionUnavailable => "version-unavailable",
            AbortReason::CycleDetected => "cycle-detected",
            AbortReason::Disconnected => "disconnected",
        }
    }
}

impl fmt::Display for AbortReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            AbortReason::Invalidated => "a read item was invalidated",
            AbortReason::VersionUnavailable => "required version unavailable",
            AbortReason::CycleDetected => "serialization cycle detected",
            AbortReason::Disconnected => "missed broadcast cycle",
        };
        f.write_str(s)
    }
}

impl std::error::Error for AbortReason {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn indices_are_dense_and_consistent_with_all() {
        for (i, r) in AbortReason::ALL.iter().enumerate() {
            assert_eq!(r.index(), i);
        }
    }

    #[test]
    fn labels_are_distinct_and_nonempty() {
        let labels: Vec<_> = AbortReason::ALL.iter().map(|r| r.label()).collect();
        for (i, a) in labels.iter().enumerate() {
            assert!(!a.is_empty());
            for b in &labels[i + 1..] {
                assert_ne!(a, b);
            }
        }
    }

    #[test]
    fn messages_are_nonempty() {
        for r in AbortReason::ALL {
            assert!(!r.to_string().is_empty());
        }
    }
}
