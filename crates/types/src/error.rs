//! The shared error type of the `bpush` workspace.

use std::error::Error;
use std::fmt;

/// Errors produced by the `bpush` crates.
///
/// # Example
/// ```
/// use bpush_types::BpushError;
/// let e = BpushError::invalid_config("theta must be finite");
/// assert_eq!(e.to_string(), "invalid configuration: theta must be finite");
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum BpushError {
    /// A configuration violated a documented invariant.
    InvalidConfig(String),
    /// A simulation exceeded its configured cycle budget.
    CycleBudgetExhausted {
        /// The configured hard stop.
        max_cycles: u64,
    },
    /// A protocol was asked to operate on state it has never seen (e.g.
    /// reading an item outside the broadcast set).
    UnknownItem(u32),
    /// An internal invariant did not hold — always a bug in `bpush`
    /// itself, never a user error. Surfaced instead of panicking so that
    /// long simulations fail with context rather than a backtrace.
    Internal(&'static str),
}

impl BpushError {
    /// Convenience constructor for [`BpushError::InvalidConfig`].
    pub fn invalid_config(msg: impl Into<String>) -> Self {
        BpushError::InvalidConfig(msg.into())
    }

    /// Convenience constructor for [`BpushError::Internal`].
    pub fn internal(msg: &'static str) -> Self {
        BpushError::Internal(msg)
    }
}

impl fmt::Display for BpushError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BpushError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
            BpushError::CycleBudgetExhausted { max_cycles } => {
                write!(f, "simulation exceeded its budget of {max_cycles} cycles")
            }
            BpushError::UnknownItem(raw) => write!(f, "item #{raw} is not in the broadcast set"),
            BpushError::Internal(msg) => write!(f, "internal invariant violated: {msg}"),
        }
    }
}

impl Error for BpushError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_unpunctuated() {
        for e in [
            BpushError::invalid_config("x"),
            BpushError::CycleBudgetExhausted { max_cycles: 5 },
            BpushError::UnknownItem(7),
            BpushError::internal("x"),
        ] {
            let msg = e.to_string();
            assert!(!msg.is_empty());
            assert!(!msg.ends_with('.'), "no trailing punctuation: {msg}");
            assert!(msg.chars().next().unwrap().is_lowercase(), "{msg}");
        }
    }

    #[test]
    fn error_is_std_error_send_sync() {
        fn assert_err<E: Error + Send + Sync + 'static>() {}
        assert_err::<BpushError>();
    }

    #[test]
    fn invalid_config_constructor() {
        assert_eq!(
            BpushError::invalid_config("oops"),
            BpushError::InvalidConfig("oops".to_owned())
        );
    }
}
