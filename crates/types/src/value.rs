//! The value representation carried on the broadcast.
//!
//! The simulation does not need real record payloads; what matters for
//! consistency is *which committed server transaction wrote the value* and
//! *from which cycle onward the value is current*. An [`ItemValue`]
//! captures exactly that, which is sufficient to
//!
//! * implement the multiversion read rule of §3.2 ("read the largest
//!   version `c_n ≤ c_0`"),
//! * tag items with their last writer as the SGT method of §3.3 requires,
//! * and check serializability of committed readsets after the fact.

use std::fmt;

use crate::ids::{Cycle, ItemId, TxnId};

/// One committed value of a data item.
///
/// `writer` is the server transaction that produced the value; `since` is
/// the first broadcast cycle whose bcast carries this value as current
/// (i.e. `writer.cycle().next()`, because a bcast reflects all commits
/// before the beginning of the cycle, §2.2). `since` is the paper's
/// *version number* for the value. The initial database load is modelled
/// with `writer = None` and `since = Cycle::ZERO`.
///
/// # Example
/// ```
/// use bpush_types::{Cycle, ItemValue, TxnId};
/// let v = ItemValue::written_by(TxnId::new(Cycle::new(4), 2));
/// assert_eq!(v.version(), Cycle::new(5));
/// assert!(v.writer().is_some());
/// let init = ItemValue::initial();
/// assert_eq!(init.version(), Cycle::ZERO);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ItemValue {
    writer: Option<TxnId>,
    since: Cycle,
}

impl ItemValue {
    /// The value an item holds before any server transaction updates it.
    pub const fn initial() -> Self {
        ItemValue {
            writer: None,
            since: Cycle::ZERO,
        }
    }

    /// The value produced by server transaction `writer`; current from the
    /// cycle after the writer's commit cycle.
    pub const fn written_by(writer: TxnId) -> Self {
        ItemValue {
            writer: Some(writer),
            since: writer.cycle().next(),
        }
    }

    /// The server transaction that wrote this value, or `None` for the
    /// initial database load.
    pub const fn writer(self) -> Option<TxnId> {
        self.writer
    }

    /// The version number of this value: the first cycle whose broadcast
    /// carries it as the current value.
    pub const fn version(self) -> Cycle {
        self.since
    }

    /// Whether this value is current at the database state broadcast in
    /// `cycle` *assuming no later write exists* — i.e. it became current no
    /// later than `cycle`.
    pub fn visible_at(self, cycle: Cycle) -> bool {
        self.since <= cycle
    }
}

impl Default for ItemValue {
    fn default() -> Self {
        ItemValue::initial()
    }
}

impl fmt::Display for ItemValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.writer {
            Some(w) => write!(f, "v{}<-{}", self.since.number(), w),
            None => write!(f, "v0<-init"),
        }
    }
}

/// An item together with one of its committed values, as it appears inside
/// a broadcast bucket or a client cache entry.
///
/// # Example
/// ```
/// use bpush_types::{Cycle, ItemId, ItemValue, TxnId, VersionedValue};
/// let vv = VersionedValue::new(
///     ItemId::new(9),
///     ItemValue::written_by(TxnId::new(Cycle::new(1), 0)),
/// );
/// assert_eq!(vv.item(), ItemId::new(9));
/// assert_eq!(vv.value().version(), Cycle::new(2));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct VersionedValue {
    item: ItemId,
    value: ItemValue,
}

impl VersionedValue {
    /// Pairs an item with one of its committed values.
    pub const fn new(item: ItemId, value: ItemValue) -> Self {
        VersionedValue { item, value }
    }

    /// The item this value belongs to.
    pub const fn item(self) -> ItemId {
        self.item
    }

    /// The committed value.
    pub const fn value(self) -> ItemValue {
        self.value
    }
}

impl fmt::Display for VersionedValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}={}", self.item, self.value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn initial_value_is_default_and_versionless() {
        let v = ItemValue::default();
        assert_eq!(v, ItemValue::initial());
        assert_eq!(v.writer(), None);
        assert_eq!(v.version(), Cycle::ZERO);
        assert!(v.visible_at(Cycle::ZERO));
        assert_eq!(v.to_string(), "v0<-init");
    }

    #[test]
    fn written_value_becomes_current_next_cycle() {
        let t = TxnId::new(Cycle::new(3), 7);
        let v = ItemValue::written_by(t);
        assert_eq!(v.writer(), Some(t));
        assert_eq!(v.version(), Cycle::new(4));
        assert!(!v.visible_at(Cycle::new(3)));
        assert!(v.visible_at(Cycle::new(4)));
        assert!(v.visible_at(Cycle::new(9)));
        assert_eq!(v.to_string(), "v4<-T3.7");
    }

    #[test]
    fn versioned_value_accessors() {
        let vv = VersionedValue::new(ItemId::new(1), ItemValue::initial());
        assert_eq!(vv.item(), ItemId::new(1));
        assert_eq!(vv.value(), ItemValue::initial());
        assert_eq!(vv.to_string(), "item#1=v0<-init");
    }
}
