//! Configuration for the server, client and simulation.
//!
//! Field defaults follow the performance-model table of the paper's §5.1
//! (Figure 4). These are passive, serializable parameter records in the
//! C-struct spirit, so their fields are public; [`ServerConfig::validate`]
//! and friends enforce cross-field invariants before a simulation is
//! built.

use crate::error::BpushError;

/// Granularity at which invalidation and versioning information is kept
/// (§7, second extension).
///
/// At [`Granularity::Item`] the control information names individual data
/// items (the paper's default); at [`Granularity::Bucket`] it names whole
/// buckets, trading a smaller report for conservative aborts — a bucket
/// counts as updated when *any* of its items was updated.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, PartialOrd, Ord)]
// bpush-lint: protocol_enum — invalidation report granularity on the wire
pub enum Granularity {
    /// Per-item control information (paper default).
    #[default]
    Item,
    /// Per-bucket control information (§7 extension; conservative).
    Bucket,
}

/// Order in which a query issues its reads (§2.2 "transaction
/// optimization").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, PartialOrd, Ord)]
pub enum ReadOrder {
    /// Reads issued in the order the program generated them.
    #[default]
    AsIssued,
    /// Reads sorted by broadcast position to minimize span (§2.2).
    BroadcastOrder,
}

/// On-air organization of old versions for multiversion broadcast (§3.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, PartialOrd, Ord)]
pub enum MultiversionLayout {
    /// All versions of an item broadcast successively (Figure 2a); item
    /// positions shift, so an index must be rebuilt and read each cycle.
    Clustered,
    /// Current versions at fixed positions with pointers to old versions
    /// in overflow buckets at the end of the bcast (Figure 2b; paper's
    /// choice for the evaluation).
    #[default]
    Overflow,
}

/// Server-side parameters (left column of Figure 4).
#[derive(Debug, Clone, PartialEq)]
pub struct ServerConfig {
    /// `D`, the number of items broadcast each cycle. Default 1000.
    pub broadcast_size: u32,
    /// Range `1..=UpdateRange` of items eligible for updates. Default 500.
    pub update_range: u32,
    /// Range of items server transactions read. Default 1000 (= D).
    pub server_read_range: u32,
    /// Zipf skew θ for both server reads and writes. Default 0.95.
    pub theta: f64,
    /// Offset between the server update pattern and the client read
    /// pattern. Default 100 (swept 0–250 in Figure 5 right).
    pub offset: u32,
    /// `N`, transactions committed per cycle. Default 10.
    pub txns_per_cycle: u32,
    /// `U`, total item updates per cycle across all server transactions.
    /// Default 50 (swept 50–500 in Figure 6). Server reads are 4× this.
    pub updates_per_cycle: u32,
    /// `V`, how many *old* versions the server retains and broadcasts in
    /// multiversion mode. Default 3 (the paper's span-3 examples).
    pub versions_retained: u32,
    /// Items per bucket. Default 1 (the paper's size model has `b = d`,
    /// one record per bucket).
    pub items_per_bucket: u32,
    /// `w`: each invalidation report covers the last `w` cycles so that
    /// briefly disconnected clients can resynchronize (§5.2.2). Default 1.
    pub report_window: u32,
    /// Granularity of invalidation/version control information.
    pub granularity: Granularity,
    /// On-air layout for old versions in multiversion mode.
    pub mv_layout: MultiversionLayout,
    /// Size of an item key in abstract units (`k`). Default 1.
    pub key_size: u32,
    /// Size of the non-key attributes (`d`). Default 5 (= 5k).
    pub data_size: u32,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            broadcast_size: 1000,
            update_range: 500,
            server_read_range: 1000,
            theta: 0.95,
            offset: 100,
            txns_per_cycle: 10,
            updates_per_cycle: 50,
            versions_retained: 3,
            items_per_bucket: 1,
            report_window: 1,
            granularity: Granularity::Item,
            mv_layout: MultiversionLayout::Overflow,
            key_size: 1,
            data_size: 5,
        }
    }
}

impl ServerConfig {
    /// Checks cross-field invariants.
    ///
    /// # Errors
    /// Returns [`BpushError::InvalidConfig`] when any range is empty,
    /// exceeds the broadcast size, or the update workload cannot be
    /// partitioned among the configured transactions.
    pub fn validate(&self) -> Result<(), BpushError> {
        if self.broadcast_size == 0 {
            return Err(BpushError::invalid_config("broadcast_size must be > 0"));
        }
        if self.update_range == 0 || self.update_range > self.broadcast_size {
            return Err(BpushError::invalid_config(
                "update_range must be in 1..=broadcast_size",
            ));
        }
        if self.server_read_range == 0 || self.server_read_range > self.broadcast_size {
            return Err(BpushError::invalid_config(
                "server_read_range must be in 1..=broadcast_size",
            ));
        }
        if !self.theta.is_finite() || self.theta < 0.0 {
            return Err(BpushError::invalid_config("theta must be finite and >= 0"));
        }
        if self.txns_per_cycle == 0 {
            return Err(BpushError::invalid_config("txns_per_cycle must be > 0"));
        }
        if self.updates_per_cycle == 0 {
            return Err(BpushError::invalid_config("updates_per_cycle must be > 0"));
        }
        if self.updates_per_cycle > self.update_range {
            return Err(BpushError::invalid_config(
                "updates_per_cycle cannot exceed update_range (updates are distinct per cycle)",
            ));
        }
        if self.items_per_bucket == 0 {
            return Err(BpushError::invalid_config("items_per_bucket must be > 0"));
        }
        if self.report_window == 0 {
            return Err(BpushError::invalid_config("report_window must be > 0"));
        }
        if self.key_size == 0 || self.data_size == 0 {
            return Err(BpushError::invalid_config("key/data sizes must be > 0"));
        }
        Ok(())
    }

    /// `c`, operations per server transaction: each transaction performs
    /// `U/N` writes and `4·U/N` reads (reads are four times more frequent
    /// than updates, §5.1), rounded up so the full update budget is spent.
    pub fn ops_per_txn(&self) -> u32 {
        let writes = self.writes_per_txn();
        writes * 5
    }

    /// Writes per server transaction (`U/N`, rounded up).
    pub fn writes_per_txn(&self) -> u32 {
        self.updates_per_cycle.div_ceil(self.txns_per_cycle).max(1)
    }

    /// Reads per server transaction (4× writes).
    pub fn reads_per_txn(&self) -> u32 {
        self.writes_per_txn() * 4
    }

    /// Number of data buckets per bcast.
    pub fn data_buckets(&self) -> u32 {
        self.broadcast_size.div_ceil(self.items_per_bucket)
    }
}

/// Client cache parameters (§4, §5.1).
#[derive(Debug, Clone, PartialEq)]
pub struct CacheConfig {
    /// Cache capacity in pages (a page caches one bucket). Zero disables
    /// caching. Default 125.
    pub capacity: u32,
    /// Fraction of the cache reserved for *old* versions when multiversion
    /// caching (§4.2) is active; the split-cache design the paper adopts.
    /// Default 0.25.
    pub old_version_fraction: f64,
}

impl Default for CacheConfig {
    fn default() -> Self {
        CacheConfig {
            capacity: 125,
            old_version_fraction: 0.25,
        }
    }
}

impl CacheConfig {
    /// A disabled cache.
    pub const fn disabled() -> Self {
        CacheConfig {
            capacity: 0,
            old_version_fraction: 0.0,
        }
    }

    /// Whether the cache holds any pages at all.
    pub const fn is_enabled(&self) -> bool {
        self.capacity > 0
    }

    /// Pages reserved for old versions under the split-cache policy.
    pub fn old_capacity(&self) -> u32 {
        (self.capacity as f64 * self.old_version_fraction).floor() as u32
    }

    /// Pages available to current versions under the split-cache policy.
    pub fn current_capacity(&self) -> u32 {
        self.capacity - self.old_capacity()
    }

    /// Checks invariants.
    ///
    /// # Errors
    /// Returns [`BpushError::InvalidConfig`] if the old-version fraction
    /// is outside `[0, 1)` or leaves no room for current versions.
    pub fn validate(&self) -> Result<(), BpushError> {
        if !(0.0..1.0).contains(&self.old_version_fraction) {
            return Err(BpushError::invalid_config(
                "old_version_fraction must be in [0, 1)",
            ));
        }
        if self.is_enabled() && self.current_capacity() == 0 {
            return Err(BpushError::invalid_config(
                "cache must retain at least one current-version page",
            ));
        }
        Ok(())
    }
}

/// Client-side parameters (right column of Figure 4).
#[derive(Debug, Clone, PartialEq)]
pub struct ClientConfig {
    /// Range `1..=ReadRange` of items queries read. Default 500.
    pub read_range: u32,
    /// Zipf skew θ of the client read pattern. Default 0.95.
    pub theta: f64,
    /// Reads per query (swept in Figures 5 left / 8 left). Default 10.
    pub reads_per_query: u32,
    /// Think time between consecutive reads, in slots. Default 2.
    pub think_time: u32,
    /// Cache configuration.
    pub cache: CacheConfig,
    /// Read-ordering policy (§2.2 transaction optimization).
    pub read_order: ReadOrder,
    /// Whether the client holds a locally stored directory of item
    /// positions (§2.1). Without one it relies on on-air index segments
    /// when the organization broadcasts them, or scans the channel
    /// otherwise — paying with tuning time either way.
    pub has_directory: bool,
    /// Per-cycle probability that the client is disconnected for the whole
    /// cycle (misses both the control information and all data). Default 0.
    pub disconnect_prob: f64,
}

impl Default for ClientConfig {
    fn default() -> Self {
        ClientConfig {
            read_range: 500,
            theta: 0.95,
            reads_per_query: 10,
            think_time: 2,
            cache: CacheConfig::default(),
            read_order: ReadOrder::AsIssued,
            has_directory: true,
            disconnect_prob: 0.0,
        }
    }
}

impl ClientConfig {
    /// Checks cross-field invariants against the server configuration.
    ///
    /// # Errors
    /// Returns [`BpushError::InvalidConfig`] when the read range is empty
    /// or larger than the broadcast set, when a query would need more
    /// distinct items than the read range holds, or when the disconnect
    /// probability is not a probability.
    pub fn validate(&self, server: &ServerConfig) -> Result<(), BpushError> {
        if self.read_range == 0 || self.read_range > server.broadcast_size {
            return Err(BpushError::invalid_config(
                "read_range must be in 1..=broadcast_size",
            ));
        }
        if !self.theta.is_finite() || self.theta < 0.0 {
            return Err(BpushError::invalid_config("theta must be finite and >= 0"));
        }
        if self.reads_per_query == 0 {
            return Err(BpushError::invalid_config("reads_per_query must be > 0"));
        }
        if self.reads_per_query > self.read_range {
            return Err(BpushError::invalid_config(
                "reads_per_query cannot exceed read_range (reads are distinct)",
            ));
        }
        if !(0.0..=1.0).contains(&self.disconnect_prob) {
            return Err(BpushError::invalid_config(
                "disconnect_prob must be in [0, 1]",
            ));
        }
        self.cache.validate()
    }
}

/// Top-level simulation parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct SimConfig {
    /// Server parameters.
    pub server: ServerConfig,
    /// Client parameters (all simulated clients share them; scalability
    /// means per-client behaviour is independent, §1).
    pub client: ClientConfig,
    /// Number of simulated clients. Default 10.
    pub n_clients: u32,
    /// Queries each client completes (commit or abort) before the
    /// simulation ends. Default 100.
    pub queries_per_client: u32,
    /// Cycles to run before measurement starts (cache warm-up). Default 10.
    pub warmup_cycles: u32,
    /// Hard stop, in cycles, to bound runaway configurations. Default 100 000.
    pub max_cycles: u64,
    /// Root seed for all randomness.
    pub seed: u64,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            server: ServerConfig::default(),
            client: ClientConfig::default(),
            n_clients: 10,
            queries_per_client: 100,
            warmup_cycles: 10,
            max_cycles: 100_000,
            seed: 0xB90A_DCA5,
        }
    }
}

impl SimConfig {
    /// Checks all nested invariants.
    ///
    /// # Errors
    /// Propagates [`BpushError::InvalidConfig`] from the nested configs and
    /// rejects an empty client population or query budget.
    pub fn validate(&self) -> Result<(), BpushError> {
        self.server.validate()?;
        self.client.validate(&self.server)?;
        if self.n_clients == 0 {
            return Err(BpushError::invalid_config("n_clients must be > 0"));
        }
        if self.queries_per_client == 0 {
            return Err(BpushError::invalid_config("queries_per_client must be > 0"));
        }
        if self.max_cycles == 0 {
            return Err(BpushError::invalid_config("max_cycles must be > 0"));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_valid_and_match_paper() {
        let cfg = SimConfig::default();
        cfg.validate().unwrap();
        assert_eq!(cfg.server.broadcast_size, 1000);
        assert_eq!(cfg.server.update_range, 500);
        assert_eq!(cfg.server.txns_per_cycle, 10);
        assert_eq!(cfg.server.updates_per_cycle, 50);
        assert!((cfg.server.theta - 0.95).abs() < 1e-12);
        assert_eq!(cfg.server.offset, 100);
    }

    #[test]
    fn server_ops_split_reads_writes_4_to_1() {
        let s = ServerConfig::default();
        assert_eq!(s.writes_per_txn(), 5); // 50 / 10
        assert_eq!(s.reads_per_txn(), 20);
        assert_eq!(s.ops_per_txn(), 25);
    }

    #[test]
    fn server_ops_round_up() {
        let s = ServerConfig {
            updates_per_cycle: 55,
            ..ServerConfig::default()
        };
        assert_eq!(s.writes_per_txn(), 6);
    }

    #[test]
    fn data_buckets_round_up() {
        let s = ServerConfig {
            broadcast_size: 10,
            update_range: 5,
            server_read_range: 10,
            updates_per_cycle: 2,
            items_per_bucket: 4,
            ..ServerConfig::default()
        };
        assert_eq!(s.data_buckets(), 3);
    }

    #[test]
    fn server_validation_rejects_bad_ranges() {
        let cases = [
            ServerConfig {
                update_range: 2000,
                ..ServerConfig::default()
            },
            ServerConfig {
                broadcast_size: 0,
                ..ServerConfig::default()
            },
            ServerConfig {
                updates_per_cycle: 501,
                ..ServerConfig::default()
            },
            ServerConfig {
                theta: f64::NAN,
                ..ServerConfig::default()
            },
        ];
        for s in cases {
            assert!(s.validate().is_err());
        }
    }

    #[test]
    fn cache_split_capacities() {
        let c = CacheConfig {
            capacity: 100,
            old_version_fraction: 0.25,
        };
        assert_eq!(c.old_capacity(), 25);
        assert_eq!(c.current_capacity(), 75);
        c.validate().unwrap();
    }

    #[test]
    fn cache_disabled_is_valid() {
        let c = CacheConfig::disabled();
        assert!(!c.is_enabled());
        c.validate().unwrap();
    }

    #[test]
    fn cache_rejects_full_old_fraction() {
        let c = CacheConfig {
            capacity: 10,
            old_version_fraction: 1.0,
        };
        assert!(c.validate().is_err());
    }

    #[test]
    fn client_validation_rejects_overdraw_and_bad_prob() {
        let server = ServerConfig::default();
        let cases = [
            ClientConfig {
                reads_per_query: 501,
                ..ClientConfig::default()
            },
            ClientConfig {
                disconnect_prob: 1.5,
                ..ClientConfig::default()
            },
            ClientConfig {
                read_range: 0,
                ..ClientConfig::default()
            },
        ];
        for c in cases {
            assert!(c.validate(&server).is_err());
        }
    }

    #[test]
    fn sim_validation_cascades() {
        let cfg = SimConfig {
            n_clients: 0,
            ..SimConfig::default()
        };
        assert!(cfg.validate().is_err());
        let mut cfg = SimConfig::default();
        cfg.client.read_range = 5000;
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn configs_are_clone_send_sync() {
        fn assert_traits<T: Clone + Send + Sync + 'static>() {}
        assert_traits::<SimConfig>();
        assert_traits::<ServerConfig>();
        assert_traits::<ClientConfig>();
        assert_traits::<CacheConfig>();
    }
}
