//! Common vocabulary types for the `bpush` suite.
//!
//! `bpush` is a from-scratch reproduction of *"Scalable Processing of
//! Read-Only Transactions in Broadcast Push"* (Pitoura & Chrysanthis,
//! ICDCS 1999). A server cyclically broadcasts a database to an unbounded
//! client population; clients execute read-only transactions ("queries")
//! that must observe transactionally consistent data, validating entirely
//! locally from control information carried on the broadcast.
//!
//! This crate holds the shared vocabulary used by every other crate in the
//! workspace:
//!
//! * strongly-typed identifiers ([`ItemId`], [`Cycle`], [`TxnId`], ...)
//!   following the newtype guidance of the Rust API Guidelines
//!   (`C-NEWTYPE`),
//! * the versioned value representation broadcast on air ([`value`]),
//! * the skewed-access workload model of the paper's §5.1
//!   ([`zipf::ZipfSampler`], [`zipf::AccessPattern`]),
//! * deterministic seed derivation ([`seed`]),
//! * configuration for server, client, cache and simulation ([`config`]),
//! * summary statistics used by the experiment harness ([`stats`]),
//! * the shared error type ([`BpushError`]).
//!
//! # Example
//!
//! ```
//! use bpush_types::{Cycle, ItemId, TxnId};
//!
//! let c = Cycle::new(7);
//! let t = TxnId::new(c, 3);
//! assert_eq!(t.cycle(), c);
//! assert!(TxnId::new(Cycle::new(6), 9) < t, "earlier cycles order first");
//! let x = ItemId::new(42);
//! assert_eq!(x.index(), 42);
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod abort;
pub mod config;
pub mod error;
pub mod ids;
pub mod seed;
pub mod stats;
pub mod value;
pub mod zipf;

pub use abort::AbortReason;
pub use config::{CacheConfig, ClientConfig, Granularity, ServerConfig, SimConfig};
pub use error::BpushError;
pub use ids::{BucketId, ClientId, Cycle, ItemId, QueryId, Slot, TxnId};
pub use value::{ItemValue, VersionedValue};
