//! Deterministic seed derivation.
//!
//! Every stochastic component of the simulation (server workload, each
//! client, each query) draws from its own [`rand::rngs::StdRng`] seeded
//! through [`SeedSequence`], so that experiment runs are exactly
//! reproducible from a single root seed and independent of the number or
//! scheduling of clients.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Derives statistically independent child seeds from a root seed using
/// the SplitMix64 finalizer.
///
/// # Example
/// ```
/// use bpush_types::seed::SeedSequence;
/// let seq = SeedSequence::new(42);
/// let a = seq.derive(&["server"]);
/// let b = seq.derive(&["client", "0"]);
/// assert_ne!(a, b);
/// assert_eq!(a, SeedSequence::new(42).derive(&["server"]));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SeedSequence {
    root: u64,
}

impl SeedSequence {
    /// Creates a sequence rooted at `root`.
    pub const fn new(root: u64) -> Self {
        SeedSequence { root }
    }

    /// The root seed.
    pub const fn root(self) -> u64 {
        self.root
    }

    /// Derives a child seed from a path of labels.
    pub fn derive(self, path: &[&str]) -> u64 {
        let mut state = splitmix64(self.root ^ 0x9e37_79b9_7f4a_7c15);
        for label in path {
            for &b in label.as_bytes() {
                state = splitmix64(state ^ u64::from(b));
            }
            state = splitmix64(state ^ 0xff51_afd7_ed55_8ccd);
        }
        state
    }

    /// Derives a ready-to-use RNG for a labelled component.
    pub fn rng(self, path: &[&str]) -> StdRng {
        StdRng::seed_from_u64(self.derive(path))
    }
}

/// The SplitMix64 output function; a strong 64-bit mixer.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn derivation_is_deterministic() {
        let a = SeedSequence::new(7).derive(&["x", "y"]);
        let b = SeedSequence::new(7).derive(&["x", "y"]);
        assert_eq!(a, b);
        assert_eq!(SeedSequence::new(7).root(), 7);
    }

    #[test]
    fn different_paths_give_different_seeds() {
        let seq = SeedSequence::new(1);
        let seeds: Vec<u64> = vec![
            seq.derive(&[]),
            seq.derive(&["a"]),
            seq.derive(&["b"]),
            seq.derive(&["a", "b"]),
            seq.derive(&["ab"]),
            seq.derive(&["b", "a"]),
        ];
        let set: std::collections::HashSet<_> = seeds.iter().collect();
        assert_eq!(set.len(), seeds.len(), "all derived seeds distinct");
    }

    #[test]
    fn different_roots_give_different_seeds() {
        assert_ne!(
            SeedSequence::new(1).derive(&["s"]),
            SeedSequence::new(2).derive(&["s"])
        );
    }

    #[test]
    fn rng_streams_are_reproducible() {
        let mut r1 = SeedSequence::new(99).rng(&["client", "3"]);
        let mut r2 = SeedSequence::new(99).rng(&["client", "3"]);
        for _ in 0..16 {
            assert_eq!(r1.gen::<u64>(), r2.gen::<u64>());
        }
    }

    #[test]
    fn splitmix_avalanche_smoke() {
        // flipping one input bit should flip roughly half the output bits
        let a = splitmix64(0);
        let b = splitmix64(1);
        let flipped = (a ^ b).count_ones();
        assert!((16..=48).contains(&flipped), "weak diffusion: {flipped}");
    }
}
