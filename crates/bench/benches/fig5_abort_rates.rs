//! Figure 5 workload bench: one full simulation per method at reduced
//! scale — the machinery behind the abort-rate panels. Regenerate the
//! actual figure with `cargo run --release -p bpush-sim --bin reproduce
//! -- fig5_left fig5_right`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use bpush_bench::bench_config;
use bpush_core::Method;
use bpush_sim::Simulation;

fn bench_methods(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig5/abort-rate-simulation");
    group.sample_size(10);
    for method in [
        Method::InvalidationOnly,
        Method::InvalidationCache,
        Method::InvalidationVersionedCache,
        Method::Sgt,
        Method::SgtCache,
        Method::MultiversionBroadcast,
    ] {
        group.bench_with_input(
            BenchmarkId::from_parameter(method.name()),
            &method,
            |b, &method| {
                b.iter(|| {
                    let metrics = Simulation::new(bench_config(), method)
                        .expect("valid config")
                        .run()
                        .expect("run completes");
                    assert_eq!(metrics.violations, 0);
                    metrics.aborts.rate()
                });
            },
        );
    }
    group.finish();
}

fn bench_query_sizes(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig5/query-size-sweep");
    group.sample_size(10);
    for reads in [4u32, 12, 24] {
        group.bench_with_input(BenchmarkId::from_parameter(reads), &reads, |b, &reads| {
            b.iter(|| {
                let mut cfg = bench_config();
                cfg.client.reads_per_query = reads;
                Simulation::new(cfg, Method::InvalidationOnly)
                    .expect("valid config")
                    .run()
                    .expect("run completes")
                    .aborts
                    .rate()
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_methods, bench_query_sizes);
criterion_main!(benches);
