//! Figure 8 workload bench: the latency-measurement machinery under the
//! two multiversion on-air layouts (the figure itself comes from
//! `reproduce -- fig8_left fig8_right`).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use bpush_bench::bench_config;
use bpush_core::Method;
use bpush_sim::Simulation;
use bpush_types::config::MultiversionLayout;

fn bench_layouts(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig8/multiversion-layout");
    group.sample_size(10);
    for layout in [MultiversionLayout::Overflow, MultiversionLayout::Clustered] {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{layout:?}")),
            &layout,
            |b, &layout| {
                b.iter(|| {
                    let metrics = Simulation::with_layout(
                        bench_config(),
                        Method::MultiversionBroadcast,
                        layout,
                    )
                    .expect("valid config")
                    .run()
                    .expect("run completes");
                    metrics.latency_cycles.mean()
                });
            },
        );
    }
    group.finish();
}

fn bench_offsets(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig8/offset-sweep");
    group.sample_size(10);
    for offset in [0u32, 50] {
        group.bench_with_input(
            BenchmarkId::from_parameter(offset),
            &offset,
            |b, &offset| {
                b.iter(|| {
                    let mut cfg = bench_config();
                    cfg.server.offset = offset;
                    Simulation::new(cfg, Method::MultiversionBroadcast)
                        .expect("valid config")
                        .run()
                        .expect("run completes")
                        .latency_cycles
                        .mean()
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_layouts, bench_offsets);
criterion_main!(benches);
