//! Figure 6 workload bench: simulation cost as the server update volume
//! grows (the figure itself comes from `reproduce -- fig6`).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use bpush_bench::bench_config;
use bpush_core::Method;
use bpush_sim::Simulation;

fn bench_update_volumes(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig6/update-volume");
    group.sample_size(10);
    for updates in [10u32, 40, 80] {
        for method in [Method::InvalidationOnly, Method::Sgt] {
            group.bench_with_input(
                BenchmarkId::new(method.name(), updates),
                &(method, updates),
                |b, &(method, updates)| {
                    b.iter(|| {
                        let mut cfg = bench_config();
                        cfg.server.updates_per_cycle = updates;
                        Simulation::new(cfg, method)
                            .expect("valid config")
                            .run()
                            .expect("run completes")
                            .aborts
                            .rate()
                    });
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_update_volumes);
criterion_main!(benches);
