//! Substrate microbenchmarks: the building blocks every experiment rests
//! on — serialization-graph operations, cache operations, workload
//! sampling, bcast assembly, and the per-cycle server loop.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;

use bpush_broadcast::organization::{Flat, MultiversionOverflow};
use bpush_broadcast::{ControlInfo, ItemRecord};
use bpush_client::{CacheParams, ClientCache};
use bpush_core::CacheMode;
use bpush_server::{BroadcastServer, ServerOptions};
use bpush_sgraph::{Node, SerializationGraph};
use bpush_types::config::MultiversionLayout;
use bpush_types::zipf::AccessPattern;
use bpush_types::{Cycle, ItemId, ItemValue, QueryId, ServerConfig, TxnId};

fn bench_sgraph(c: &mut Criterion) {
    let mut group = c.benchmark_group("substrate/sgraph");

    // a layered graph shaped like real SGT state: 32 cycles x 10 txns,
    // edges forward between adjacent cycles
    let build = || {
        let mut g = SerializationGraph::new();
        for cy in 1..32u64 {
            for seq in 0..10u32 {
                let from = TxnId::new(Cycle::new(cy - 1), seq);
                let to = TxnId::new(Cycle::new(cy), (seq + 1) % 10);
                g.add_edge(Node::Txn(from), Node::Txn(to));
            }
        }
        g
    };

    group.bench_function("build-320-txn-graph", |b| b.iter(build));

    let g = build();
    group.bench_function("cycle-check-miss", |b| {
        // query with one outgoing edge near the end: short search
        let mut g = g.clone();
        let q = Node::Query(QueryId::new(0));
        g.add_edge(q, Node::Txn(TxnId::new(Cycle::new(30), 0)));
        b.iter(|| g.would_close_cycle(Node::Txn(TxnId::new(Cycle::new(5), 0)), q));
    });
    group.bench_function("cycle-check-hit", |b| {
        // query implicated early: the DFS must walk the layers
        let mut g = g.clone();
        let q = Node::Query(QueryId::new(0));
        g.add_edge(q, Node::Txn(TxnId::new(Cycle::new(1), 0)));
        b.iter(|| g.would_close_cycle(Node::Txn(TxnId::new(Cycle::new(31), 1)), q));
    });
    group.bench_function("prune-half", |b| {
        b.iter_batched(
            build,
            |mut g| {
                g.prune_before(Cycle::new(16));
                g
            },
            criterion::BatchSize::SmallInput,
        );
    });
    group.finish();
}

/// A layered graph of `nodes` transactions (10 per cycle, forward edges
/// between adjacent cycles) — the steady-state shape of client SGT state.
fn layered_graph(nodes: u64) -> SerializationGraph {
    let cycles = (nodes / 10).max(2);
    let mut g = SerializationGraph::new();
    for cy in 1..cycles {
        for seq in 0..10u32 {
            let from = TxnId::new(Cycle::new(cy - 1), seq);
            let to = TxnId::new(Cycle::new(cy), (seq + 1) % 10);
            g.add_edge(Node::Txn(from), Node::Txn(to));
        }
    }
    g
}

fn bench_sgraph_scaling(c: &mut Criterion) {
    use bpush_sgraph::GraphDiff;

    let mut group = c.benchmark_group("substrate/sgraph-scaling");
    for &nodes in &[100u64, 1_000, 10_000] {
        let cycles = nodes / 10;
        let mut g = layered_graph(nodes);
        // an unreachable target forces the DFS to exhaust the graph —
        // the worst-case acceptance check
        let unreachable = Node::Query(QueryId::new(999));
        g.add_node(unreachable);
        let g = g;

        group.bench_with_input(BenchmarkId::new("path-exists", nodes), &g, |b, g| {
            let from = Node::Txn(TxnId::new(Cycle::ZERO, 0));
            b.iter(|| g.path_exists(from, unreachable));
        });

        let diff = GraphDiff::new(
            Cycle::new(cycles),
            (0..10).map(|s| TxnId::new(Cycle::new(cycles), s)).collect(),
            (0..10)
                .map(|s| {
                    (
                        TxnId::new(Cycle::new(cycles - 1), s),
                        TxnId::new(Cycle::new(cycles), (s + 1) % 10),
                    )
                })
                .collect(),
        );
        group.bench_with_input(
            BenchmarkId::new("apply-diff", nodes),
            &(&g, &diff),
            |b, (g, diff)| {
                b.iter_batched(
                    || (*g).clone(),
                    |mut g| {
                        g.apply_diff(diff);
                        g
                    },
                    criterion::BatchSize::SmallInput,
                );
            },
        );

        group.bench_with_input(BenchmarkId::new("remove-query", nodes), &g, |b, g| {
            b.iter_batched(
                || {
                    // a finished query entangled with one txn per cycle —
                    // the shape finish_query unlinks on the hot path
                    let mut g = g.clone();
                    let q = Node::Query(QueryId::new(0));
                    for cy in 0..cycles {
                        g.add_edge(q, Node::Txn(TxnId::new(Cycle::new(cy), 0)));
                        g.add_edge(Node::Txn(TxnId::new(Cycle::new(cy), 1)), q);
                    }
                    g
                },
                |mut g| {
                    g.remove_query(QueryId::new(0));
                    g
                },
                criterion::BatchSize::SmallInput,
            );
        });

        group.bench_with_input(BenchmarkId::new("prune-before", nodes), &g, |b, g| {
            b.iter_batched(
                || g.clone(),
                |mut g| {
                    g.prune_before(Cycle::new(cycles / 2));
                    g
                },
                criterion::BatchSize::SmallInput,
            );
        });
    }
    group.finish();
}

fn bench_report_membership(c: &mut Criterion) {
    use bpush_broadcast::{AugmentedReport, InvalidationReport};
    use bpush_types::Granularity;

    let mut group = c.benchmark_group("substrate/report-membership");
    let state = Cycle::new(3);
    let report = InvalidationReport::new(
        Cycle::new(5),
        2,
        (0..200u32).map(|i| ItemId::new(i * 5)),
        Granularity::Item,
        10,
    );
    // a readset of 50 sorted items, every fifth one off-grid (misses)
    let readset: Vec<ItemId> = (0..50u32).map(|i| ItemId::new(i * 20 + (i % 5))).collect();
    group.bench_function("any-stale-gallop", |b| {
        b.iter(|| report.any_stale(&readset, state));
    });
    // the PR-8 word-AND path over the same probe (ReadSet caches the
    // word-block form the `*_set` probes consume)
    let rs: bpush_core::ReadSet = readset.iter().copied().collect();
    group.bench_function("any-stale-words", |b| {
        b.iter(|| report.any_stale_set(rs.as_slice(), rs.word_blocks(), state));
    });
    group.bench_function("any-stale-per-item", |b| {
        // the pre-interning shape: one granularity-aware probe per member
        b.iter(|| readset.iter().any(|&x| report.stale_at(x, state)));
    });
    let coarse = report.clone().at_granularity(Granularity::Bucket);
    group.bench_function("any-stale-gallop-bucket", |b| {
        b.iter(|| coarse.any_stale(&readset, state));
    });
    let aug_cycle = Cycle::new(4);
    let aug = AugmentedReport::new(
        aug_cycle,
        (0..200u32).map(|i| (ItemId::new(i * 5), TxnId::new(aug_cycle, i))),
    );
    group.bench_function("augmented-matches-gallop", |b| {
        b.iter(|| aug.matches_in(&readset).count());
    });
    group.bench_function("augmented-matches-words", |b| {
        b.iter(|| aug.matches_in_set(rs.as_slice(), rs.word_blocks()).count());
    });
    group.bench_function("augmented-matches-scan", |b| {
        // the pre-interning shape: walk every entry, probe the readset
        b.iter(|| {
            aug.entries()
                .filter(|(x, _)| readset.binary_search(x).is_ok())
                .count()
        });
    });
    group.finish();
}

fn bench_batch_validation(c: &mut Criterion) {
    use bpush_broadcast::InvalidationReport;
    use bpush_core::batch::{stale_verdicts, CohortScreen};
    use bpush_core::ReadSet;
    use bpush_types::Granularity;

    let mut group = c.benchmark_group("substrate/batch-validation");
    // 64 cohorts of 4 readsets in disjoint 64-id regions; the report
    // touches only the low eighth, so most cohorts screen out in one
    // word-AND pass — the shape one broadcast cycle presents to a
    // client population
    let report = InvalidationReport::new(
        Cycle::new(1),
        1,
        (0..300u32).map(|i| ItemId::new(i * 37 % 512)),
        Granularity::Item,
        1,
    );
    let cohorts: Vec<Vec<ReadSet>> = (0..64u32)
        .map(|j| {
            (0..4u32)
                .map(|q| {
                    (0..12u32)
                        .map(|k| ItemId::new(j * 64 + (q * 17 + k * 5) % 64))
                        .collect()
                })
                .collect()
        })
        .collect();
    let screens: Vec<CohortScreen> = cohorts
        .iter()
        .map(|c| CohortScreen::for_readsets(c.iter()))
        .collect();
    group.bench_function("cohort-screen-words", |b| {
        let mut out = Vec::new();
        b.iter(|| {
            let mut hits = 0usize;
            for (cohort, screen) in cohorts.iter().zip(&screens) {
                let cohort: Vec<(&ReadSet, Cycle)> =
                    cohort.iter().map(|rs| (rs, Cycle::ZERO)).collect();
                stale_verdicts(&report, screen, &cohort, &mut out);
                hits += out.iter().filter(|&&b| b).count();
            }
            hits
        });
    });
    group.bench_function("per-query-gallop", |b| {
        b.iter(|| {
            let mut hits = 0usize;
            for cohort in &cohorts {
                for rs in cohort {
                    if report.any_stale(rs.as_slice(), Cycle::ZERO) {
                        hits += 1;
                    }
                }
            }
            hits
        });
    });
    group.finish();
}

fn bench_cache(c: &mut Criterion) {
    let mut group = c.benchmark_group("substrate/cache");
    for mode in [CacheMode::Plain, CacheMode::Multiversion] {
        group.bench_with_input(
            BenchmarkId::new("lookup-insert-churn", format!("{mode:?}")),
            &mode,
            |b, &mode| {
                b.iter_batched(
                    || {
                        ClientCache::new(CacheParams {
                            mode,
                            current_capacity: 125,
                            old_capacity: if mode == CacheMode::Multiversion {
                                30
                            } else {
                                0
                            },
                            items_per_bucket: 1,
                        })
                    },
                    |mut cache| {
                        for i in 0..500u32 {
                            let item = ItemId::new(i % 200);
                            let rec = ItemRecord::new(item, ItemValue::initial(), None);
                            cache.insert_from_broadcast(&rec, Cycle::new(u64::from(i / 50)));
                            cache.lookup(ItemId::new((i * 7) % 200), Cycle::new(u64::from(i / 50)));
                        }
                        cache.stats().hits
                    },
                    criterion::BatchSize::SmallInput,
                );
            },
        );
    }
    group.finish();
}

fn bench_workload(c: &mut Criterion) {
    let mut group = c.benchmark_group("substrate/workload");
    let pattern = AccessPattern::new(500, 0.95, 100).expect("valid pattern");
    let mut rng = StdRng::seed_from_u64(1);
    group.bench_function("zipf-sample", |b| b.iter(|| pattern.sample(&mut rng)));
    group.bench_function("zipf-50-distinct", |b| {
        b.iter(|| pattern.sample_distinct(&mut rng, 50))
    });
    group.finish();
}

fn bench_bcast_assembly(c: &mut Criterion) {
    let mut group = c.benchmark_group("substrate/bcast-assembly");
    let records: Vec<ItemRecord> = (0..1000)
        .map(|i| ItemRecord::new(ItemId::new(i), ItemValue::initial(), None))
        .collect();
    group.bench_function("flat-1000-items", |b| {
        b.iter(|| {
            Flat::new(1)
                .assemble(
                    Cycle::ZERO,
                    ControlInfo::empty(Cycle::ZERO),
                    records.clone(),
                    Vec::new(),
                )
                .total_slots()
        });
    });
    let old: Vec<(ItemId, Vec<ItemValue>)> = (0..100)
        .map(|i| (ItemId::new(i), vec![ItemValue::initial()]))
        .collect();
    let versioned: Vec<ItemRecord> = (0..1000)
        .map(|i| {
            let v = if i < 100 {
                ItemValue::written_by(TxnId::new(Cycle::new(3), 0))
            } else {
                ItemValue::initial()
            };
            ItemRecord::new(ItemId::new(i), v, None)
        })
        .collect();
    group.bench_function("overflow-1000-items-100-old", |b| {
        b.iter(|| {
            MultiversionOverflow::new(1)
                .assemble(
                    Cycle::new(4),
                    ControlInfo::empty(Cycle::new(4)),
                    versioned.clone(),
                    old.clone(),
                )
                .total_slots()
        });
    });
    group.finish();
}

fn bench_server_cycle(c: &mut Criterion) {
    let mut group = c.benchmark_group("substrate/server-cycle");
    group.sample_size(20);
    let config = ServerConfig::default(); // D = 1000, the paper's size
    for (name, opts) in [
        ("plain", ServerOptions::plain()),
        ("sgt", ServerOptions::sgt()),
        (
            "multiversion",
            ServerOptions::multiversion(MultiversionLayout::Overflow),
        ),
    ] {
        group.bench_with_input(BenchmarkId::from_parameter(name), &opts, |b, opts| {
            b.iter_batched(
                || BroadcastServer::new(config.clone(), opts.clone(), 1).expect("valid"),
                |mut server| {
                    for _ in 0..10 {
                        server.run_cycle();
                    }
                    server.next_cycle()
                },
                criterion::BatchSize::SmallInput,
            );
        });
    }
    group.finish();
}

fn bench_wire(c: &mut Criterion) {
    use bpush_broadcast::wire::{decode_invalidation, encode_invalidation, WireParams};
    use bpush_broadcast::InvalidationReport;
    use bpush_types::Granularity;

    let mut group = c.benchmark_group("substrate/wire");
    let params = WireParams::derive(1000, 1, 10, 8);
    let report = InvalidationReport::new(
        Cycle::new(5),
        1,
        (0..50).map(|i| ItemId::new(i * 17 % 1000)),
        Granularity::Item,
        1,
    );
    group.bench_function("encode-50-entry-report", |b| {
        b.iter(|| encode_invalidation(&report, params).len());
    });
    let bytes = encode_invalidation(&report, params);
    group.bench_function("decode-50-entry-report", |b| {
        b.iter(|| {
            decode_invalidation(&bytes, params, Cycle::new(5), 1, Granularity::Item, 1)
                .expect("valid stream")
                .len()
        });
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_sgraph,
    bench_sgraph_scaling,
    bench_report_membership,
    bench_batch_validation,
    bench_cache,
    bench_workload,
    bench_bcast_assembly,
    bench_server_cycle,
    bench_wire
);
criterion_main!(benches);
