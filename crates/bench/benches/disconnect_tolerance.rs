//! §5.2.2 workload bench: simulations under disconnection injection (the
//! study itself comes from `reproduce -- disconnect`).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use bpush_bench::bench_config;
use bpush_core::Method;
use bpush_sim::Simulation;

fn bench_disconnect(c: &mut Criterion) {
    let mut group = c.benchmark_group("disconnect/commit-rate");
    group.sample_size(10);
    for method in [
        Method::InvalidationOnly,
        Method::SgtVersionedItems,
        Method::MultiversionBroadcast,
        Method::MultiversionCaching,
    ] {
        group.bench_with_input(
            BenchmarkId::from_parameter(method.name()),
            &method,
            |b, &method| {
                b.iter(|| {
                    let mut cfg = bench_config();
                    cfg.client.disconnect_prob = 0.2;
                    cfg.server.versions_retained = 24;
                    let m = Simulation::new(cfg, method)
                        .expect("valid config")
                        .run()
                        .expect("run completes");
                    assert_eq!(m.violations, 0);
                    m.abort_pct()
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_disconnect);
criterion_main!(benches);
