//! Figure 7 bench: the analytic broadcast-size model of §3 (the figure
//! itself is printed by `reproduce -- fig7`).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use bpush_broadcast::size_model::{SizeModel, SizeParams};

fn bench_size_model(c: &mut Criterion) {
    let model = SizeModel::new(1000, SizeParams::default());
    let mut group = c.benchmark_group("fig7/size-model");
    for (name, f) in [
        (
            "invalidation-only",
            Box::new(|m: &SizeModel| m.invalidation_only_extra(50))
                as Box<dyn Fn(&SizeModel) -> u64>,
        ),
        (
            "multiversion-overflow",
            Box::new(|m: &SizeModel| m.multiversion_overflow_extra(50, 3)),
        ),
        (
            "multiversion-clustered",
            Box::new(|m: &SizeModel| m.multiversion_clustered_extra(50, 3)),
        ),
        ("sgt", Box::new(|m: &SizeModel| m.sgt_extra(10, 25, 50))),
        (
            "multiversion-caching",
            Box::new(|m: &SizeModel| m.multiversion_caching_extra(50, 3)),
        ),
    ] {
        group.bench_with_input(BenchmarkId::from_parameter(name), &f, |b, f| {
            b.iter(|| f(&model));
        });
    }
    group.finish();

    // the full Figure-7 sweep as one unit
    c.bench_function("fig7/full-sweep", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for span in 1..=8 {
                for step in 1..=10 {
                    let u = 50 * step;
                    acc = acc
                        .wrapping_add(model.multiversion_overflow_extra(u, span))
                        .wrapping_add(model.multiversion_clustered_extra(u, span))
                        .wrapping_add(model.invalidation_only_extra(u))
                        .wrapping_add(model.sgt_extra(10, u / 2, u))
                        .wrapping_add(model.multiversion_caching_extra(u, span));
                }
            }
            acc
        });
    });
}

criterion_group!(benches, bench_size_model);
criterion_main!(benches);
