//! Table 1 workload bench: the all-methods comparison run (the table
//! itself comes from `reproduce -- table1`).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use bpush_bench::bench_config;
use bpush_core::Method;
use bpush_sim::{run_jobs, Job, Simulation};

fn bench_each_method(c: &mut Criterion) {
    let mut group = c.benchmark_group("table1/per-method");
    group.sample_size(10);
    for method in Method::ALL {
        group.bench_with_input(
            BenchmarkId::from_parameter(method.name()),
            &method,
            |b, &method| {
                b.iter(|| {
                    Simulation::new(bench_config(), method)
                        .expect("valid config")
                        .run()
                        .expect("run completes")
                        .abort_pct()
                });
            },
        );
    }
    group.finish();
}

fn bench_parallel_sweep(c: &mut Criterion) {
    let mut group = c.benchmark_group("table1/parallel-runner");
    group.sample_size(10);
    group.bench_function("all-methods-fanout", |b| {
        b.iter(|| {
            let jobs: Vec<Job> = Method::ALL
                .iter()
                .map(|&m| Job::new(m, bench_config()))
                .collect();
            run_jobs(jobs).expect("all jobs succeed").len()
        });
    });
    group.finish();
}

criterion_group!(benches, bench_each_method, bench_parallel_sweep);
criterion_main!(benches);
