//! Benchmark support for the `bpush` workspace.
//!
//! The Criterion benches under `benches/` measure, per paper artifact,
//! the cost of the machinery that regenerates it (the `reproduce` binary
//! in `bpush-sim` prints the artifacts themselves):
//!
//! * `fig5_abort_rates` — one reduced-scale simulation per method,
//! * `fig7_size_model` — the analytic size expressions,
//! * `substrate` — serialization-graph, cache, workload-sampling and
//!   bcast-assembly microbenchmarks.
//!
//! This library crate only hosts shared helpers.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

use bpush_types::{CacheConfig, ClientConfig, ServerConfig, SimConfig};

/// A small but non-trivial configuration used by the simulation benches:
/// large enough to exercise every code path, small enough for Criterion's
/// repeated sampling.
pub fn bench_config() -> SimConfig {
    SimConfig {
        server: ServerConfig {
            broadcast_size: 200,
            update_range: 100,
            server_read_range: 200,
            updates_per_cycle: 10,
            txns_per_cycle: 5,
            offset: 20,
            versions_retained: 12,
            ..ServerConfig::default()
        },
        client: ClientConfig {
            read_range: 100,
            reads_per_query: 6,
            cache: CacheConfig {
                capacity: 30,
                ..CacheConfig::default()
            },
            ..ClientConfig::default()
        },
        n_clients: 2,
        queries_per_client: 10,
        warmup_cycles: 2,
        max_cycles: 50_000,
        seed: 0xBE7C,
    }
}
