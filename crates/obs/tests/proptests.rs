//! Property tests for the observability primitives.

// Integration tests are exempt from the panic-freedom policy
// (mirrors `allow-unwrap-in-tests` in clippy.toml and the `#[cfg(test)]`
// carve-out in `cargo xtask lint`).
#![allow(clippy::unwrap_used)]
use proptest::collection::vec;
use proptest::prelude::*;

use bpush_obs::{Log2Histogram, RingBuffer};

proptest! {
    /// Merging two histograms is indistinguishable from recording the
    /// concatenation of their input streams: buckets, count, sum,
    /// min and max all agree exactly.
    #[test]
    fn merge_equals_concatenated_recording(
        left in vec(0u64..u64::MAX, 0..200),
        right in vec(0u64..u64::MAX, 0..200),
    ) {
        let mut a = Log2Histogram::new();
        for &v in &left {
            a.record(v);
        }
        let mut b = Log2Histogram::new();
        for &v in &right {
            b.record(v);
        }
        let mut whole = Log2Histogram::new();
        for &v in left.iter().chain(right.iter()) {
            whole.record(v);
        }
        a.merge(&b);
        prop_assert_eq!(a, whole);
    }

    /// Every sample lands in exactly one bucket whose bounds contain it,
    /// and bucket totals always reconcile with the sample count.
    #[test]
    fn buckets_partition_the_value_space(samples in vec(0u64..u64::MAX, 1..200)) {
        let mut h = Log2Histogram::new();
        for &v in &samples {
            let k = Log2Histogram::bucket_of(v);
            prop_assert!(Log2Histogram::bucket_floor(k) <= v);
            prop_assert!(v <= Log2Histogram::bucket_ceil(k));
            h.record(v);
        }
        let total: u64 = h.buckets().iter().sum();
        prop_assert_eq!(total, h.count());
        prop_assert_eq!(h.count(), samples.len() as u64);
    }

    /// The ring buffer keeps exactly the newest `capacity` entries and
    /// accounts for every eviction.
    #[test]
    fn ring_keeps_the_newest_suffix(
        capacity in 1usize..32,
        values in vec(0u64..1000, 0..100),
    ) {
        let mut r = RingBuffer::new(capacity);
        for &v in &values {
            r.push(v);
        }
        let kept: Vec<u64> = r.iter().copied().collect();
        let start = values.len().saturating_sub(capacity);
        prop_assert_eq!(&kept[..], &values[start..]);
        prop_assert_eq!(r.dropped(), start as u64);
    }
}
