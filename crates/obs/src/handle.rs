//! The `Obs` handle: the one type the rest of the workspace talks to.

use std::sync::Arc;

use parking_lot::Mutex;

use bpush_types::Cycle;

use crate::event::{Actor, Event, EventKind};
use crate::hist::Log2Histogram;
use crate::monitor::Monitors;
use crate::registry::MetricsRegistry;
use crate::ring::RingBuffer;

/// Default event retention when none is specified.
pub const DEFAULT_CAPACITY: usize = 1 << 16;

/// The shared recorder behind an enabled [`Obs`] handle.
#[derive(Debug)]
struct Recorder {
    events: RingBuffer<Event>,
    registry: MetricsRegistry,
    next_tick: u64,
}

impl Recorder {
    fn record_event(&mut self, cycle: Cycle, actor: Actor, kind: EventKind) {
        let tick = self.next_tick;
        self.next_tick += 1;
        for name in kind.counter_names().into_iter().flatten() {
            self.registry.add(name, 1);
        }
        if let EventKind::QueryCommitted { latency_slots, .. } = kind {
            self.registry.record("query.latency.slots", latency_slots);
        }
        self.events.push(Event {
            tick,
            cycle,
            actor,
            kind,
        });
    }
}

/// An immutable copy of everything a recorder holds, taken with
/// [`Obs::snapshot`]. The unit every exporter consumes.
#[derive(Debug, Clone)]
pub struct TraceSnapshot {
    /// Retained events, oldest first (tick order).
    pub events: Vec<Event>,
    /// Events evicted from the ring to stay within capacity.
    pub dropped: u64,
    /// All counters as `(name, value)`, sorted by name.
    pub counters: Vec<(String, u64)>,
    /// All histograms as `(name, histogram)`, sorted by name.
    pub histograms: Vec<(String, Log2Histogram)>,
}

impl TraceSnapshot {
    /// The named counter's value (0 when never incremented).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| *v)
            .unwrap_or(0)
    }

    /// The named histogram, if present.
    pub fn histogram(&self, name: &str) -> Option<&Log2Histogram> {
        self.histograms
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, h)| h)
    }
}

/// A cheaply cloneable observability sink.
///
/// Disabled by default ([`Obs::off`], also `Default`): every emit path
/// is then a single `Option` check, so instrumented code costs nothing
/// in benchmarks and model-checking runs that do not ask for a trace.
/// [`Obs::recording`] returns a handle whose clones all share one
/// recorder; events are ticked in emission order under the recorder's
/// lock, so a single-threaded run is reproducible byte for byte.
#[derive(Debug, Clone, Default)]
pub struct Obs {
    inner: Option<Arc<Mutex<Recorder>>>,
    monitors: Option<Monitors>,
}

impl Obs {
    /// The no-op sink: nothing is recorded, nothing is allocated.
    pub fn off() -> Self {
        Obs {
            inner: None,
            monitors: None,
        }
    }

    /// A recording sink retaining the last `capacity` events
    /// (0 is promoted to 1; see [`RingBuffer::new`]).
    pub fn recording(capacity: usize) -> Self {
        Obs {
            inner: Some(Arc::new(Mutex::new(Recorder {
                events: RingBuffer::new(capacity),
                registry: MetricsRegistry::new(),
                next_tick: 0,
            }))),
            monitors: None,
        }
    }

    /// Attaches an online monitor set: every event emitted through this
    /// handle (and its clones) is also streamed through the monitors. A
    /// handle may carry monitors without a recorder — invariants are
    /// then checked online with no event retention at all.
    #[must_use]
    pub fn with_monitors(mut self, monitors: Monitors) -> Self {
        self.monitors = Some(monitors);
        self
    }

    /// The attached monitor set, if any.
    pub fn monitors(&self) -> Option<&Monitors> {
        self.monitors.as_ref()
    }

    /// Whether this handle records or monitors anything.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some() || self.monitors.is_some()
    }

    /// Records one event (and bumps its canonical counters), then
    /// streams it through the attached monitors, if any.
    pub fn emit(&self, cycle: Cycle, actor: Actor, kind: EventKind) {
        if let Some(rec) = &self.inner {
            // bpush-lint: allow(lock-order) — recorder guard is a statement temporary, released before the monitor engine locks; the recorder→engine order is the only one in the workspace
            rec.lock().record_event(cycle, actor, kind);
        }
        if let Some(mon) = &self.monitors {
            mon.feed_event(cycle, actor, kind);
        }
    }

    /// Adds `n` to a named counter.
    pub fn counter_add(&self, name: &str, n: u64) {
        if let Some(rec) = &self.inner {
            rec.lock().registry.add(name, n);
        }
    }

    /// Records a sample into a named histogram.
    pub fn record(&self, name: &str, value: u64) {
        if let Some(rec) = &self.inner {
            // bpush-lint: allow(lock-order) — the guard is a statement temporary; `registry.record` is MetricsRegistry::record (lock-free), which name-resolution over-approximates to this method
            rec.lock().registry.record(name, value);
        }
    }

    /// Opens a scoped span: emits [`EventKind::SpanBegin`] now and
    /// [`EventKind::SpanEnd`] when the guard drops.
    #[must_use = "the span closes when the guard drops"]
    pub fn span(&self, name: &'static str, cycle: Cycle, actor: Actor) -> SpanGuard {
        self.emit(cycle, actor, EventKind::SpanBegin { name });
        SpanGuard {
            obs: self.clone(),
            name,
            cycle,
            actor,
        }
    }

    /// Copies out the recorder's state, or `None` for the no-op sink.
    pub fn snapshot(&self) -> Option<TraceSnapshot> {
        self.inner.as_ref().map(|rec| {
            let rec = rec.lock();
            TraceSnapshot {
                events: rec.events.iter().copied().collect(),
                dropped: rec.events.dropped(),
                counters: rec.registry.counters(),
                histograms: rec.registry.histograms(),
            }
        })
    }
}

/// Closes its span on drop. Returned by [`Obs::span`].
#[derive(Debug)]
pub struct SpanGuard {
    obs: Obs,
    name: &'static str,
    cycle: Cycle,
    actor: Actor,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        self.obs.emit(
            self.cycle,
            self.actor,
            EventKind::SpanEnd { name: self.name },
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn off_sink_records_nothing() {
        let obs = Obs::off();
        assert!(!obs.is_enabled());
        obs.emit(Cycle::ZERO, Actor::Server, EventKind::ControlProcessed);
        obs.counter_add("x", 1);
        obs.record("h", 1);
        let _span = obs.span("s", Cycle::ZERO, Actor::Server);
        assert!(obs.snapshot().is_none());
    }

    #[test]
    fn clones_share_one_recorder_and_ticks_are_monotonic() {
        let obs = Obs::recording(16);
        let clone = obs.clone();
        obs.emit(Cycle::ZERO, Actor::Server, EventKind::ControlProcessed);
        clone.emit(Cycle::new(1), Actor::Client(0), EventKind::MissedCycle);
        let snap = obs.snapshot().expect("recording");
        assert_eq!(snap.events.len(), 2);
        assert_eq!(snap.events[0].tick, 0);
        assert_eq!(snap.events[1].tick, 1);
        assert_eq!(snap.counter("control.processed"), 1);
        assert_eq!(snap.counter("cycles.missed"), 1);
    }

    #[test]
    fn events_bump_reason_dimension_counters() {
        use bpush_types::AbortReason;
        let obs = Obs::recording(16);
        obs.emit(
            Cycle::ZERO,
            Actor::Client(0),
            EventKind::QueryAborted {
                query: 0,
                reason: AbortReason::CycleDetected,
            },
        );
        let snap = obs.snapshot().expect("recording");
        assert_eq!(snap.counter("queries.aborted"), 1);
        assert_eq!(snap.counter("queries.aborted.cycle-detected"), 1);
        assert_eq!(snap.counter("queries.aborted.invalidated"), 0);
    }

    #[test]
    fn committed_queries_feed_the_latency_histogram() {
        let obs = Obs::recording(16);
        for latency in [10u64, 200] {
            obs.emit(
                Cycle::ZERO,
                Actor::Client(0),
                EventKind::QueryCommitted {
                    query: 0,
                    latency_slots: latency,
                },
            );
        }
        let snap = obs.snapshot().expect("recording");
        let h = snap.histogram("query.latency.slots").expect("recorded");
        assert_eq!(h.count(), snap.counter("queries.committed"));
        assert_eq!(h.sum(), 210);
    }

    #[test]
    fn span_guard_brackets_its_scope() {
        let obs = Obs::recording(16);
        {
            let _g = obs.span("server.cycle", Cycle::new(3), Actor::Server);
            obs.emit(Cycle::new(3), Actor::Server, EventKind::ControlProcessed);
        }
        let snap = obs.snapshot().expect("recording");
        let kinds: Vec<&'static str> = snap.events.iter().map(|e| e.kind.name()).collect();
        assert_eq!(kinds, vec!["span-begin", "control-processed", "span-end"]);
    }

    #[test]
    fn ring_overflow_is_reported_in_the_snapshot() {
        let obs = Obs::recording(2);
        for _ in 0..5 {
            obs.emit(Cycle::ZERO, Actor::Server, EventKind::ControlProcessed);
        }
        let snap = obs.snapshot().expect("recording");
        assert_eq!(snap.events.len(), 2);
        assert_eq!(snap.dropped, 3);
        assert_eq!(snap.events[0].tick, 3, "newest retained");
        // Counters are unaffected by ring eviction.
        assert_eq!(snap.counter("control.processed"), 5);
    }
}
