//! Deterministic observability for the `bpush` suite.
//!
//! The paper's central claim is *scalability of client-side validation*;
//! evaluating it honestly needs more than end-of-run aggregates. This
//! crate provides the instrumentation layer the rest of the workspace
//! emits into:
//!
//! * **Tracer** — a fixed-capacity ring buffer of integer-timestamped
//!   events ([`Event`], [`EventKind`]) with typed payloads, plus scoped
//!   spans ([`SpanGuard`]) for per-cycle server/validator work. Time is
//!   logical: every event carries the broadcast `cycle` it belongs to
//!   and a monotonically increasing `tick` assigned at emission, so two
//!   runs with the same seed produce byte-identical traces.
//! * **Metrics registry** — named counters and fixed-bucket log2
//!   histograms ([`Log2Histogram`]), all-integer so output is
//!   bit-identical across runs. Events auto-increment their canonical
//!   counters (per-[`AbortReason`](bpush_types::AbortReason) dimensions
//!   included), so the event stream and the counter table always
//!   reconcile.
//! * **Exporters** — an NDJSON event stream ([`export::ndjson`]), a
//!   chrome://tracing `trace_event` array ([`export::chrome_trace`])
//!   that opens directly in Perfetto, and a compact terminal summary
//!   ([`export::text_summary`]).
//! * **Online monitors** — deterministic invariant state machines over
//!   the event stream ([`monitor::Monitors`]): currency/staleness,
//!   commit-implies-serializable, report coverage, and stream sanity,
//!   each producing an all-integer [`monitor::MonitorVerdict`].
//! * **Flight recorder** — a bounded ring of recent wire-format frames
//!   ([`flight::FlightRecorder`]) that freezes into a replayable
//!   `bpush-capture-v1` [`flight::Capture`] when a monitor fires.
//!
//! Everything funnels through an [`Obs`] handle: a cheaply cloneable
//! sink that is a no-op by default ([`Obs::off`]) — a single `Option`
//! check on the emit path — and records into a shared
//! [`TraceSnapshot`]-able recorder when enabled ([`Obs::recording`]).
//!
//! # Example
//!
//! ```
//! use bpush_obs::{Actor, EventKind, Obs};
//! use bpush_types::Cycle;
//!
//! let obs = Obs::recording(1024);
//! {
//!     let _cycle = obs.span("server.cycle", Cycle::ZERO, Actor::Server);
//!     obs.emit(Cycle::ZERO, Actor::Client(0), EventKind::ControlProcessed);
//! }
//! let snap = obs.snapshot().expect("recording sink has a snapshot");
//! assert_eq!(snap.events.len(), 3); // span begin/end + the event
//! assert_eq!(snap.counter("control.processed"), 1);
//! assert!(bpush_obs::export::chrome_trace(&snap).starts_with("{\"traceEvents\":["));
//! ```
//!
//! The crate is zero-dependency beyond the workspace's own vocabulary
//! types and the vendored `parking_lot` lock standard: no wall clocks,
//! no ambient RNG, no hash-ordered collections — the same determinism
//! contract (`xtask lint` L2) as the protocol crates it observes.

#![forbid(unsafe_code)]
#![deny(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod event;
pub mod export;
pub mod flight;
pub mod handle;
pub mod hist;
pub mod monitor;
pub mod registry;
pub mod ring;

pub use event::{Actor, Event, EventKind};
pub use flight::{Capture, FlightRecorder, Frame, CAPTURE_MAGIC};
pub use handle::{Obs, SpanGuard, TraceSnapshot, DEFAULT_CAPACITY};
pub use hist::Log2Histogram;
pub use monitor::{
    CoverageRule, MonitorConfig, MonitorPolicy, MonitorVerdict, Monitors, Violation,
};
pub use registry::MetricsRegistry;
pub use ring::RingBuffer;
