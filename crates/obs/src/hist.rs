//! An all-integer power-of-two histogram.
//!
//! Latencies and sizes in this workspace are logical quantities (slots,
//! items, nodes), so the histogram is exact-integer end to end: no
//! floating point anywhere means recording the same stream always
//! yields bit-identical state, and merging per-client histograms is
//! associative and lossless at the bucket level.

/// Number of buckets: one for zero plus one per bit of `u64`.
pub const BUCKETS: usize = 65;

/// A fixed-bucket log2 histogram of `u64` samples.
///
/// Bucket 0 holds the value `0`; bucket `k ≥ 1` holds values in
/// `[2^(k-1), 2^k)`. The top bucket (`k = 64`) therefore holds
/// `[2^63, u64::MAX]` — saturation is a property of the value range,
/// not the histogram: every `u64` lands in exactly one bucket and the
/// running `sum` saturates rather than wrapping.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Log2Histogram {
    buckets: [u64; BUCKETS],
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for Log2Histogram {
    fn default() -> Self {
        Log2Histogram::new()
    }
}

impl Log2Histogram {
    /// An empty histogram.
    pub const fn new() -> Self {
        Log2Histogram {
            buckets: [0; BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// The bucket index `value` falls into.
    pub const fn bucket_of(value: u64) -> usize {
        (u64::BITS - value.leading_zeros()) as usize
    }

    /// The inclusive lower bound of bucket `k` (0 for the zero bucket).
    pub const fn bucket_floor(k: usize) -> u64 {
        if k == 0 {
            0
        } else {
            1u64 << (k - 1)
        }
    }

    /// The inclusive upper bound of bucket `k`.
    pub const fn bucket_ceil(k: usize) -> u64 {
        if k == 0 {
            0
        } else if k >= BUCKETS - 1 {
            u64::MAX
        } else {
            (1u64 << k) - 1
        }
    }

    /// Records one sample.
    pub fn record(&mut self, value: u64) {
        self.buckets[Self::bucket_of(value)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Total samples recorded.
    pub const fn count(&self) -> u64 {
        self.count
    }

    /// Saturating sum of all samples.
    pub const fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest sample, or `None` when empty.
    pub const fn min(&self) -> Option<u64> {
        if self.count == 0 {
            None
        } else {
            Some(self.min)
        }
    }

    /// Largest sample, or `None` when empty.
    pub const fn max(&self) -> Option<u64> {
        if self.count == 0 {
            None
        } else {
            Some(self.max)
        }
    }

    /// The integer mean (floor), or `None` when empty.
    pub const fn mean(&self) -> Option<u64> {
        self.sum.checked_div(self.count)
    }

    /// The raw bucket counts, index = [`Log2Histogram::bucket_of`].
    pub const fn buckets(&self) -> &[u64; BUCKETS] {
        &self.buckets
    }

    /// The non-empty buckets as `(index, count)`, ascending.
    pub fn nonzero_buckets(&self) -> Vec<(usize, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, c)| **c > 0)
            .map(|(i, c)| (i, *c))
            .collect()
    }

    /// The `p`-th percentile estimate (`p` in `0..=100`), or `None`
    /// when empty.
    ///
    /// All-integer: walks the cumulative bucket counts to the bucket
    /// containing the `ceil(p/100 · count)`-th smallest sample and
    /// returns that bucket's midpoint (`floor + (ceil - floor) / 2`),
    /// clamped into the observed `[min, max]` range. Exact for buckets
    /// of width one (values 0 and 1), within a factor of two elsewhere
    /// — the same resolution as the buckets themselves.
    pub fn percentile(&self, p: u8) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let p = u64::from(p.min(100));
        // rank = ceil(p/100 * count), at least 1 so p=0 is the minimum
        let rank = (p.saturating_mul(self.count).saturating_add(99) / 100).max(1);
        let mut seen = 0u64;
        for (k, c) in self.buckets.iter().enumerate() {
            seen = seen.saturating_add(*c);
            if seen >= rank {
                let floor = Self::bucket_floor(k);
                let ceil = Self::bucket_ceil(k);
                let mid = floor + (ceil - floor) / 2;
                return Some(mid.clamp(self.min, self.max));
            }
        }
        self.max()
    }

    /// The median estimate ([`Log2Histogram::percentile`] at 50).
    pub fn p50(&self) -> Option<u64> {
        self.percentile(50)
    }

    /// The 90th-percentile estimate.
    pub fn p90(&self) -> Option<u64> {
        self.percentile(90)
    }

    /// The 99th-percentile estimate.
    pub fn p99(&self) -> Option<u64> {
        self.percentile(99)
    }

    /// Folds `other` into `self`. Equivalent (bucket-, count-, sum-,
    /// min/max-exactly) to having recorded the concatenation of both
    /// input streams.
    pub fn merge(&mut self, other: &Log2Histogram) {
        for (mine, theirs) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *mine += *theirs;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries_are_exact_powers_of_two() {
        assert_eq!(Log2Histogram::bucket_of(0), 0);
        assert_eq!(Log2Histogram::bucket_of(1), 1);
        assert_eq!(Log2Histogram::bucket_of(2), 2);
        assert_eq!(Log2Histogram::bucket_of(3), 2);
        assert_eq!(Log2Histogram::bucket_of(4), 3);
        assert_eq!(Log2Histogram::bucket_of(7), 3);
        assert_eq!(Log2Histogram::bucket_of(8), 4);
        for k in 1..BUCKETS {
            let floor = Log2Histogram::bucket_floor(k);
            assert_eq!(Log2Histogram::bucket_of(floor), k, "floor of bucket {k}");
            let ceil = Log2Histogram::bucket_ceil(k);
            assert_eq!(Log2Histogram::bucket_of(ceil), k, "ceil of bucket {k}");
            if k > 1 {
                assert_eq!(
                    Log2Histogram::bucket_ceil(k - 1) + 1,
                    floor,
                    "buckets {k} and {} are adjacent",
                    k - 1
                );
            }
        }
    }

    #[test]
    fn extremes_land_in_the_end_buckets() {
        let mut h = Log2Histogram::new();
        h.record(0);
        h.record(u64::MAX);
        assert_eq!(h.buckets()[0], 1);
        assert_eq!(h.buckets()[BUCKETS - 1], 1);
        assert_eq!(h.min(), Some(0));
        assert_eq!(h.max(), Some(u64::MAX));
        assert_eq!(h.count(), 2);
    }

    #[test]
    fn sum_saturates_instead_of_wrapping() {
        let mut h = Log2Histogram::new();
        h.record(u64::MAX);
        h.record(u64::MAX);
        assert_eq!(h.sum(), u64::MAX);
        assert_eq!(h.count(), 2);
        assert_eq!(h.mean(), Some(u64::MAX / 2));
    }

    #[test]
    fn empty_histogram_reports_no_extremes() {
        let h = Log2Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.min(), None);
        assert_eq!(h.max(), None);
        assert_eq!(h.mean(), None);
        assert!(h.nonzero_buckets().is_empty());
    }

    #[test]
    fn percentiles_are_pinned_bucket_midpoints() {
        let mut h = Log2Histogram::new();
        // 100 samples: 50× value 2 (bucket 2: [2,3]), 40× value 10
        // (bucket 4: [8,15]), 10× value 100 (bucket 7: [64,127])
        for _ in 0..50 {
            h.record(2);
        }
        for _ in 0..40 {
            h.record(10);
        }
        for _ in 0..10 {
            h.record(100);
        }
        assert_eq!(h.p50(), Some(2), "midpoint of [2,3] clamped to min=2");
        assert_eq!(h.p90(), Some(11), "midpoint of [8,15]");
        assert_eq!(h.p99(), Some(95), "midpoint of [64,127] = 95");
        assert_eq!(h.percentile(0), Some(2), "p0 is the smallest sample");
        assert_eq!(
            h.percentile(100),
            Some(95),
            "p100 clamps to max=100's bucket midpoint"
        );
    }

    #[test]
    fn percentiles_clamp_into_the_observed_range() {
        let mut h = Log2Histogram::new();
        h.record(9); // bucket 4: [8,15], midpoint 11
        assert_eq!(h.p50(), Some(9), "single sample clamps to max");
        assert_eq!(h.p99(), Some(9));
        let mut exact = Log2Histogram::new();
        exact.record(0);
        exact.record(1);
        assert_eq!(exact.p50(), Some(0), "width-one buckets are exact");
        assert_eq!(exact.p99(), Some(1));
        assert_eq!(Log2Histogram::new().p50(), None, "empty has no percentile");
    }

    #[test]
    fn merge_equals_concatenated_recording_on_a_fixed_stream() {
        let left = [0u64, 1, 5, 1 << 20, u64::MAX];
        let right = [3u64, 3, 1 << 40];
        let mut a = Log2Histogram::new();
        let mut b = Log2Histogram::new();
        let mut whole = Log2Histogram::new();
        for v in left {
            a.record(v);
            whole.record(v);
        }
        for v in right {
            b.record(v);
            whole.record(v);
        }
        a.merge(&b);
        assert_eq!(a, whole);
    }
}
