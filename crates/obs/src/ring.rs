//! A fixed-capacity ring buffer that keeps the newest entries.
//!
//! Tracing must never grow without bound — a long simulation emits
//! millions of events — so the recorder keeps the last `capacity`
//! events and counts how many older ones were overwritten. Because
//! every event carries its own `tick`, a truncated trace is still
//! self-describing: the first retained tick tells the reader exactly
//! how much history was dropped.

use std::collections::VecDeque;

/// A bounded FIFO that evicts its oldest entry on overflow.
#[derive(Debug, Clone)]
pub struct RingBuffer<T> {
    buf: VecDeque<T>,
    capacity: usize,
    dropped: u64,
}

impl<T> RingBuffer<T> {
    /// Creates a buffer retaining at most `capacity` entries.
    /// A zero capacity is promoted to 1 so `push` is total.
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        RingBuffer {
            buf: VecDeque::with_capacity(capacity),
            capacity,
            dropped: 0,
        }
    }

    /// Appends `value`, evicting the oldest entry when full.
    pub fn push(&mut self, value: T) {
        if self.buf.len() == self.capacity {
            self.buf.pop_front();
            self.dropped += 1;
        }
        self.buf.push_back(value);
    }

    /// Entries currently retained.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been retained.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// The retention bound.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// How many entries were evicted to stay within capacity.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Iterates the retained entries oldest-first.
    pub fn iter(&self) -> impl Iterator<Item = &T> {
        self.buf.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn retains_newest_and_counts_drops() {
        let mut r = RingBuffer::new(3);
        assert!(r.is_empty());
        for i in 0..5u32 {
            r.push(i);
        }
        assert_eq!(r.len(), 3);
        assert_eq!(r.capacity(), 3);
        assert_eq!(r.dropped(), 2);
        let kept: Vec<u32> = r.iter().copied().collect();
        assert_eq!(kept, vec![2, 3, 4], "oldest-first, newest retained");
    }

    #[test]
    fn under_capacity_drops_nothing() {
        let mut r = RingBuffer::new(8);
        r.push("a");
        r.push("b");
        assert_eq!(r.len(), 2);
        assert_eq!(r.dropped(), 0);
    }

    #[test]
    fn zero_capacity_is_promoted_to_one() {
        let mut r = RingBuffer::new(0);
        r.push(1u8);
        r.push(2u8);
        assert_eq!(r.capacity(), 1);
        assert_eq!(r.len(), 1);
        assert_eq!(r.dropped(), 1);
        assert_eq!(r.iter().copied().collect::<Vec<_>>(), vec![2]);
    }
}
