//! Named counters and histograms, iterated in a canonical order.

use std::collections::BTreeMap;

use crate::hist::Log2Histogram;

/// A registry of named counters and [`Log2Histogram`]s.
///
/// Names are free-form dotted paths ("queries.committed",
/// "latency.slots"). Storage is `BTreeMap`, so iteration order — and
/// therefore every export — is the lexicographic name order, identical
/// across runs.
#[derive(Debug, Clone, Default)]
pub struct MetricsRegistry {
    counters: BTreeMap<String, u64>,
    histograms: BTreeMap<String, Log2Histogram>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    /// Adds `n` to the named counter, creating it at zero.
    pub fn add(&mut self, name: &str, n: u64) {
        if let Some(c) = self.counters.get_mut(name) {
            *c += n;
        } else {
            self.counters.insert(name.to_string(), n);
        }
    }

    /// Records `value` into the named histogram, creating it empty.
    pub fn record(&mut self, name: &str, value: u64) {
        if let Some(h) = self.histograms.get_mut(name) {
            h.record(value);
        } else {
            let mut h = Log2Histogram::new();
            h.record(value);
            self.histograms.insert(name.to_string(), h);
        }
    }

    /// The named counter's value (0 when never incremented).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// The named histogram, if anything was recorded into it.
    pub fn histogram(&self, name: &str) -> Option<&Log2Histogram> {
        self.histograms.get(name)
    }

    /// All counters as `(name, value)`, sorted by name.
    pub fn counters(&self) -> Vec<(String, u64)> {
        self.counters.iter().map(|(k, v)| (k.clone(), *v)).collect()
    }

    /// All histograms as `(name, histogram)`, sorted by name.
    pub fn histograms(&self) -> Vec<(String, Log2Histogram)> {
        self.histograms
            .iter()
            .map(|(k, v)| (k.clone(), v.clone()))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_default_to_zero() {
        let mut r = MetricsRegistry::new();
        assert_eq!(r.counter("x"), 0);
        r.add("x", 2);
        r.add("x", 3);
        r.add("a", 1);
        assert_eq!(r.counter("x"), 5);
        let names: Vec<String> = r.counters().into_iter().map(|(n, _)| n).collect();
        assert_eq!(names, vec!["a".to_string(), "x".to_string()], "sorted");
    }

    #[test]
    fn histograms_record_and_expose() {
        let mut r = MetricsRegistry::new();
        assert!(r.histogram("lat").is_none());
        r.record("lat", 5);
        r.record("lat", 9);
        let h = r.histogram("lat").expect("recorded");
        assert_eq!(h.count(), 2);
        assert_eq!(h.sum(), 14);
    }
}
