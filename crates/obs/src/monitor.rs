//! Online invariant monitors over the [`Obs`](crate::Obs) event stream.
//!
//! Each monitor is a small deterministic state machine over integers:
//! fed the same same-seed event stream, it produces byte-identical
//! verdicts ([`MonitorVerdict::render`]). The engine mirrors the
//! *published rules* of the processing methods (§3 of the paper) rather
//! than their implementations, so a protocol that diverges from its own
//! rule — such as the seeded `BrokenInvalidation` mutant — is caught
//! online, while every genuine method passes:
//!
//! * **Currency** ([`MonitorKind::Currency`], policy
//!   [`MonitorPolicy::Current`]) — mirrors the §3.1 invalidation screen
//!   at item granularity: once a report entry hits the active readset at
//!   or after the query's verified state, the protocol must doom the
//!   query; a read *accepted* past that point is a violation. An
//!   optional staleness bound caps commit-time currency distance.
//! * **Serializability** ([`MonitorKind::Serializability`]) — for
//!   [`MonitorPolicy::Graph`] methods, an incremental shadow
//!   serialization graph (reusing `bpush_sgraph`) replays the §3.3 edge
//!   discipline; an accepted read whose dependency edge closes a cycle,
//!   or a commit while the query sits on a cycle, is a violation. For
//!   [`MonitorPolicy::Snapshot`] methods, the committed readset's
//!   validity intervals must share a database state.
//! * **Coverage** ([`MonitorKind::Coverage`]) — every committed readset
//!   was screened against every overlapping report: an uncovered report
//!   gap (window rule, §5.2.2) or a missed cycle under a strict-gap
//!   method must doom the query before any further read is accepted.
//! * **Stream** ([`MonitorKind::Stream`]) — span balance and per-lane
//!   cycle monotonicity of the event stream itself.
//!
//! The typed feed ([`Monitors::report_entry`] and friends) carries the
//! per-entry control information the event stream compresses away; it is
//! driven by the `Instrumented` protocol decorator in `bpush-core`.

// bpush-lint: sans_io — monitor feed path: pure state machines over integers, no clocks/threads/files/sockets

use std::sync::Arc;

use parking_lot::Mutex;

use bpush_sgraph::{GraphDiff, Node, SerializationGraph};
use bpush_types::{AbortReason, Cycle, ItemId, QueryId, TxnId};

use crate::event::{Actor, EventKind};

/// Sentinel for "no item" in an all-integer [`Violation`].
pub const NO_ITEM: u32 = u32::MAX;
/// Sentinel for "no cycle / not applicable" in an all-integer field.
pub const NO_CYCLE: u64 = u64::MAX;

/// Which invariant family a method is checked against.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
// bpush-lint: protocol_enum — monitor rule family mirroring the method matrix
pub enum MonitorPolicy {
    /// Committed readsets must be current (§3.1 invalidation screen).
    Current,
    /// Committed readsets must share one database state (§4.1/§3.2).
    Snapshot,
    /// Commits must leave the serialization graph acyclic (§3.3).
    Graph,
}

/// How missed cycles must be handled by the method under watch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
// bpush-lint: protocol_enum — gap-handling rule mirroring §5.2.2
pub enum CoverageRule {
    /// A gap is tolerable iff the next heard report's window covers it.
    WindowGap,
    /// Any missed cycle dooms active queries (plain SGT).
    StrictGap,
    /// Gaps never doom (multiversion / versioned methods).
    Ignore,
}

/// Which monitor produced a [`Violation`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
// bpush-lint: protocol_enum — verdict dimension of the monitor engine
pub enum MonitorKind {
    /// The §3.1 currency screen was bypassed.
    Currency,
    /// A commit was provably non-serializable under the method's rule.
    Serializability,
    /// A readset escaped screening against an overlapping report.
    Coverage,
    /// The event stream itself was malformed (spans, cycle order).
    Stream,
    /// Not a violation: an [`AbortReason`] watch filter matched.
    AbortWatch,
}

impl MonitorKind {
    /// Short stable kebab-case label.
    pub const fn label(self) -> &'static str {
        match self {
            MonitorKind::Currency => "currency",
            MonitorKind::Serializability => "serializability",
            MonitorKind::Coverage => "coverage",
            MonitorKind::Stream => "stream",
            MonitorKind::AbortWatch => "abort-watch",
        }
    }

    /// Parses [`MonitorKind::label`] output.
    pub fn from_label(s: &str) -> Option<MonitorKind> {
        match s {
            "currency" => Some(MonitorKind::Currency),
            "serializability" => Some(MonitorKind::Serializability),
            "coverage" => Some(MonitorKind::Coverage),
            "stream" => Some(MonitorKind::Stream),
            "abort-watch" => Some(MonitorKind::AbortWatch),
            _ => None,
        }
    }
}

/// One detected invariant violation, all-integer so verdicts render
/// byte-identically across same-seed runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Violation {
    /// Which monitor fired.
    pub kind: MonitorKind,
    /// The client lane ([`Actor::Client`] index).
    pub client: u32,
    /// The query id involved.
    pub query: u64,
    /// The cycle at which the violation was confirmed.
    pub cycle: u64,
    /// The offending item ([`NO_ITEM`] when not item-specific).
    pub item: u32,
    /// The conflicting write's cycle ([`NO_CYCLE`] when n/a).
    pub write_cycle: u64,
    /// Kind-specific detail: the report cycle that should have doomed
    /// the query (currency/coverage), the conflicting writer's sequence
    /// number (serializability), or the stream lane's last cycle.
    pub detail: u64,
}

impl Violation {
    const EMPTY: Violation = Violation {
        kind: MonitorKind::Stream,
        client: 0,
        query: 0,
        cycle: 0,
        item: NO_ITEM,
        write_cycle: NO_CYCLE,
        detail: 0,
    };

    /// Canonical one-line rendering, stable across runs.
    pub fn render(&self) -> String {
        format!(
            "violation kind={} client={} query={} cycle={} item={} write_cycle={} detail={}",
            self.kind.label(),
            self.client,
            self.query,
            self.cycle,
            self.item,
            self.write_cycle,
            self.detail
        )
    }

    /// Parses a [`Violation::render`] line.
    pub fn parse(line: &str) -> Option<Violation> {
        let mut kind = None;
        let mut client = None;
        let mut query = None;
        let mut cycle = None;
        let mut item = None;
        let mut write_cycle = None;
        let mut detail = None;
        let mut seen = 0usize;
        for part in line.split_ascii_whitespace() {
            if part == "violation" {
                continue;
            }
            let (key, value) = part.split_once('=')?;
            match key {
                "kind" => kind = MonitorKind::from_label(value),
                "client" => client = value.parse().ok(),
                "query" => query = value.parse().ok(),
                "cycle" => cycle = value.parse().ok(),
                "item" => item = value.parse().ok(),
                "write_cycle" => write_cycle = value.parse().ok(),
                "detail" => detail = value.parse().ok(),
                _ => return None,
            }
            seen = seen.saturating_add(1);
        }
        if seen != 7 {
            return None;
        }
        Some(Violation {
            kind: kind?,
            client: client?,
            query: query?,
            cycle: cycle?,
            item: item?,
            write_cycle: write_cycle?,
            detail: detail?,
        })
    }
}

/// A matched [`AbortReason`] watch filter hit (not a violation).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WatchHit {
    /// The client lane.
    pub client: u32,
    /// The aborted query.
    pub query: u64,
    /// The abort cycle.
    pub cycle: u64,
    /// The matched reason.
    pub reason: AbortReason,
}

impl WatchHit {
    const EMPTY: WatchHit = WatchHit {
        client: 0,
        query: 0,
        cycle: 0,
        reason: AbortReason::Invalidated,
    };
}

/// Configuration of a [`Monitors`] engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MonitorConfig {
    /// Number of client lanes to preallocate.
    pub clients: u32,
    /// Readset slots per lane; queries reading more overflow (counted,
    /// their commit checks are skipped rather than guessed).
    pub reads_per_query: u32,
    /// The invariant family of the method under watch.
    pub policy: MonitorPolicy,
    /// The gap rule of the method under watch.
    pub coverage: CoverageRule,
    /// Optional commit-time staleness ceiling in cycles: a commit whose
    /// readset was last verified more than this many cycles ago is a
    /// currency violation. `None` (default) disables the bound.
    pub staleness_bound: Option<u64>,
    /// Violation slots to retain (further violations are counted).
    pub max_violations: u32,
    /// Flight-recorder trigger: also capture on this abort reason.
    pub watch: Option<AbortReason>,
}

impl MonitorConfig {
    /// A config with conventional capacities.
    pub fn new(clients: u32, policy: MonitorPolicy, coverage: CoverageRule) -> Self {
        MonitorConfig {
            clients,
            reads_per_query: 64,
            policy,
            coverage,
            staleness_bound: None,
            max_violations: 64,
            watch: None,
        }
    }
}

/// One readset slot mirrored by a lane.
#[derive(Debug, Clone, Copy)]
struct ReadSlot {
    item: u32,
    /// Inclusive earliest state at which the value is known current.
    valid_from: u64,
    /// Exclusive state bound at which it is superseded ([`NO_CYCLE`] =
    /// open); tightened by later report entries.
    valid_until: u64,
}

impl ReadSlot {
    const EMPTY: ReadSlot = ReadSlot {
        item: NO_ITEM,
        valid_from: 0,
        valid_until: NO_CYCLE,
    };
}

/// An armed expect-doom record: the method's own rule requires the
/// active query to abort; accepting a further read is a violation.
#[derive(Debug, Clone, Copy)]
struct DoomExpect {
    kind: MonitorKind,
    item: u32,
    write_cycle: u64,
    detail: u64,
}

/// Per-client protocol monitor state.
#[derive(Debug, Clone)]
struct Lane {
    /// Last heard control cycle ([`NO_CYCLE`] = never).
    heard: u64,
    /// Control cycle currently being fed ([`NO_CYCLE`] = none).
    feeding: u64,
    active: bool,
    query: u64,
    /// The query's verified database state (§3.1 `verified_state`).
    verified: u64,
    doom: Option<DoomExpect>,
    doom_reported: bool,
    /// Graph policy: a cycle through the query exists (precedence-edge
    /// closure); a commit in this state is a violation.
    pending_cycle: Option<DoomExpect>,
    /// Graph policy: earliest first-writer cycle (`c_o`, Lemma 1).
    c_o: u64,
    reads: Box<[ReadSlot]>,
    nreads: u32,
    overflow: bool,
    /// Finished query ids whose shadow-graph node awaits removal (graph
    /// mutation is deferred off the event hot path).
    pending_remove: [u64; 4],
    npending: u32,
    pending_spill: bool,
}

impl Lane {
    fn with_capacity(slots: usize) -> Lane {
        Lane {
            heard: NO_CYCLE,
            feeding: NO_CYCLE,
            active: false,
            query: 0,
            verified: 0,
            doom: None,
            doom_reported: false,
            pending_cycle: None,
            c_o: NO_CYCLE,
            reads: vec![ReadSlot::EMPTY; slots].into_boxed_slice(),
            nreads: 0,
            overflow: false,
            pending_remove: [0; 4],
            npending: 0,
            pending_spill: false,
        }
    }

    /// Whether `item` is in the mirrored readset.
    fn holds(&self, item: u32) -> bool {
        let n = self.nreads as usize;
        self.reads.iter().take(n).any(|s| s.item == item)
    }

    fn begin(&mut self, query: u64, cycle: u64) {
        self.active = true;
        self.query = query;
        self.verified = cycle;
        self.doom = None;
        self.doom_reported = false;
        self.pending_cycle = None;
        self.c_o = NO_CYCLE;
        self.nreads = 0;
        self.overflow = false;
    }

    /// Ends the active query, queueing its graph node for removal.
    fn retire(&mut self, graph_policy: bool) {
        if !self.active {
            return;
        }
        self.active = false;
        self.doom = None;
        self.doom_reported = false;
        self.pending_cycle = None;
        if graph_policy {
            match self.pending_remove.get_mut(self.npending as usize) {
                Some(slot) => {
                    *slot = self.query;
                    self.npending = self.npending.saturating_add(1);
                }
                None => self.pending_spill = true,
            }
        }
    }
}

/// Per-actor event-stream sanity state.
#[derive(Debug, Clone, Copy)]
struct StreamLane {
    depth: u64,
    last_cycle: u64,
}

impl StreamLane {
    const EMPTY: StreamLane = StreamLane {
        depth: 0,
        last_cycle: 0,
    };
}

/// The monitor engine: all state machines plus the bounded verdict.
#[derive(Debug)]
pub struct MonitorEngine {
    config: MonitorConfig,
    lanes: Box<[Lane]>,
    streams: Box<[StreamLane]>,
    graphs: Vec<SerializationGraph>,
    violations: Box<[Violation]>,
    nviol: u32,
    violations_dropped: u64,
    watch_hits: Box<[WatchHit]>,
    nwatch: u32,
    watch_dropped: u64,
    events: u64,
    controls: u64,
    commits: u64,
    aborts: u64,
    checks: u64,
    graph_edges: u64,
    overflows: u64,
    unknown_actors: u64,
    triggers: u64,
}

impl MonitorEngine {
    /// Builds the engine, preallocating every lane and slot.
    pub fn new(config: MonitorConfig) -> Self {
        let clients = config.clients as usize;
        let slots = config.reads_per_query as usize;
        let graphs = if config.policy == MonitorPolicy::Graph {
            (0..clients).map(|_| SerializationGraph::new()).collect()
        } else {
            Vec::new()
        };
        MonitorEngine {
            config,
            lanes: (0..clients)
                .map(|_| Lane::with_capacity(slots))
                .collect::<Vec<_>>()
                .into_boxed_slice(),
            streams: vec![StreamLane::EMPTY; clients.saturating_add(2)].into_boxed_slice(),
            graphs,
            violations: vec![Violation::EMPTY; config.max_violations as usize].into_boxed_slice(),
            nviol: 0,
            violations_dropped: 0,
            watch_hits: vec![WatchHit::EMPTY; config.max_violations as usize].into_boxed_slice(),
            nwatch: 0,
            watch_dropped: 0,
            events: 0,
            controls: 0,
            commits: 0,
            aborts: 0,
            checks: 0,
            graph_edges: 0,
            overflows: 0,
            unknown_actors: 0,
            triggers: 0,
        }
    }

    /// The engine's configuration.
    pub fn config(&self) -> MonitorConfig {
        self.config
    }

    fn mon_note_violation(&mut self, v: Violation) {
        self.triggers = self.triggers.saturating_add(1);
        match self.violations.get_mut(self.nviol as usize) {
            Some(slot) => {
                *slot = v;
                self.nviol = self.nviol.saturating_add(1);
            }
            None => self.violations_dropped = self.violations_dropped.saturating_add(1),
        }
    }

    fn mon_note_watch(&mut self, hit: WatchHit) {
        self.triggers = self.triggers.saturating_add(1);
        match self.watch_hits.get_mut(self.nwatch as usize) {
            Some(slot) => {
                *slot = hit;
                self.nwatch = self.nwatch.saturating_add(1);
            }
            None => self.watch_dropped = self.watch_dropped.saturating_add(1),
        }
    }

    /// Streams one event through every monitor. This is the per-event
    /// hot path: pure integer state-machine updates, no allocation, no
    /// graph mutation (graph work is deferred to the typed feed).
    // bpush-lint: hot_path — monitor feed: runs once per emitted event on every instrumented run
    pub fn on_event(&mut self, cycle: Cycle, actor: Actor, kind: EventKind) {
        self.events = self.events.saturating_add(1);
        let n = cycle.number();
        let tid = actor.tid() as usize;
        let stream_client = match actor {
            Actor::Client(i) => i,
            _ => NO_ITEM,
        };
        let mut regressed: Option<u64> = None;
        let mut unbalanced = false;
        match self.streams.get_mut(tid) {
            None => self.unknown_actors = self.unknown_actors.saturating_add(1),
            Some(stream) => {
                if n < stream.last_cycle {
                    regressed = Some(stream.last_cycle);
                } else {
                    stream.last_cycle = n;
                }
                match kind {
                    EventKind::SpanBegin { .. } => {
                        stream.depth = stream.depth.saturating_add(1);
                    }
                    EventKind::SpanEnd { .. } => {
                        if stream.depth == 0 {
                            unbalanced = true;
                        } else {
                            stream.depth = stream.depth.saturating_sub(1);
                        }
                    }
                    _ => {}
                }
            }
        }
        if let Some(last) = regressed {
            self.mon_note_violation(Violation {
                kind: MonitorKind::Stream,
                client: stream_client,
                query: 0,
                cycle: n,
                item: NO_ITEM,
                write_cycle: NO_CYCLE,
                detail: last,
            });
        }
        if unbalanced {
            self.mon_note_violation(Violation {
                kind: MonitorKind::Stream,
                client: stream_client,
                query: 0,
                cycle: n,
                item: NO_ITEM,
                write_cycle: NO_CYCLE,
                detail: 0,
            });
        }
        let client = match actor {
            Actor::Client(i) => i,
            _ => return,
        };
        let graph_policy = self.config.policy == MonitorPolicy::Graph;
        let strict_gap = self.config.coverage == CoverageRule::StrictGap;
        let policy = self.config.policy;
        let staleness_bound = self.config.staleness_bound;
        let watch = self.config.watch;
        let mut fire: Option<Violation> = None;
        let mut watch_fire: Option<WatchHit> = None;
        if let Some(lane) = self.lanes.get_mut(client as usize) {
            match kind {
                EventKind::QueryBegun { query } => {
                    lane.retire(graph_policy);
                    lane.begin(query, n);
                }
                EventKind::MissedCycle if strict_gap && lane.active && lane.doom.is_none() => {
                    lane.doom = Some(DoomExpect {
                        kind: MonitorKind::Coverage,
                        item: NO_ITEM,
                        write_cycle: NO_CYCLE,
                        detail: n,
                    });
                }
                EventKind::QueryCommitted { query, .. } => {
                    self.commits = self.commits.saturating_add(1);
                    if lane.active && lane.query == query {
                        fire = Lane::commit_verdict(lane, policy, staleness_bound, client, n);
                        lane.retire(graph_policy);
                    }
                }
                EventKind::QueryAborted { query, reason } => {
                    self.aborts = self.aborts.saturating_add(1);
                    if watch == Some(reason) {
                        watch_fire = Some(WatchHit {
                            client,
                            query,
                            cycle: n,
                            reason,
                        });
                    }
                    if lane.active && lane.query == query {
                        lane.retire(graph_policy);
                    }
                }
                _ => {}
            }
        }
        if let Some(v) = fire {
            self.mon_note_violation(v);
        }
        if let Some(hit) = watch_fire {
            self.mon_note_watch(hit);
        }
    }

    /// Begins feeding the control information of `cycle` (window from
    /// the invalidation report) into the client's lane.
    pub fn mon_control_begin(&mut self, client: u32, cycle: Cycle, window: u32) {
        self.controls = self.controls.saturating_add(1);
        self.mon_flush_graph(client);
        let n = cycle.number();
        let window_gap = self.config.coverage == CoverageRule::WindowGap;
        if let Some(lane) = self.lanes.get_mut(client as usize) {
            lane.feeding = n;
            if window_gap && lane.active && lane.doom.is_none() && lane.heard != NO_CYCLE {
                let covered = n <= lane.heard.saturating_add(u64::from(window));
                if !covered {
                    lane.doom = Some(DoomExpect {
                        kind: MonitorKind::Coverage,
                        item: NO_ITEM,
                        write_cycle: NO_CYCLE,
                        detail: n,
                    });
                }
            }
        }
    }

    /// Feeds one dated invalidation-report entry: `item` was updated
    /// during `write_cycle`.
    pub fn mon_report_entry(&mut self, client: u32, item: ItemId, write_cycle: Cycle) {
        self.checks = self.checks.saturating_add(1);
        let idx = item.index();
        let wc = write_cycle.number();
        let policy = self.config.policy;
        if let Some(lane) = self.lanes.get_mut(client as usize) {
            if !lane.active {
                return;
            }
            match policy {
                MonitorPolicy::Current => {
                    if lane.doom.is_none() && wc >= lane.verified && lane.holds(idx) {
                        let report = lane.feeding;
                        lane.doom = Some(DoomExpect {
                            kind: MonitorKind::Currency,
                            item: idx,
                            write_cycle: wc,
                            detail: report,
                        });
                    }
                }
                MonitorPolicy::Snapshot => {
                    // A version current no later than `wc` was superseded
                    // by the write: its validity ends at `wc + 1`
                    // (exclusive) at the latest.
                    let bound = wc.saturating_add(1);
                    let nreads = lane.nreads as usize;
                    for slot in lane.reads.iter_mut().take(nreads) {
                        if slot.item == idx && slot.valid_from <= wc && bound < slot.valid_until {
                            slot.valid_until = bound;
                        }
                    }
                }
                MonitorPolicy::Graph => {}
            }
        }
    }

    /// Feeds one augmented-report entry: `item` was first overwritten by
    /// `writer` (announced in the control info currently being fed).
    pub fn mon_augmented_entry(&mut self, client: u32, item: ItemId, writer: TxnId) {
        if self.config.policy != MonitorPolicy::Graph {
            return;
        }
        self.mon_flush_graph(client);
        let idx = item.index();
        let wc = writer.cycle().number();
        let mut edge = None;
        if let Some(lane) = self.lanes.get_mut(client as usize) {
            if lane.active && lane.holds(idx) {
                if wc < lane.c_o {
                    lane.c_o = wc;
                }
                edge = Some(QueryId::new(lane.query));
            }
        }
        let Some(q) = edge else { return };
        let Some(graph) = self.graphs.get_mut(client as usize) else {
            return;
        };
        // Claim 2: one precedence edge to the first writer suffices. The
        // genuine method adds it unconditionally; if it closes a cycle
        // the query must abort before committing.
        let closes = graph.would_close_cycle(Node::Query(q), Node::Txn(writer));
        graph.add_edge(Node::Query(q), Node::Txn(writer));
        self.graph_edges = self.graph_edges.saturating_add(1);
        if closes {
            if let Some(lane) = self.lanes.get_mut(client as usize) {
                if lane.pending_cycle.is_none() {
                    lane.pending_cycle = Some(DoomExpect {
                        kind: MonitorKind::Serializability,
                        item: idx,
                        write_cycle: wc,
                        detail: u64::from(writer.seq()),
                    });
                }
            }
        }
    }

    /// Integrates a broadcast serialization-graph diff into the client's
    /// shadow graph.
    pub fn mon_graph_diff(&mut self, client: u32, diff: &GraphDiff) {
        if self.config.policy != MonitorPolicy::Graph {
            return;
        }
        self.mon_flush_graph(client);
        if let Some(graph) = self.graphs.get_mut(client as usize) {
            graph.apply_diff(diff);
        }
    }

    /// Ends the control feed for `cycle`: advances watermarks and prunes
    /// the shadow graph (Lemma 1 discipline).
    pub fn mon_control_done(&mut self, client: u32, cycle: Cycle) {
        let n = cycle.number();
        let graph_policy = self.config.policy == MonitorPolicy::Graph;
        let mut prune = None;
        if let Some(lane) = self.lanes.get_mut(client as usize) {
            if lane.active && lane.doom.is_none() {
                // Whole readset screened clean through this report: the
                // readset is current at the state this bcast carries.
                lane.verified = n;
            }
            lane.heard = n;
            lane.feeding = NO_CYCLE;
            if graph_policy {
                prune = Some(if !lane.active {
                    NO_CYCLE // clear
                } else if lane.c_o != NO_CYCLE {
                    lane.c_o
                } else {
                    n
                });
            }
        }
        if let Some(bound) = prune {
            if let Some(graph) = self.graphs.get_mut(client as usize) {
                if bound == NO_CYCLE {
                    graph.clear();
                } else {
                    graph.prune_before(Cycle::new(bound));
                }
            }
        }
    }

    /// Feeds one *accepted* read: the mirrored readset gains a slot and,
    /// under the graph policy, the §3.3 dependency edge is replayed. An
    /// accepted read while the method's own rule requires the query to
    /// be doomed is the online divergence signal.
    // The argument list mirrors the client's version-read metadata tuple
    // one-to-one; bundling it into a struct would only move the field
    // names away from the single call site in the sim feed shim.
    #[allow(clippy::too_many_arguments)]
    pub fn mon_read_meta(
        &mut self,
        client: u32,
        query: u64,
        item: ItemId,
        now: Cycle,
        valid_from: Cycle,
        valid_until: Option<Cycle>,
        writer: Option<TxnId>,
    ) {
        self.mon_flush_graph(client);
        let idx = item.index();
        let n = now.number();
        let graph_policy = self.config.policy == MonitorPolicy::Graph;
        let mut fire = None;
        let mut dep = None;
        if let Some(lane) = self.lanes.get_mut(client as usize) {
            if !lane.active || lane.query != query {
                return;
            }
            if let Some(doom) = lane.doom {
                if !lane.doom_reported {
                    lane.doom_reported = true;
                    fire = Some(Violation {
                        kind: doom.kind,
                        client,
                        query,
                        cycle: n,
                        item: doom.item,
                        write_cycle: doom.write_cycle,
                        detail: doom.detail,
                    });
                }
            }
            let slot = ReadSlot {
                item: idx,
                valid_from: valid_from.number(),
                valid_until: valid_until.map_or(NO_CYCLE, |c| c.number()),
            };
            match lane.reads.get_mut(lane.nreads as usize) {
                Some(s) => {
                    *s = slot;
                    lane.nreads = lane.nreads.saturating_add(1);
                }
                None => {
                    if !lane.overflow {
                        lane.overflow = true;
                        self.overflows = self.overflows.saturating_add(1);
                    }
                }
            }
            if graph_policy {
                dep = writer.map(|t| (QueryId::new(lane.query), t));
            }
        }
        if let Some(v) = fire {
            self.mon_note_violation(v);
        }
        let Some((q, t)) = dep else { return };
        let Some(graph) = self.graphs.get_mut(client as usize) else {
            return;
        };
        // Claim 3: one dependency edge from the last writer suffices.
        // The genuine method *rejects* a read that would close a cycle,
        // so an accepted one is an online serializability violation.
        let closes = graph.would_close_cycle(Node::Txn(t), Node::Query(q));
        graph.add_edge(Node::Txn(t), Node::Query(q));
        self.graph_edges = self.graph_edges.saturating_add(1);
        if closes {
            self.mon_note_violation(Violation {
                kind: MonitorKind::Serializability,
                client,
                query,
                cycle: n,
                item: idx,
                write_cycle: t.cycle().number(),
                detail: u64::from(t.seq()),
            });
        }
    }

    /// Applies deferred shadow-graph node removals for finished queries.
    fn mon_flush_graph(&mut self, client: u32) {
        if self.config.policy != MonitorPolicy::Graph {
            return;
        }
        let mut drain: ([u64; 4], u32, bool) = ([0; 4], 0, false);
        if let Some(lane) = self.lanes.get_mut(client as usize) {
            if lane.npending == 0 && !lane.pending_spill {
                return;
            }
            drain = (lane.pending_remove, lane.npending, lane.pending_spill);
            lane.npending = 0;
            lane.pending_spill = false;
        }
        let (ids, count, spill) = drain;
        if let Some(graph) = self.graphs.get_mut(client as usize) {
            if spill {
                // More retirements than slots between feed calls: drop
                // the shadow graph rather than guess (misses are
                // possible, false positives are not).
                graph.clear();
                return;
            }
            for id in ids.iter().take(count as usize) {
                graph.remove_query(QueryId::new(*id));
            }
        }
    }

    /// Total flight-recorder triggers so far (violations + watch hits).
    pub fn mon_triggers(&self) -> u64 {
        self.triggers
    }

    /// The first capture-worthy trigger: the first violation, else the
    /// first watch hit (as an [`MonitorKind::AbortWatch`] pseudo
    /// violation), else `None`.
    pub fn mon_first_trigger(&self) -> Option<Violation> {
        if self.nviol > 0 {
            return self.violations.first().copied();
        }
        if self.nwatch > 0 {
            return self.watch_hits.first().map(|hit| Violation {
                kind: MonitorKind::AbortWatch,
                client: hit.client,
                query: hit.query,
                cycle: hit.cycle,
                item: NO_ITEM,
                write_cycle: NO_CYCLE,
                detail: hit.reason.index() as u64,
            });
        }
        None
    }

    /// Copies out the verdict.
    pub fn mon_verdict(&self) -> MonitorVerdict {
        MonitorVerdict {
            events: self.events,
            controls: self.controls,
            commits: self.commits,
            aborts: self.aborts,
            checks: self.checks,
            graph_edges: self.graph_edges,
            overflows: self.overflows,
            unknown_actors: self.unknown_actors,
            violations: self
                .violations
                .iter()
                .take(self.nviol as usize)
                .copied()
                .collect(),
            violations_dropped: self.violations_dropped,
            watch_hits: self
                .watch_hits
                .iter()
                .take(self.nwatch as usize)
                .copied()
                .collect(),
            watch_dropped: self.watch_dropped,
        }
    }
}

impl Lane {
    /// The commit-time checks; returns the violation to record, if any.
    /// Pure integer logic — safe on the event hot path.
    fn commit_verdict(
        lane: &Lane,
        policy: MonitorPolicy,
        staleness_bound: Option<u64>,
        client: u32,
        n: u64,
    ) -> Option<Violation> {
        // An armed doom that already fired at an accepted read is not
        // re-reported; an armed doom with no subsequent read matches the
        // genuine methods' lazy doom observation, so only the
        // read-divergence path reports Currency/Coverage.
        if let Some(pending) = lane.pending_cycle {
            return Some(Violation {
                kind: MonitorKind::Serializability,
                client,
                query: lane.query,
                cycle: n,
                item: pending.item,
                write_cycle: pending.write_cycle,
                detail: pending.detail,
            });
        }
        if policy == MonitorPolicy::Snapshot && !lane.overflow && lane.nreads > 0 {
            let mut max_from = 0u64;
            let mut min_until = NO_CYCLE;
            let mut from_item = NO_ITEM;
            let mut until_item = NO_ITEM;
            let count = lane.nreads as usize;
            for slot in lane.reads.iter().take(count) {
                if slot.valid_from >= max_from {
                    max_from = slot.valid_from;
                    from_item = slot.item;
                }
                if slot.valid_until < min_until {
                    min_until = slot.valid_until;
                    until_item = slot.item;
                }
            }
            if max_from >= min_until {
                return Some(Violation {
                    kind: MonitorKind::Serializability,
                    client,
                    query: lane.query,
                    cycle: n,
                    item: from_item,
                    write_cycle: min_until,
                    detail: u64::from(until_item),
                });
            }
        }
        if let Some(bound) = staleness_bound {
            let staleness = n.saturating_sub(lane.verified);
            if staleness > bound {
                return Some(Violation {
                    kind: MonitorKind::Currency,
                    client,
                    query: lane.query,
                    cycle: n,
                    item: NO_ITEM,
                    write_cycle: NO_CYCLE,
                    detail: staleness,
                });
            }
        }
        None
    }
}

/// The all-integer verdict of a monitored run. Canonically renderable
/// ([`MonitorVerdict::render`]) and mergeable across shards in shard
/// order ([`MonitorVerdict::merge`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MonitorVerdict {
    /// Events streamed through the engine.
    pub events: u64,
    /// Control feeds processed.
    pub controls: u64,
    /// Commits observed.
    pub commits: u64,
    /// Aborts observed.
    pub aborts: u64,
    /// Report entries screened.
    pub checks: u64,
    /// Shadow-graph edges added.
    pub graph_edges: u64,
    /// Queries whose readset overflowed the mirror capacity.
    pub overflows: u64,
    /// Events from actors beyond the configured lane count.
    pub unknown_actors: u64,
    /// Retained violations, in detection order.
    pub violations: Vec<Violation>,
    /// Violations beyond the retention bound.
    pub violations_dropped: u64,
    /// Retained abort-watch hits, in detection order.
    pub watch_hits: Vec<WatchHit>,
    /// Watch hits beyond the retention bound.
    pub watch_dropped: u64,
}

impl MonitorVerdict {
    /// Whether the run upheld every invariant.
    pub fn pass(&self) -> bool {
        self.violations.is_empty() && self.violations_dropped == 0
    }

    /// Canonical multi-line rendering: byte-identical across same-seed
    /// runs.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "monitor-verdict pass={} events={} controls={} commits={} aborts={} checks={} \
             edges={} violations={} dropped={} watch={} overflows={} unknown={}",
            u8::from(self.pass()),
            self.events,
            self.controls,
            self.commits,
            self.aborts,
            self.checks,
            self.graph_edges,
            self.violations.len(),
            self.violations_dropped,
            self.watch_hits.len(),
            self.overflows,
            self.unknown_actors,
        );
        for v in &self.violations {
            let _ = writeln!(out, "{}", v.render());
        }
        for hit in &self.watch_hits {
            let _ = writeln!(
                out,
                "watch client={} query={} cycle={} reason={}",
                hit.client,
                hit.query,
                hit.cycle,
                hit.reason.label()
            );
        }
        out
    }

    /// Folds `other` into `self` (canonical shard-order merge).
    pub fn merge(&mut self, other: &MonitorVerdict) {
        self.events = self.events.saturating_add(other.events);
        self.controls = self.controls.saturating_add(other.controls);
        self.commits = self.commits.saturating_add(other.commits);
        self.aborts = self.aborts.saturating_add(other.aborts);
        self.checks = self.checks.saturating_add(other.checks);
        self.graph_edges = self.graph_edges.saturating_add(other.graph_edges);
        self.overflows = self.overflows.saturating_add(other.overflows);
        self.unknown_actors = self.unknown_actors.saturating_add(other.unknown_actors);
        self.violations.extend_from_slice(&other.violations);
        self.violations_dropped = self
            .violations_dropped
            .saturating_add(other.violations_dropped);
        self.watch_hits.extend_from_slice(&other.watch_hits);
        self.watch_dropped = self.watch_dropped.saturating_add(other.watch_dropped);
    }
}

/// A cheaply cloneable handle over a shared [`MonitorEngine`]. Attached
/// to an [`Obs`](crate::Obs) via
/// [`Obs::with_monitors`](crate::Obs::with_monitors), it receives every
/// emitted event; the typed feed methods carry the per-entry control
/// information the event stream does not.
#[derive(Debug, Clone)]
pub struct Monitors {
    inner: Arc<Mutex<MonitorEngine>>,
}

impl Monitors {
    /// Builds a monitor set for the given configuration.
    pub fn new(config: MonitorConfig) -> Self {
        Monitors {
            inner: Arc::new(Mutex::new(MonitorEngine::new(config))),
        }
    }

    /// Streams one event (called by [`Obs::emit`](crate::Obs::emit)).
    pub fn feed_event(&self, cycle: Cycle, actor: Actor, kind: EventKind) {
        self.inner.lock().on_event(cycle, actor, kind);
    }

    /// Typed feed: a control feed for `client` begins at `cycle`.
    pub fn control_begin(&self, client: u32, cycle: Cycle, window: u32) {
        self.inner.lock().mon_control_begin(client, cycle, window);
    }

    /// Typed feed: a dated invalidation-report entry.
    pub fn report_entry(&self, client: u32, item: ItemId, write_cycle: Cycle) {
        self.inner
            .lock()
            .mon_report_entry(client, item, write_cycle);
    }

    /// Typed feed: an augmented-report first-writer entry.
    pub fn augmented_entry(&self, client: u32, item: ItemId, writer: TxnId) {
        self.inner.lock().mon_augmented_entry(client, item, writer);
    }

    /// Typed feed: a broadcast serialization-graph diff.
    pub fn graph_diff(&self, client: u32, diff: &GraphDiff) {
        self.inner.lock().mon_graph_diff(client, diff);
    }

    /// Typed feed: the control feed for `cycle` is complete.
    pub fn control_done(&self, client: u32, cycle: Cycle) {
        self.inner.lock().mon_control_done(client, cycle);
    }

    /// Typed feed: an accepted read with its validity metadata.
    #[allow(clippy::too_many_arguments)]
    pub fn read_meta(
        &self,
        client: u32,
        query: u64,
        item: ItemId,
        now: Cycle,
        valid_from: Cycle,
        valid_until: Option<Cycle>,
        writer: Option<TxnId>,
    ) {
        self.inner
            .lock()
            .mon_read_meta(client, query, item, now, valid_from, valid_until, writer);
    }

    /// Total flight-recorder triggers so far.
    pub fn triggers(&self) -> u64 {
        self.inner.lock().mon_triggers()
    }

    /// The first capture-worthy trigger, if any.
    pub fn first_trigger(&self) -> Option<Violation> {
        self.inner.lock().mon_first_trigger()
    }

    /// Copies out the current verdict.
    pub fn verdict(&self) -> MonitorVerdict {
        self.inner.lock().mon_verdict()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn engine(policy: MonitorPolicy, coverage: CoverageRule) -> MonitorEngine {
        MonitorEngine::new(MonitorConfig::new(2, policy, coverage))
    }

    fn begin(e: &mut MonitorEngine, client: u32, query: u64, cycle: u64) {
        e.on_event(
            Cycle::new(cycle),
            Actor::Client(client),
            EventKind::QueryBegun { query },
        );
    }

    fn accept_read(e: &mut MonitorEngine, client: u32, query: u64, item: u32, now: u64) {
        e.mon_read_meta(
            client,
            query,
            ItemId::new(item),
            Cycle::new(now),
            Cycle::ZERO,
            None,
            None,
        );
    }

    fn commit(e: &mut MonitorEngine, client: u32, query: u64, cycle: u64) {
        e.on_event(
            Cycle::new(cycle),
            Actor::Client(client),
            EventKind::QueryCommitted {
                query,
                latency_slots: 1,
            },
        );
    }

    #[test]
    fn clean_current_run_passes() {
        let mut e = engine(MonitorPolicy::Current, CoverageRule::WindowGap);
        begin(&mut e, 0, 1, 0);
        accept_read(&mut e, 0, 1, 7, 0);
        e.mon_control_begin(0, Cycle::new(1), 1);
        e.mon_report_entry(0, ItemId::new(9), Cycle::ZERO); // unrelated item
        e.mon_control_done(0, Cycle::new(1));
        accept_read(&mut e, 0, 1, 8, 1);
        commit(&mut e, 0, 1, 1);
        let v = e.mon_verdict();
        assert!(v.pass(), "{}", v.render());
        assert_eq!(v.commits, 1);
        assert_eq!(v.checks, 1);
    }

    #[test]
    fn read_accepted_past_invalidation_is_a_currency_violation() {
        let mut e = engine(MonitorPolicy::Current, CoverageRule::WindowGap);
        begin(&mut e, 0, 1, 0);
        accept_read(&mut e, 0, 1, 7, 0);
        // item 7 updated during cycle 0 (>= verified state 0): the
        // method must doom the query; a further accepted read diverges.
        e.mon_control_begin(0, Cycle::new(1), 1);
        e.mon_report_entry(0, ItemId::new(7), Cycle::ZERO);
        e.mon_control_done(0, Cycle::new(1));
        accept_read(&mut e, 0, 1, 8, 1);
        commit(&mut e, 0, 1, 1);
        let v = e.mon_verdict();
        assert!(!v.pass());
        let viol = v.violations.first().expect("one violation");
        assert_eq!(viol.kind, MonitorKind::Currency);
        assert_eq!(viol.item, 7);
        assert_eq!(viol.write_cycle, 0);
        assert_eq!(viol.detail, 1, "report cycle");
    }

    #[test]
    fn doom_with_no_further_read_matches_lazy_observation() {
        // The genuine executor may commit before observing the doom; the
        // monitor only fires on a post-doom accepted read.
        let mut e = engine(MonitorPolicy::Current, CoverageRule::WindowGap);
        begin(&mut e, 0, 1, 0);
        accept_read(&mut e, 0, 1, 7, 0);
        e.mon_control_begin(0, Cycle::new(1), 1);
        e.mon_report_entry(0, ItemId::new(7), Cycle::ZERO);
        e.mon_control_done(0, Cycle::new(1));
        commit(&mut e, 0, 1, 1);
        assert!(e.mon_verdict().pass());
    }

    #[test]
    fn abort_after_doom_is_the_expected_outcome() {
        let mut e = engine(MonitorPolicy::Current, CoverageRule::WindowGap);
        begin(&mut e, 0, 1, 0);
        accept_read(&mut e, 0, 1, 7, 0);
        e.mon_control_begin(0, Cycle::new(1), 1);
        e.mon_report_entry(0, ItemId::new(7), Cycle::ZERO);
        e.mon_control_done(0, Cycle::new(1));
        e.on_event(
            Cycle::new(1),
            Actor::Client(0),
            EventKind::QueryAborted {
                query: 1,
                reason: AbortReason::Invalidated,
            },
        );
        assert!(e.mon_verdict().pass());
    }

    #[test]
    fn uncovered_gap_then_accepted_read_is_a_coverage_violation() {
        let mut e = engine(MonitorPolicy::Current, CoverageRule::WindowGap);
        begin(&mut e, 0, 1, 0);
        e.mon_control_begin(0, Cycle::new(0), 1);
        e.mon_control_done(0, Cycle::new(0));
        accept_read(&mut e, 0, 1, 7, 0);
        // cycles 1..2 missed; window-1 report at cycle 3 cannot cover
        e.mon_control_begin(0, Cycle::new(3), 1);
        e.mon_control_done(0, Cycle::new(3));
        accept_read(&mut e, 0, 1, 8, 3);
        commit(&mut e, 0, 1, 3);
        let v = e.mon_verdict();
        assert_eq!(
            v.violations.first().map(|v| v.kind),
            Some(MonitorKind::Coverage)
        );
    }

    #[test]
    fn covered_gap_is_fine() {
        let mut e = engine(MonitorPolicy::Current, CoverageRule::WindowGap);
        begin(&mut e, 0, 1, 0);
        e.mon_control_begin(0, Cycle::new(0), 3);
        e.mon_control_done(0, Cycle::new(0));
        accept_read(&mut e, 0, 1, 7, 0);
        // window-3 report at cycle 3 covers the gap
        e.mon_control_begin(0, Cycle::new(3), 3);
        e.mon_control_done(0, Cycle::new(3));
        accept_read(&mut e, 0, 1, 8, 3);
        commit(&mut e, 0, 1, 3);
        assert!(e.mon_verdict().pass());
    }

    #[test]
    fn strict_gap_dooms_on_any_miss() {
        let mut e = engine(MonitorPolicy::Graph, CoverageRule::StrictGap);
        begin(&mut e, 0, 1, 0);
        accept_read(&mut e, 0, 1, 7, 0);
        e.on_event(Cycle::new(1), Actor::Client(0), EventKind::MissedCycle);
        accept_read(&mut e, 0, 1, 8, 2);
        commit(&mut e, 0, 1, 2);
        let v = e.mon_verdict();
        assert_eq!(
            v.violations.first().map(|v| v.kind),
            Some(MonitorKind::Coverage)
        );
    }

    #[test]
    fn dependency_edge_closing_a_cycle_fires_online() {
        // Figure 3: R reads x (writer T0.0); T1.0 overwrites x; T2.0
        // conflicts with T1.0; R then reads a value written by T2.0.
        let mut e = engine(MonitorPolicy::Graph, CoverageRule::StrictGap);
        let t0 = TxnId::new(Cycle::ZERO, 0);
        let t1 = TxnId::new(Cycle::new(1), 0);
        let t2 = TxnId::new(Cycle::new(2), 0);
        begin(&mut e, 0, 1, 1);
        e.mon_read_meta(
            0,
            1,
            ItemId::new(7),
            Cycle::new(1),
            Cycle::ZERO,
            None,
            Some(t0),
        );
        e.mon_control_begin(0, Cycle::new(2), 1);
        e.mon_graph_diff(0, &GraphDiff::new(Cycle::new(1), vec![t1], vec![]));
        e.mon_augmented_entry(0, ItemId::new(7), t1);
        e.mon_control_done(0, Cycle::new(2));
        e.mon_control_begin(0, Cycle::new(3), 1);
        e.mon_graph_diff(0, &GraphDiff::new(Cycle::new(2), vec![t2], vec![(t1, t2)]));
        e.mon_control_done(0, Cycle::new(3));
        // the genuine method rejects this read; accepting it diverges
        e.mon_read_meta(
            0,
            1,
            ItemId::new(9),
            Cycle::new(3),
            Cycle::ZERO,
            None,
            Some(t2),
        );
        let v = e.mon_verdict();
        assert!(!v.pass());
        let viol = v.violations.first().expect("violation");
        assert_eq!(viol.kind, MonitorKind::Serializability);
        assert_eq!(viol.item, 9);
        assert_eq!(viol.write_cycle, 2);
    }

    #[test]
    fn acyclic_graph_run_passes_and_prunes() {
        let mut e = engine(MonitorPolicy::Graph, CoverageRule::StrictGap);
        let t0 = TxnId::new(Cycle::ZERO, 0);
        begin(&mut e, 0, 1, 1);
        e.mon_read_meta(
            0,
            1,
            ItemId::new(7),
            Cycle::new(1),
            Cycle::ZERO,
            None,
            Some(t0),
        );
        commit(&mut e, 0, 1, 1);
        // the deferred node removal flushes at the next feed call
        e.mon_control_begin(0, Cycle::new(2), 1);
        e.mon_control_done(0, Cycle::new(2));
        let v = e.mon_verdict();
        assert!(v.pass(), "{}", v.render());
        assert_eq!(v.graph_edges, 1);
    }

    #[test]
    fn snapshot_intersection_violation_detected_at_commit() {
        let mut e = engine(MonitorPolicy::Snapshot, CoverageRule::Ignore);
        begin(&mut e, 0, 1, 0);
        // slot A valid [0, 2), slot B valid [3, inf): no common state
        e.mon_read_meta(
            0,
            1,
            ItemId::new(1),
            Cycle::new(1),
            Cycle::ZERO,
            Some(Cycle::new(2)),
            None,
        );
        e.mon_read_meta(
            0,
            1,
            ItemId::new(2),
            Cycle::new(3),
            Cycle::new(3),
            None,
            None,
        );
        commit(&mut e, 0, 1, 3);
        let v = e.mon_verdict();
        let viol = v.violations.first().expect("violation");
        assert_eq!(viol.kind, MonitorKind::Serializability);
        assert_eq!(viol.item, 2, "the too-new read");
        assert_eq!(viol.write_cycle, 2, "the binding valid_until");
    }

    #[test]
    fn snapshot_tightening_from_report_entries() {
        let mut e = engine(MonitorPolicy::Snapshot, CoverageRule::Ignore);
        begin(&mut e, 0, 1, 0);
        // read of a version from state 0, open-ended
        accept_read(&mut e, 0, 1, 7, 0);
        // item 7 updated during cycle 2: the slot's validity ends at 3
        e.mon_control_begin(0, Cycle::new(3), 1);
        e.mon_report_entry(0, ItemId::new(7), Cycle::new(2));
        e.mon_control_done(0, Cycle::new(3));
        // a read pinned at state 5 can no longer share a snapshot
        e.mon_read_meta(
            0,
            1,
            ItemId::new(8),
            Cycle::new(5),
            Cycle::new(5),
            None,
            None,
        );
        commit(&mut e, 0, 1, 5);
        assert!(!e.mon_verdict().pass());
    }

    #[test]
    fn snapshot_consistent_run_passes() {
        let mut e = engine(MonitorPolicy::Snapshot, CoverageRule::Ignore);
        begin(&mut e, 0, 1, 0);
        e.mon_read_meta(
            0,
            1,
            ItemId::new(1),
            Cycle::new(1),
            Cycle::ZERO,
            Some(Cycle::new(4)),
            None,
        );
        e.mon_read_meta(
            0,
            1,
            ItemId::new(2),
            Cycle::new(2),
            Cycle::new(3),
            None,
            None,
        );
        commit(&mut e, 0, 1, 2);
        assert!(e.mon_verdict().pass());
    }

    #[test]
    fn staleness_bound_caps_commit_distance() {
        let mut cfg = MonitorConfig::new(1, MonitorPolicy::Current, CoverageRule::WindowGap);
        cfg.staleness_bound = Some(2);
        let mut e = MonitorEngine::new(cfg);
        begin(&mut e, 0, 1, 0);
        accept_read(&mut e, 0, 1, 7, 0);
        commit(&mut e, 0, 1, 5);
        let v = e.mon_verdict();
        let viol = v.violations.first().expect("violation");
        assert_eq!(viol.kind, MonitorKind::Currency);
        assert_eq!(viol.detail, 5, "staleness in cycles");
    }

    #[test]
    fn stream_monitor_flags_unbalanced_spans_and_cycle_regression() {
        let mut e = engine(MonitorPolicy::Current, CoverageRule::WindowGap);
        e.on_event(
            Cycle::new(2),
            Actor::Server,
            EventKind::SpanEnd { name: "x" },
        );
        e.on_event(Cycle::new(1), Actor::Server, EventKind::ControlProcessed);
        let v = e.mon_verdict();
        assert_eq!(v.violations.len(), 2);
        assert!(v.violations.iter().all(|v| v.kind == MonitorKind::Stream));
    }

    #[test]
    fn watch_filter_records_hits_without_failing_the_verdict() {
        let mut cfg = MonitorConfig::new(1, MonitorPolicy::Current, CoverageRule::WindowGap);
        cfg.watch = Some(AbortReason::Invalidated);
        let mut e = MonitorEngine::new(cfg);
        begin(&mut e, 0, 1, 0);
        e.on_event(
            Cycle::new(1),
            Actor::Client(0),
            EventKind::QueryAborted {
                query: 1,
                reason: AbortReason::Invalidated,
            },
        );
        let v = e.mon_verdict();
        assert!(v.pass());
        assert_eq!(v.watch_hits.len(), 1);
        assert_eq!(e.mon_triggers(), 1);
        let trig = e.mon_first_trigger().expect("watch trigger");
        assert_eq!(trig.kind, MonitorKind::AbortWatch);
    }

    #[test]
    fn verdict_render_is_stable_and_violations_roundtrip() {
        let mut e = engine(MonitorPolicy::Current, CoverageRule::WindowGap);
        begin(&mut e, 0, 1, 0);
        accept_read(&mut e, 0, 1, 7, 0);
        e.mon_control_begin(0, Cycle::new(1), 1);
        e.mon_report_entry(0, ItemId::new(7), Cycle::ZERO);
        e.mon_control_done(0, Cycle::new(1));
        accept_read(&mut e, 0, 1, 8, 1);
        commit(&mut e, 0, 1, 1);
        let v = e.mon_verdict();
        let text = v.render();
        assert!(text.starts_with("monitor-verdict pass=0 "));
        let line = text.lines().nth(1).expect("violation line");
        let parsed = Violation::parse(line).expect("roundtrip");
        assert_eq!(Some(&parsed), v.violations.first());
        // deterministic: a second identical engine renders identically
        let mut e2 = engine(MonitorPolicy::Current, CoverageRule::WindowGap);
        begin(&mut e2, 0, 1, 0);
        accept_read(&mut e2, 0, 1, 7, 0);
        e2.mon_control_begin(0, Cycle::new(1), 1);
        e2.mon_report_entry(0, ItemId::new(7), Cycle::ZERO);
        e2.mon_control_done(0, Cycle::new(1));
        accept_read(&mut e2, 0, 1, 8, 1);
        commit(&mut e2, 0, 1, 1);
        assert_eq!(text, e2.mon_verdict().render());
    }

    #[test]
    fn verdict_merge_concatenates_in_call_order() {
        let mut a = engine(MonitorPolicy::Current, CoverageRule::WindowGap).mon_verdict();
        let mut e = engine(MonitorPolicy::Current, CoverageRule::WindowGap);
        begin(&mut e, 0, 1, 0);
        accept_read(&mut e, 0, 1, 7, 0);
        e.mon_control_begin(0, Cycle::new(1), 1);
        e.mon_report_entry(0, ItemId::new(7), Cycle::ZERO);
        e.mon_control_done(0, Cycle::new(1));
        accept_read(&mut e, 0, 1, 8, 1);
        commit(&mut e, 0, 1, 1);
        let b = e.mon_verdict();
        a.merge(&b);
        assert_eq!(a.violations.len(), 1);
        assert_eq!(a.commits, 1);
        assert!(!a.pass());
    }

    #[test]
    fn readset_overflow_disables_commit_checks_but_is_counted() {
        let mut cfg = MonitorConfig::new(1, MonitorPolicy::Snapshot, CoverageRule::Ignore);
        cfg.reads_per_query = 2;
        let mut e = MonitorEngine::new(cfg);
        begin(&mut e, 0, 1, 0);
        // three disjoint-validity reads; the third overflows
        e.mon_read_meta(
            0,
            1,
            ItemId::new(1),
            Cycle::ZERO,
            Cycle::ZERO,
            Some(Cycle::new(1)),
            None,
        );
        e.mon_read_meta(
            0,
            1,
            ItemId::new(2),
            Cycle::new(2),
            Cycle::new(2),
            Some(Cycle::new(3)),
            None,
        );
        e.mon_read_meta(
            0,
            1,
            ItemId::new(3),
            Cycle::new(4),
            Cycle::new(4),
            None,
            None,
        );
        commit(&mut e, 0, 1, 4);
        let v = e.mon_verdict();
        assert!(v.pass(), "overflowed query is skipped, not guessed");
        assert_eq!(v.overflows, 1);
    }

    #[test]
    fn monitors_handle_shares_one_engine() {
        let m = Monitors::new(MonitorConfig::new(
            1,
            MonitorPolicy::Current,
            CoverageRule::WindowGap,
        ));
        let clone = m.clone();
        m.feed_event(
            Cycle::ZERO,
            Actor::Client(0),
            EventKind::QueryBegun { query: 1 },
        );
        clone.read_meta(0, 1, ItemId::new(7), Cycle::ZERO, Cycle::ZERO, None, None);
        m.control_begin(0, Cycle::new(1), 1);
        m.report_entry(0, ItemId::new(7), Cycle::ZERO);
        m.control_done(0, Cycle::new(1));
        clone.read_meta(0, 1, ItemId::new(8), Cycle::new(1), Cycle::ZERO, None, None);
        let v = m.verdict();
        assert_eq!(v.violations.len(), 1);
        assert_eq!(m.triggers(), 1);
        assert!(m.first_trigger().is_some());
    }
}
