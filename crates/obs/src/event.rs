//! The event taxonomy: who did what, in which cycle, at which tick.

use bpush_types::{AbortReason, Cycle};

/// Which component of the simulated system emitted an event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Actor {
    /// The broadcast server.
    Server,
    /// The end-of-run serializability validator.
    Validator,
    /// A client, by dense index.
    Client(u32),
}

impl Actor {
    /// A stable thread id for chrome://tracing lanes: server 0,
    /// validator 1, clients 2 onwards.
    pub const fn tid(self) -> u64 {
        match self {
            Actor::Server => 0,
            Actor::Validator => 1,
            Actor::Client(i) => i as u64 + 2,
        }
    }

    /// A short stable label ("server", "validator", "client-3").
    pub fn label(self) -> String {
        match self {
            Actor::Server => "server".to_string(),
            Actor::Validator => "validator".to_string(),
            Actor::Client(i) => format!("client-{i}"),
        }
    }
}

/// What happened. Payloads are plain integers and [`AbortReason`]s so
/// every event renders identically across runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum EventKind {
    /// A cycle's control information was processed by a protocol.
    ControlProcessed,
    /// A client missed a broadcast cycle entirely.
    MissedCycle,
    /// A query was registered with the protocol.
    QueryBegun {
        /// The query's id.
        query: u64,
    },
    /// A read candidate was accepted into a readset.
    ReadAccepted {
        /// The item read.
        item: u32,
    },
    /// A read candidate was rejected, dooming the query.
    ReadRejected {
        /// The item offered.
        item: u32,
        /// Why the protocol rejected it.
        reason: AbortReason,
    },
    /// A read directive answered `Doom` (the query was already dead
    /// before a candidate was fetched).
    ReadDoomed {
        /// Why the query is doomed.
        reason: AbortReason,
    },
    /// A query ran to commit.
    QueryCommitted {
        /// The query's id.
        query: u64,
        /// End-to-end latency in broadcast slots.
        latency_slots: u64,
    },
    /// A query aborted.
    QueryAborted {
        /// The query's id.
        query: u64,
        /// Why it aborted.
        reason: AbortReason,
    },
    /// A protocol pruned its validation structure.
    GraphPruned {
        /// Nodes freed by the prune.
        nodes_freed: u64,
        /// Edges freed by the prune.
        edges_freed: u64,
    },
    /// A read was served from the client cache.
    CacheHit {
        /// The item served.
        item: u32,
    },
    /// The client cache could not serve a read.
    CacheMiss {
        /// The item missed.
        item: u32,
    },
    /// A scoped span opened (see [`crate::Obs::span`]).
    SpanBegin {
        /// The span's static name.
        name: &'static str,
    },
    /// A scoped span closed.
    SpanEnd {
        /// The span's static name.
        name: &'static str,
    },
}

impl EventKind {
    /// A short stable kebab-case name for the kind, used as the NDJSON
    /// `kind` field and in the text summary.
    pub const fn name(&self) -> &'static str {
        match self {
            EventKind::ControlProcessed => "control-processed",
            EventKind::MissedCycle => "missed-cycle",
            EventKind::QueryBegun { .. } => "query-begun",
            EventKind::ReadAccepted { .. } => "read-accepted",
            EventKind::ReadRejected { .. } => "read-rejected",
            EventKind::ReadDoomed { .. } => "read-doomed",
            EventKind::QueryCommitted { .. } => "query-committed",
            EventKind::QueryAborted { .. } => "query-aborted",
            EventKind::GraphPruned { .. } => "graph-pruned",
            EventKind::CacheHit { .. } => "cache-hit",
            EventKind::CacheMiss { .. } => "cache-miss",
            EventKind::SpanBegin { .. } => "span-begin",
            EventKind::SpanEnd { .. } => "span-end",
        }
    }

    /// The canonical counters this event increments when recorded: a
    /// kind-level counter and, where the payload carries an
    /// [`AbortReason`], a per-reason dimension. Spans count nothing.
    pub fn counter_names(&self) -> [Option<&'static str>; 2] {
        match self {
            EventKind::ControlProcessed => [Some("control.processed"), None],
            EventKind::MissedCycle => [Some("cycles.missed"), None],
            EventKind::QueryBegun { .. } => [Some("queries.begun"), None],
            EventKind::ReadAccepted { .. } => [Some("reads.accepted"), None],
            EventKind::ReadRejected { reason, .. } => [
                Some("reads.rejected"),
                Some(reason_counter(Base::Rejected, *reason)),
            ],
            EventKind::ReadDoomed { reason } => [
                Some("reads.doomed"),
                Some(reason_counter(Base::Doomed, *reason)),
            ],
            EventKind::QueryCommitted { .. } => [Some("queries.committed"), None],
            EventKind::QueryAborted { reason, .. } => [
                Some("queries.aborted"),
                Some(reason_counter(Base::Aborted, *reason)),
            ],
            EventKind::GraphPruned { .. } => [Some("graph.pruned"), None],
            EventKind::CacheHit { .. } => [Some("cache.hits"), None],
            EventKind::CacheMiss { .. } => [Some("cache.misses"), None],
            EventKind::SpanBegin { .. } | EventKind::SpanEnd { .. } => [None, None],
        }
    }
}

/// Which counter family a per-reason dimension hangs off.
enum Base {
    Rejected,
    Doomed,
    Aborted,
}

/// The `<base>.<reason-label>` dimension counter for an abort reason,
/// as a static string so counter names never allocate on the hot path.
/// Tables are in [`AbortReason::index`] order; their length is pinned to
/// [`AbortReason::COUNT`] so adding a reason is a compile error here.
fn reason_counter(base: Base, reason: AbortReason) -> &'static str {
    const REJECTED: [&str; AbortReason::COUNT] = [
        "reads.rejected.invalidated",
        "reads.rejected.version-unavailable",
        "reads.rejected.cycle-detected",
        "reads.rejected.disconnected",
    ];
    const DOOMED: [&str; AbortReason::COUNT] = [
        "reads.doomed.invalidated",
        "reads.doomed.version-unavailable",
        "reads.doomed.cycle-detected",
        "reads.doomed.disconnected",
    ];
    const ABORTED: [&str; AbortReason::COUNT] = [
        "queries.aborted.invalidated",
        "queries.aborted.version-unavailable",
        "queries.aborted.cycle-detected",
        "queries.aborted.disconnected",
    ];
    match base {
        Base::Rejected => REJECTED[reason.index()],
        Base::Doomed => DOOMED[reason.index()],
        Base::Aborted => ABORTED[reason.index()],
    }
}

/// One recorded event: logical time plus payload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Event {
    /// Emission sequence number, unique and monotonic within a recorder.
    pub tick: u64,
    /// The broadcast cycle the event belongs to.
    pub cycle: Cycle,
    /// Who emitted it.
    pub actor: Actor,
    /// What happened.
    pub kind: EventKind,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn actor_tids_are_distinct_lanes() {
        assert_eq!(Actor::Server.tid(), 0);
        assert_eq!(Actor::Validator.tid(), 1);
        assert_eq!(Actor::Client(0).tid(), 2);
        assert_eq!(Actor::Client(7).tid(), 9);
        assert_eq!(Actor::Client(7).label(), "client-7");
    }

    #[test]
    fn reason_counters_cover_every_base_and_reason() {
        for reason in AbortReason::ALL {
            for (base, kind) in [
                (
                    "reads.rejected",
                    EventKind::ReadRejected { item: 0, reason },
                ),
                ("reads.doomed", EventKind::ReadDoomed { reason }),
                (
                    "queries.aborted",
                    EventKind::QueryAborted { query: 0, reason },
                ),
            ] {
                let [first, second] = kind.counter_names();
                assert_eq!(first, Some(base));
                let expected = format!("{base}.{}", reason.label());
                assert_eq!(second, Some(expected.as_str()));
            }
        }
    }

    #[test]
    fn spans_do_not_count() {
        assert_eq!(
            EventKind::SpanBegin { name: "x" }.counter_names(),
            [None, None]
        );
    }
}
