//! Exporters: NDJSON, chrome://tracing, and a terminal summary.
//!
//! All three render a [`TraceSnapshot`] with hand-rolled JSON (the
//! workspace vendors no serializer) and deterministic field order, so
//! equal snapshots produce byte-identical output.

use std::fmt::Write as _;

use crate::event::{Actor, Event, EventKind};
use crate::handle::TraceSnapshot;

/// Renders the event stream as NDJSON: one JSON object per line, in
/// tick order, with `tick`/`cycle`/`actor`/`kind` plus the payload
/// fields of the kind.
pub fn ndjson(snap: &TraceSnapshot) -> String {
    let mut out = String::new();
    for e in &snap.events {
        let _ = write!(
            out,
            "{{\"tick\":{},\"cycle\":{},\"actor\":{},\"kind\":{}",
            e.tick,
            e.cycle.number(),
            json_string(&e.actor.label()),
            json_string(e.kind.name()),
        );
        for (key, value) in payload_fields(&e.kind) {
            let _ = write!(out, ",\"{key}\":{value}");
        }
        out.push_str("}\n");
    }
    out
}

/// Renders the snapshot as a chrome://tracing `trace_event` JSON
/// object (the format Perfetto and `chrome://tracing` load directly).
///
/// Logical ticks are used as microsecond timestamps; spans become
/// `B`/`E` duration events on one lane per [`Actor`], every other
/// event becomes a thread-scoped instant (`ph:"i"`), and `M` metadata
/// events name the lanes.
pub fn chrome_trace(snap: &TraceSnapshot) -> String {
    let mut out = String::from("{\"traceEvents\":[");
    let mut first = true;
    let mut actors: Vec<Actor> = snap.events.iter().map(|e| e.actor).collect();
    actors.sort();
    actors.dedup();
    for actor in actors {
        push_entry(&mut out, &mut first, |o| {
            let _ = write!(
                o,
                "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":{},\
                 \"args\":{{\"name\":{}}}}}",
                actor.tid(),
                json_string(&actor.label()),
            );
        });
    }
    for e in &snap.events {
        push_entry(&mut out, &mut first, |o| chrome_event(o, e));
    }
    out.push_str("],\"displayTimeUnit\":\"ms\"}");
    out
}

/// Renders a compact terminal summary: event totals, the counter
/// table, and one line per histogram.
pub fn text_summary(snap: &TraceSnapshot) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "trace: {} event{} retained ({} dropped)",
        snap.events.len(),
        if snap.events.len() == 1 { "" } else { "s" },
        snap.dropped,
    );
    if !snap.counters.is_empty() {
        let width = snap
            .counters
            .iter()
            .map(|(n, _)| n.len())
            .max()
            .unwrap_or(0);
        let _ = writeln!(out, "counters:");
        for (name, value) in &snap.counters {
            let _ = writeln!(out, "  {name:width$}  {value}");
        }
    }
    if !snap.histograms.is_empty() {
        let _ = writeln!(out, "histograms:");
        for (name, h) in &snap.histograms {
            let _ = writeln!(
                out,
                "  {name}: count={} mean={} min={} max={} p50={} p90={} p99={}",
                h.count(),
                h.mean().unwrap_or(0),
                h.min().unwrap_or(0),
                h.max().unwrap_or(0),
                h.p50().unwrap_or(0),
                h.p90().unwrap_or(0),
                h.p99().unwrap_or(0),
            );
        }
    }
    out
}

/// Escapes `s` as a JSON string literal (quotes included).
pub fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if u32::from(c) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", u32::from(c));
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// The payload of `kind` as `(key, rendered JSON value)` pairs, in a
/// fixed order.
fn payload_fields(kind: &EventKind) -> Vec<(&'static str, String)> {
    match kind {
        EventKind::ControlProcessed | EventKind::MissedCycle => Vec::new(),
        EventKind::QueryBegun { query } => vec![("query", query.to_string())],
        EventKind::ReadAccepted { item } => vec![("item", item.to_string())],
        EventKind::ReadRejected { item, reason } => vec![
            ("item", item.to_string()),
            ("reason", json_string(reason.label())),
        ],
        EventKind::ReadDoomed { reason } => {
            vec![("reason", json_string(reason.label()))]
        }
        EventKind::QueryCommitted {
            query,
            latency_slots,
        } => vec![
            ("query", query.to_string()),
            ("latency_slots", latency_slots.to_string()),
        ],
        EventKind::QueryAborted { query, reason } => vec![
            ("query", query.to_string()),
            ("reason", json_string(reason.label())),
        ],
        EventKind::GraphPruned {
            nodes_freed,
            edges_freed,
        } => vec![
            ("nodes_freed", nodes_freed.to_string()),
            ("edges_freed", edges_freed.to_string()),
        ],
        EventKind::CacheHit { item } | EventKind::CacheMiss { item } => {
            vec![("item", item.to_string())]
        }
        EventKind::SpanBegin { name } | EventKind::SpanEnd { name } => {
            vec![("name", json_string(name))]
        }
    }
}

fn push_entry(out: &mut String, first: &mut bool, write: impl FnOnce(&mut String)) {
    if !*first {
        out.push(',');
    }
    *first = false;
    write(out);
}

fn chrome_event(out: &mut String, e: &Event) {
    let (name, ph) = match &e.kind {
        EventKind::SpanBegin { name } => (json_string(name), "B"),
        EventKind::SpanEnd { name } => (json_string(name), "E"),
        kind => (json_string(kind.name()), "i"),
    };
    let _ = write!(
        out,
        "{{\"name\":{name},\"cat\":\"bpush\",\"ph\":\"{ph}\",\"ts\":{},\
         \"pid\":0,\"tid\":{}",
        e.tick,
        e.actor.tid(),
    );
    if ph == "i" {
        out.push_str(",\"s\":\"t\"");
    }
    let _ = write!(out, ",\"args\":{{\"cycle\":{}", e.cycle.number());
    for (key, value) in payload_fields(&e.kind) {
        if key == "name" {
            continue; // spans already carry their name as the event name
        }
        let _ = write!(out, ",\"{key}\":{value}");
    }
    out.push_str("}}");
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::handle::Obs;
    use bpush_types::{AbortReason, Cycle};

    fn sample() -> TraceSnapshot {
        let obs = Obs::recording(64);
        {
            let _cycle = obs.span("server.cycle", Cycle::ZERO, Actor::Server);
            obs.emit(Cycle::ZERO, Actor::Client(0), EventKind::ControlProcessed);
            obs.emit(
                Cycle::ZERO,
                Actor::Client(0),
                EventKind::ReadRejected {
                    item: 7,
                    reason: AbortReason::Invalidated,
                },
            );
            obs.emit(
                Cycle::ZERO,
                Actor::Client(0),
                EventKind::QueryCommitted {
                    query: 3,
                    latency_slots: 42,
                },
            );
        }
        obs.record("bcast.slots", 120);
        obs.snapshot().expect("recording")
    }

    #[test]
    fn ndjson_is_one_object_per_event() {
        let snap = sample();
        let text = ndjson(&snap);
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), snap.events.len());
        for line in &lines {
            assert!(line.starts_with("{\"tick\":"), "{line}");
            assert!(line.ends_with('}'), "{line}");
        }
        assert!(
            lines
                .iter()
                .any(|l| l.contains("\"reason\":\"invalidated\"")),
            "payload fields rendered"
        );
    }

    #[test]
    fn chrome_trace_pairs_spans_and_scopes_instants() {
        let text = chrome_trace(&sample());
        assert!(text.starts_with("{\"traceEvents\":["));
        assert!(text.ends_with("}"));
        assert!(text.contains("\"ph\":\"B\""));
        assert!(text.contains("\"ph\":\"E\""));
        assert!(text.contains("\"ph\":\"i\""));
        assert!(text.contains("\"thread_name\""));
        assert_eq!(
            text.matches("\"ph\":\"B\"").count(),
            text.matches("\"ph\":\"E\"").count(),
            "every span opens and closes"
        );
    }

    /// Every exported document must be structurally valid JSON: with
    /// all string contents escaped, brace and bracket counts balance —
    /// the check that catches an extra `}` a JSON-loading tool would
    /// reject.
    #[test]
    fn exports_balance_braces_and_brackets() {
        fn assert_balanced(text: &str) {
            let mut depth: i64 = 0;
            let mut in_string = false;
            let mut escaped = false;
            for c in text.chars() {
                if escaped {
                    escaped = false;
                    continue;
                }
                match c {
                    '\\' if in_string => escaped = true,
                    '"' => in_string = !in_string,
                    '{' | '[' if !in_string => depth += 1,
                    '}' | ']' if !in_string => {
                        depth -= 1;
                        assert!(depth >= 0, "unbalanced close in: {text}");
                    }
                    _ => {}
                }
            }
            assert_eq!(depth, 0, "unbalanced export: {text}");
        }
        let snap = sample();
        assert_balanced(&chrome_trace(&snap));
        for line in ndjson(&snap).lines() {
            assert_balanced(line);
        }
    }

    #[test]
    fn text_summary_lists_counters_and_histograms() {
        let text = text_summary(&sample());
        assert!(text.contains("queries.committed"));
        assert!(text.contains("bcast.slots: count=1"));
        assert!(
            text.contains("p50=") && text.contains("p99="),
            "histogram lines surface latency percentiles: {text}"
        );
    }

    #[test]
    fn exports_are_deterministic_for_equal_streams() {
        let a = sample();
        let b = sample();
        assert_eq!(ndjson(&a), ndjson(&b));
        assert_eq!(chrome_trace(&a), chrome_trace(&b));
        assert_eq!(text_summary(&a), text_summary(&b));
    }

    #[test]
    fn json_string_escapes_specials() {
        assert_eq!(json_string("a\"b"), "\"a\\\"b\"");
        assert_eq!(json_string("a\\b"), "\"a\\\\b\"");
        assert_eq!(json_string("a\nb"), "\"a\\nb\"");
        assert_eq!(json_string("\u{1}"), "\"\\u0001\"");
    }
}
