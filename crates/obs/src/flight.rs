//! Bounded flight recorder and the `bpush-capture-v1` format.
//!
//! The recorder keeps a ring of the most recent broadcast frames (the
//! wire-format segment bytes of each cycle, as produced by the
//! `bpush-broadcast` codec). When a monitor fires — or an
//! [`AbortReason`](bpush_types::AbortReason) watch filter matches — the
//! harness dumps a [`Capture`]: a self-contained, replayable window of
//! wire bytes plus the triggering [`Violation`] and a fingerprint of the
//! affected client's protocol state. Captures are plain text
//! (`bpush-capture-v1`), byte-identical across same-seed runs, and are
//! consumed by `cargo xtask explain` and mc-replay-style re-execution.

use crate::monitor::Violation;
use crate::ring::RingBuffer;

/// The first token of every capture, bumped on breaking format changes.
pub const CAPTURE_MAGIC: &str = "bpush-capture-v1";

/// One retained broadcast frame: the wire bytes of one cycle.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame {
    /// The broadcast cycle the bytes encode.
    pub cycle: u64,
    /// The cycle's wire-format segment bytes.
    pub bytes: Vec<u8>,
}

/// A bounded ring of recent broadcast frames.
#[derive(Debug, Clone)]
pub struct FlightRecorder {
    frames: RingBuffer<Frame>,
}

impl FlightRecorder {
    /// A recorder retaining the last `capacity` frames.
    pub fn new(capacity: usize) -> Self {
        FlightRecorder {
            frames: RingBuffer::new(capacity),
        }
    }

    /// Retains one cycle's wire bytes, evicting the oldest frame when
    /// the ring is full.
    pub fn record_frame(&mut self, cycle: u64, bytes: &[u8]) {
        self.frames.push(Frame {
            cycle,
            bytes: bytes.to_vec(),
        });
    }

    /// Frames currently retained.
    pub fn len(&self) -> usize {
        self.frames.len()
    }

    /// Whether no frame has been retained yet.
    pub fn is_empty(&self) -> bool {
        self.frames.is_empty()
    }

    /// Frames evicted to stay within capacity.
    pub fn dropped(&self) -> u64 {
        self.frames.dropped()
    }

    /// Iterates the retained frames oldest-first.
    pub fn iter(&self) -> impl Iterator<Item = &Frame> {
        self.frames.iter()
    }

    /// Freezes the retained window into a [`Capture`].
    pub fn capture(
        &self,
        method: &str,
        seed: u64,
        clients: u32,
        params: [u32; 4],
        trigger: Violation,
        fingerprint: u64,
    ) -> Capture {
        Capture {
            method: method.to_string(),
            seed,
            clients,
            params,
            trigger,
            fingerprint,
            dropped: self.frames.dropped(),
            frames: self.frames.iter().cloned().collect(),
        }
    }
}

/// A self-contained replayable capture (`bpush-capture-v1`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Capture {
    /// The processing method under watch (its stable name).
    pub method: String,
    /// The run's seed.
    pub seed: u64,
    /// The run's client count.
    pub clients: u32,
    /// Run parameters — the wire-codec sizing quadruple, in
    /// `WireParams::derive` argument order: `[db_size, report_window,
    /// txns_per_cycle, cycle_horizon]`. Carrying exactly these lets a
    /// consumer re-derive the codec widths and decode the frames from
    /// the capture alone.
    pub params: [u32; 4],
    /// The violation (or watch pseudo-violation) that fired.
    pub trigger: Violation,
    /// FNV-1a fingerprint of the affected client's protocol state at
    /// capture time.
    pub fingerprint: u64,
    /// Frames that fell off the ring before the capture.
    pub dropped: u64,
    /// The retained wire-format frames, oldest first.
    pub frames: Vec<Frame>,
}

impl Capture {
    /// Renders the canonical text form: byte-identical across same-seed
    /// runs.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let [p0, p1, p2, p3] = self.params;
        let _ = writeln!(
            out,
            "{CAPTURE_MAGIC} method={} seed={} clients={} p0={p0} p1={p1} p2={p2} p3={p3} \
             fingerprint={:016x} dropped={}",
            self.method, self.seed, self.clients, self.fingerprint, self.dropped,
        );
        let _ = writeln!(out, "trigger {}", self.trigger.render());
        for frame in &self.frames {
            let _ = write!(out, "frame cycle={} bytes=", frame.cycle);
            for b in &frame.bytes {
                let _ = write!(out, "{b:02x}");
            }
            out.push('\n');
        }
        out.push_str("end\n");
        out
    }

    /// Parses a [`Capture::render`]ed capture. Returns `None` on any
    /// malformed line (the format is all-or-nothing).
    pub fn parse(text: &str) -> Option<Capture> {
        let mut lines = text.lines();
        let header = lines.next()?;
        let mut header_parts = header.split_ascii_whitespace();
        if header_parts.next()? != CAPTURE_MAGIC {
            return None;
        }
        let mut method = None;
        let mut seed = None;
        let mut clients = None;
        let (mut p0, mut p1, mut p2, mut p3) = (None, None, None, None);
        let mut fingerprint = None;
        let mut dropped = None;
        for part in header_parts {
            let (key, value) = part.split_once('=')?;
            match key {
                "method" => method = Some(value.to_string()),
                "seed" => seed = value.parse().ok(),
                "clients" => clients = value.parse().ok(),
                "p0" => p0 = value.parse().ok(),
                "p1" => p1 = value.parse().ok(),
                "p2" => p2 = value.parse().ok(),
                "p3" => p3 = value.parse().ok(),
                "fingerprint" => fingerprint = u64::from_str_radix(value, 16).ok(),
                "dropped" => dropped = value.parse().ok(),
                _ => return None,
            }
        }
        let trigger_line = lines.next()?.strip_prefix("trigger ")?;
        let trigger = Violation::parse(trigger_line)?;
        let mut frames = Vec::new();
        let mut saw_end = false;
        for line in lines {
            if line == "end" {
                saw_end = true;
                break;
            }
            let rest = line.strip_prefix("frame cycle=")?;
            let (cycle, hex) = rest.split_once(" bytes=")?;
            let cycle = cycle.parse().ok()?;
            if hex.len() % 2 != 0 {
                return None;
            }
            let mut bytes = Vec::with_capacity(hex.len() / 2);
            for i in (0..hex.len()).step_by(2) {
                let pair = hex.get(i..i + 2)?;
                bytes.push(u8::from_str_radix(pair, 16).ok()?);
            }
            frames.push(Frame { cycle, bytes });
        }
        if !saw_end {
            return None;
        }
        Some(Capture {
            method: method?,
            seed: seed?,
            clients: clients?,
            params: [p0?, p1?, p2?, p3?],
            trigger,
            fingerprint: fingerprint?,
            dropped: dropped?,
            frames,
        })
    }
}

/// FNV-1a over `bytes`: the capture fingerprint hash (the same folding
/// the model checker uses for state hashing).
pub fn fnv64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in bytes {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::monitor::MonitorKind;

    fn trigger() -> Violation {
        Violation {
            kind: MonitorKind::Currency,
            client: 3,
            query: 41,
            cycle: 9,
            item: 7,
            write_cycle: 8,
            detail: 9,
        }
    }

    #[test]
    fn recorder_wraps_and_counts_drops() {
        let mut fr = FlightRecorder::new(3);
        assert!(fr.is_empty());
        for c in 0..5u64 {
            fr.record_frame(c, &[c as u8, 0xAA]);
        }
        assert_eq!(fr.len(), 3);
        assert_eq!(fr.dropped(), 2);
        let cycles: Vec<u64> = fr.iter().map(|f| f.cycle).collect();
        assert_eq!(cycles, vec![2, 3, 4], "oldest evicted first");
    }

    #[test]
    fn capture_roundtrips_through_text() {
        let mut fr = FlightRecorder::new(4);
        fr.record_frame(7, &[0x00, 0x01, 0xfe, 0xff]);
        fr.record_frame(8, &[]);
        fr.record_frame(9, &[0x42]);
        let cap = fr.capture(
            "invalidation-only",
            99,
            4,
            [64, 4, 2, 3],
            trigger(),
            0xdead_beef,
        );
        let text = cap.render();
        assert!(text.starts_with("bpush-capture-v1 "));
        assert!(text.ends_with("end\n"));
        let back = Capture::parse(&text).expect("roundtrip");
        assert_eq!(back, cap);
        assert_eq!(back.frames.len(), 3);
        assert_eq!(back.frames[0].bytes, vec![0x00, 0x01, 0xfe, 0xff]);
        assert_eq!(back.frames[1].bytes, Vec::<u8>::new());
        assert_eq!(back.render(), text, "render is a fixed point");
    }

    #[test]
    fn capture_records_ring_drops() {
        let mut fr = FlightRecorder::new(2);
        for c in 0..5u64 {
            fr.record_frame(c, &[c as u8]);
        }
        let cap = fr.capture("sgt", 1, 1, [8, 1, 1, 1], trigger(), 0);
        assert_eq!(cap.dropped, 3);
        assert_eq!(cap.frames.len(), 2);
        let back = Capture::parse(&cap.render()).expect("roundtrip");
        assert_eq!(back.dropped, 3);
    }

    #[test]
    fn parse_rejects_malformed_captures() {
        assert!(Capture::parse("").is_none());
        assert!(Capture::parse("not-a-capture\n").is_none());
        let cap = FlightRecorder::new(2).capture("m", 0, 1, [1, 1, 1, 1], trigger(), 0);
        let text = cap.render();
        // truncate the trailing `end`
        let cut = text.trim_end_matches("end\n");
        assert!(Capture::parse(cut).is_none());
        // corrupt a hex digit count
        let mut fr = FlightRecorder::new(2);
        fr.record_frame(0, &[0xab]);
        let odd = fr
            .capture("m", 0, 1, [1, 1, 1, 1], trigger(), 0)
            .render()
            .replace("bytes=ab", "bytes=abc");
        assert!(Capture::parse(&odd).is_none());
    }

    #[test]
    fn fnv64_is_stable() {
        assert_eq!(fnv64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_ne!(fnv64(b"ab"), fnv64(b"ba"));
    }
}
