//! Terminal line charts for experiment tables — the "figure" rendering of
//! the reproduction harness.

use crate::table::Table;

/// Renders the numeric series of a [`Table`] (first column = x axis, each
/// further column = one curve) as an ASCII chart.
///
/// # Example
/// ```
/// use bpush_sim::{chart::render, Table};
/// let mut t = Table::new("demo", "demo", ["x", "a"]);
/// t.push_row(["0", "0.0"]);
/// t.push_row(["1", "10.0"]);
/// let plot = render(&t, 20, 8);
/// assert!(plot.contains('a'), "legend present");
/// ```
pub fn render(table: &Table, width: usize, height: usize) -> String {
    let width = width.max(16);
    let height = height.max(4);
    let series: Vec<(String, Vec<f64>)> = (1..table.columns.len())
        .filter_map(|col| {
            let values: Option<Vec<f64>> = table
                .rows
                .iter()
                .map(|row| row[col].parse::<f64>().ok())
                .collect();
            values.map(|v| (table.columns[col].clone(), v))
        })
        .collect();
    if series.is_empty() || table.rows.is_empty() {
        return String::from("(no numeric series to plot)\n");
    }

    let n = table.rows.len();
    let y_max = series
        .iter()
        .flat_map(|(_, v)| v.iter().copied())
        .fold(f64::NEG_INFINITY, f64::max)
        .max(1e-9);
    let y_min = series
        .iter()
        .flat_map(|(_, v)| v.iter().copied())
        .fold(f64::INFINITY, f64::min)
        .min(0.0);
    let span = (y_max - y_min).max(1e-9);

    let marks: &[char] = &['*', 'o', '+', 'x', '#', '@', '%', '&'];
    let mut grid = vec![vec![' '; width]; height];
    for (si, (_, values)) in series.iter().enumerate() {
        let mark = marks[si % marks.len()];
        for (i, &v) in values.iter().enumerate() {
            let x = if n == 1 { 0 } else { i * (width - 1) / (n - 1) };
            let yf = (v - y_min) / span;
            let y = ((1.0 - yf) * (height - 1) as f64).round() as usize;
            grid[y.min(height - 1)][x] = mark;
        }
    }

    let mut out = String::new();
    out.push_str(&format!("{} — {}\n", table.id, table.title));
    for (i, row) in grid.iter().enumerate() {
        let label = if i == 0 {
            format!("{y_max:>9.2} |")
        } else if i == height - 1 {
            format!("{y_min:>9.2} |")
        } else {
            "          |".to_owned()
        };
        out.push_str(&label);
        out.push_str(&row.iter().collect::<String>());
        out.push('\n');
    }
    out.push_str("          +");
    out.push_str(&"-".repeat(width));
    out.push('\n');
    out.push_str(&format!(
        "           {} .. {} ({})\n",
        table.rows.first().map(|r| r[0].as_str()).unwrap_or(""),
        table.rows.last().map(|r| r[0].as_str()).unwrap_or(""),
        table.columns[0],
    ));
    out.push_str("           legend: ");
    for (si, (name, _)) in series.iter().enumerate() {
        if si > 0 {
            out.push_str("  ");
        }
        out.push(marks[si % marks.len()]);
        out.push('=');
        out.push_str(name);
    }
    out.push('\n');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_table() -> Table {
        let mut t = Table::new("fig", "two curves", ["x", "up", "down"]);
        for i in 0..5 {
            t.push_row([
                i.to_string(),
                format!("{}", i * 10),
                format!("{}", 40 - i * 10),
            ]);
        }
        t
    }

    #[test]
    fn renders_marks_and_legend() {
        let plot = render(&sample_table(), 40, 10);
        assert!(plot.contains("*=up"));
        assert!(plot.contains("o=down"));
        assert!(plot.contains('*'));
        assert!(plot.contains('o'));
        assert!(plot.contains("40.00"), "y max labelled: {plot}");
        assert!(plot.contains("0 .. 4"));
    }

    #[test]
    fn non_numeric_columns_are_skipped() {
        let mut t = Table::new("t", "mixed", ["x", "num", "text"]);
        t.push_row(["0", "1.0", "hello"]);
        t.push_row(["1", "2.0", "world"]);
        let plot = render(&t, 30, 6);
        assert!(plot.contains("*=num"));
        assert!(!plot.contains("text"), "text column skipped: {plot}");
    }

    #[test]
    fn empty_table_is_harmless() {
        let t = Table::new("t", "empty", ["x", "y"]);
        assert!(render(&t, 30, 6).contains("no numeric series"));
    }

    #[test]
    fn single_point_does_not_divide_by_zero() {
        let mut t = Table::new("t", "one", ["x", "y"]);
        t.push_row(["5", "3.5"]);
        let plot = render(&t, 30, 6);
        assert!(plot.contains('*'));
    }

    #[test]
    fn flat_series_renders_at_bottom_band() {
        let mut t = Table::new("t", "flat", ["x", "y"]);
        t.push_row(["0", "0.0"]);
        t.push_row(["1", "0.0"]);
        let plot = render(&t, 30, 6);
        assert!(plot.contains('*'));
    }
}
