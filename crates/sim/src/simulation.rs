//! The cycle-driven simulation engine tying server and clients together.

use std::sync::Arc;

use bpush_broadcast::feed::encode_bcast_segments;
use bpush_client::{CacheParams, ClientCache, QueryExecutor, QueryOutcome};
use bpush_core::validator::SerializabilityBatch;
use bpush_core::{AbortReason, CacheMode, Method, ReadOnlyProtocol};
use bpush_obs::flight::fnv64;
use bpush_obs::{Actor, Capture, FlightRecorder, MonitorConfig, Monitors, Obs};
use bpush_server::BroadcastServer;
use bpush_types::config::MultiversionLayout;
use bpush_types::seed::SeedSequence;
use bpush_types::stats::{Histogram, Ratio, Summary};
use bpush_types::{BpushError, ClientId, Cycle, SimConfig, Slot};
use parking_lot::Mutex;

/// Everything measured about one method under one configuration.
#[derive(Debug, Clone)]
pub struct MethodMetrics {
    /// The method simulated.
    pub method: Method,
    /// Queries finished after warm-up (committed + aborted).
    pub queries: u64,
    /// Committed / total — the paper's "percent of transactions
    /// accepted" is `1 − abort_rate`.
    pub aborts: Ratio,
    /// Per-reason abort counts.
    pub abort_reasons: Vec<(AbortReason, u64)>,
    /// Latency of *committed* queries, in broadcast cycles (§5.2.1
    /// measures accepted transactions only).
    pub latency_cycles: Summary,
    /// Latency of committed queries in raw slots (useful when comparing
    /// organizations with different cycle lengths).
    pub latency_slots: Summary,
    /// Latency distribution (cycles) of committed queries, for quantiles.
    pub latency_hist: Histogram,
    /// Span of committed queries (distinct cycles read from).
    pub span: Summary,
    /// Active-listening slots per committed query (§2.1 selective-tuning
    /// energy cost: control segments heard plus data buckets read).
    pub tuning_slots: Summary,
    /// Broadcast (non-cache) reads per committed query.
    pub broadcast_reads: Summary,
    /// Cache hits / lookups pooled across all clients, if the method
    /// caches — kept as exact integer counts so merging replications
    /// and shards is exact.
    pub cache_hit_rate: Option<Ratio>,
    /// Mean on-air bcast length in slots.
    pub mean_bcast_slots: f64,
    /// Data-segment length (the no-overhead baseline).
    pub base_slots: u64,
    /// Committed readsets that failed serializability validation —
    /// always zero unless a protocol is broken.
    pub violations: u64,
    /// Broadcast cycles simulated.
    pub cycles: u64,
    /// Peak size of the validation structure (SGT serialization graph)
    /// across all clients and cycles, as `(nodes, edges)` — the space
    /// overhead Table 1 calls "considerable". Zero for methods that
    /// keep no such structure.
    pub peak_graph_nodes: usize,
    /// Peak edge count; see [`MethodMetrics::peak_graph_nodes`].
    pub peak_graph_edges: usize,
    /// Wall time spent in client-side per-cycle processing (control
    /// handling + validation + reads), one sample per simulated cycle,
    /// in nanoseconds. Wall time is measured here in `bpush-sim` — the
    /// protocol crates stay clock-free for determinism.
    pub validation_ns: Summary,
}

impl MethodMetrics {
    /// Abort rate in percent.
    pub fn abort_pct(&self) -> f64 {
        self.aborts.rate() * 100.0
    }

    /// Broadcast-size increase over the bare data segment, in percent.
    pub fn overhead_pct(&self) -> f64 {
        (self.mean_bcast_slots - self.base_slots as f64) / self.base_slots as f64 * 100.0
    }

    /// Every field except `validation_ns`, rendered to a string: the
    /// deterministic projection of the metrics. `validation_ns` is
    /// wall-clock time and legitimately varies run to run; everything
    /// else is a pure function of the seed, so the sharded-runner tests
    /// assert byte-identical snapshots across worker counts.
    pub fn deterministic_snapshot(&self) -> String {
        format!(
            "method={:?} queries={} aborts={:?} reasons={:?} latency_cycles={:?} \
             latency_slots={:?} latency_hist={:?} span={:?} tuning={:?} breads={:?} \
             cache_hit={:?} mean_bcast_slots={:?} base_slots={} violations={} cycles={} \
             peak_nodes={} peak_edges={}",
            self.method,
            self.queries,
            self.aborts,
            self.abort_reasons,
            self.latency_cycles,
            self.latency_slots,
            self.latency_hist,
            self.span,
            self.tuning_slots,
            self.broadcast_reads,
            self.cache_hit_rate,
            self.mean_bcast_slots,
            self.base_slots,
            self.violations,
            self.cycles,
            self.peak_graph_nodes,
            self.peak_graph_edges,
        )
    }

    /// Merges metrics from an independent replication of the same
    /// configuration (different seed) into this one.
    ///
    /// # Panics
    /// Panics if the replications simulated different methods.
    pub fn merge(&mut self, other: &MethodMetrics) {
        assert_eq!(self.method, other.method, "replications must match methods");
        let total_cycles = (self.cycles + other.cycles).max(1);
        self.mean_bcast_slots = (self.mean_bcast_slots * self.cycles as f64
            + other.mean_bcast_slots * other.cycles as f64)
            / total_cycles as f64;
        self.queries += other.queries;
        self.aborts.merge(&other.aborts);
        for &(reason, n) in &other.abort_reasons {
            match self.abort_reasons.iter_mut().find(|(r, _)| *r == reason) {
                Some((_, count)) => *count += n,
                None => self.abort_reasons.push((reason, n)),
            }
        }
        self.latency_cycles.merge(&other.latency_cycles);
        self.latency_slots.merge(&other.latency_slots);
        self.latency_hist.merge(&other.latency_hist);
        self.span.merge(&other.span);
        self.tuning_slots.merge(&other.tuning_slots);
        self.broadcast_reads.merge(&other.broadcast_reads);
        self.cache_hit_rate = match (self.cache_hit_rate, other.cache_hit_rate) {
            (Some(mut a), Some(b)) => {
                a.merge(&b);
                Some(a)
            }
            (a, b) => a.or(b),
        };
        // keep a canonical order so a merged tally is bit-identical to
        // the single-run tally regardless of which shard saw which
        // reason first
        self.abort_reasons.sort_by_key(|&(reason, _)| reason);
        self.violations += other.violations;
        self.cycles += other.cycles;
        self.peak_graph_nodes = self.peak_graph_nodes.max(other.peak_graph_nodes);
        self.peak_graph_edges = self.peak_graph_edges.max(other.peak_graph_edges);
        self.validation_ns.merge(&other.validation_ns);
    }
}

/// One simulation: a [`BroadcastServer`] plus `n_clients` independent
/// [`QueryExecutor`]s, advanced cycle by cycle until every client
/// exhausts its query budget.
///
/// # Example
/// ```
/// use bpush_core::Method;
/// use bpush_sim::Simulation;
/// use bpush_types::SimConfig;
///
/// let mut config = SimConfig::default();
/// config.n_clients = 2;
/// config.queries_per_client = 5;
/// config.warmup_cycles = 0; // measure from the first cycle
/// let metrics = Simulation::new(config, Method::InvalidationOnly)?.run()?;
/// assert_eq!(metrics.queries, 10);
/// assert_eq!(metrics.violations, 0);
/// # Ok::<(), bpush_types::BpushError>(())
/// ```
#[derive(Debug)]
pub struct Simulation {
    config: SimConfig,
    method: Method,
    server: BroadcastServer,
    clients: Vec<QueryExecutor>,
    obs: Obs,
    flight: Option<FlightState>,
}

/// Online monitors sized for `config`, checking the invariant family
/// `method` guarantees ([`Method::monitor_policy`]). The lane table is
/// sized for the *global* client population, so the same handle (or a
/// same-configured one per shard) indexes clients identically in
/// sharded and unsharded runs.
pub fn monitors_for(config: &SimConfig, method: Method) -> Monitors {
    let (policy, coverage) = method.monitor_policy();
    let mut mc = MonitorConfig::new(config.n_clients, policy, coverage);
    mc.reads_per_query = config.client.reads_per_query.max(1);
    Monitors::new(mc)
}

/// A shared write-once mailbox for the first [`Capture`] of a run: the
/// flight recorder dumps into it when a monitor fires (or a watched
/// abort matches), and the harness [`CaptureSlot::take`]s it afterwards.
#[derive(Debug, Clone, Default)]
pub struct CaptureSlot {
    inner: Arc<Mutex<Option<Capture>>>,
}

impl CaptureSlot {
    /// An empty slot.
    pub fn new() -> Self {
        CaptureSlot::default()
    }

    /// Whether a capture has already been deposited.
    pub fn is_filled(&self) -> bool {
        self.lock().is_some()
    }

    /// Deposits `capture` if the slot is empty; returns whether it was
    /// stored (the first trigger wins, later ones are dropped).
    pub fn put_if_empty(&self, capture: Capture) -> bool {
        let mut slot = self.lock();
        if slot.is_some() {
            return false;
        }
        *slot = Some(capture);
        true
    }

    /// Removes and returns the capture, leaving the slot empty.
    pub fn take(&self) -> Option<Capture> {
        self.lock().take()
    }

    fn lock(&self) -> parking_lot::MutexGuard<'_, Option<Capture>> {
        self.inner.lock()
    }
}

/// The flight-recorder side of a simulation: the bounded frame ring and
/// the slot the capture is deposited into on trigger.
#[derive(Debug)]
struct FlightState {
    recorder: FlightRecorder,
    slot: CaptureSlot,
}

impl Simulation {
    /// Builds a simulation of `method` under `config`, using the overflow
    /// multiversion layout where applicable.
    ///
    /// # Errors
    /// Returns [`BpushError::InvalidConfig`] for inconsistent
    /// configurations.
    pub fn new(config: SimConfig, method: Method) -> Result<Self, BpushError> {
        Simulation::with_layout(config, method, MultiversionLayout::Overflow)
    }

    /// Builds a simulation choosing the multiversion on-air layout.
    ///
    /// # Errors
    /// Returns [`BpushError::InvalidConfig`] for inconsistent
    /// configurations.
    pub fn with_layout(
        config: SimConfig,
        method: Method,
        layout: MultiversionLayout,
    ) -> Result<Self, BpushError> {
        let all = 0..config.n_clients;
        Simulation::with_client_range(config, method, layout, all)
    }

    /// Builds a *shard* of a simulation: the same server stream, but only
    /// the clients with global indices in `clients`. The server's update
    /// workload is derived purely from the seed (clients never feed back
    /// into it), so every shard replays the identical broadcast prefix,
    /// and each client's seed comes from its *global* index — a client
    /// behaves bit-identically whether it runs in a shard or in the full
    /// simulation. [`crate::run_sharded`] builds on this to spread one
    /// large simulation's clients across threads deterministically.
    ///
    /// # Errors
    /// Returns [`BpushError::InvalidConfig`] for inconsistent
    /// configurations, an empty range, or a range beyond `n_clients`.
    pub fn with_client_range(
        config: SimConfig,
        method: Method,
        layout: MultiversionLayout,
        clients: std::ops::Range<u32>,
    ) -> Result<Self, BpushError> {
        config.validate()?;
        if clients.is_empty() {
            return Err(BpushError::invalid_config(
                "a simulation shard needs at least one client",
            ));
        }
        if clients.end > config.n_clients {
            return Err(BpushError::invalid_config("client range exceeds n_clients"));
        }
        let seeds = SeedSequence::new(config.seed);
        let server = BroadcastServer::new(
            config.server.clone(),
            method.server_options(layout),
            seeds.derive(&["server"]),
        )?;
        let mut built = Vec::with_capacity(clients.len());
        for i in clients {
            let cache = match method.cache_mode() {
                CacheMode::None => None,
                mode @ (CacheMode::Plain | CacheMode::Versioned | CacheMode::Multiversion) => {
                    let cache_cfg = &config.client.cache;
                    if !cache_cfg.is_enabled() {
                        None
                    } else {
                        let (current, old) = if mode == CacheMode::Multiversion {
                            (cache_cfg.current_capacity(), cache_cfg.old_capacity())
                        } else {
                            (cache_cfg.capacity, 0)
                        };
                        Some(ClientCache::new(CacheParams {
                            mode,
                            current_capacity: current,
                            old_capacity: old,
                            items_per_bucket: config.server.items_per_bucket,
                        }))
                    }
                }
            };
            built.push(QueryExecutor::new(
                ClientId::new(i),
                config.client.clone(),
                method.build_protocol(),
                cache,
                config.queries_per_client,
                seeds.derive(&["client", &i.to_string()]),
            )?);
        }
        Ok(Simulation {
            config,
            method,
            server,
            clients: built,
            obs: Obs::off(),
            flight: None,
        })
    }

    /// Routes the whole simulation into `obs`: the server gets a
    /// per-cycle span and size histogram, every client's protocol is
    /// wrapped in an instrumentation decorator streaming per-operation
    /// events, and the end-of-run validation pass is bracketed by a
    /// `validator.check` span. After the run, the aggregated
    /// [`bpush_core::instrument::ProtocolStats`] of all clients are
    /// published into the registry as `stats.*` counters, so the
    /// event-derived counters can be reconciled against the decorator's
    /// independent tally.
    #[must_use]
    pub fn with_obs(self, obs: Obs) -> Self {
        let Simulation {
            config,
            method,
            server,
            clients,
            flight,
            ..
        } = self;
        Simulation {
            config,
            method,
            server: server.with_obs(obs.clone()),
            clients: clients
                .into_iter()
                .map(|c| c.with_obs(obs.clone()))
                .collect(),
            obs,
            flight,
        }
    }

    /// Attaches online invariant monitors: every client's event stream
    /// (and typed monitor feed) is routed into `monitors`, which check
    /// the method's published consistency rules *during* the run — see
    /// [`monitors_for`] for a handle matched to the method. Composes
    /// with an existing [`Obs`]; attaching monitors alone enables event
    /// emission without a recording sink.
    #[must_use]
    pub fn with_monitors(self, monitors: Monitors) -> Self {
        let obs = self.obs.clone().with_monitors(monitors);
        self.with_obs(obs)
    }

    /// Retains the last `frames` broadcast cycles as wire-format bytes
    /// and, the first time a monitor fires (or a watched abort reason
    /// matches), freezes them into a `bpush-capture-v1` [`Capture`]
    /// deposited into `slot`. Requires [`Simulation::with_monitors`] for
    /// a trigger to ever fire.
    #[must_use]
    pub fn with_flight_recorder(mut self, frames: usize, slot: CaptureSlot) -> Self {
        self.flight = Some(FlightState {
            recorder: FlightRecorder::new(frames),
            slot,
        });
        self
    }

    /// Replaces every client's protocol with a fresh instance from
    /// `factory` — the fault-injection seam: the monitors' detection
    /// claims are tested by seeding deliberately broken protocols (e.g.
    /// `bpush-mc`'s `BrokenInvalidation`) into an otherwise genuine
    /// simulation. Call before [`Simulation::with_obs`] /
    /// [`Simulation::with_monitors`] so instrumentation wraps the
    /// replacement.
    #[must_use]
    pub fn with_protocol_factory(
        mut self,
        factory: impl Fn() -> Box<dyn ReadOnlyProtocol>,
    ) -> Self {
        self.clients = self
            .clients
            .into_iter()
            .map(|c| c.with_protocol(factory()))
            .collect();
        self
    }

    /// Feeds every client's control reports through the wire codec:
    /// each client's protocol is wrapped in a
    /// [`bpush_core::wirefed::WireFed`] decorator that encodes the
    /// report to framed broadcast segments and decodes it back before
    /// the protocol hears it. A wire-fed run must produce bit-identical
    /// [`MethodMetrics::deterministic_snapshot`]s to the struct-fed
    /// run — any difference is a wire/in-memory divergence. Call before
    /// [`Simulation::with_obs`] so instrumentation counts the decoded
    /// reports.
    #[must_use]
    pub fn with_wire_feed(mut self) -> Self {
        let params = wire_params_for(&self.config);
        self.clients = self
            .clients
            .into_iter()
            .map(|c| c.with_wire_feed(params))
            .collect();
        self
    }

    /// Replaces the server's broadcast mode (e.g. with a
    /// [`bpush_server::BroadcastMode::Disks`] organization), rebuilding
    /// the server from the same seed. Must be called before
    /// [`Simulation::run`].
    ///
    /// # Errors
    /// Returns [`BpushError::InvalidConfig`] if the mode is incompatible
    /// with the configuration (e.g. a disk partitioning that does not
    /// cover the broadcast set).
    pub fn with_server_mode(
        mut self,
        mode: bpush_server::BroadcastMode,
    ) -> Result<Self, BpushError> {
        let seeds = SeedSequence::new(self.config.seed);
        let options = bpush_server::ServerOptions {
            mode,
            sgt_info: self.server.options().sgt_info,
        };
        self.server = BroadcastServer::new(
            self.config.server.clone(),
            options,
            seeds.derive(&["server"]),
        )?;
        Ok(self)
    }

    /// Runs to completion and reduces the outcomes to [`MethodMetrics`].
    ///
    /// # Errors
    /// Returns [`BpushError::CycleBudgetExhausted`] if the configured
    /// `max_cycles` elapse before every client finishes its queries.
    pub fn run(self) -> Result<MethodMetrics, BpushError> {
        self.run_with_observer(|_| {})
    }

    /// Like [`Simulation::run`], but additionally streams every measured
    /// [`QueryOutcome`] to `observer` as it completes — for query-level
    /// traces, custom metrics, or progress reporting.
    ///
    /// # Errors
    /// Returns [`BpushError::CycleBudgetExhausted`] if the configured
    /// `max_cycles` elapse before every client finishes its queries.
    pub fn run_with_observer(
        mut self,
        mut observer: impl FnMut(&QueryOutcome),
    ) -> Result<MethodMetrics, BpushError> {
        let warmup = Cycle::new(u64::from(self.config.warmup_cycles));
        let mut start = Slot::ZERO;
        let mut outcomes: Vec<QueryOutcome> = Vec::new();
        let mut total_slots = 0u64;
        let mut cycles = 0u64;
        let mut peak_graph = (0usize, 0usize);
        let mut validation_ns = Summary::new();

        while self.clients.iter().any(|c| !c.is_done()) {
            if cycles >= self.config.max_cycles {
                return Err(BpushError::CycleBudgetExhausted {
                    max_cycles: self.config.max_cycles,
                });
            }
            let bcast = self.server.run_cycle();
            if let Some(flight) = self.flight.as_mut() {
                let bytes = encode_bcast_segments(&bcast, wire_params_for(&self.config));
                flight.recorder.record_frame(bcast.cycle().number(), &bytes);
            }
            total_slots += bcast.total_slots();
            cycles += 1;
            let measured = bcast.cycle() >= warmup;
            // Wall-time the client side of the cycle — the validation
            // work whose cost the interned data structures target. The
            // clock lives here in `bpush-sim`; protocol crates are
            // clock-free by lint rule L2.
            let cycle_started = std::time::Instant::now();
            for client in &mut self.clients {
                let connected = !client.roll_disconnect();
                for outcome in client.run_cycle(&bcast, start, connected)? {
                    if measured {
                        observer(&outcome);
                        outcomes.push(outcome);
                    }
                }
            }
            validation_ns.record(cycle_started.elapsed().as_nanos() as f64);
            // Flight-recorder trigger: the first monitor violation (or
            // watched abort) freezes the retained wire window into a
            // capture, fingerprinting the affected client's protocol
            // state at the end of the triggering cycle.
            if let (Some(flight), Some(mon)) = (self.flight.as_ref(), self.obs.monitors()) {
                if !flight.slot.is_filled() && mon.triggers() > 0 {
                    if let Some(trigger) = mon.first_trigger() {
                        let fingerprint = self
                            .clients
                            .iter()
                            .find(|c| c.client().index() == trigger.client)
                            .map(|c| fnv64(c.debug_snapshot().as_bytes()))
                            .unwrap_or(0);
                        let capture = flight.recorder.capture(
                            self.method.name(),
                            self.config.seed,
                            self.config.n_clients,
                            // The WireParams::derive quadruple, so
                            // `cargo xtask explain` can decode the
                            // frames from the capture alone.
                            [
                                self.config.server.broadcast_size,
                                self.config.server.report_window,
                                self.config.server.txns_per_cycle,
                                u32::try_from(self.config.max_cycles).unwrap_or(u32::MAX),
                            ],
                            trigger,
                            fingerprint,
                        );
                        flight.slot.put_if_empty(capture);
                    }
                }
            }
            for client in &self.clients {
                if let Some((nodes, edges)) = client.space_metrics() {
                    peak_graph.0 = peak_graph.0.max(nodes);
                    peak_graph.1 = peak_graph.1.max(edges);
                }
            }
            start = start.plus(bcast.total_slots());
        }

        // Publish the decorator-side tally so event-derived counters can
        // be reconciled against an independent count of the same run.
        if self.obs.is_enabled() {
            self.obs.counter_add("sim.cycles", cycles);
            for client in &self.clients {
                if let Some(stats) = client.protocol_stats() {
                    self.obs.counter_add("stats.controls", stats.controls);
                    self.obs.counter_add("stats.queries", stats.queries);
                    self.obs.counter_add("stats.directives", stats.directives);
                    self.obs.counter_add("stats.accepts", stats.accepts);
                    self.obs.counter_add("stats.rejects", stats.rejects);
                    self.obs.counter_add("stats.dooms", stats.dooms);
                    self.obs.counter_add("stats.finishes", stats.finishes);
                    self.obs
                        .counter_add("stats.missed-cycles", stats.missed_cycles);
                }
            }
        }

        // Validate every committed readset against the ground truth,
        // using the paper's exact criterion (readset = a state of *some*
        // serializable execution, checked against the full conflict
        // graph). The stronger prefix-snapshot check holds for the
        // snapshot-based methods and is exercised in the test suites.
        let _validator_span =
            self.obs
                .span("validator.check", Cycle::new(cycles), Actor::Validator);
        // The batch checker memoizes per-overwriter reachability across
        // the whole outcome set; the per-readset DFS form
        // (`SerializabilityValidator::check_serializable`) remains the
        // differential oracle in the test suites.
        let mut batch =
            SerializabilityBatch::new(self.server.history(), self.server.conflict_graph());
        let mut violations = 0;
        for o in outcomes.iter().filter(|o| o.committed()) {
            if batch.check(&o.reads).is_err() {
                violations += 1;
            }
        }
        drop(_validator_span);

        let mean_bcast_slots = total_slots as f64 / cycles.max(1) as f64;
        let cycle_len = mean_bcast_slots.max(1.0);
        let mut aborts = Ratio::new();
        let mut latency = Summary::new();
        let mut latency_slots = Summary::new();
        let mut latency_hist = Histogram::new();
        let mut span = Summary::new();
        let mut tuning = Summary::new();
        let mut broadcast_reads = Summary::new();
        let mut reasons: std::collections::BTreeMap<AbortReason, u64> =
            std::collections::BTreeMap::new();
        for o in &outcomes {
            aborts.record(!o.committed());
            match o.aborted {
                Some(reason) => *reasons.entry(reason).or_insert(0) += 1,
                None => {
                    latency.record(o.latency_slots() as f64 / cycle_len);
                    latency_hist.record(o.latency_slots() as f64 / cycle_len);
                    latency_slots.record(o.latency_slots() as f64);
                    span.record(f64::from(o.span));
                    tuning.record(o.tuning_slots as f64);
                    broadcast_reads.record(f64::from(o.broadcast_reads));
                }
            }
        }
        let cache_hit_rate = if self.method.uses_cache() {
            let (mut hits, mut total) = (0u64, 0u64);
            for c in &self.clients {
                if let Some(s) = c.cache_stats() {
                    hits += s.hits;
                    total += s.hits + s.misses;
                }
            }
            (total > 0).then(|| Ratio::from_counts(hits, total))
        } else {
            None
        };

        Ok(MethodMetrics {
            method: self.method,
            queries: outcomes.len() as u64,
            aborts,
            abort_reasons: reasons.into_iter().collect(),
            latency_cycles: latency,
            latency_slots,
            latency_hist,
            span,
            tuning_slots: tuning,
            broadcast_reads,
            cache_hit_rate,
            mean_bcast_slots,
            base_slots: u64::from(self.config.server.data_buckets()),
            violations,
            cycles,
            peak_graph_nodes: peak_graph.0,
            peak_graph_edges: peak_graph.1,
            validation_ns,
        })
    }
}

/// Wire widths sized for a simulation's configured universe: keys span
/// the broadcast set and sequence numbers span one cycle's update
/// transactions (both exact bounds), while the two age fields are
/// escape-coded, so `window` and `span` only size the common case and
/// out-of-range ages still round-trip exactly.
fn wire_params_for(config: &SimConfig) -> bpush_broadcast::wire::WireParams {
    bpush_broadcast::wire::WireParams::derive(
        config.server.broadcast_size,
        config.server.report_window,
        config.server.txns_per_cycle,
        u32::try_from(config.max_cycles).unwrap_or(u32::MAX),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_config() -> SimConfig {
        SimConfig {
            server: bpush_types::ServerConfig {
                broadcast_size: 200,
                update_range: 100,
                server_read_range: 200,
                updates_per_cycle: 20,
                txns_per_cycle: 5,
                ..bpush_types::ServerConfig::default()
            },
            client: bpush_types::ClientConfig {
                read_range: 100,
                reads_per_query: 6,
                ..bpush_types::ClientConfig::default()
            },
            n_clients: 3,
            queries_per_client: 15,
            warmup_cycles: 3,
            max_cycles: 20_000,
            seed: 99,
        }
    }

    /// The tentpole acceptance check at the simulation level: attaching
    /// a recording [`Obs`] must not perturb the run (bit-identical
    /// metrics vs the bare run), the event-derived counters must
    /// reconcile exactly with the decorator's independent
    /// `ProtocolStats` tally, and two same-seed traced runs must export
    /// byte-identical traces.
    #[test]
    fn traced_runs_match_bare_runs_and_reconcile() {
        for method in [Method::InvalidationOnly, Method::Sgt, Method::SgtCache] {
            let bare = Simulation::new(quick_config(), method)
                .unwrap()
                .run()
                .unwrap();

            let obs = Obs::recording(1 << 14);
            let traced = Simulation::new(quick_config(), method)
                .unwrap()
                .with_obs(obs.clone())
                .run()
                .unwrap();

            assert_eq!(bare.queries, traced.queries, "{method}");
            assert_eq!(bare.aborts.hits(), traced.aborts.hits(), "{method}");
            assert_eq!(bare.cycles, traced.cycles, "{method}");
            assert_eq!(bare.violations, traced.violations, "{method}");
            assert_eq!(bare.abort_reasons, traced.abort_reasons, "{method}");

            let snap = obs.snapshot().expect("recording sink");
            assert_eq!(
                snap.counter("reads.accepted"),
                snap.counter("stats.accepts"),
                "{method}: event stream vs decorator tally diverged"
            );
            assert_eq!(
                snap.counter("reads.rejected"),
                snap.counter("stats.rejects"),
                "{method}"
            );
            assert_eq!(
                snap.counter("control.processed"),
                snap.counter("stats.controls"),
                "{method}"
            );
            assert_eq!(
                snap.counter("queries.committed") + snap.counter("queries.aborted"),
                snap.counter("stats.finishes"),
                "{method}"
            );
            assert_eq!(snap.counter("server.cycles"), traced.cycles, "{method}");
            // Committed-query events cover at least the measured
            // (post-warmup) outcomes.
            let committed = traced.queries - traced.aborts.hits();
            assert!(
                snap.counter("queries.committed") >= committed,
                "{method}: {} < {committed}",
                snap.counter("queries.committed")
            );

            // Same seed, same capacity => byte-identical exports.
            let obs2 = Obs::recording(1 << 14);
            Simulation::new(quick_config(), method)
                .unwrap()
                .with_obs(obs2.clone())
                .run()
                .unwrap();
            let snap2 = obs2.snapshot().expect("recording sink");
            assert_eq!(
                bpush_obs::export::chrome_trace(&snap),
                bpush_obs::export::chrome_trace(&snap2),
                "{method}: same-seed traces not byte-identical"
            );
            assert_eq!(
                bpush_obs::export::ndjson(&snap),
                bpush_obs::export::ndjson(&snap2),
                "{method}"
            );
        }
    }

    /// The sans-IO acceptance check at the simulation level: every
    /// method run wire-fed (reports encoded to framed segments and
    /// decoded back on the feed path) produces a bit-identical
    /// deterministic metrics snapshot to the struct-fed run. Any
    /// encode/decode divergence in the codec surfaces here.
    #[test]
    fn wire_fed_runs_are_bit_identical() {
        for method in Method::ALL {
            let struct_fed = Simulation::new(quick_config(), method)
                .unwrap()
                .run()
                .unwrap();
            let wire_fed = Simulation::new(quick_config(), method)
                .unwrap()
                .with_wire_feed()
                .run()
                .unwrap();
            assert_eq!(
                struct_fed.deterministic_snapshot(),
                wire_fed.deterministic_snapshot(),
                "{method}: the wire perturbed the simulation"
            );
        }
    }

    /// Wire feeding composes with instrumentation: the decoded reports
    /// are what the instrumented protocol counts, and the counters
    /// reconcile exactly with a struct-fed traced run.
    #[test]
    fn wire_fed_composes_with_instrumentation() {
        let method = Method::Sgt;
        let obs_a = Obs::recording(1 << 14);
        Simulation::new(quick_config(), method)
            .unwrap()
            .with_obs(obs_a.clone())
            .run()
            .unwrap();
        let obs_b = Obs::recording(1 << 14);
        Simulation::new(quick_config(), method)
            .unwrap()
            .with_wire_feed()
            .with_obs(obs_b.clone())
            .run()
            .unwrap();
        let snap_a = obs_a.snapshot().expect("recording");
        let snap_b = obs_b.snapshot().expect("recording");
        assert_eq!(
            snap_a.counters, snap_b.counters,
            "wire-fed counters diverged from struct-fed"
        );
    }

    #[test]
    fn every_method_runs_clean() {
        for method in Method::ALL {
            let metrics = Simulation::new(quick_config(), method)
                .unwrap()
                .run()
                .unwrap();
            assert_eq!(metrics.violations, 0, "{method} violated serializability");
            assert!(metrics.queries > 0, "{method} finished no queries");
            assert!(metrics.cycles > 0);
            assert!(metrics.mean_bcast_slots >= metrics.base_slots as f64);
        }
    }

    #[test]
    fn multiversion_aborts_nothing_within_retention() {
        let mut cfg = quick_config();
        // retain enough old versions to cover every span the workload
        // can produce (the paper's S-multiversion server, §3.2)
        cfg.server.versions_retained = 24;
        let metrics = Simulation::new(cfg, Method::MultiversionBroadcast)
            .unwrap()
            .run()
            .unwrap();
        assert_eq!(metrics.aborts.hits(), 0, "span <= S queries all accepted");
    }

    #[test]
    fn multiversion_with_short_retention_aborts_long_spans() {
        let mut cfg = quick_config();
        cfg.server.versions_retained = 1; // V-multiversion with V = 1
        cfg.client.reads_per_query = 12;
        let metrics = Simulation::new(cfg, Method::MultiversionBroadcast)
            .unwrap()
            .run()
            .unwrap();
        assert!(
            metrics.aborts.hits() > 0,
            "span > V queries proceed at their own risk and abort"
        );
        assert_eq!(metrics.violations, 0, "but never commit inconsistently");
    }

    #[test]
    fn sgt_accepts_more_than_invalidation_only() {
        let inv = Simulation::new(quick_config(), Method::InvalidationOnly)
            .unwrap()
            .run()
            .unwrap();
        let sgt = Simulation::new(quick_config(), Method::Sgt)
            .unwrap()
            .run()
            .unwrap();
        assert!(
            sgt.aborts.rate() <= inv.aborts.rate(),
            "SGT must not abort more: {} vs {}",
            sgt.abort_pct(),
            inv.abort_pct()
        );
    }

    #[test]
    fn deterministic_across_runs() {
        let a = Simulation::new(quick_config(), Method::InvalidationCache)
            .unwrap()
            .run()
            .unwrap();
        let b = Simulation::new(quick_config(), Method::InvalidationCache)
            .unwrap()
            .run()
            .unwrap();
        assert_eq!(a.aborts, b.aborts);
        assert_eq!(a.cycles, b.cycles);
        assert!((a.latency_cycles.mean() - b.latency_cycles.mean()).abs() < 1e-12);
    }

    #[test]
    fn overhead_is_positive_for_multiversion() {
        let mv = Simulation::new(quick_config(), Method::MultiversionBroadcast)
            .unwrap()
            .run()
            .unwrap();
        let inv = Simulation::new(quick_config(), Method::InvalidationOnly)
            .unwrap()
            .run()
            .unwrap();
        assert!(mv.overhead_pct() > inv.overhead_pct());
        assert!(inv.overhead_pct() >= 0.0);
    }

    #[test]
    fn sgt_reports_peak_graph_size_and_validation_time() {
        let sgt = Simulation::new(quick_config(), Method::Sgt)
            .unwrap()
            .run()
            .unwrap();
        assert!(
            sgt.peak_graph_nodes > 0,
            "SGT under an updating workload must retain graph nodes"
        );
        assert!(sgt.peak_graph_edges > 0);
        assert_eq!(
            sgt.validation_ns.count(),
            sgt.cycles,
            "one validation-time sample per simulated cycle"
        );
        let inv = Simulation::new(quick_config(), Method::InvalidationOnly)
            .unwrap()
            .run()
            .unwrap();
        assert_eq!(inv.peak_graph_nodes, 0, "no graph for invalidation-only");
        assert_eq!(inv.peak_graph_edges, 0);
    }

    #[test]
    fn merge_keeps_peak_and_validation_samples() {
        let mut a = Simulation::new(quick_config(), Method::Sgt)
            .unwrap()
            .run()
            .unwrap();
        let mut cfg = quick_config();
        cfg.seed = 123;
        let b = Simulation::new(cfg, Method::Sgt).unwrap().run().unwrap();
        let expect_nodes = a.peak_graph_nodes.max(b.peak_graph_nodes);
        let expect_samples = a.validation_ns.count() + b.validation_ns.count();
        a.merge(&b);
        assert_eq!(a.peak_graph_nodes, expect_nodes);
        assert_eq!(a.validation_ns.count(), expect_samples);
    }

    #[test]
    fn observer_sees_every_measured_outcome() {
        let mut seen = 0u64;
        let metrics = Simulation::new(quick_config(), Method::InvalidationOnly)
            .unwrap()
            .run_with_observer(|o| {
                assert!(o.finished >= o.started);
                seen += 1;
            })
            .unwrap();
        assert_eq!(seen, metrics.queries);
    }

    #[test]
    fn budget_exhaustion_is_reported() {
        let mut cfg = quick_config();
        cfg.max_cycles = 2;
        let err = Simulation::new(cfg, Method::InvalidationOnly)
            .unwrap()
            .run()
            .unwrap_err();
        assert!(matches!(
            err,
            BpushError::CycleBudgetExhausted { max_cycles: 2 }
        ));
    }

    #[test]
    fn invalid_config_rejected_at_construction() {
        let mut cfg = quick_config();
        cfg.n_clients = 0;
        assert!(Simulation::new(cfg, Method::InvalidationOnly).is_err());
    }

    /// The tentpole acceptance check at the monitor level: every genuine
    /// method passes its own invariant monitors over a full run, with
    /// the monitors attached through the plain [`Obs`] handle (no
    /// recording sink needed), and attaching them does not perturb the
    /// simulation (bit-identical deterministic metrics).
    #[test]
    fn every_genuine_method_passes_its_monitors() {
        for method in Method::ALL {
            let bare = Simulation::new(quick_config(), method)
                .unwrap()
                .run()
                .unwrap();
            let monitors = monitors_for(&quick_config(), method);
            let slot = CaptureSlot::new();
            let watched = Simulation::new(quick_config(), method)
                .unwrap()
                .with_monitors(monitors.clone())
                .with_flight_recorder(8, slot.clone())
                .run()
                .unwrap();
            let verdict = monitors.verdict();
            assert!(
                verdict.pass(),
                "{method}: genuine protocol flagged online:\n{}",
                verdict.render()
            );
            assert_eq!(verdict.violations.len(), 0, "{method}");
            assert!(verdict.commits > 0, "{method}: monitors saw no commits");
            assert!(verdict.controls > 0, "{method}: monitors saw no controls");
            assert!(slot.take().is_none(), "{method}: spurious capture");
            assert_eq!(
                bare.deterministic_snapshot(),
                watched.deterministic_snapshot(),
                "{method}: monitors perturbed the simulation"
            );
        }
    }

    /// The headline detection claim: a seeded `BrokenInvalidation`
    /// protocol (off-by-one staleness check, previously caught only by
    /// the model checker) is caught *online* by the currency monitor
    /// during a normal simulation run, and the flight recorder dumps a
    /// parseable `bpush-capture-v1` capture naming the violating read.
    #[test]
    fn broken_invalidation_is_caught_online_with_capture() {
        let monitors = monitors_for(&quick_config(), Method::InvalidationOnly);
        let slot = CaptureSlot::new();
        Simulation::new(quick_config(), Method::InvalidationOnly)
            .unwrap()
            .with_protocol_factory(|| Box::new(bpush_mc::BrokenInvalidation::new()))
            .with_monitors(monitors.clone())
            .with_flight_recorder(8, slot.clone())
            .run()
            .unwrap();
        let verdict = monitors.verdict();
        assert!(!verdict.pass(), "the seeded bug must be flagged online");
        assert!(monitors.triggers() >= 1);
        let first = verdict.violations.first().expect("a retained violation");
        assert_eq!(first.kind, bpush_obs::monitor::MonitorKind::Currency);

        let capture = slot.take().expect("flight recorder must have dumped");
        assert_eq!(capture.method, "inv-only");
        assert_eq!(capture.seed, quick_config().seed);
        assert_eq!(capture.clients, quick_config().n_clients);
        assert_eq!(capture.trigger, *first, "capture trigger = first violation");
        assert!(!capture.frames.is_empty(), "capture retains wire frames");
        assert_ne!(capture.fingerprint, 0, "protocol state fingerprinted");
        let text = capture.render();
        let back = bpush_obs::Capture::parse(&text).expect("capture roundtrips");
        assert_eq!(back, capture);
    }

    /// Same-seed monitored runs produce byte-identical verdicts and
    /// captures — the determinism contract forensics relies on.
    #[test]
    fn same_seed_verdicts_and_captures_are_byte_identical() {
        let run = || {
            let monitors = monitors_for(&quick_config(), Method::InvalidationOnly);
            let slot = CaptureSlot::new();
            Simulation::new(quick_config(), Method::InvalidationOnly)
                .unwrap()
                .with_protocol_factory(|| Box::new(bpush_mc::BrokenInvalidation::new()))
                .with_monitors(monitors.clone())
                .with_flight_recorder(8, slot.clone())
                .run()
                .unwrap();
            let capture = slot.take().expect("capture");
            (monitors.verdict().render(), capture.render())
        };
        let (verdict_a, capture_a) = run();
        let (verdict_b, capture_b) = run();
        assert_eq!(verdict_a, verdict_b, "verdicts must be byte-identical");
        assert_eq!(capture_a, capture_b, "captures must be byte-identical");
    }

    /// Monitors compose with the wire feed and a recording sink: the
    /// decoded reports drive the same typed feed, so the verdict is
    /// identical to the struct-fed run's.
    #[test]
    fn monitors_compose_with_wire_feed_and_recording() {
        let struct_fed = monitors_for(&quick_config(), Method::Sgt);
        Simulation::new(quick_config(), Method::Sgt)
            .unwrap()
            .with_monitors(struct_fed.clone())
            .run()
            .unwrap();
        let wire_fed = monitors_for(&quick_config(), Method::Sgt);
        Simulation::new(quick_config(), Method::Sgt)
            .unwrap()
            .with_wire_feed()
            .with_obs(Obs::recording(1 << 14))
            .with_monitors(wire_fed.clone())
            .run()
            .unwrap();
        assert!(struct_fed.verdict().pass());
        assert_eq!(
            struct_fed.verdict().render(),
            wire_fed.verdict().render(),
            "wire feed or recording sink perturbed the monitors"
        );
    }

    #[test]
    fn capture_slot_is_write_once() {
        let slot = CaptureSlot::new();
        assert!(!slot.is_filled());
        assert!(slot.take().is_none());
        let mut fr = bpush_obs::FlightRecorder::new(2);
        fr.record_frame(1, &[0xaa]);
        let cap = |seed| {
            fr.capture(
                "m",
                seed,
                1,
                [1, 1, 1, 1],
                bpush_obs::Violation {
                    kind: bpush_obs::monitor::MonitorKind::Currency,
                    client: 0,
                    query: 1,
                    cycle: 2,
                    item: 3,
                    write_cycle: 1,
                    detail: 0,
                },
                7,
            )
        };
        assert!(slot.put_if_empty(cap(1)));
        assert!(slot.is_filled());
        assert!(!slot.put_if_empty(cap(2)), "first trigger wins");
        let kept = slot.take().expect("filled");
        assert_eq!(kept.seed, 1);
        assert!(!slot.is_filled(), "take drains the slot");
    }
}
