//! Long-running randomized consistency soak: hammers every method with
//! random configurations and verifies that not a single committed readset
//! is ever inconsistent. Complements the bounded proptest suites.
//!
//! ```text
//! soak [ITERATIONS] [--monitors] [--capture-dir DIR]   # default 50
//! ```
//!
//! With `--monitors`, every run also carries the online invariant
//! monitors and a flight recorder: a monitor trip fails the soak and
//! writes the `bpush-capture-v1` capture under `--capture-dir` (default
//! `monitor-captures/`) for `cargo xtask explain`.
//!
//! Exits non-zero on the first violation, printing the offending
//! configuration for reproduction.

use std::process::ExitCode;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use bpush_core::Method;
use bpush_sim::{monitors_for, CaptureSlot, Simulation};
use bpush_types::{CacheConfig, ClientConfig, Granularity, ServerConfig, SimConfig};

fn random_config(rng: &mut StdRng) -> SimConfig {
    let broadcast_size = rng.gen_range(50..600);
    let update_range = rng.gen_range(10..=broadcast_size);
    let read_range = rng.gen_range(10..=broadcast_size);
    let reads_per_query = rng.gen_range(2..=12.min(read_range));
    SimConfig {
        server: ServerConfig {
            broadcast_size,
            update_range,
            server_read_range: broadcast_size,
            theta: rng.gen_range(0.0..1.4),
            offset: rng.gen_range(0..update_range),
            txns_per_cycle: rng.gen_range(1..20),
            updates_per_cycle: rng.gen_range(1..=update_range.min(80)),
            versions_retained: rng.gen_range(1..32),
            items_per_bucket: if rng.gen_range(0..4) == 3 { 4 } else { 1 },
            report_window: rng.gen_range(1..4),
            granularity: if rng.gen_bool(0.25) {
                Granularity::Bucket
            } else {
                Granularity::Item
            },
            ..ServerConfig::default()
        },
        client: ClientConfig {
            read_range,
            theta: rng.gen_range(0.0..1.4),
            reads_per_query,
            think_time: rng.gen_range(0..8),
            cache: CacheConfig {
                capacity: rng.gen_range(0..60),
                old_version_fraction: rng.gen_range(0.0..0.6),
            },
            has_directory: rng.gen_bool(0.9),
            disconnect_prob: if rng.gen_bool(0.3) {
                rng.gen_range(0.0..0.4)
            } else {
                0.0
            },
            ..ClientConfig::default()
        },
        n_clients: rng.gen_range(1..4),
        queries_per_client: rng.gen_range(4..16),
        warmup_cycles: rng.gen_range(0..4),
        max_cycles: 200_000,
        seed: rng.gen(),
    }
}

fn main() -> ExitCode {
    let mut iterations: u64 = 50;
    let mut with_monitors = false;
    let mut capture_dir = String::from("monitor-captures");
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--monitors" => with_monitors = true,
            "--capture-dir" => match args.next() {
                Some(dir) => capture_dir = dir,
                None => {
                    eprintln!("soak: --capture-dir needs a directory");
                    return ExitCode::FAILURE;
                }
            },
            other => match other.parse() {
                Ok(n) => iterations = n,
                Err(_) => {
                    eprintln!("soak: unknown argument `{other}`");
                    return ExitCode::FAILURE;
                }
            },
        }
    }
    let mut rng = StdRng::seed_from_u64(
        std::env::var("SOAK_SEED")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(0xDEAD_BEEF),
    );
    let mut total_queries = 0u64;
    for i in 0..iterations {
        let config = random_config(&mut rng);
        for method in Method::ALL {
            let sim = match Simulation::new(config.clone(), method) {
                Ok(sim) => sim,
                Err(e) => {
                    eprintln!("iteration {i} {method}: rejected config ({e}); skipping");
                    continue;
                }
            };
            let watch = if with_monitors {
                let monitors = monitors_for(&config, method);
                let slot = CaptureSlot::new();
                Some((monitors, slot))
            } else {
                None
            };
            let sim = match &watch {
                Some((monitors, slot)) => sim
                    .with_monitors(monitors.clone())
                    .with_flight_recorder(8, slot.clone()),
                None => sim,
            };
            match sim.run() {
                Ok(metrics) => {
                    total_queries += metrics.queries;
                    if metrics.violations > 0 {
                        eprintln!(
                            "iteration {i}: {method} committed {} INCONSISTENT readsets\n{config:#?}",
                            metrics.violations
                        );
                        return ExitCode::FAILURE;
                    }
                }
                Err(e) => {
                    eprintln!("iteration {i} {method}: {e}\n{config:#?}");
                    return ExitCode::FAILURE;
                }
            }
            if let Some((monitors, slot)) = watch {
                let verdict = monitors.verdict();
                if !verdict.pass() {
                    eprintln!(
                        "iteration {i}: {method} tripped its online monitors\n{}\n{config:#?}",
                        verdict.render()
                    );
                    if let Some(capture) = slot.take() {
                        let path = format!("{capture_dir}/soak-{i}-{}.capture", method.name());
                        if let Err(e) = std::fs::create_dir_all(&capture_dir)
                            .and_then(|()| std::fs::write(&path, capture.render()))
                        {
                            eprintln!("soak: writing {path}: {e}");
                        } else {
                            eprintln!(
                                "soak: capture written to {path} (see `cargo xtask explain`)"
                            );
                        }
                    }
                    return ExitCode::FAILURE;
                }
            }
        }
        if (i + 1) % 10 == 0 {
            eprintln!("soak: {}/{iterations} configurations clean", i + 1);
        }
    }
    println!("soak complete: {iterations} configurations x {} methods, {total_queries} queries, 0 violations",
             Method::ALL.len());
    ExitCode::SUCCESS
}
