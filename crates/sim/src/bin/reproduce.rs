//! Regenerates every table and figure of the paper's evaluation.
//!
//! ```text
//! reproduce [--quick] [--csv DIR] [EXPERIMENT ...]
//! ```
//!
//! With no experiment ids, runs all of them (see `--list`). `--quick`
//! switches to the reduced test-scale parameters; `--csv DIR` writes each
//! table as `DIR/<id>.csv` besides printing it.

use std::path::PathBuf;
use std::process::ExitCode;

use bpush_sim::experiments::{self, Scale};

struct Args {
    scale: Scale,
    csv_dir: Option<PathBuf>,
    extensions: bool,
    plot: bool,
    experiments: Vec<String>,
}

fn usage() -> &'static str {
    "usage: reproduce [--quick] [--csv DIR] [--list] [--extensions] [--plot] [EXPERIMENT ...]\n\
     default set: fig5_left fig5_right fig6 fig7 fig8_left fig8_right table1 disconnect\n\
     --extensions adds: ablation_layout ablation_read_order ablation_cache \
ablation_granularity disks tuning"
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        scale: Scale::Paper,
        csv_dir: None,
        extensions: false,
        plot: false,
        experiments: Vec::new(),
    };
    let mut iter = std::env::args().skip(1);
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--quick" => args.scale = Scale::Quick,
            "--extensions" => args.extensions = true,
            "--plot" => args.plot = true,
            "--csv" => {
                let dir = iter.next().ok_or("--csv requires a directory")?;
                args.csv_dir = Some(PathBuf::from(dir));
            }
            "--list" => {
                for id in experiments::ALL_EXPERIMENTS {
                    println!("{id}");
                }
                for id in experiments::EXTENSION_EXPERIMENTS {
                    println!("{id} (extension)");
                }
                std::process::exit(0);
            }
            "--help" | "-h" => {
                println!("{}", usage());
                std::process::exit(0);
            }
            flag if flag.starts_with('-') => {
                return Err(format!("unknown flag `{flag}`\n{}", usage()));
            }
            id => args.experiments.push(id.to_owned()),
        }
    }
    if args.experiments.is_empty() {
        args.experiments = experiments::ALL_EXPERIMENTS
            .iter()
            .map(|s| (*s).to_owned())
            .collect();
    }
    if args.extensions {
        args.experiments.extend(
            experiments::EXTENSION_EXPERIMENTS
                .iter()
                .map(|s| (*s).to_owned()),
        );
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    if let Some(dir) = &args.csv_dir {
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!("cannot create {}: {e}", dir.display());
            return ExitCode::FAILURE;
        }
    }
    for id in &args.experiments {
        eprintln!("running {id} ({:?} scale)...", args.scale);
        let tables = match experiments::run(id, args.scale) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("{id}: {e}");
                return ExitCode::FAILURE;
            }
        };
        for table in tables {
            println!("{table}");
            if args.plot {
                println!("{}", bpush_sim::chart::render(&table, 64, 16));
            }
            if let Some(dir) = &args.csv_dir {
                let path = dir.join(format!("{}.csv", table.id));
                if let Err(e) = std::fs::write(&path, table.to_csv()) {
                    eprintln!("cannot write {}: {e}", path.display());
                    return ExitCode::FAILURE;
                }
            }
        }
    }
    ExitCode::SUCCESS
}
