//! Parallel execution of simulation jobs (parameter sweeps).

use std::sync::atomic::{AtomicUsize, Ordering};

use parking_lot::Mutex;

use bpush_core::Method;
use bpush_types::config::MultiversionLayout;
use bpush_types::{BpushError, SimConfig};

use crate::simulation::{MethodMetrics, Simulation};

/// One simulation to run: a method under a configuration.
#[derive(Debug, Clone)]
pub struct Job {
    /// The method to simulate.
    pub method: Method,
    /// The full configuration.
    pub config: SimConfig,
    /// Multiversion on-air layout, where applicable.
    pub layout: MultiversionLayout,
}

impl Job {
    /// A job with the default (overflow) layout.
    pub fn new(method: Method, config: SimConfig) -> Self {
        Job {
            method,
            config,
            layout: MultiversionLayout::Overflow,
        }
    }
}

/// Runs all jobs, in parallel across the machine's cores, returning the
/// metrics in job order.
///
/// # Errors
/// Returns the first configuration or budget error encountered.
pub fn run_jobs(jobs: Vec<Job>) -> Result<Vec<MethodMetrics>, BpushError> {
    let n = jobs.len();
    // Lock-free dispatch: workers claim the next job index with a single
    // fetch_add, and each job writes into its own pre-sized slot — no
    // shared lock is ever contended, so sweep fan-out scales with cores.
    // (The per-slot Mutex is never under contention: exactly one worker
    // touches each slot, and `scope` joining the workers publishes the
    // writes; the lock only satisfies the borrow checker across threads.)
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<Result<MethodMetrics, BpushError>>>> =
        (0..n).map(|_| Mutex::new(None)).collect();
    let workers = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(4)
        .min(n.max(1));

    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let idx = next.fetch_add(1, Ordering::Relaxed);
                if idx >= n {
                    break;
                }
                let job = &jobs[idx];
                let outcome = Simulation::with_layout(job.config.clone(), job.method, job.layout)
                    .and_then(Simulation::run);
                *slots[idx].lock() = Some(outcome);
            });
        }
    });

    slots
        .into_iter()
        .map(|slot| {
            // std::thread::scope joins every worker before returning (and
            // propagates their panics), so each slot has been filled
            slot.into_inner().unwrap_or(Err(BpushError::invalid_config(
                "internal: a simulation job was never executed",
            )))
        })
        .collect()
}

/// Runs every job `replications` times with derived seeds and merges the
/// replications, returning one [`MethodMetrics`] per job in order. The
/// `BPUSH_REPS` environment variable overrides `replications` for all
/// experiments (statistical tightening without code changes).
///
/// # Errors
/// Propagates the first configuration or budget error.
pub fn run_replicated(jobs: Vec<Job>, replications: u32) -> Result<Vec<MethodMetrics>, BpushError> {
    let replications = std::env::var("BPUSH_REPS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(replications)
        .max(1);
    let mut expanded = Vec::with_capacity(jobs.len() * replications as usize);
    for job in &jobs {
        for rep in 0..replications {
            let mut j = job.clone();
            j.config.seed = j.config.seed.wrapping_add(u64::from(rep) * 0x9e37_79b9);
            expanded.push(j);
        }
    }
    let all = run_jobs(expanded)?;
    let mut merged = Vec::with_capacity(jobs.len());
    for chunk in all.chunks(replications as usize) {
        let mut acc = chunk[0].clone();
        for m in &chunk[1..] {
            acc.merge(m);
        }
        merged.push(acc);
    }
    Ok(merged)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_config(seed: u64) -> SimConfig {
        SimConfig {
            server: bpush_types::ServerConfig {
                broadcast_size: 100,
                update_range: 50,
                server_read_range: 100,
                updates_per_cycle: 10,
                txns_per_cycle: 5,
                ..bpush_types::ServerConfig::default()
            },
            client: bpush_types::ClientConfig {
                read_range: 50,
                reads_per_query: 4,
                ..bpush_types::ClientConfig::default()
            },
            n_clients: 2,
            queries_per_client: 5,
            warmup_cycles: 2,
            max_cycles: 10_000,
            seed,
        }
    }

    #[test]
    fn results_arrive_in_job_order() {
        let jobs: Vec<Job> = (0..6)
            .map(|i| {
                let method = if i % 2 == 0 {
                    Method::InvalidationOnly
                } else {
                    Method::Sgt
                };
                Job::new(method, tiny_config(i))
            })
            .collect();
        let metrics = run_jobs(jobs).unwrap();
        assert_eq!(metrics.len(), 6);
        for (i, m) in metrics.iter().enumerate() {
            let expected = if i % 2 == 0 {
                Method::InvalidationOnly
            } else {
                Method::Sgt
            };
            assert_eq!(m.method, expected);
            assert_eq!(m.violations, 0);
        }
    }

    #[test]
    fn parallel_equals_sequential() {
        let job = Job::new(Method::InvalidationCache, tiny_config(7));
        let par = run_jobs(vec![job.clone(), job.clone()]).unwrap();
        let seq = Simulation::with_layout(job.config.clone(), job.method, job.layout)
            .unwrap()
            .run()
            .unwrap();
        assert_eq!(par[0].aborts, seq.aborts);
        assert_eq!(par[1].aborts, seq.aborts);
    }

    #[test]
    fn bad_job_surfaces_error() {
        let mut cfg = tiny_config(0);
        cfg.n_clients = 0;
        assert!(run_jobs(vec![Job::new(Method::Sgt, cfg)]).is_err());
    }

    #[test]
    fn empty_job_list_is_fine() {
        assert!(run_jobs(Vec::new()).unwrap().is_empty());
    }

    #[test]
    fn replication_pools_queries() {
        // zero warmup so every replication reports all of its queries:
        // warmup discards per-seed-varying prefixes, which would break
        // the exact pooling arithmetic below
        let mut cfg = tiny_config(3);
        cfg.warmup_cycles = 0;
        let job = Job::new(Method::InvalidationOnly, cfg);
        let single = run_jobs(vec![job.clone()]).unwrap();
        let tripled = run_replicated(vec![job], 3).unwrap();
        assert_eq!(tripled.len(), 1);
        assert_eq!(tripled[0].queries, 3 * single[0].queries);
        assert_eq!(tripled[0].violations, 0);
        // rates stay rates (0..=1)
        assert!((0.0..=1.0).contains(&tripled[0].aborts.rate()));
    }
}
