//! Parallel execution of simulation jobs (parameter sweeps) and of the
//! client shards of one large simulation.

use std::sync::atomic::{AtomicUsize, Ordering};

use bpush_core::Method;
use bpush_obs::{Capture, MonitorVerdict};
use bpush_types::config::MultiversionLayout;
use bpush_types::{BpushError, SimConfig};

use crate::simulation::{monitors_for, CaptureSlot, MethodMetrics, Simulation};

/// One simulation to run: a method under a configuration.
#[derive(Debug, Clone)]
pub struct Job {
    /// The method to simulate.
    pub method: Method,
    /// The full configuration.
    pub config: SimConfig,
    /// Multiversion on-air layout, where applicable.
    pub layout: MultiversionLayout,
}

impl Job {
    /// A job with the default (overflow) layout.
    pub fn new(method: Method, config: SimConfig) -> Self {
        Job {
            method,
            config,
            layout: MultiversionLayout::Overflow,
        }
    }
}

/// The machine's available parallelism, floored at 1.
fn default_workers() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(4)
}

/// Lock-free indexed dispatch: `workers` threads claim indices
/// `0..n` with a single `fetch_add` each and run `task` on them; the
/// results come back in index order. Each worker accumulates its own
/// `(index, result)` chunk — no slot locks, no shared mutable state
/// beyond the claim counter — and the chunks are scattered into the
/// pre-sized output after `scope` joins every worker (which is what
/// publishes the writes and propagates panics).
fn run_indexed<T, F>(n: usize, workers: usize, task: F) -> Vec<Result<T, BpushError>>
where
    T: Send,
    F: Fn(usize) -> Result<T, BpushError> + Sync,
{
    if n == 0 {
        return Vec::new();
    }
    let workers = workers.clamp(1, n);
    let next = AtomicUsize::new(0);
    let chunks: Vec<Vec<(usize, Result<T, BpushError>)>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(|| {
                    let mut mine = Vec::new();
                    loop {
                        let idx = next.fetch_add(1, Ordering::Relaxed);
                        if idx >= n {
                            break;
                        }
                        mine.push((idx, task(idx)));
                    }
                    mine
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().unwrap_or_else(|p| std::panic::resume_unwind(p)))
            .collect()
    });
    let mut slots: Vec<Option<Result<T, BpushError>>> = Vec::with_capacity(n);
    slots.resize_with(n, || None);
    for (idx, result) in chunks.into_iter().flatten() {
        if let Some(slot) = slots.get_mut(idx) {
            *slot = Some(result);
        }
    }
    slots
        .into_iter()
        .map(|slot| {
            slot.unwrap_or(Err(BpushError::invalid_config(
                "internal: a simulation job was never executed",
            )))
        })
        .collect()
}

/// Runs all jobs, in parallel across the machine's cores, returning the
/// metrics in job order.
///
/// # Errors
/// Returns the first configuration or budget error encountered.
pub fn run_jobs(jobs: Vec<Job>) -> Result<Vec<MethodMetrics>, BpushError> {
    let n = jobs.len();
    run_indexed(n, default_workers(), |idx| {
        let job = jobs
            .get(idx)
            .ok_or_else(|| BpushError::invalid_config("internal: job index out of range"))?;
        Simulation::with_layout(job.config.clone(), job.method, job.layout)
            .and_then(Simulation::run)
    })
    .into_iter()
    .collect()
}

/// The per-replication seed: replication 0 keeps the base seed
/// unchanged (so single-replication runs — the default everywhere — are
/// bit-identical to an unreplicated run), and later replications mix
/// `rep` into the seed SplitMix64-style. The previous
/// `seed + rep * 0x9e37_79b9` stream collided across nearby base seeds
/// (`mix(s, 1) == mix(s + 0x9e37_79b9, 0)`); the multiply–xor–shift
/// cascade decorrelates every `(seed, rep)` pair.
fn mix_replication_seed(seed: u64, rep: u32) -> u64 {
    if rep == 0 {
        return seed;
    }
    let mut z = seed ^ u64::from(rep).wrapping_mul(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Runs every job `replications` times with derived seeds and merges the
/// replications, returning one [`MethodMetrics`] per job in order. The
/// `BPUSH_REPS` environment variable overrides `replications` for all
/// experiments (statistical tightening without code changes).
///
/// # Errors
/// Propagates the first configuration or budget error.
pub fn run_replicated(jobs: Vec<Job>, replications: u32) -> Result<Vec<MethodMetrics>, BpushError> {
    let replications = std::env::var("BPUSH_REPS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(replications)
        .max(1);
    let mut expanded = Vec::with_capacity(jobs.len() * replications as usize);
    for job in &jobs {
        for rep in 0..replications {
            let mut j = job.clone();
            j.config.seed = mix_replication_seed(j.config.seed, rep);
            expanded.push(j);
        }
    }
    let all = run_jobs(expanded)?;
    let mut merged = Vec::with_capacity(jobs.len());
    for chunk in all.chunks(replications as usize) {
        let mut acc = chunk[0].clone();
        for m in &chunk[1..] {
            acc.merge(m);
        }
        merged.push(acc);
    }
    Ok(merged)
}

/// The half-open client ranges partitioning `n_clients` into `shards`
/// near-equal shards, in shard order.
fn shard_bounds(n_clients: u32, shards: u32) -> Vec<std::ops::Range<u32>> {
    let bound = |s: u32| -> u32 {
        // u64 arithmetic so n_clients * shards cannot overflow
        (u64::from(n_clients) * u64::from(s) / u64::from(shards)) as u32
    };
    (0..shards)
        .map(|s| bound(s)..bound(s + 1))
        .filter(|r| !r.is_empty())
        .collect()
}

/// Runs ONE large simulation with its clients sharded across the
/// machine's cores, merging the shards deterministically. See
/// [`run_sharded_with_workers`] for the determinism contract.
///
/// # Errors
/// Propagates the first configuration or budget error from any shard.
pub fn run_sharded(job: &Job, shards: u32) -> Result<MethodMetrics, BpushError> {
    run_sharded_with_workers(job, shards, default_workers())
}

/// [`run_sharded`] with an explicit worker-thread count.
///
/// The client population is split into `shards` fixed, near-equal
/// ranges (clamped to `1..=n_clients`); each shard replays the same
/// deterministic server stream against its own clients
/// ([`Simulation::with_client_range`]), and shard metrics are merged in
/// shard order. The partition and the merge order depend only on
/// `shards` — never on `workers` or thread scheduling — so the merged
/// metrics are byte-identical at any worker count, and `shards == 1`
/// is bit-identical to an unsharded [`Simulation::run`].
///
/// # Errors
/// Propagates the first configuration or budget error from any shard.
pub fn run_sharded_with_workers(
    job: &Job,
    shards: u32,
    workers: usize,
) -> Result<MethodMetrics, BpushError> {
    job.config.validate()?;
    let shards = shards.clamp(1, job.config.n_clients.max(1));
    let bounds = shard_bounds(job.config.n_clients, shards);
    let results = run_indexed(bounds.len(), workers, |idx| {
        let range = bounds
            .get(idx)
            .cloned()
            .ok_or_else(|| BpushError::invalid_config("internal: shard index out of range"))?;
        Simulation::with_client_range(job.config.clone(), job.method, job.layout, range)
            .and_then(Simulation::run)
    });
    let mut merged: Option<MethodMetrics> = None;
    for result in results {
        let shard = result?;
        match &mut merged {
            None => merged = Some(shard),
            Some(acc) => acc.merge(&shard),
        }
    }
    merged.ok_or_else(|| BpushError::invalid_config("internal: no shard produced metrics"))
}

/// A monitored sharded run: the merged metrics, the canonical merged
/// monitor verdict, and the first flight-recorder capture (if any
/// monitor fired).
#[derive(Debug)]
pub struct MonitoredRun {
    /// Shard-merged metrics, exactly as [`run_sharded`] produces them.
    pub metrics: MethodMetrics,
    /// Per-shard monitor verdicts merged in shard order — the canonical
    /// merge: byte-identical across worker counts.
    pub verdict: MonitorVerdict,
    /// The first capture in shard order, if any shard's monitors fired.
    pub capture: Option<Capture>,
}

/// [`run_sharded`] with online invariant monitors and a flight recorder
/// attached to every shard. See [`run_sharded_monitored_with_workers`].
///
/// # Errors
/// Propagates the first configuration or budget error from any shard.
pub fn run_sharded_monitored(
    job: &Job,
    shards: u32,
    flight_frames: usize,
) -> Result<MonitoredRun, BpushError> {
    run_sharded_monitored_with_workers(job, shards, default_workers(), flight_frames)
}

/// [`run_sharded_with_workers`] with per-shard monitors: each shard gets
/// its own [`bpush_obs::Monitors`] handle sized for the *global* client
/// population ([`monitors_for`]) plus a `flight_frames`-deep flight
/// recorder, and the shard verdicts are merged in shard order. Because
/// the partition and merge order depend only on `shards`, the merged
/// verdict — like the metrics — is byte-identical at any worker count.
/// (Shard verdicts double-count server-side stream events relative to
/// an unsharded run, since every shard replays the same server stream;
/// the per-client invariant checks are partition-invariant.)
///
/// # Errors
/// Propagates the first configuration or budget error from any shard.
pub fn run_sharded_monitored_with_workers(
    job: &Job,
    shards: u32,
    workers: usize,
    flight_frames: usize,
) -> Result<MonitoredRun, BpushError> {
    job.config.validate()?;
    let shards = shards.clamp(1, job.config.n_clients.max(1));
    let bounds = shard_bounds(job.config.n_clients, shards);
    let results = run_indexed(bounds.len(), workers, |idx| {
        let range = bounds
            .get(idx)
            .cloned()
            .ok_or_else(|| BpushError::invalid_config("internal: shard index out of range"))?;
        let monitors = monitors_for(&job.config, job.method);
        let slot = CaptureSlot::new();
        let metrics =
            Simulation::with_client_range(job.config.clone(), job.method, job.layout, range)?
                .with_monitors(monitors.clone())
                .with_flight_recorder(flight_frames, slot.clone())
                .run()?;
        Ok((metrics, monitors.verdict(), slot.take()))
    });
    let mut merged: Option<MonitoredRun> = None;
    for result in results {
        let (metrics, verdict, capture) = result?;
        match &mut merged {
            None => {
                merged = Some(MonitoredRun {
                    metrics,
                    verdict,
                    capture,
                });
            }
            Some(acc) => {
                acc.metrics.merge(&metrics);
                acc.verdict.merge(&verdict);
                if acc.capture.is_none() {
                    acc.capture = capture;
                }
            }
        }
    }
    merged.ok_or_else(|| BpushError::invalid_config("internal: no shard produced metrics"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_config(seed: u64) -> SimConfig {
        SimConfig {
            server: bpush_types::ServerConfig {
                broadcast_size: 100,
                update_range: 50,
                server_read_range: 100,
                updates_per_cycle: 10,
                txns_per_cycle: 5,
                ..bpush_types::ServerConfig::default()
            },
            client: bpush_types::ClientConfig {
                read_range: 50,
                reads_per_query: 4,
                ..bpush_types::ClientConfig::default()
            },
            n_clients: 2,
            queries_per_client: 5,
            warmup_cycles: 2,
            max_cycles: 10_000,
            seed,
        }
    }

    #[test]
    fn results_arrive_in_job_order() {
        let jobs: Vec<Job> = (0..6)
            .map(|i| {
                let method = if i % 2 == 0 {
                    Method::InvalidationOnly
                } else {
                    Method::Sgt
                };
                Job::new(method, tiny_config(i))
            })
            .collect();
        let metrics = run_jobs(jobs).unwrap();
        assert_eq!(metrics.len(), 6);
        for (i, m) in metrics.iter().enumerate() {
            let expected = if i % 2 == 0 {
                Method::InvalidationOnly
            } else {
                Method::Sgt
            };
            assert_eq!(m.method, expected);
            assert_eq!(m.violations, 0);
        }
    }

    #[test]
    fn parallel_equals_sequential() {
        let job = Job::new(Method::InvalidationCache, tiny_config(7));
        let par = run_jobs(vec![job.clone(), job.clone()]).unwrap();
        let seq = Simulation::with_layout(job.config.clone(), job.method, job.layout)
            .unwrap()
            .run()
            .unwrap();
        assert_eq!(par[0].aborts, seq.aborts);
        assert_eq!(par[1].aborts, seq.aborts);
    }

    #[test]
    fn bad_job_surfaces_error() {
        let mut cfg = tiny_config(0);
        cfg.n_clients = 0;
        assert!(run_jobs(vec![Job::new(Method::Sgt, cfg)]).is_err());
    }

    #[test]
    fn empty_job_list_is_fine() {
        assert!(run_jobs(Vec::new()).unwrap().is_empty());
    }

    #[test]
    fn replication_seed_mix_is_collision_free_and_rep0_stable() {
        // the old derivation: seed + rep * 0x9e37_79b9 — collides across
        // nearby base seeds
        let old = |seed: u64, rep: u32| seed.wrapping_add(u64::from(rep) * 0x9e37_79b9);
        assert_eq!(
            old(7, 1),
            old(7 + 0x9e37_79b9, 0),
            "the old stream really did collide (regression premise)"
        );
        assert_ne!(
            mix_replication_seed(7, 1),
            mix_replication_seed(7 + 0x9e37_79b9, 0),
            "the mixed stream must not"
        );
        // rep 0 must keep the base seed bit-identical: every experiment
        // runs run_replicated(jobs, 1), which must equal the plain run
        for seed in [0u64, 1, 7, u64::MAX] {
            assert_eq!(mix_replication_seed(seed, 0), seed);
        }
        // distinctness across a seed x rep grid
        let mut seen = std::collections::BTreeSet::new();
        for seed in 0..64u64 {
            for rep in 0..16u32 {
                assert!(
                    seen.insert(mix_replication_seed(seed, rep)),
                    "collision at seed={seed} rep={rep}"
                );
            }
        }
    }

    #[test]
    fn shard_bounds_partition_exactly() {
        for (n, s) in [(8u32, 3u32), (2, 5), (1, 1), (7, 7), (100, 8)] {
            let bounds = shard_bounds(n, s.min(n));
            assert_eq!(bounds.first().map(|r| r.start), Some(0));
            assert_eq!(bounds.last().map(|r| r.end), Some(n));
            for pair in bounds.windows(2) {
                assert_eq!(pair[0].end, pair[1].start, "contiguous: {bounds:?}");
            }
            assert!(bounds.iter().all(|r| !r.is_empty()), "{bounds:?}");
        }
    }

    #[test]
    fn sharded_single_shard_equals_plain_run() {
        let mut cfg = tiny_config(11);
        cfg.n_clients = 3;
        let job = Job::new(Method::Sgt, cfg);
        let plain = Simulation::with_layout(job.config.clone(), job.method, job.layout)
            .unwrap()
            .run()
            .unwrap();
        let sharded = run_sharded(&job, 1).unwrap();
        assert_eq!(
            sharded.deterministic_snapshot(),
            plain.deterministic_snapshot()
        );
    }

    #[test]
    fn sharded_metrics_are_byte_identical_across_worker_counts() {
        let mut cfg = tiny_config(5);
        cfg.n_clients = 4;
        for method in [Method::InvalidationOnly, Method::Sgt] {
            let job = Job::new(method, cfg.clone());
            let base = run_sharded_with_workers(&job, 4, 1)
                .unwrap()
                .deterministic_snapshot();
            for workers in [2usize, 3, 8] {
                let again = run_sharded_with_workers(&job, 4, workers)
                    .unwrap()
                    .deterministic_snapshot();
                assert_eq!(again, base, "{method} at {workers} workers");
            }
            // and pooled query counts match the unsharded run
            let plain = Simulation::with_layout(job.config.clone(), job.method, job.layout)
                .unwrap()
                .run()
                .unwrap();
            let sharded = run_sharded_with_workers(&job, 4, 2).unwrap();
            assert_eq!(sharded.queries, plain.queries, "{method}");
            assert_eq!(sharded.aborts.hits(), plain.aborts.hits(), "{method}");
            assert_eq!(sharded.violations, plain.violations, "{method}");
        }
    }

    /// Shard-*count* invariance (DESIGN §8a): with the exact
    /// integer-sum `Summary`/`Ratio` merges, every field that pools
    /// per-query observations is bit-identical whether the client
    /// population runs as 1, 2, or 4 shards. (Fields normalized by
    /// shard-local cycle counts — `cycles`, `mean_bcast_slots`, and the
    /// cycle-normalized latency forms — legitimately depend on the
    /// partition, because each shard runs as many cycles as its own
    /// clients need; they are excluded by design.)
    #[test]
    fn pooled_fields_are_invariant_across_shard_counts() {
        let mut cfg = tiny_config(13);
        cfg.n_clients = 4;
        for method in [Method::InvalidationOnly, Method::SgtCache] {
            let job = Job::new(method, cfg.clone());
            let one = run_sharded_with_workers(&job, 1, 2).unwrap();
            for shards in [2u32, 4] {
                let many = run_sharded_with_workers(&job, shards, 2).unwrap();
                assert_eq!(many.queries, one.queries, "{method} at {shards}");
                assert_eq!(many.aborts, one.aborts, "{method} at {shards}");
                assert_eq!(
                    many.abort_reasons, one.abort_reasons,
                    "{method} at {shards}"
                );
                assert_eq!(
                    many.latency_slots, one.latency_slots,
                    "{method} at {shards}"
                );
                assert_eq!(many.span, one.span, "{method} at {shards}");
                assert_eq!(many.tuning_slots, one.tuning_slots, "{method} at {shards}");
                assert_eq!(
                    many.broadcast_reads, one.broadcast_reads,
                    "{method} at {shards}"
                );
                assert_eq!(
                    many.cache_hit_rate, one.cache_hit_rate,
                    "{method} at {shards}"
                );
                assert_eq!(many.violations, one.violations, "{method} at {shards}");
                assert_eq!(many.base_slots, one.base_slots, "{method} at {shards}");
                assert_eq!(
                    (many.peak_graph_nodes, many.peak_graph_edges),
                    (one.peak_graph_nodes, one.peak_graph_edges),
                    "{method} at {shards}"
                );
            }
        }
    }

    #[test]
    fn sharded_clamps_excess_shards() {
        let mut cfg = tiny_config(2);
        cfg.n_clients = 2;
        let job = Job::new(Method::InvalidationOnly, cfg);
        // more shards than clients: clamped, still correct
        let m = run_sharded(&job, 64).unwrap();
        assert!(m.queries > 0);
        assert_eq!(m.violations, 0);
    }

    /// The monitored sharded runner upholds the same determinism
    /// contract as the plain one: per-shard verdicts merged in shard
    /// order are byte-identical across worker counts, genuine methods
    /// pass at every shard count, and the merged metrics match the
    /// unmonitored sharded run exactly.
    #[test]
    fn monitored_sharded_runs_merge_canonically() {
        let mut cfg = tiny_config(5);
        cfg.n_clients = 4;
        for method in [Method::InvalidationOnly, Method::Sgt] {
            let job = Job::new(method, cfg.clone());
            let base = run_sharded_monitored_with_workers(&job, 4, 1, 8).unwrap();
            assert!(base.verdict.pass(), "{method}: sharded run flagged");
            assert!(base.capture.is_none(), "{method}: spurious capture");
            assert!(base.verdict.commits > 0, "{method}");
            for workers in [2usize, 3, 8] {
                let again = run_sharded_monitored_with_workers(&job, 4, workers, 8).unwrap();
                assert_eq!(
                    again.verdict.render(),
                    base.verdict.render(),
                    "{method} at {workers} workers: verdict not canonical"
                );
                assert_eq!(
                    again.metrics.deterministic_snapshot(),
                    base.metrics.deterministic_snapshot(),
                    "{method} at {workers} workers"
                );
            }
            let plain = run_sharded_with_workers(&job, 4, 2).unwrap();
            assert_eq!(
                base.metrics.deterministic_snapshot(),
                plain.deterministic_snapshot(),
                "{method}: monitors perturbed the sharded metrics"
            );
        }
    }

    /// Per-client query fates are partition-invariant: the commit and
    /// abort tallies pooled across any shard count equal the single
    /// shard's. (Control and check tallies legitimately vary with the
    /// partition — each shard runs only as many cycles as its own
    /// clients need — so they are excluded by design, like the
    /// cycle-normalized metrics fields.)
    #[test]
    fn monitored_shard_counts_pool_query_fates() {
        let mut cfg = tiny_config(13);
        cfg.n_clients = 4;
        let job = Job::new(Method::InvalidationOnly, cfg);
        let one = run_sharded_monitored_with_workers(&job, 1, 2, 8).unwrap();
        assert!(one.verdict.commits > 0);
        for shards in [2u32, 4] {
            let many = run_sharded_monitored_with_workers(&job, shards, 2, 8).unwrap();
            assert_eq!(many.verdict.commits, one.verdict.commits, "{shards}");
            assert_eq!(many.verdict.aborts, one.verdict.aborts, "{shards}");
            assert!(many.verdict.pass(), "{shards}");
        }
    }

    #[test]
    fn replication_pools_queries() {
        // Warm-up stays on (tiny_config's 2 cycles): each replication
        // discards its own seed-dependent warm-up prefix, so the pooled
        // totals are compared against explicit per-seed runs with the
        // same derived seeds rather than against `3 × single`.
        let job = Job::new(Method::InvalidationOnly, tiny_config(3));
        assert!(job.config.warmup_cycles > 0, "the point is a warm start");
        let per_rep = run_jobs(
            (0..3)
                .map(|rep| {
                    let mut j = job.clone();
                    j.config.seed = mix_replication_seed(j.config.seed, rep);
                    j
                })
                .collect(),
        )
        .unwrap();
        let expected_queries: u64 = per_rep.iter().map(|m| m.queries).sum();
        let expected_aborts: u64 = per_rep.iter().map(|m| m.aborts.hits()).sum();
        let tripled = run_replicated(vec![job], 3).unwrap();
        assert_eq!(tripled.len(), 1);
        assert_eq!(tripled[0].queries, expected_queries);
        assert_eq!(tripled[0].aborts.hits(), expected_aborts);
        assert_eq!(tripled[0].violations, 0);
        // rates stay rates (0..=1)
        assert!((0.0..=1.0).contains(&tripled[0].aborts.rate()));
    }
}
