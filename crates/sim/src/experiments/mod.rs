//! The experiment suite: one module per table/figure of §5 (plus the
//! §5.2.2 disconnection study). See DESIGN.md for the experiment index.
//!
//! Every experiment returns [`Table`]s whose *shape* — which method wins,
//! by roughly what factor, where crossovers fall — is the reproduction
//! target; absolute numbers depend on the simulated substrate.

pub mod ablations;
pub mod disconnect;
pub mod fig5;
pub mod fig6;
pub mod fig7;
pub mod fig8;
pub mod sharded;
pub mod table1;
pub mod tuning;

use bpush_core::Method;
use bpush_types::{BpushError, ClientConfig, ServerConfig, SimConfig};

use crate::table::Table;

/// How much work to spend.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Scale {
    /// Reduced database and query budget; seconds per experiment. Used by
    /// the test suite.
    Quick,
    /// The paper's Figure-4 parameters; the default for `reproduce` and
    /// the benches.
    #[default]
    Paper,
}

/// The paper's default configuration (Figure 4): `D = 1000`,
/// `UpdateRange = 500`, `θ = 0.95`, offset 100, `N = 10`, `U = 50`,
/// client `ReadRange = 500`, 125-page LRU cache.
pub fn paper_defaults() -> SimConfig {
    SimConfig {
        server: ServerConfig::default(),
        client: ClientConfig::default(),
        n_clients: 8,
        queries_per_client: 60,
        warmup_cycles: 10,
        max_cycles: 200_000,
        seed: 0x1999_1cdc,
    }
}

/// A proportionally shrunk configuration for fast test runs.
pub fn quick_defaults() -> SimConfig {
    SimConfig {
        server: ServerConfig {
            broadcast_size: 300,
            update_range: 150,
            server_read_range: 300,
            updates_per_cycle: 15,
            txns_per_cycle: 10,
            offset: 30,
            ..ServerConfig::default()
        },
        client: ClientConfig {
            read_range: 150,
            reads_per_query: 8,
            cache: bpush_types::CacheConfig {
                capacity: 40,
                ..bpush_types::CacheConfig::default()
            },
            ..ClientConfig::default()
        },
        n_clients: 3,
        queries_per_client: 15,
        warmup_cycles: 5,
        max_cycles: 100_000,
        seed: 0x1999_1cdc,
    }
}

/// The base configuration for a scale.
pub fn defaults(scale: Scale) -> SimConfig {
    match scale {
        Scale::Quick => quick_defaults(),
        Scale::Paper => paper_defaults(),
    }
}

/// Adjusts a configuration for a method: multiversion broadcast needs a
/// version-retention window covering the spans the workload will produce
/// (the paper's `S`-multiversion server accepts *all* transactions; a
/// finite `V` merely bounds the guaranteed span, §3.2).
pub fn config_for(method: Method, mut config: SimConfig) -> SimConfig {
    if method == Method::MultiversionBroadcast {
        // Mean latency is about r/2 cycles (Figure 8), so spans stay
        // below r/2 + a few wrap-arounds; r + 8 leaves a comfortable
        // margin while keeping the overflow area honest.
        let r = config.client.reads_per_query;
        config.server.versions_retained = (r + 8).min(congestion_cap(&config));
    }
    config
}

fn congestion_cap(config: &SimConfig) -> u32 {
    // retaining more versions than items updated per cycle can ever need
    // is pointless; this caps the overflow area
    (config.server.broadcast_size / 2).max(8)
}

/// Stable ids of the paper's own artifacts, in presentation order.
pub const ALL_EXPERIMENTS: [&str; 8] = [
    "fig5_left",
    "fig5_right",
    "fig6",
    "fig7",
    "fig8_left",
    "fig8_right",
    "table1",
    "disconnect",
];

/// Extension/ablation studies beyond the paper's artifacts (§2.2, §4 and
/// §7 design choices, quantified).
pub const EXTENSION_EXPERIMENTS: [&str; 8] = [
    "ablation_layout",
    "ablation_read_order",
    "ablation_cache",
    "ablation_granularity",
    "disks",
    "tuning",
    "indexing",
    "sharded",
];

/// Runs one experiment by id.
///
/// # Errors
/// Returns [`BpushError::InvalidConfig`] for an unknown id and propagates
/// simulation errors.
pub fn run(id: &str, scale: Scale) -> Result<Vec<Table>, BpushError> {
    match id {
        "fig5_left" => fig5::left(scale).map(|t| vec![t]),
        "fig5_right" => fig5::right(scale).map(|t| vec![t]),
        "fig6" => fig6::run(scale).map(|t| vec![t]),
        "fig7" => fig7::run(scale),
        "fig8_left" => fig8::left(scale).map(|t| vec![t]),
        "fig8_right" => fig8::right(scale).map(|t| vec![t]),
        "table1" => table1::run(scale).map(|t| vec![t]),
        "disconnect" => disconnect::run(scale).map(|t| vec![t]),
        "ablation_layout" => ablations::layout(scale).map(|t| vec![t]),
        "ablation_read_order" => ablations::read_order(scale).map(|t| vec![t]),
        "ablation_cache" => ablations::cache_size(scale).map(|t| vec![t]),
        "ablation_granularity" => ablations::granularity(scale).map(|t| vec![t]),
        "disks" => ablations::disks(scale).map(|t| vec![t]),
        "tuning" => tuning::run(scale).map(|t| vec![t]),
        "indexing" => ablations::indexing(scale).map(|t| vec![t]),
        "sharded" => sharded::run(scale).map(|t| vec![t]),
        other => Err(BpushError::invalid_config(format!(
            "unknown experiment id `{other}`"
        ))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_valid() {
        paper_defaults().validate().unwrap();
        quick_defaults().validate().unwrap();
        assert_eq!(defaults(Scale::Paper), paper_defaults());
        assert_eq!(defaults(Scale::Quick), quick_defaults());
    }

    #[test]
    fn paper_defaults_match_figure4() {
        let cfg = paper_defaults();
        assert_eq!(cfg.server.broadcast_size, 1000);
        assert_eq!(cfg.server.update_range, 500);
        assert_eq!(cfg.server.updates_per_cycle, 50);
        assert_eq!(cfg.server.txns_per_cycle, 10);
        assert!((cfg.server.theta - 0.95).abs() < 1e-12);
    }

    #[test]
    fn config_for_multiversion_extends_retention() {
        let base = quick_defaults();
        let mv = config_for(Method::MultiversionBroadcast, base.clone());
        assert!(mv.server.versions_retained > base.server.versions_retained);
        let inv = config_for(Method::InvalidationOnly, base.clone());
        assert_eq!(inv.server.versions_retained, base.server.versions_retained);
    }

    #[test]
    fn unknown_experiment_is_rejected() {
        assert!(run("fig99", Scale::Quick).is_err());
    }
}
