//! The §5.2.2 disconnection study: commit rate vs. per-cycle
//! disconnection probability.

use bpush_core::Method;
use bpush_types::BpushError;

use super::{config_for, defaults, Scale};
use crate::runner::{run_replicated, Job};
use crate::table::{fnum, Table};

/// Methods compared in the disconnection study: the intolerant baselines
/// (invalidation-only, SGT), the paper's tolerant variants (multiversion
/// broadcast, versioned cache, multiversion caching, SGT with item
/// versions) and the windowed-report resynchronization extension.
pub const METHODS: [Method; 6] = [
    Method::InvalidationOnly,
    Method::Sgt,
    Method::SgtVersionedItems,
    Method::MultiversionBroadcast,
    Method::InvalidationVersionedCache,
    Method::MultiversionCaching,
];

/// Commit rate (%) as the per-cycle disconnection probability grows.
/// Expected shape (Table 1's tolerance column, quantified):
/// invalidation-only and plain SGT collapse fastest; SGT with item
/// versions, the versioned cache and multiversion caching degrade
/// gracefully; multiversion broadcast tolerates gaps up to its span
/// budget. A final column shows invalidation-only with a `w = 4` report
/// window (the §5.2.2 resynchronization extension).
pub fn run(scale: Scale) -> Result<Table, BpushError> {
    let points: Vec<f64> = match scale {
        Scale::Paper => vec![0.0, 0.05, 0.1, 0.2, 0.3, 0.5],
        Scale::Quick => vec![0.0, 0.2],
    };
    let mut jobs = Vec::new();
    for &p in &points {
        for method in METHODS {
            let mut cfg = defaults(scale);
            cfg.client.disconnect_prob = p;
            // give the multiversion server headroom for gap-stretched spans
            let mut cfg = config_for(method, cfg);
            if method == Method::MultiversionBroadcast {
                cfg.server.versions_retained = cfg.server.versions_retained.max(24);
            }
            jobs.push(Job::new(method, cfg));
        }
        // the windowed-report variant of invalidation-only
        let mut cfg = defaults(scale);
        cfg.client.disconnect_prob = p;
        cfg.server.report_window = 4;
        jobs.push(Job::new(Method::InvalidationOnly, cfg));
    }
    let metrics = run_replicated(jobs, 1)?;

    let mut columns: Vec<String> = vec!["disconnect p".to_owned()];
    columns.extend(METHODS.iter().map(|m| m.name().to_owned()));
    columns.push("inv-only w=4".to_owned());
    let mut table = Table::new(
        "disconnect",
        "commit rate (%) vs. per-cycle disconnection probability",
        columns,
    );
    let stride = METHODS.len() + 1;
    for (i, &p) in points.iter().enumerate() {
        let mut row = vec![fnum(p, 2)];
        for j in 0..stride {
            row.push(fnum(100.0 - metrics[i * stride + j].abort_pct(), 2));
        }
        table.push_row(row);
    }
    Ok(table)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disconnections_hurt_intolerant_methods_most() {
        let t = run(Scale::Quick).unwrap();
        assert_eq!(t.len(), 2);
        let col = |name: &str| -> usize { t.columns.iter().position(|c| c == name).unwrap() };
        let at = |row: usize, name: &str| -> f64 { t.rows[row][col(name)].parse().unwrap() };
        // with p = 0.2, multiversion must hold up better than inv-only
        assert!(
            at(1, "multiversion") > at(1, "inv-only"),
            "multiversion: {} vs inv-only: {}",
            at(1, "multiversion"),
            at(1, "inv-only")
        );
        // the versioned-items SGT variant must beat plain SGT
        assert!(at(1, "sgt+versions") >= at(1, "sgt"));
        // windowed reports help invalidation-only
        assert!(at(1, "inv-only w=4") >= at(1, "inv-only"));
    }
}
