//! Ablations of the design choices the paper discusses qualitatively:
//! multiversion on-air layout (Figure 2a vs 2b), read-order optimization
//! (§2.2), cache size (§4), control-information granularity (§7) and the
//! broadcast-disk organization (§7).

use bpush_core::Method;
use bpush_server::BroadcastMode;
use bpush_types::config::{MultiversionLayout, ReadOrder};
use bpush_types::{BpushError, Granularity};

use super::{config_for, defaults, Scale};
use crate::runner::{run_replicated, Job};
use crate::simulation::Simulation;
use crate::table::{fnum, Table};

/// Figure 2a vs 2b: the clustered layout pays a rebuilt on-air index
/// every cycle and shifts every item's position; the overflow layout
/// keeps positions fixed and defers old versions to the end of the
/// bcast. Expected: clustered carries more overhead slots; both accept
/// everything; latency differs by where old versions sit.
pub fn layout(scale: Scale) -> Result<Table, BpushError> {
    let mut jobs = Vec::new();
    for layout in [MultiversionLayout::Overflow, MultiversionLayout::Clustered] {
        let cfg = config_for(Method::MultiversionBroadcast, defaults(scale));
        jobs.push(Job {
            method: Method::MultiversionBroadcast,
            config: cfg,
            layout,
        });
    }
    let metrics = run_replicated(jobs, 1)?;
    let mut table = Table::new(
        "ablation_layout",
        "multiversion on-air layout (Figure 2a vs 2b)",
        [
            "layout",
            "accepted %",
            "latency (cycles)",
            "overhead %",
            "span",
        ],
    );
    for (name, m) in [("overflow", &metrics[0]), ("clustered", &metrics[1])] {
        table.push_row([
            name.to_owned(),
            fnum(100.0 - m.abort_pct(), 2),
            fnum(m.latency_cycles.mean(), 2),
            fnum(m.overhead_pct(), 2),
            fnum(m.span.mean(), 2),
        ]);
    }
    Ok(table)
}

/// §2.2's transaction optimization: issuing reads in broadcast order
/// shrinks the span (and with it, the invalidation window). Expected:
/// lower span, lower latency, fewer aborts.
pub fn read_order(scale: Scale) -> Result<Table, BpushError> {
    let mut jobs = Vec::new();
    for order in [ReadOrder::AsIssued, ReadOrder::BroadcastOrder] {
        for method in [Method::InvalidationOnly, Method::Sgt] {
            let mut cfg = defaults(scale);
            cfg.client.read_order = order;
            jobs.push(Job::new(method, cfg));
        }
    }
    let metrics = run_replicated(jobs, 1)?;
    let mut table = Table::new(
        "ablation_read_order",
        "read-order transaction optimization (§2.2)",
        ["order", "method", "accepted %", "latency (cycles)", "span"],
    );
    let names = [
        "as-issued",
        "as-issued",
        "broadcast-order",
        "broadcast-order",
    ];
    for (name, m) in names.iter().zip(&metrics) {
        table.push_row([
            (*name).to_owned(),
            m.method.name().to_owned(),
            fnum(100.0 - m.abort_pct(), 2),
            fnum(m.latency_cycles.mean(), 2),
            fnum(m.span.mean(), 2),
        ]);
    }
    Ok(table)
}

/// Cache size sweep (§4): more cache, more hits, shorter spans, fewer
/// aborts — and for multiversion caching, more old versions retained.
pub fn cache_size(scale: Scale) -> Result<Table, BpushError> {
    let base = defaults(scale);
    let full = base.client.cache.capacity;
    let points: Vec<u32> = [full / 8, full / 4, full / 2, full, full * 2]
        .into_iter()
        .filter(|&c| c > 0)
        .collect();
    let methods = [
        Method::InvalidationCache,
        Method::InvalidationVersionedCache,
        Method::MultiversionCaching,
    ];
    let mut jobs = Vec::new();
    for &capacity in &points {
        for method in methods {
            let mut cfg = defaults(scale);
            cfg.client.cache.capacity = capacity;
            jobs.push(Job::new(method, cfg));
        }
    }
    let metrics = run_replicated(jobs, 1)?;
    let mut columns = vec!["cache pages".to_owned()];
    for m in methods {
        columns.push(format!("{} acc%", m.name()));
        columns.push(format!("{} hit%", m.name()));
    }
    let mut table = Table::new(
        "ablation_cache",
        "cache size vs. acceptance and hit rate (§4)",
        columns,
    );
    for (i, &capacity) in points.iter().enumerate() {
        let mut row = vec![capacity.to_string()];
        for j in 0..methods.len() {
            let m = &metrics[i * methods.len() + j];
            row.push(fnum(100.0 - m.abort_pct(), 2));
            row.push(
                m.cache_hit_rate
                    .map_or_else(|| "-".into(), |r| fnum(r.rate() * 100.0, 1)),
            );
        }
        table.push_row(row);
    }
    Ok(table)
}

/// §7's granularity extension: bucket-grained reports are smaller but
/// conservatively abort more. Expected: fewer control slots, lower
/// acceptance, never an inconsistency.
pub fn granularity(scale: Scale) -> Result<Table, BpushError> {
    let mut jobs = Vec::new();
    for (grain, ipb) in [(Granularity::Item, 4u32), (Granularity::Bucket, 4)] {
        let mut cfg = defaults(scale);
        cfg.server.granularity = grain;
        cfg.server.items_per_bucket = ipb;
        jobs.push(Job::new(Method::InvalidationOnly, cfg));
    }
    let metrics = run_replicated(jobs, 1)?;
    let mut table = Table::new(
        "ablation_granularity",
        "control-information granularity (§7, 4 items/bucket)",
        [
            "granularity",
            "accepted %",
            "overhead %",
            "latency (cycles)",
        ],
    );
    for (name, m) in [("item", &metrics[0]), ("bucket", &metrics[1])] {
        table.push_row([
            name.to_owned(),
            fnum(100.0 - m.abort_pct(), 2),
            fnum(m.overhead_pct(), 4),
            fnum(m.latency_cycles.mean(), 2),
        ]);
    }
    Ok(table)
}

/// §7's broadcast-disk organization: placing the client-hot range on a
/// fast disk cuts latency for skewed access at the cost of a longer
/// major cycle. Compared against the flat organization under the
/// invalidation-only method.
pub fn disks(scale: Scale) -> Result<Table, BpushError> {
    use bpush_broadcast::organization::DiskSpec;
    let base = defaults(scale);
    let d = base.server.broadcast_size;
    let hot = d / 10;

    let flat = Simulation::new(base.clone(), Method::InvalidationOnly)?.run()?;

    let mut cfg = base;
    cfg.max_cycles *= 2; // major cycles are longer
    let mut sim = Simulation::new(cfg, Method::InvalidationOnly)?;
    // rebuild with a disk-mode server: two disks, hot range spinning 3x
    let specs = vec![
        DiskSpec {
            items: hot,
            rel_freq: 3,
        },
        DiskSpec {
            items: d - hot,
            rel_freq: 1,
        },
    ];
    sim = sim.with_server_mode(BroadcastMode::Disks(specs))?;
    let disk = sim.run()?;

    let mut table = Table::new(
        "disks",
        "flat vs. broadcast-disk organization (§7; hot 10% at 3x)",
        [
            "organization",
            "accepted %",
            "latency (cycles)",
            "cycle slots",
        ],
    );
    for (name, m) in [("flat", &flat), ("2-disk", &disk)] {
        table.push_row([
            name.to_owned(),
            fnum(100.0 - m.abort_pct(), 2),
            fnum(m.latency_cycles.mean(), 2),
            fnum(m.mean_bcast_slots, 0),
        ]);
    }
    Ok(table)
}

/// §2.1's self-descriptive broadcast, quantified: a client without a
/// locally stored directory either scans the channel for its items
/// (maximal tuning time) or uses replicated (1, m) index copies —
/// more copies mean shorter probes but a longer cycle. Compared against
/// the stored-directory baseline.
pub fn indexing(scale: Scale) -> Result<Table, BpushError> {
    let base = defaults(scale);
    let mut rows: Vec<(String, crate::simulation::MethodMetrics)> = Vec::new();

    // stored directory (the default elsewhere)
    let dir = Simulation::new(base.clone(), Method::InvalidationOnly)?.run()?;
    rows.push(("stored directory".to_owned(), dir));

    // channel scanning: no directory, no on-air index
    let mut scan_cfg = base.clone();
    scan_cfg.client.has_directory = false;
    let scan = Simulation::new(scan_cfg, Method::InvalidationOnly)?.run()?;
    rows.push(("scan (no index)".to_owned(), scan));

    // (1, m) indexing
    for m in [1u32, 2, 4, 8] {
        let mut cfg = base.clone();
        cfg.client.has_directory = false;
        let sim = Simulation::new(cfg, Method::InvalidationOnly)?
            .with_server_mode(BroadcastMode::IndexedFlat { segments: m })?;
        let metrics = sim.run()?;
        rows.push((format!("(1,{m}) index"), metrics));
    }

    let mut table = Table::new(
        "indexing",
        "selective tuning without a stored directory (§2.1)",
        [
            "mode",
            "latency (slots)",
            "tuning slots",
            "cycle slots",
            "accepted %",
        ],
    );
    for (name, m) in rows {
        table.push_row([
            name,
            fnum(m.latency_slots.mean(), 1),
            fnum(m.tuning_slots.mean(), 1),
            fnum(m.mean_bcast_slots, 0),
            fnum(100.0 - m.abort_pct(), 2),
        ]);
    }
    Ok(table)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn layout_clustered_costs_more_air() {
        let t = layout(Scale::Quick).unwrap();
        let overflow: f64 = t.rows[0][3].parse().unwrap();
        let clustered: f64 = t.rows[1][3].parse().unwrap();
        assert!(
            clustered > overflow,
            "clustered must pay for the rebuilt index: {clustered} vs {overflow}"
        );
        // both accept everything
        assert_eq!(t.rows[0][1], "100.00");
        assert_eq!(t.rows[1][1], "100.00");
    }

    #[test]
    fn read_order_optimization_shrinks_span() {
        let t = read_order(Scale::Quick).unwrap();
        // rows: [as-issued inv, as-issued sgt, bcast-order inv, bcast-order sgt]
        let span_unopt: f64 = t.rows[0][4].parse().unwrap();
        let span_opt: f64 = t.rows[2][4].parse().unwrap();
        assert!(
            span_opt <= span_unopt,
            "broadcast-order must not widen spans: {span_opt} vs {span_unopt}"
        );
    }

    #[test]
    fn bigger_caches_hit_more() {
        let t = cache_size(Scale::Quick).unwrap();
        let first_hit: f64 = t.rows.first().unwrap()[2].parse().unwrap();
        let last_hit: f64 = t.rows.last().unwrap()[2].parse().unwrap();
        assert!(
            last_hit >= first_hit,
            "hit rate grows with capacity: {first_hit} -> {last_hit}"
        );
    }

    #[test]
    fn bucket_granularity_is_conservative() {
        let t = granularity(Scale::Quick).unwrap();
        let item_acc: f64 = t.rows[0][1].parse().unwrap();
        let bucket_acc: f64 = t.rows[1][1].parse().unwrap();
        assert!(
            bucket_acc <= item_acc + 1e-9,
            "bucket grain must not accept more: {bucket_acc} vs {item_acc}"
        );
    }

    #[test]
    fn indexing_cuts_scan_tuning() {
        let t = indexing(Scale::Quick).unwrap();
        let col = |name: &str| -> usize { t.columns.iter().position(|c| c == name).unwrap() };
        let tuning = |mode: &str| -> f64 {
            t.rows.iter().find(|r| r[0].starts_with(mode)).unwrap()[col("tuning slots")]
                .parse()
                .unwrap()
        };
        let scan = tuning("scan");
        let indexed = tuning("(1,4)");
        let stored = tuning("stored");
        assert!(
            indexed < scan,
            "an on-air index must beat scanning: {indexed} vs {scan}"
        );
        assert!(
            stored <= indexed,
            "a stored directory is at least as good: {stored} vs {indexed}"
        );
    }

    #[test]
    fn disks_help_hot_readers() {
        let t = disks(Scale::Quick).unwrap();
        let flat_lat: f64 = t.rows[0][2].parse().unwrap();
        let disk_lat: f64 = t.rows[1][2].parse().unwrap();
        // hot items dominate the Zipf read pattern, so the 2-disk layout
        // should not be slower despite the longer major cycle
        assert!(
            disk_lat <= flat_lat * 1.2,
            "disks should help skewed readers: {disk_lat} vs {flat_lat}"
        );
    }
}
