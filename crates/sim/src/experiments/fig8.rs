//! Figure 8: latency of accepted queries.

use bpush_core::Method;
use bpush_types::config::MultiversionLayout;
use bpush_types::BpushError;

use super::{config_for, defaults, Scale};
use crate::runner::{run_replicated, Job};
use crate::table::{fnum, Table};

/// Methods compared in Figure 8 (left).
pub const METHODS: [Method; 4] = [
    Method::InvalidationOnly,
    Method::InvalidationCache,
    Method::Sgt,
    Method::MultiversionBroadcast,
];

/// Figure 8 (left): mean latency of accepted queries, in broadcast
/// cycles, as the query size grows. Expected shape: roughly half a cycle
/// per read for the current-state methods (less with caching), with
/// multiversion broadcast (overflow layout) paying extra for old-version
/// reads at the end of the bcast.
pub fn left(scale: Scale) -> Result<Table, BpushError> {
    let points: Vec<u32> = match scale {
        Scale::Paper => vec![4, 8, 16, 24, 32, 40, 48],
        Scale::Quick => vec![4, 12, 24],
    };
    let mut jobs = Vec::new();
    for &reads in &points {
        for method in METHODS {
            let mut cfg = defaults(scale);
            cfg.client.reads_per_query = reads;
            jobs.push(Job {
                method,
                config: config_for(method, cfg),
                layout: MultiversionLayout::Overflow,
            });
        }
    }
    let metrics = run_replicated(jobs, 1)?;
    let mut columns = vec!["reads/query".to_owned()];
    columns.extend(METHODS.iter().map(|m| m.name().to_owned()));
    let mut table = Table::new(
        "fig8_left",
        "latency of accepted queries (cycles) vs. reads per query",
        columns,
    );
    for (i, &p) in points.iter().enumerate() {
        let mut row = vec![p.to_string()];
        for j in 0..METHODS.len() {
            let m = &metrics[i * METHODS.len() + j];
            if m.latency_cycles.count() == 0 {
                row.push("-".to_owned()); // nothing committed at this size
            } else {
                row.push(fnum(m.latency_cycles.mean(), 2));
            }
        }
        table.push_row(row);
    }
    Ok(table)
}

/// Figure 8 (right): multiversion-broadcast latency vs. the update/read
/// offset. Expected shape: declining — the smaller the overlap between
/// the server update pattern and the client read pattern, the fewer reads
/// must detour to old versions at the end of the bcast.
pub fn right(scale: Scale) -> Result<Table, BpushError> {
    let base = defaults(scale);
    let points: Vec<u32> = match scale {
        Scale::Paper => vec![0, 50, 100, 150, 200, 250],
        Scale::Quick => vec![0, base.server.update_range / 2],
    };
    let mut jobs = Vec::new();
    for &offset in &points {
        let mut cfg = defaults(scale);
        cfg.server.offset = offset;
        jobs.push(Job {
            method: Method::MultiversionBroadcast,
            config: config_for(Method::MultiversionBroadcast, cfg),
            layout: MultiversionLayout::Overflow,
        });
    }
    let metrics = run_replicated(jobs, 1)?;
    let mut table = Table::new(
        "fig8_right",
        "multiversion broadcast latency (cycles) vs. offset",
        ["offset", "latency (cycles)", "span"],
    );
    for (i, &offset) in points.iter().enumerate() {
        table.push_row([
            offset.to_string(),
            fnum(metrics[i].latency_cycles.mean(), 2),
            fnum(metrics[i].span.mean(), 2),
        ]);
    }
    Ok(table)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_grows_with_query_size() {
        let t = left(Scale::Quick).unwrap();
        // the multiversion column always commits, so it always reports a
        // latency (aborting methods may have no committed queries at the
        // largest sizes)
        let mv = 1 + METHODS
            .iter()
            .position(|m| *m == Method::MultiversionBroadcast)
            .unwrap();
        let first: f64 = t.rows.first().unwrap()[mv].parse().unwrap();
        let last: f64 = t.rows.last().unwrap()[mv].parse().unwrap();
        assert!(
            last > first,
            "bigger queries take longer: {first} -> {last}"
        );
    }

    #[test]
    fn right_has_expected_columns() {
        let t = right(Scale::Quick).unwrap();
        assert_eq!(t.columns.len(), 3);
        assert_eq!(t.len(), 2);
        for row in &t.rows {
            let lat: f64 = row[1].parse().unwrap();
            assert!(lat > 0.0);
        }
    }
}
