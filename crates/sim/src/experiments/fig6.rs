//! Figure 6: abort rate vs. the number of updates per cycle.

use bpush_types::BpushError;

use super::{config_for, defaults, Scale};
use crate::experiments::fig5::METHODS;
use crate::runner::{run_replicated, Job};
use crate::table::{fnum, Table};

/// Figure 6: abort rate (%) as the server update volume `U` grows from
/// 50 to 500 (= `UpdateRange`). Expected shape: every aborting method
/// degrades; the SGT advantage over invalidation-only shrinks from ~2× to
/// ~10% as the conflict graph densifies, and the invalidation-only method
/// with versioned cache becomes the best non-multiversion method once
/// updates exceed roughly a quarter of the broadcast set.
pub fn run(scale: Scale) -> Result<Table, BpushError> {
    let base = defaults(scale);
    let points: Vec<u32> = match scale {
        Scale::Paper => vec![50, 100, 200, 300, 400, 500],
        Scale::Quick => {
            let max = base.server.update_range;
            vec![max / 10, max / 2, max]
        }
    };
    let mut jobs = Vec::new();
    for &u in &points {
        for method in METHODS {
            let mut cfg = defaults(scale);
            cfg.server.updates_per_cycle = u;
            jobs.push(Job::new(method, config_for(method, cfg)));
        }
    }
    let metrics = run_replicated(jobs, 1)?;
    let mut columns = vec!["updates/cycle".to_owned()];
    columns.extend(METHODS.iter().map(|m| m.name().to_owned()));
    let mut table = Table::new("fig6", "abort rate (%) vs. updates per cycle", columns);
    for (i, &u) in points.iter().enumerate() {
        let mut row = vec![u.to_string()];
        for j in 0..METHODS.len() {
            row.push(fnum(metrics[i * METHODS.len() + j].abort_pct(), 2));
        }
        table.push_row(row);
    }
    Ok(table)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bpush_core::Method;

    #[test]
    fn abort_rate_grows_with_updates() {
        let t = run(Scale::Quick).unwrap();
        assert_eq!(t.len(), 3);
        let inv = 1 + METHODS
            .iter()
            .position(|m| *m == Method::InvalidationOnly)
            .unwrap();
        let lo: f64 = t.rows.first().unwrap()[inv].parse().unwrap();
        let hi: f64 = t.rows.last().unwrap()[inv].parse().unwrap();
        assert!(
            hi >= lo,
            "more updates must not reduce aborts: {lo} -> {hi}"
        );
    }
}
