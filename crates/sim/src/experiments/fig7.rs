//! Figure 7: broadcast-size increase, from the analytic model of §3.

use bpush_broadcast::size_model::{SizeModel, SizeParams};
use bpush_types::BpushError;

use super::{defaults, Scale};
use crate::table::{fnum, Table};

/// Figure 7: percentage increase of the broadcast size per method, using
/// the closed-form size expressions of §3.1–§3.3 and §4.2 — (a) as a
/// function of the maximum transaction span `S` at `U = 50`, and (b) as a
/// function of the update volume `U` at `S = 3`. Expected shape:
/// invalidation-only < multiversion-caching < SGT < multiversion, with
/// the multiversion cost growing in both `S` and `U` and the clustered
/// layout costlier than the overflow layout (rebuilt index every cycle).
pub fn run(scale: Scale) -> Result<Vec<Table>, BpushError> {
    let cfg = defaults(scale);
    let model = SizeModel::new(cfg.server.broadcast_size, SizeParams::default());
    let n = cfg.server.txns_per_cycle;
    let columns = [
        "x",
        "inv-only",
        "mv-overflow",
        "mv-clustered",
        "sgt",
        "mv-caching",
    ];

    let u_default = cfg.server.updates_per_cycle;
    let mut by_span = Table::new(
        "fig7_span",
        format!("broadcast size increase (%) vs. span (U = {u_default})"),
        columns,
    );
    for span in 1..=8u32 {
        let ops = (u_default * 5).div_ceil(n);
        by_span.push_row([
            span.to_string(),
            fnum(
                model.percent_increase(model.invalidation_only_extra(u_default)),
                2,
            ),
            fnum(
                model.percent_increase(model.multiversion_overflow_extra(u_default, span)),
                2,
            ),
            fnum(
                model.percent_increase(model.multiversion_clustered_extra(u_default, span)),
                2,
            ),
            fnum(
                model.percent_increase(model.sgt_extra(n, ops, u_default)),
                2,
            ),
            fnum(
                model.percent_increase(model.multiversion_caching_extra(u_default, span)),
                2,
            ),
        ]);
    }

    let span = 3u32;
    let mut by_updates = Table::new(
        "fig7_updates",
        format!("broadcast size increase (%) vs. updates (span = {span})"),
        columns,
    );
    let max_u = cfg.server.update_range;
    for step in 1..=10u32 {
        let u = max_u * step / 10;
        let ops = (u * 5).div_ceil(n);
        by_updates.push_row([
            u.to_string(),
            fnum(model.percent_increase(model.invalidation_only_extra(u)), 2),
            fnum(
                model.percent_increase(model.multiversion_overflow_extra(u, span)),
                2,
            ),
            fnum(
                model.percent_increase(model.multiversion_clustered_extra(u, span)),
                2,
            ),
            fnum(model.percent_increase(model.sgt_extra(n, ops, u)), 2),
            fnum(
                model.percent_increase(model.multiversion_caching_extra(u, span)),
                2,
            ),
        ]);
    }
    Ok(vec![by_span, by_updates])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn col(t: &Table, name: &str) -> usize {
        t.columns.iter().position(|c| c == name).unwrap()
    }

    #[test]
    fn ordering_matches_table1() {
        let tables = run(Scale::Paper).unwrap();
        let by_span = &tables[0];
        // at span 3 (row index 2): inv < mc < sgt-ish < mv, clustered > overflow
        let row = &by_span.rows[2];
        let get = |name: &str| -> f64 { row[col(by_span, name)].parse().unwrap() };
        assert!(get("inv-only") < get("mv-caching"));
        assert!(get("mv-caching") < get("mv-overflow"));
        assert!(get("mv-overflow") < get("mv-clustered"));
        assert!(get("inv-only") < get("sgt"));
    }

    #[test]
    fn multiversion_grows_with_span_and_updates() {
        let tables = run(Scale::Paper).unwrap();
        let spans: Vec<f64> = tables[0]
            .rows
            .iter()
            .map(|r| r[col(&tables[0], "mv-overflow")].parse().unwrap())
            .collect();
        assert!(spans.windows(2).all(|w| w[0] <= w[1]));
        let updates: Vec<f64> = tables[1]
            .rows
            .iter()
            .map(|r| r[col(&tables[1], "mv-overflow")].parse().unwrap())
            .collect();
        assert!(updates.windows(2).all(|w| w[0] <= w[1]));
    }
}
