//! Figure 5: abort rate vs. query size (left) and vs. offset (right).

use bpush_core::Method;
use bpush_types::BpushError;

use super::{config_for, defaults, Scale};
use crate::runner::{run_replicated, Job};
use crate::table::{fnum, Table};

/// The methods compared in Figure 5's abort-rate panels.
pub const METHODS: [Method; 6] = [
    Method::InvalidationOnly,
    Method::InvalidationCache,
    Method::InvalidationVersionedCache,
    Method::Sgt,
    Method::SgtCache,
    Method::MultiversionBroadcast,
];

fn sweep_points(scale: Scale, paper: &[u32], quick: &[u32]) -> Vec<u32> {
    match scale {
        Scale::Paper => paper.to_vec(),
        Scale::Quick => quick.to_vec(),
    }
}

fn abort_table(
    id: &str,
    title: &str,
    x_label: &str,
    points: &[u32],
    configure: impl Fn(u32) -> bpush_types::SimConfig,
) -> Result<Table, BpushError> {
    let mut jobs = Vec::new();
    for &p in points {
        for method in METHODS {
            jobs.push(Job::new(method, config_for(method, configure(p))));
        }
    }
    let metrics = run_replicated(jobs, 1)?;
    let mut columns = vec![x_label.to_owned()];
    columns.extend(METHODS.iter().map(|m| m.name().to_owned()));
    let mut table = Table::new(id, title, columns);
    for (i, &p) in points.iter().enumerate() {
        let mut row = vec![p.to_string()];
        for j in 0..METHODS.len() {
            row.push(fnum(metrics[i * METHODS.len() + j].abort_pct(), 2));
        }
        table.push_row(row);
    }
    Ok(table)
}

/// Figure 5 (left): abort rate (%) as the number of read operations per
/// query grows. Expected shape: monotone growth for the invalidation
/// family, SGT(+cache) lowest among aborting methods, multiversion ≡ 0,
/// and the versioned cache competitive below ~30 reads.
pub fn left(scale: Scale) -> Result<Table, BpushError> {
    let points = sweep_points(scale, &[4, 8, 16, 24, 32, 40, 48], &[4, 12, 24]);
    abort_table(
        "fig5_left",
        "abort rate (%) vs. reads per query",
        "reads/query",
        &points,
        |reads| {
            let mut cfg = defaults(scale);
            cfg.client.reads_per_query = reads;
            cfg
        },
    )
}

/// Figure 5 (right): abort rate (%) as the offset between the client
/// read pattern and the server update pattern grows (0 = maximum
/// overlap). Expected shape: all methods decline with offset; SGT
/// reaches ~0 first.
pub fn right(scale: Scale) -> Result<Table, BpushError> {
    let base = defaults(scale);
    let max_offset = base.server.update_range / 2;
    let points = sweep_points(
        scale,
        &[0, 50, 100, 150, 200, 250],
        &[0, max_offset / 2, max_offset],
    );
    abort_table(
        "fig5_right",
        "abort rate (%) vs. update/read offset",
        "offset",
        &points,
        |offset| {
            let mut cfg = defaults(scale);
            cfg.server.offset = offset;
            cfg
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn left_produces_full_grid() {
        let t = left(Scale::Quick).unwrap();
        assert_eq!(t.columns.len(), 1 + METHODS.len());
        assert_eq!(t.len(), 3);
        // multiversion column is all zeros
        let mv_col = 1 + METHODS
            .iter()
            .position(|m| *m == Method::MultiversionBroadcast)
            .unwrap();
        for row in &t.rows {
            assert_eq!(row[mv_col], "0.00", "multiversion accepts everything");
        }
    }

    #[test]
    fn right_declines_with_offset() {
        let t = right(Scale::Quick).unwrap();
        // invalidation-only abort rate at max offset is below the
        // zero-offset rate
        let first: f64 = t.rows.first().unwrap()[1].parse().unwrap();
        let last: f64 = t.rows.last().unwrap()[1].parse().unwrap();
        assert!(
            last <= first,
            "abort rate must not grow with offset: {first} -> {last}"
        );
    }
}
