//! Selective-tuning (energy) study: §2.1 motivates letting battery-bound
//! clients doze between reads; what each method forces the client to
//! *listen* to is part of its price.
//!
//! Active listening per query = the control segments heard during its
//! lifetime plus the data buckets actually read. Methods with bulkier
//! control information (SGT) or longer bcasts (multiversion) cost more
//! awake-time per query; caching cuts both reads and lifetime.

use bpush_core::Method;
use bpush_types::BpushError;

use super::{config_for, defaults, Scale};
use crate::runner::{run_replicated, Job};
use crate::table::{fnum, Table};

/// Methods compared in the tuning study.
pub const METHODS: [Method; 5] = [
    Method::InvalidationOnly,
    Method::InvalidationCache,
    Method::Sgt,
    Method::SgtCache,
    Method::MultiversionBroadcast,
];

/// Mean active-listening slots per committed query, per method, with the
/// accepted rate for context. Expected shape: caching reduces listening;
/// SGT pays for its control volume every cycle a query spans;
/// multiversion pays for longer bcasts on long queries.
pub fn run(scale: Scale) -> Result<Table, BpushError> {
    let jobs: Vec<Job> = METHODS
        .iter()
        .map(|&m| Job::new(m, config_for(m, defaults(scale))))
        .collect();
    let metrics = run_replicated(jobs, 1)?;
    let mut table = Table::new(
        "tuning",
        "active listening per committed query (selective tuning, §2.1)",
        [
            "method",
            "tuning slots",
            "of which control",
            "latency (slots)",
            "awake fraction %",
        ],
    );
    for m in &metrics {
        let tuning = m.tuning_slots.mean();
        let data = m.broadcast_reads.mean();
        let control = (tuning - data).max(0.0);
        let awake = if m.latency_slots.mean() > 0.0 {
            tuning / m.latency_slots.mean() * 100.0
        } else {
            0.0
        };
        table.push_row([
            m.method.name().to_owned(),
            fnum(tuning, 2),
            fnum(control, 2),
            fnum(m.latency_slots.mean(), 1),
            fnum(awake.min(100.0), 2),
        ]);
    }
    Ok(table)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sgt_listens_more_than_invalidation_only() {
        let t = run(Scale::Quick).unwrap();
        let col = |name: &str| -> usize { t.columns.iter().position(|c| c == name).unwrap() };
        let tuning_of = |method: &str| -> f64 {
            t.rows.iter().find(|r| r[0] == method).unwrap()[col("tuning slots")]
                .parse()
                .unwrap()
        };
        // SGT's control segment (diff + augmented report + tags) costs
        // strictly more listening than a bare invalidation report
        assert!(
            tuning_of("sgt") > tuning_of("inv-only"),
            "sgt {} vs inv {}",
            tuning_of("sgt"),
            tuning_of("inv-only")
        );
        // a client is asleep most of the time under every method
        for row in &t.rows {
            let awake: f64 = row[col("awake fraction %")].parse().unwrap();
            assert!(awake < 60.0, "{}: awake {awake}%", row[0]);
        }
    }
}
