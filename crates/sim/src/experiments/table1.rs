//! Table 1: the overall comparison of the proposed approaches.

use bpush_broadcast::size_model::{SizeModel, SizeParams};
use bpush_core::Method;
use bpush_types::BpushError;

use super::{config_for, defaults, Scale};
use crate::runner::{run_replicated, Job};
use crate::table::{fnum, Table};

/// The currency column of Table 1, verbatim from the paper.
pub fn currency_of(method: Method) -> &'static str {
    match method {
        Method::InvalidationOnly | Method::InvalidationCache => "state at last read",
        Method::InvalidationVersionedCache | Method::MultiversionCaching => {
            "state at first overwrite"
        }
        Method::MultiversionBroadcast => "state at first read",
        Method::Sgt | Method::SgtCache | Method::SgtVersionedItems => "between first and last read",
    }
}

/// The disconnection-tolerance column of Table 1.
pub fn tolerance_of(method: Method) -> &'static str {
    match method {
        Method::InvalidationOnly | Method::InvalidationCache => "none (unless windowed)",
        Method::InvalidationVersionedCache => "some (cache)",
        Method::MultiversionBroadcast => "some (span <= V)",
        Method::Sgt | Method::SgtCache => "none",
        Method::SgtVersionedItems => "some (versions)",
        Method::MultiversionCaching => "some (cache)",
    }
}

/// Table 1: per-method summary at default parameters — measured
/// concurrency (percent accepted), measured broadcast-size overhead,
/// analytic size increase, latency, span, plus the qualitative currency
/// and disconnection-tolerance columns. Expected shape: multiversion
/// accepts everything at the highest size cost; invalidation-only is the
/// cheapest and most current but aborts the most; SGT sits in between
/// with client-side processing cost.
pub fn run(scale: Scale) -> Result<Table, BpushError> {
    let base = defaults(scale);
    let jobs: Vec<Job> = Method::ALL
        .iter()
        .map(|&m| Job::new(m, config_for(m, base.clone())))
        .collect();
    let metrics = run_replicated(jobs, 1)?;

    let model = SizeModel::new(base.server.broadcast_size, SizeParams::default());
    let u = base.server.updates_per_cycle;
    let span = base.server.versions_retained;
    let ops = base.server.ops_per_txn();
    let n = base.server.txns_per_cycle;

    let mut table = Table::new(
        "table1",
        "comparison of the proposed approaches (defaults)",
        [
            "method",
            "accepted %",
            "overhead % (measured)",
            "overhead % (model)",
            "latency (cycles)",
            "latency p50/p90/p99",
            "span",
            "cache hit %",
            "currency",
            "disconnections",
            "peak graph (n/e)",
            "validation us/cycle",
            "abort causes",
        ],
    );
    for m in &metrics {
        let model_pct = match m.method {
            Method::InvalidationOnly | Method::InvalidationCache => {
                model.percent_increase(model.invalidation_only_extra(u))
            }
            Method::InvalidationVersionedCache => {
                model.percent_increase(model.invalidation_only_extra(u))
            }
            Method::MultiversionBroadcast => {
                model.percent_increase(model.multiversion_overflow_extra(u, span))
            }
            Method::Sgt | Method::SgtCache | Method::SgtVersionedItems => {
                model.percent_increase(model.sgt_extra(n, ops, u))
            }
            Method::MultiversionCaching => {
                model.percent_increase(model.multiversion_caching_extra(u, span))
            }
        };
        table.push_row([
            m.method.name().to_owned(),
            fnum(100.0 - m.abort_pct(), 2),
            fnum(m.overhead_pct(), 2),
            fnum(model_pct, 2),
            fnum(m.latency_cycles.mean(), 2),
            format!(
                "{}/{}/{}",
                fnum(m.latency_hist.quantile(0.5), 2),
                fnum(m.latency_hist.quantile(0.9), 2),
                fnum(m.latency_hist.quantile(0.99), 2)
            ),
            fnum(m.span.mean(), 2),
            m.cache_hit_rate
                .map_or_else(|| "-".to_owned(), |r| fnum(r.rate() * 100.0, 1)),
            currency_of(m.method).to_owned(),
            tolerance_of(m.method).to_owned(),
            if m.peak_graph_nodes == 0 && m.peak_graph_edges == 0 {
                "-".to_owned()
            } else {
                format!("{}/{}", m.peak_graph_nodes, m.peak_graph_edges)
            },
            fnum(m.validation_ns.mean() / 1_000.0, 1),
            if m.abort_reasons.is_empty() {
                "-".to_owned()
            } else {
                m.abort_reasons
                    .iter()
                    .map(|(reason, count)| format!("{}:{count}", reason.label()))
                    .collect::<Vec<_>>()
                    .join(" ")
            },
        ]);
    }
    Ok(table)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_has_all_methods() {
        let t = run(Scale::Quick).unwrap();
        assert_eq!(t.len(), Method::ALL.len());
        // multiversion accepts 100%
        let mv_row = t
            .rows
            .iter()
            .find(|r| r[0] == "multiversion")
            .expect("multiversion row");
        assert_eq!(mv_row[1], "100.00");
        // every accepted % parses and is a percentage
        for row in &t.rows {
            let pct: f64 = row[1].parse().unwrap();
            assert!((0.0..=100.0).contains(&pct));
        }
        // SGT rows report a peak graph size; graph-free methods print "-"
        let sgt_row = t.rows.iter().find(|r| r[0] == "sgt").expect("sgt row");
        assert!(sgt_row[10].contains('/'), "peak graph column: {sgt_row:?}");
        let inv_row = t
            .rows
            .iter()
            .find(|r| r[0] == "inv-only")
            .expect("inv-only row");
        assert_eq!(inv_row[10], "-");
        // validation time parses as a number for every method
        for row in &t.rows {
            let _: f64 = row[11].parse().unwrap();
        }
        // the latency percentile column is three non-decreasing numbers
        for row in &t.rows {
            let qs: Vec<f64> = row[5].split('/').map(|q| q.parse().unwrap()).collect();
            assert_eq!(qs.len(), 3, "latency p50/p90/p99 column: {row:?}");
            assert!(qs[0] <= qs[1] && qs[1] <= qs[2], "{row:?}");
        }
        // abort causes: multiversion aborts nothing, so prints "-"; any
        // method that aborts lists `cause:count` pairs whose counts sum
        // to its abort total
        assert_eq!(mv_row[12], "-");
        for (row, m) in t.rows.iter().zip(&metrics_shape_check(&t)) {
            if row[12] == "-" {
                continue;
            }
            let total: u64 = row[12]
                .split(' ')
                .map(|pair| pair.rsplit(':').next().unwrap().parse::<u64>().unwrap())
                .sum();
            assert!(total > 0, "non-empty abort causes sum to zero: {m}");
        }
    }

    /// Row labels, used only to make assertion messages readable.
    fn metrics_shape_check(t: &Table) -> Vec<String> {
        t.rows.iter().map(|r| r[0].clone()).collect()
    }

    #[test]
    fn qualitative_columns_are_stable() {
        assert_eq!(currency_of(Method::InvalidationOnly), "state at last read");
        assert_eq!(
            currency_of(Method::MultiversionBroadcast),
            "state at first read"
        );
        assert_eq!(tolerance_of(Method::Sgt), "none");
        assert_eq!(tolerance_of(Method::SgtVersionedItems), "some (versions)");
    }
}
