//! The sharded-runner extension study: one large simulation's client
//! population split across worker threads ([`crate::runner::run_sharded`]),
//! exercising the PR-8 determinism contract — a single shard reproduces
//! the unsharded run bit for bit, and a fixed shard layout reproduces
//! the *same* merged metrics at every worker-thread count (the merge is
//! in shard order, never completion order).

use bpush_core::Method;
use bpush_types::BpushError;

use super::{defaults, Scale};
use crate::runner::{run_sharded_with_workers, Job};
use crate::simulation::Simulation;
use crate::table::{fnum, Table};

/// Shard count used for the multi-shard rows (clamped to the client
/// population by the runner).
const SHARDS: u32 = 4;

/// Runs the invalidation-only and SGT methods through the sharded
/// runner: one shard against the unsharded reference, then a fixed
/// 4-shard layout at 1, 2, and 4 worker threads, asserting (via the
/// `identical` column) that each row reproduces its determinism
/// reference byte for byte.
///
/// # Errors
/// Propagates simulation errors, and reports a diverging row as
/// [`BpushError::InvalidConfig`] — the study doubles as a check.
pub fn run(scale: Scale) -> Result<Table, BpushError> {
    let base = defaults(scale);
    let mut table = Table::new(
        "sharded",
        "sharded deterministic runner: metrics are worker-count invariant",
        [
            "method",
            "shards",
            "workers",
            "reference",
            "aborted %",
            "latency (cycles)",
            "identical",
        ],
    );
    for method in [Method::InvalidationOnly, Method::Sgt] {
        let job = Job::new(method, base.clone());
        let plain = Simulation::new(base.clone(), method)?.run()?;
        let merged_ref = run_sharded_with_workers(&job, SHARDS, 1)?.deterministic_snapshot();
        for (shards, workers, reference) in [
            (1u32, 2usize, "unsharded run"),
            (SHARDS, 1, "4 shards, 1 worker"),
            (SHARDS, 2, "4 shards, 1 worker"),
            (SHARDS, 4, "4 shards, 1 worker"),
        ] {
            let metrics = run_sharded_with_workers(&job, shards, workers)?;
            let expected = if shards == 1 {
                plain.deterministic_snapshot()
            } else {
                merged_ref.clone()
            };
            let identical = metrics.deterministic_snapshot() == expected;
            table.push_row([
                method.name().to_owned(),
                shards.to_string(),
                workers.to_string(),
                reference.to_owned(),
                fnum(metrics.abort_pct(), 2),
                fnum(metrics.latency_cycles.mean(), 1),
                if identical { "yes" } else { "NO" }.to_owned(),
            ]);
            if !identical {
                return Err(BpushError::invalid_config(format!(
                    "sharded run diverged from its reference \
                     ({} at {shards} shards / {workers} workers)",
                    method.name()
                )));
            }
        }
    }
    Ok(table)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sharded_study_reports_identical_metrics() {
        let table = run(Scale::Quick).unwrap();
        // 2 methods x 4 rows, every row byte-identical to its reference
        assert_eq!(table.rows.len(), 8);
        assert!(table.rows.iter().all(|r| r.last().unwrap() == "yes"));
    }
}
