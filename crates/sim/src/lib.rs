//! The simulation engine and experiment suite of the `bpush`
//! reproduction of *Pitoura & Chrysanthis, ICDCS 1999*.
//!
//! * [`Simulation`] advances a [`bpush_server::BroadcastServer`] and a
//!   population of [`bpush_client::QueryExecutor`]s cycle by cycle and
//!   reduces the query outcomes to [`MethodMetrics`] (abort rate, latency
//!   in cycles, span, size overhead), validating every committed readset
//!   against the serializability ground truth.
//! * [`runner`] fans parameter sweeps out across CPU cores.
//! * [`monitors_for`] attaches online invariant monitors
//!   ([`bpush_obs::Monitors`]) that check each method's published
//!   consistency rules *during* the run; with a flight recorder
//!   ([`Simulation::with_flight_recorder`]) the first violation dumps a
//!   replayable `bpush-capture-v1` window into a [`CaptureSlot`].
//! * [`experiments`] regenerates every table and figure of the paper's
//!   §5 — see DESIGN.md for the experiment index and EXPERIMENTS.md for
//!   the recorded outputs.
//!
//! # Example
//!
//! ```
//! use bpush_core::Method;
//! use bpush_sim::{experiments, Simulation};
//!
//! let mut config = experiments::quick_defaults();
//! config.n_clients = 2;
//! config.queries_per_client = 5;
//! let metrics = Simulation::new(config, Method::Sgt)?.run()?;
//! assert_eq!(metrics.violations, 0);
//! println!("sgt abort rate: {:.1}%", metrics.abort_pct());
//! # Ok::<(), bpush_types::BpushError>(())
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod chart;
pub mod experiments;
pub mod runner;
mod simulation;
mod table;

pub use runner::{
    run_jobs, run_replicated, run_sharded, run_sharded_monitored,
    run_sharded_monitored_with_workers, run_sharded_with_workers, Job, MonitoredRun,
};
pub use simulation::{monitors_for, CaptureSlot, MethodMetrics, Simulation};
pub use table::{fnum, Table};
