//! Text/CSV tables for experiment output.

use std::fmt;

/// A result table of one experiment (one figure panel or one table of the
/// paper).
///
/// # Example
/// ```
/// use bpush_sim::Table;
/// let mut t = Table::new("fig0", "demo", ["x", "y"]);
/// t.push_row(["1", "2"]);
/// let text = t.to_string();
/// assert!(text.contains("demo"));
/// assert!(t.to_csv().starts_with("x,y\n1,2"));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Table {
    /// Stable experiment id (`fig5_left`, `table1`, ...).
    pub id: String,
    /// Human-readable caption.
    pub title: String,
    /// Column headers; the first column is the x-axis / row label.
    pub columns: Vec<String>,
    /// Row cells, matching `columns` in length.
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates an empty table.
    pub fn new(
        id: impl Into<String>,
        title: impl Into<String>,
        columns: impl IntoIterator<Item = impl Into<String>>,
    ) -> Self {
        Table {
            id: id.into(),
            title: title.into(),
            columns: columns.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    /// Panics if the row length does not match the columns.
    pub fn push_row(&mut self, row: impl IntoIterator<Item = impl Into<String>>) {
        let row: Vec<String> = row.into_iter().map(Into::into).collect();
        assert_eq!(row.len(), self.columns.len(), "row arity mismatch");
        self.rows.push(row);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// CSV rendering (header + rows).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        out.push_str(&self.columns.join(","));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.join(","));
            out.push('\n');
        }
        out
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut widths: Vec<usize> = self.columns.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        writeln!(f, "## {} — {}", self.id, self.title)?;
        let print_row = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
            let mut line = String::new();
            for (i, (cell, w)) in cells.iter().zip(&widths).enumerate() {
                if i > 0 {
                    line.push_str("  ");
                }
                line.push_str(&format!("{cell:>w$}", w = *w));
            }
            writeln!(f, "{}", line.trim_end())
        };
        print_row(f, &self.columns)?;
        let total: usize = widths.iter().sum::<usize>() + 2 * (widths.len().saturating_sub(1));
        writeln!(f, "{}", "-".repeat(total))?;
        for row in &self.rows {
            print_row(f, row)?;
        }
        Ok(())
    }
}

/// Formats a float with a fixed number of decimals (table helper).
pub fn fnum(x: f64, decimals: usize) -> String {
    format!("{x:.decimals$}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alignment_and_csv() {
        let mut t = Table::new("t", "title", ["method", "abort %"]);
        t.push_row(["inv-only", "12.50"]);
        t.push_row(["sgt", "3.10"]);
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
        let text = t.to_string();
        assert!(text.contains("## t — title"));
        assert!(text.contains("inv-only"));
        let csv = t.to_csv();
        assert_eq!(csv.lines().count(), 3);
        assert_eq!(csv.lines().next().unwrap(), "method,abort %");
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn arity_mismatch_panics() {
        let mut t = Table::new("t", "title", ["a", "b"]);
        t.push_row(["only-one"]);
    }

    #[test]
    fn fnum_formats() {
        assert_eq!(fnum(1.23456, 2), "1.23");
        assert_eq!(fnum(0.0, 1), "0.0");
    }
}
