//! Buckets, bucket headers and the records they carry.

use std::fmt;

use bpush_types::{Cycle, ItemId, ItemValue, TxnId};

/// The header every bucket carries (§2.1): its position within the bcast
/// as an offset from the beginning, and the offset to the beginning of the
/// next bcast, which lets a client that tuned in mid-cycle find the next
/// cycle start even when the bcast size varies.
///
/// # Example
/// ```
/// use bpush_broadcast::BucketHeader;
/// use bpush_types::Cycle;
/// let h = BucketHeader::new(Cycle::new(2), 5, 100);
/// assert_eq!(h.offset(), 5);
/// assert_eq!(h.slots_to_next_bcast(), 95);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BucketHeader {
    cycle: Cycle,
    offset: u64,
    bcast_len: u64,
}

impl BucketHeader {
    /// Creates a header for the bucket at `offset` within a bcast of
    /// `bcast_len` total buckets, broadcast during `cycle`.
    ///
    /// # Panics
    /// Panics if `offset >= bcast_len`.
    pub fn new(cycle: Cycle, offset: u64, bcast_len: u64) -> Self {
        assert!(offset < bcast_len, "bucket offset outside its bcast");
        BucketHeader {
            cycle,
            offset,
            bcast_len,
        }
    }

    /// The broadcast cycle this bucket belongs to.
    pub fn cycle(&self) -> Cycle {
        self.cycle
    }

    /// Offset of this bucket from the beginning of the bcast, in buckets.
    pub fn offset(&self) -> u64 {
        self.offset
    }

    /// Total length of the bcast this bucket belongs to, in buckets.
    pub fn bcast_len(&self) -> u64 {
        self.bcast_len
    }

    /// Buckets remaining until the beginning of the next bcast.
    pub fn slots_to_next_bcast(&self) -> u64 {
        self.bcast_len - self.offset
    }
}

/// One data item as it appears on air: its identifier, the (current)
/// committed value, optionally the identifier of the last transaction that
/// wrote it (broadcast only when the SGT method is active, §3.3), and
/// optionally a pointer to its old versions in the overflow area
/// (multiversion overflow organization, Figure 2b).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ItemRecord {
    item: ItemId,
    value: ItemValue,
    last_writer: Option<TxnId>,
    overflow_ptr: Option<u64>,
}

impl ItemRecord {
    /// Creates a record carrying `value` for `item`. `last_writer` is the
    /// SGT tag; use `None` when the SGT method is not in use (the writer
    /// recorded inside [`ItemValue`] is simulation-internal ground truth,
    /// while this field models what is actually transmitted).
    pub fn new(item: ItemId, value: ItemValue, last_writer: Option<TxnId>) -> Self {
        ItemRecord {
            item,
            value,
            last_writer,
            overflow_ptr: None,
        }
    }

    /// Attaches the overflow pointer (offset of the item's old-version
    /// chain from the start of the overflow area).
    #[must_use]
    pub fn with_overflow_ptr(mut self, ptr: u64) -> Self {
        self.overflow_ptr = Some(ptr);
        self
    }

    /// The item this record carries.
    pub fn item(&self) -> ItemId {
        self.item
    }

    /// The committed value.
    pub fn value(&self) -> ItemValue {
        self.value
    }

    /// The transmitted last-writer tag, if the bcast carries one.
    pub fn last_writer(&self) -> Option<TxnId> {
        self.last_writer
    }

    /// Offset of this item's old versions within the overflow area, if any.
    pub fn overflow_ptr(&self) -> Option<u64> {
        self.overflow_ptr
    }
}

impl fmt::Display for ItemRecord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}={}", self.item, self.value)
    }
}

/// An old version of an item, as stored in overflow buckets or clustered
/// next to the current version (§3.2). Old versions are broadcast in
/// reverse chronological order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct OldVersion {
    item: ItemId,
    value: ItemValue,
}

impl OldVersion {
    /// Pairs an item with one of its superseded values.
    pub fn new(item: ItemId, value: ItemValue) -> Self {
        OldVersion { item, value }
    }

    /// The item.
    pub fn item(&self) -> ItemId {
        self.item
    }

    /// The superseded value.
    pub fn value(&self) -> ItemValue {
        self.value
    }
}

/// A transmitted bucket: a header plus the data records that fit in it.
///
/// The simulation mostly works at whole-bcast granularity, but buckets are
/// exposed so tests can verify the self-descriptiveness properties of
/// §2.1 (a client waking at any bucket can locate the next bcast).
#[derive(Debug, Clone, PartialEq)]
pub struct Bucket {
    header: BucketHeader,
    records: Vec<ItemRecord>,
}

impl Bucket {
    /// Creates a bucket.
    pub fn new(header: BucketHeader, records: Vec<ItemRecord>) -> Self {
        Bucket { header, records }
    }

    /// The bucket header.
    pub fn header(&self) -> BucketHeader {
        self.header
    }

    /// The records carried by this bucket.
    pub fn records(&self) -> &[ItemRecord] {
        &self.records
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn header_offsets() {
        let h = BucketHeader::new(Cycle::new(1), 0, 10);
        assert_eq!(h.slots_to_next_bcast(), 10);
        assert_eq!(h.cycle(), Cycle::new(1));
        assert_eq!(h.bcast_len(), 10);
        let last = BucketHeader::new(Cycle::new(1), 9, 10);
        assert_eq!(last.slots_to_next_bcast(), 1);
    }

    #[test]
    #[should_panic(expected = "outside its bcast")]
    fn header_rejects_out_of_range_offset() {
        let _ = BucketHeader::new(Cycle::ZERO, 10, 10);
    }

    #[test]
    fn record_builders() {
        let t = TxnId::new(Cycle::new(2), 0);
        let rec =
            ItemRecord::new(ItemId::new(7), ItemValue::written_by(t), Some(t)).with_overflow_ptr(4);
        assert_eq!(rec.item(), ItemId::new(7));
        assert_eq!(rec.last_writer(), Some(t));
        assert_eq!(rec.overflow_ptr(), Some(4));
        assert_eq!(rec.value().version(), Cycle::new(3));
        assert_eq!(rec.to_string(), "item#7=v3<-T2.0");
    }

    #[test]
    fn old_version_accessors() {
        let ov = OldVersion::new(ItemId::new(1), ItemValue::initial());
        assert_eq!(ov.item(), ItemId::new(1));
        assert_eq!(ov.value(), ItemValue::initial());
    }

    #[test]
    fn bucket_accessors() {
        let h = BucketHeader::new(Cycle::ZERO, 0, 1);
        let b = Bucket::new(
            h,
            vec![ItemRecord::new(ItemId::new(0), ItemValue::initial(), None)],
        );
        assert_eq!(b.header(), h);
        assert_eq!(b.records().len(), 1);
    }
}
