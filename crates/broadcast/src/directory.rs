//! The broadcast directory (index) mapping items to their positions.
//!
//! Organizations with fixed item positions (flat, multiversion-overflow)
//! let clients keep a locally-stored directory across cycles; the
//! clustered multiversion organization shifts positions every cycle, so
//! the server must rebuild the directory and broadcast it ahead of the
//! data (§3.2, "Multiversion Broadcast Organization").

use std::collections::BTreeMap;

use bpush_types::{Cycle, ItemId};

/// An index from item to the slot (bucket offset from the beginning of the
/// bcast) where the item's current version is broadcast.
///
/// # Example
/// ```
/// use bpush_broadcast::Directory;
/// use bpush_types::{Cycle, ItemId};
/// let dir = Directory::new(Cycle::new(1), [(ItemId::new(4), 7u64)]);
/// assert_eq!(dir.slot_of(ItemId::new(4)), Some(7));
/// assert_eq!(dir.slot_of(ItemId::new(5)), None);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Directory {
    cycle: Cycle,
    slots: BTreeMap<ItemId, u64>,
}

impl Directory {
    /// Builds a directory valid for `cycle`.
    pub fn new(cycle: Cycle, entries: impl IntoIterator<Item = (ItemId, u64)>) -> Self {
        Directory {
            cycle,
            slots: entries.into_iter().collect(),
        }
    }

    /// The cycle this directory describes. A locally cached directory is
    /// usable at a later cycle only under fixed-position organizations.
    pub fn cycle(&self) -> Cycle {
        self.cycle
    }

    /// The slot of `item`'s current version, if the item is on air.
    pub fn slot_of(&self, item: ItemId) -> Option<u64> {
        self.slots.get(&item).copied()
    }

    /// All entries in item order, for serialization.
    pub fn entries(&self) -> impl Iterator<Item = (ItemId, u64)> + '_ {
        self.slots.iter().map(|(&item, &slot)| (item, slot))
    }

    /// Number of indexed items.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Whether the directory is empty.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// On-air size of the directory in buckets: one key plus one offset
    /// per entry.
    ///
    /// # Panics
    /// Panics if `bucket_size` is zero.
    pub fn slots_on_air(&self, bucket_size: u32, key_size: u32, ptr_size: u32) -> u64 {
        assert!(bucket_size > 0, "bucket size must be positive");
        (self.len() as u64 * u64::from(key_size + ptr_size)).div_ceil(u64::from(bucket_size))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lookup_and_len() {
        let dir = Directory::new(
            Cycle::new(2),
            (0..10).map(|i| (ItemId::new(i), u64::from(i) + 3)),
        );
        assert_eq!(dir.len(), 10);
        assert!(!dir.is_empty());
        assert_eq!(dir.cycle(), Cycle::new(2));
        assert_eq!(dir.slot_of(ItemId::new(9)), Some(12));
        assert_eq!(dir.slot_of(ItemId::new(10)), None);
    }

    #[test]
    fn on_air_size_rounds_up() {
        let dir = Directory::new(Cycle::ZERO, (0..7).map(|i| (ItemId::new(i), 0u64)));
        // 7 entries * (1 + 2) units = 21 units; bucket of 5 -> 5 buckets
        assert_eq!(dir.slots_on_air(5, 1, 2), 5);
        let empty = Directory::new(Cycle::ZERO, []);
        assert!(empty.is_empty());
        assert_eq!(empty.slots_on_air(5, 1, 2), 0);
    }
}
