//! A fully assembled broadcast program for one cycle.

use std::collections::BTreeMap;

use bpush_types::{Cycle, ItemId, ItemValue};

use crate::bucket::{BucketHeader, ItemRecord};
use crate::control::ControlInfo;
use crate::directory::Directory;

/// One cycle's broadcast program ("bcast", §2): the control segment
/// followed by the data segment (and, under the multiversion overflow
/// organization, trailing overflow buckets with old versions).
///
/// A `Bcast` is produced by one of the organizations in
/// [`crate::organization`] and consumed by clients, which query it for
/// *where* (at which slot) an item appears so the simulation can account
/// for tuning latency. Slot 0 is the first control bucket; the data
/// segment starts at [`Bcast::data_start`].
#[derive(Debug, Clone)]
pub struct Bcast {
    cycle: Cycle,
    control: ControlInfo,
    control_slots: u64,
    data_slots: u64,
    overflow_slots: u64,
    /// Current value of every item on air.
    records: BTreeMap<ItemId, ItemRecord>,
    /// Sorted slots at which each item's current version is transmitted
    /// (more than one under the broadcast-disk organization).
    occurrences: BTreeMap<ItemId, Vec<u64>>,
    /// Old versions per item, most recent first, with the slot carrying
    /// each (§3.2). Empty outside multiversion organizations.
    old_versions: BTreeMap<ItemId, Vec<(u64, ItemValue)>>,
    /// The on-air directory, present only when positions shift per cycle
    /// (clustered multiversion organization).
    directory: Option<Directory>,
    /// Slots at which replicated on-air index segments begin ((1, m)
    /// indexing, §2.1); empty when the organization broadcasts no index.
    index_slots: Vec<u64>,
}

impl Bcast {
    /// Assembles a bcast from its parts. Used by the organizations; not
    /// intended for direct construction by applications.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn from_parts(
        cycle: Cycle,
        control: ControlInfo,
        control_slots: u64,
        data_slots: u64,
        overflow_slots: u64,
        records: BTreeMap<ItemId, ItemRecord>,
        occurrences: BTreeMap<ItemId, Vec<u64>>,
        old_versions: BTreeMap<ItemId, Vec<(u64, ItemValue)>>,
        directory: Option<Directory>,
    ) -> Self {
        debug_assert!(occurrences
            .values()
            .all(|s| s.windows(2).all(|w| w[0] < w[1])));
        let total = control_slots + data_slots + overflow_slots;
        debug_assert!(
            occurrences
                .values()
                .flatten()
                .all(|&s| s >= control_slots && s < control_slots + data_slots),
            "current versions live in the data segment"
        );
        debug_assert!(
            old_versions.values().flatten().all(|&(s, _)| s < total),
            "old versions must fit the bcast"
        );
        Bcast {
            cycle,
            control,
            control_slots,
            data_slots,
            overflow_slots,
            records,
            occurrences,
            old_versions,
            directory,
            index_slots: Vec::new(),
        }
    }

    /// Attaches the slots of replicated on-air index segments ((1, m)
    /// indexing).
    pub(crate) fn with_index_slots(mut self, slots: Vec<u64>) -> Self {
        debug_assert!(slots.windows(2).all(|w| w[0] < w[1]));
        self.index_slots = slots;
        self
    }

    /// The cycle this bcast transmits.
    pub fn cycle(&self) -> Cycle {
        self.cycle
    }

    /// The control segment (invalidation report and, for SGT, the
    /// augmented report and graph diff).
    pub fn control(&self) -> &ControlInfo {
        &self.control
    }

    /// Slots occupied by the control segment (including the on-air
    /// directory if the organization needs one).
    pub fn control_slots(&self) -> u64 {
        self.control_slots
    }

    /// First slot of the data segment.
    pub fn data_start(&self) -> u64 {
        self.control_slots
    }

    /// Slots occupied by the data segment.
    pub fn data_slots(&self) -> u64 {
        self.data_slots
    }

    /// Slots occupied by overflow buckets (old versions), if any.
    pub fn overflow_slots(&self) -> u64 {
        self.overflow_slots
    }

    /// Total length of this bcast in slots; the next bcast starts this
    /// many slots after this one began.
    pub fn total_slots(&self) -> u64 {
        self.control_slots + self.data_slots + self.overflow_slots
    }

    /// The number of distinct items on air.
    pub fn item_count(&self) -> usize {
        self.records.len()
    }

    /// The current-version record of `item`, if the item is on air.
    pub fn current(&self, item: ItemId) -> Option<&ItemRecord> {
        self.records.get(&item)
    }

    /// The first slot at which `item`'s current version is transmitted.
    pub fn slot_of_current(&self, item: ItemId) -> Option<u64> {
        self.occurrences.get(&item).and_then(|s| s.first().copied())
    }

    /// The first slot `>= not_before` at which `item`'s current version is
    /// transmitted in *this* bcast; `None` if it has already passed (the
    /// client must wait for the next bcast).
    pub fn next_slot_of_current(&self, item: ItemId, not_before: u64) -> Option<u64> {
        let slots = self.occurrences.get(&item)?;
        let idx = slots.partition_point(|&s| s < not_before);
        slots.get(idx).copied()
    }

    /// All slots at which `item`'s current version appears (one for flat
    /// organizations, several under broadcast disks).
    pub fn occurrences_of(&self, item: ItemId) -> &[u64] {
        self.occurrences.get(&item).map_or(&[], Vec::as_slice)
    }

    /// The old versions of `item` on air, most recent first, each with the
    /// slot that carries it.
    pub fn old_versions_of(&self, item: ItemId) -> &[(u64, ItemValue)] {
        self.old_versions.get(&item).map_or(&[], Vec::as_slice)
    }

    /// The multiversion read rule of §3.2: the value of `item` with the
    /// largest version `<= bound`, searching the current version first and
    /// then the old-version chain. Returns the slot carrying the value.
    pub fn best_version_at_most(&self, item: ItemId, bound: Cycle) -> Option<(u64, ItemValue)> {
        let rec = self.records.get(&item)?;
        if rec.value().version() <= bound {
            return self.slot_of_current(item).map(|s| (s, rec.value()));
        }
        self.old_versions_of(item)
            .iter()
            .find(|(_, v)| v.version() <= bound)
            .copied()
    }

    /// The on-air directory, present only under shifting-position
    /// organizations.
    pub fn directory(&self) -> Option<&Directory> {
        self.directory.as_ref()
    }

    /// Slots of replicated on-air index segments, if the organization
    /// broadcasts any ((1, m) indexing, §2.1).
    pub fn index_slots(&self) -> &[u64] {
        &self.index_slots
    }

    /// The first index segment at or after `not_before` in this bcast,
    /// for a client without a locally stored directory.
    pub fn next_index_slot(&self, not_before: u64) -> Option<u64> {
        let idx = self.index_slots.partition_point(|&s| s < not_before);
        self.index_slots.get(idx).copied()
    }

    /// The header a client would find at `slot` (§2.1 self-description).
    ///
    /// # Panics
    /// Panics if `slot` is outside this bcast.
    pub fn header_at(&self, slot: u64) -> BucketHeader {
        BucketHeader::new(self.cycle, slot, self.total_slots())
    }

    /// Iterates over all current-version records in unspecified order.
    pub fn records(&self) -> impl Iterator<Item = &ItemRecord> {
        self.records.values()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::organization::Flat;
    use bpush_types::TxnId;

    fn simple_bcast() -> Bcast {
        let records: Vec<ItemRecord> = (0..8)
            .map(|i| ItemRecord::new(ItemId::new(i), ItemValue::initial(), None))
            .collect();
        Flat::new(1).assemble(
            Cycle::ZERO,
            ControlInfo::empty(Cycle::ZERO),
            records,
            Vec::new(),
        )
    }

    #[test]
    fn flat_slots_are_sequential() {
        let b = simple_bcast();
        assert_eq!(b.control_slots(), 0);
        assert_eq!(b.data_slots(), 8);
        assert_eq!(b.overflow_slots(), 0);
        assert_eq!(b.total_slots(), 8);
        assert_eq!(b.item_count(), 8);
        for i in 0..8u32 {
            assert_eq!(b.slot_of_current(ItemId::new(i)), Some(u64::from(i)));
        }
        assert_eq!(b.slot_of_current(ItemId::new(9)), None);
    }

    #[test]
    fn next_slot_respects_not_before() {
        let b = simple_bcast();
        let x = ItemId::new(3);
        assert_eq!(b.next_slot_of_current(x, 0), Some(3));
        assert_eq!(b.next_slot_of_current(x, 3), Some(3));
        assert_eq!(b.next_slot_of_current(x, 4), None, "already passed");
        assert_eq!(b.occurrences_of(x), &[3]);
    }

    #[test]
    fn best_version_uses_current_when_old_enough() {
        let mut records = vec![ItemRecord::new(
            ItemId::new(0),
            ItemValue::written_by(TxnId::new(Cycle::new(4), 0)), // version 5
            None,
        )];
        records.push(ItemRecord::new(ItemId::new(1), ItemValue::initial(), None));
        let old = vec![(
            ItemId::new(0),
            vec![ItemValue::initial()], // version 0
        )];
        let b = crate::organization::MultiversionOverflow::new(1).assemble(
            Cycle::new(5),
            ControlInfo::empty(Cycle::new(5)),
            records,
            old,
        );
        // bound 5: current version (5) qualifies
        let (slot, v) = b
            .best_version_at_most(ItemId::new(0), Cycle::new(5))
            .unwrap();
        assert_eq!(v.version(), Cycle::new(5));
        assert!(slot < b.data_start() + b.data_slots());
        // bound 4: must fall back to the old version in overflow
        let (slot, v) = b
            .best_version_at_most(ItemId::new(0), Cycle::new(4))
            .unwrap();
        assert_eq!(v.version(), Cycle::ZERO);
        assert!(
            slot >= b.data_start() + b.data_slots(),
            "old versions at the end"
        );
        // unknown item
        assert!(b
            .best_version_at_most(ItemId::new(9), Cycle::new(9))
            .is_none());
    }

    #[test]
    fn header_self_description() {
        let b = simple_bcast();
        let h = b.header_at(5);
        assert_eq!(h.offset(), 5);
        assert_eq!(h.slots_to_next_bcast(), 3);
        assert_eq!(h.cycle(), Cycle::ZERO);
    }

    #[test]
    #[should_panic(expected = "outside its bcast")]
    fn header_out_of_range() {
        let _ = simple_bcast().header_at(8);
    }
}
