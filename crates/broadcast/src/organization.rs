//! Broadcast organizations: how a cycle's content is laid out on air.
//!
//! Four organizations are provided:
//!
//! * [`Flat`] — §5.1's default: every item exactly once per cycle, in item
//!   order, at positions that never change across cycles.
//! * [`MultiversionOverflow`] — Figure 2(b): current versions at fixed
//!   positions carrying pointers into trailing overflow buckets that hold
//!   the old versions in reverse chronological order.
//! * [`MultiversionClustered`] — Figure 2(a): all retained versions of an
//!   item broadcast successively; positions shift, so a rebuilt
//!   [`Directory`] is broadcast with the control segment every cycle.
//! * [`BroadcastDisks`] — the §7 extension: items partitioned onto virtual
//!   "disks" spinning at different speeds, so hot items appear several
//!   times per (major) cycle.

use std::collections::BTreeMap;

use bpush_types::{Cycle, ItemId, ItemValue};

use crate::bcast::Bcast;
use crate::bucket::ItemRecord;
use crate::control::ControlInfo;
use crate::directory::Directory;
use crate::size_model::SizeParams;

/// Old versions of one item, most recent first.
pub type OldVersions = (ItemId, Vec<ItemValue>);

fn occurrence_map(
    records: &[ItemRecord],
    slot_of_index: impl Fn(usize) -> u64,
) -> (BTreeMap<ItemId, ItemRecord>, BTreeMap<ItemId, Vec<u64>>) {
    let mut map = BTreeMap::new();
    let mut occ = BTreeMap::new();
    for (idx, rec) in records.iter().enumerate() {
        map.insert(rec.item(), *rec);
        occ.insert(rec.item(), vec![slot_of_index(idx)]);
    }
    (map, occ)
}

/// The flat organization: each item once per cycle at a fixed position.
#[derive(Debug, Clone, PartialEq)]
pub struct Flat {
    items_per_bucket: u32,
    sizes: SizeParams,
}

impl Flat {
    /// Creates a flat organization packing `items_per_bucket` records per
    /// bucket.
    ///
    /// # Panics
    /// Panics if `items_per_bucket` is zero.
    pub fn new(items_per_bucket: u32) -> Self {
        assert!(items_per_bucket > 0, "items_per_bucket must be positive");
        Flat {
            items_per_bucket,
            sizes: SizeParams::default(),
        }
    }

    /// Overrides the abstract size parameters used for control-segment
    /// slot accounting.
    #[must_use]
    pub fn with_sizes(mut self, sizes: SizeParams) -> Self {
        self.sizes = sizes;
        self
    }

    /// Assembles the bcast for `cycle`. `records` must be sorted by item
    /// id (fixed positions depend on it); `old_versions` must be empty —
    /// the flat organization carries no old versions.
    ///
    /// # Panics
    /// Panics if `records` is not sorted by item id, or if old versions
    /// are supplied.
    pub fn assemble(
        &self,
        cycle: Cycle,
        control: ControlInfo,
        records: Vec<ItemRecord>,
        old_versions: Vec<OldVersions>,
    ) -> Bcast {
        assert!(
            old_versions.is_empty(),
            "flat organization cannot carry old versions"
        );
        assert!(
            records.windows(2).all(|w| w[0].item() < w[1].item()),
            "records must be sorted by item id"
        );
        let control_slots = control.slots(self.sizes.bucket, self.sizes.key, self.sizes.tid);
        let ipb = u64::from(self.items_per_bucket);
        let data_slots = (records.len() as u64).div_ceil(ipb);
        let (map, occ) = occurrence_map(&records, |idx| control_slots + idx as u64 / ipb);
        Bcast::from_parts(
            cycle,
            control,
            control_slots,
            data_slots,
            0,
            map,
            occ,
            BTreeMap::new(),
            None,
        )
    }
}

/// The flat organization with replicated on-air indexes — the (1, m)
/// indexing of §2.1's self-descriptive broadcast: the full directory is
/// broadcast `m` times per cycle, each copy preceding `1/m` of the data,
/// so a client *without* a locally stored directory tunes to the next
/// index copy (instead of scanning up to a whole cycle) before jumping to
/// its item.
#[derive(Debug, Clone, PartialEq)]
pub struct IndexedFlat {
    segments: u32,
    items_per_bucket: u32,
    sizes: SizeParams,
}

impl IndexedFlat {
    /// Creates the organization with `segments` replicated index copies.
    ///
    /// # Panics
    /// Panics if `segments` or `items_per_bucket` is zero.
    pub fn new(segments: u32, items_per_bucket: u32) -> Self {
        assert!(segments > 0, "at least one index segment required");
        assert!(items_per_bucket > 0, "items_per_bucket must be positive");
        IndexedFlat {
            segments,
            items_per_bucket,
            sizes: SizeParams::default(),
        }
    }

    /// Overrides the abstract size parameters.
    #[must_use]
    pub fn with_sizes(mut self, sizes: SizeParams) -> Self {
        self.sizes = sizes;
        self
    }

    /// Number of replicated index copies per cycle.
    pub fn segments(&self) -> u32 {
        self.segments
    }

    /// Slots one index copy occupies for `n` items.
    pub fn index_copy_slots(&self, n: usize) -> u64 {
        (n as u64 * u64::from(self.sizes.key + self.sizes.ptr))
            .div_ceil(u64::from(self.sizes.bucket))
    }

    /// Assembles the bcast: control, then `m` repetitions of
    /// (index copy, data chunk). `records` must be sorted by item id;
    /// old versions are not supported.
    ///
    /// # Panics
    /// Panics if `records` is unsorted or old versions are supplied.
    pub fn assemble(
        &self,
        cycle: Cycle,
        control: ControlInfo,
        records: Vec<ItemRecord>,
        old_versions: Vec<OldVersions>,
    ) -> Bcast {
        assert!(
            old_versions.is_empty(),
            "indexed flat organization cannot carry old versions"
        );
        assert!(
            records.windows(2).all(|w| w[0].item() < w[1].item()),
            "records must be sorted by item id"
        );
        let control_slots = control.slots(self.sizes.bucket, self.sizes.key, self.sizes.tid);
        let ipb = u64::from(self.items_per_bucket);
        let idx_slots = self.index_copy_slots(records.len());
        let m = u64::from(self.segments);
        let chunk_items = (records.len() as u64).div_ceil(m);

        let mut index_slots = Vec::with_capacity(self.segments as usize);
        let mut map = BTreeMap::new();
        let mut occ = BTreeMap::new();
        let mut slot = control_slots;
        for (chunk_idx, chunk) in records.chunks(chunk_items.max(1) as usize).enumerate() {
            let _ = chunk_idx;
            index_slots.push(slot);
            slot += idx_slots;
            for (i, rec) in chunk.iter().enumerate() {
                map.insert(rec.item(), *rec);
                occ.insert(rec.item(), vec![slot + i as u64 / ipb]);
            }
            slot += (chunk.len() as u64).div_ceil(ipb);
        }
        let data_slots = slot - control_slots;
        Bcast::from_parts(
            cycle,
            control,
            control_slots,
            data_slots,
            0,
            map,
            occ,
            BTreeMap::new(),
            None,
        )
        .with_index_slots(index_slots)
    }
}

/// The multiversion overflow organization (Figure 2b).
#[derive(Debug, Clone, PartialEq)]
pub struct MultiversionOverflow {
    items_per_bucket: u32,
    sizes: SizeParams,
}

impl MultiversionOverflow {
    /// Creates the organization packing `items_per_bucket` current records
    /// per bucket. Old versions are packed at the same density into the
    /// overflow area.
    ///
    /// # Panics
    /// Panics if `items_per_bucket` is zero.
    pub fn new(items_per_bucket: u32) -> Self {
        assert!(items_per_bucket > 0, "items_per_bucket must be positive");
        MultiversionOverflow {
            items_per_bucket,
            sizes: SizeParams::default(),
        }
    }

    /// Overrides the abstract size parameters.
    #[must_use]
    pub fn with_sizes(mut self, sizes: SizeParams) -> Self {
        self.sizes = sizes;
        self
    }

    /// Assembles the bcast: fixed-position data segment followed by
    /// overflow buckets holding `old_versions` (each inner vector most
    /// recent first). Records gain overflow pointers.
    ///
    /// # Panics
    /// Panics if `records` is not sorted by item id or an old-version
    /// chain is not in reverse chronological order.
    pub fn assemble(
        &self,
        cycle: Cycle,
        control: ControlInfo,
        mut records: Vec<ItemRecord>,
        old_versions: Vec<OldVersions>,
    ) -> Bcast {
        assert!(
            records.windows(2).all(|w| w[0].item() < w[1].item()),
            "records must be sorted by item id"
        );
        let control_slots = control.slots(self.sizes.bucket, self.sizes.key, self.sizes.tid);
        let ipb = u64::from(self.items_per_bucket);
        let data_slots = (records.len() as u64).div_ceil(ipb);
        let overflow_start = control_slots + data_slots;

        // Lay out the overflow area and attach pointers.
        let mut old_map: BTreeMap<ItemId, Vec<(u64, ItemValue)>> = BTreeMap::new();
        let mut index_of: BTreeMap<ItemId, usize> = records
            .iter()
            .enumerate()
            .map(|(i, r)| (r.item(), i))
            .collect();
        let mut next_entry = 0u64;
        for (item, versions) in &old_versions {
            assert!(
                versions.windows(2).all(|w| w[0].version() > w[1].version()),
                "old versions must be in reverse chronological order"
            );
            if versions.is_empty() {
                continue;
            }
            if let Some(&idx) = index_of.get(item) {
                records[idx] = records[idx].with_overflow_ptr(next_entry);
            }
            let chain = old_map.entry(*item).or_default();
            for v in versions {
                chain.push((overflow_start + next_entry / ipb, *v));
                next_entry += 1;
            }
        }
        index_of.clear();
        let overflow_slots = next_entry.div_ceil(ipb);
        let (map, occ) = occurrence_map(&records, |idx| control_slots + idx as u64 / ipb);
        Bcast::from_parts(
            cycle,
            control,
            control_slots,
            data_slots,
            overflow_slots,
            map,
            occ,
            old_map,
            None,
        )
    }
}

/// The multiversion clustered organization (Figure 2a): all versions of an
/// item adjacent, a rebuilt directory broadcast every cycle.
///
/// Entries (current or old version) occupy one slot each; the
/// `items_per_bucket` packing of the fixed-position organizations does not
/// apply because entries per item vary.
#[derive(Debug, Clone, PartialEq)]
pub struct MultiversionClustered {
    sizes: SizeParams,
}

impl MultiversionClustered {
    /// Creates the organization.
    pub fn new() -> Self {
        MultiversionClustered {
            sizes: SizeParams::default(),
        }
    }

    /// Overrides the abstract size parameters.
    #[must_use]
    pub fn with_sizes(mut self, sizes: SizeParams) -> Self {
        self.sizes = sizes;
        self
    }

    /// Assembles the bcast: for each item (in id order) the current
    /// version followed by its old versions, with the directory appended
    /// to the control segment.
    ///
    /// # Panics
    /// Panics if `records` is not sorted by item id or an old-version
    /// chain is out of order.
    pub fn assemble(
        &self,
        cycle: Cycle,
        control: ControlInfo,
        records: Vec<ItemRecord>,
        old_versions: Vec<OldVersions>,
    ) -> Bcast {
        assert!(
            records.windows(2).all(|w| w[0].item() < w[1].item()),
            "records must be sorted by item id"
        );
        let old_by_item: BTreeMap<ItemId, &Vec<ItemValue>> =
            old_versions.iter().map(|(x, vs)| (*x, vs)).collect();
        for vs in old_by_item.values() {
            assert!(
                vs.windows(2).all(|w| w[0].version() > w[1].version()),
                "old versions must be in reverse chronological order"
            );
        }

        // First pass: positions relative to the start of the data segment.
        let mut rel = 0u64;
        let mut dir_entries = Vec::with_capacity(records.len());
        let mut rel_old: BTreeMap<ItemId, Vec<(u64, ItemValue)>> = BTreeMap::new();
        let mut rel_occ: BTreeMap<ItemId, u64> = BTreeMap::new();
        for rec in &records {
            dir_entries.push((rec.item(), rel));
            rel_occ.insert(rec.item(), rel);
            rel += 1;
            if let Some(vs) = old_by_item.get(&rec.item()) {
                let chain = rel_old.entry(rec.item()).or_default();
                for v in vs.iter() {
                    chain.push((rel, *v));
                    rel += 1;
                }
            }
        }
        let data_slots = rel;

        // The directory itself is broadcast with the control segment; its
        // entries point at data-segment offsets, which the client resolves
        // against `data_start`.
        let directory = Directory::new(cycle, dir_entries);
        let control_slots = control.slots(self.sizes.bucket, self.sizes.key, self.sizes.tid)
            + directory.slots_on_air(self.sizes.bucket, self.sizes.key, self.sizes.ptr);

        let mut map = BTreeMap::new();
        let mut occ = BTreeMap::new();
        for rec in &records {
            map.insert(rec.item(), *rec);
            occ.insert(rec.item(), vec![control_slots + rel_occ[&rec.item()]]);
        }
        let old_map = rel_old
            .into_iter()
            .map(|(x, chain)| {
                (
                    x,
                    chain
                        .into_iter()
                        .map(|(r, v)| (control_slots + r, v))
                        .collect(),
                )
            })
            .collect();
        Bcast::from_parts(
            cycle,
            control,
            control_slots,
            data_slots,
            0,
            map,
            occ,
            old_map,
            Some(directory),
        )
    }
}

impl Default for MultiversionClustered {
    fn default() -> Self {
        MultiversionClustered::new()
    }
}

/// One virtual disk of a [`BroadcastDisks`] organization: how many of the
/// (id-ordered) items it holds and its relative spin speed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DiskSpec {
    /// Number of consecutive items (taken in id order) on this disk.
    pub items: u32,
    /// Relative broadcast frequency (1 = once per major cycle).
    pub rel_freq: u32,
}

/// The broadcast-disk organization of Acharya et al., referenced by the
/// paper's §7 as the non-flat extension: items are partitioned onto disks
/// spinning at different relative frequencies, and the bcast interleaves
/// fixed-size chunks so that a disk with relative frequency `f` appears
/// `f` times per major cycle.
#[derive(Debug, Clone, PartialEq)]
pub struct BroadcastDisks {
    disks: Vec<DiskSpec>,
    sizes: SizeParams,
}

impl BroadcastDisks {
    /// Creates the organization from disk specifications. Items are
    /// assigned to disks in id order (put the hot range first).
    ///
    /// # Panics
    /// Panics if no disk is given, or any disk has zero items or zero
    /// frequency.
    pub fn new(disks: Vec<DiskSpec>) -> Self {
        assert!(!disks.is_empty(), "at least one disk required");
        assert!(
            disks.iter().all(|d| d.items > 0 && d.rel_freq > 0),
            "disks must have items and a positive frequency"
        );
        BroadcastDisks {
            disks,
            sizes: SizeParams::default(),
        }
    }

    /// Overrides the abstract size parameters.
    #[must_use]
    pub fn with_sizes(mut self, sizes: SizeParams) -> Self {
        self.sizes = sizes;
        self
    }

    /// Total items the disks expect.
    pub fn expected_items(&self) -> u32 {
        self.disks.iter().map(|d| d.items).sum()
    }

    /// Assembles the bcast using the standard chunk-interleaving schedule:
    /// with `L = lcm(rel_freq)`, disk `i` is split into `L / rel_freq_i`
    /// chunks and minor cycle `j` broadcasts chunk `j mod chunks_i` of
    /// every disk.
    ///
    /// # Panics
    /// Panics if `records` is not sorted by item id, does not match
    /// [`BroadcastDisks::expected_items`], or old versions are supplied
    /// (the disk organization carries current versions only).
    pub fn assemble(
        &self,
        cycle: Cycle,
        control: ControlInfo,
        records: Vec<ItemRecord>,
        old_versions: Vec<OldVersions>,
    ) -> Bcast {
        assert!(
            old_versions.is_empty(),
            "broadcast disks carry current versions only"
        );
        assert!(
            records.windows(2).all(|w| w[0].item() < w[1].item()),
            "records must be sorted by item id"
        );
        assert_eq!(
            records.len(),
            self.expected_items() as usize,
            "record count must match the disk partitioning"
        );
        let control_slots = control.slots(self.sizes.bucket, self.sizes.key, self.sizes.tid);

        let l = self
            .disks
            .iter()
            .map(|d| u64::from(d.rel_freq))
            .fold(1u64, lcm);
        // Split each disk into chunks.
        struct DiskLayout<'a> {
            records: &'a [ItemRecord],
            num_chunks: u64,
            chunk_size: u64,
        }
        let mut layouts = Vec::with_capacity(self.disks.len());
        let mut start = 0usize;
        for d in &self.disks {
            let slice = &records[start..start + d.items as usize];
            start += d.items as usize;
            let num_chunks = l / u64::from(d.rel_freq);
            let chunk_size = (slice.len() as u64).div_ceil(num_chunks);
            layouts.push(DiskLayout {
                records: slice,
                num_chunks,
                chunk_size,
            });
        }

        let mut occ: BTreeMap<ItemId, Vec<u64>> = BTreeMap::new();
        let mut slot = control_slots;
        for minor in 0..l {
            for layout in &layouts {
                let chunk = minor % layout.num_chunks;
                let len = layout.records.len() as u64;
                let lo = (chunk * layout.chunk_size).min(len) as usize;
                let hi = ((chunk + 1) * layout.chunk_size).min(len) as usize;
                for rec in &layout.records[lo..hi] {
                    occ.entry(rec.item()).or_default().push(slot);
                    slot += 1;
                }
                // a short final chunk still occupies full chunk_size slots
                // (padding), matching the fixed-chunk schedule
                slot += layout.chunk_size - (hi - lo) as u64;
            }
        }
        let data_slots = slot - control_slots;
        let map: BTreeMap<ItemId, ItemRecord> = records.iter().map(|r| (r.item(), *r)).collect();
        Bcast::from_parts(
            cycle,
            control,
            control_slots,
            data_slots,
            0,
            map,
            occ,
            BTreeMap::new(),
            None,
        )
    }
}

fn gcd(a: u64, b: u64) -> u64 {
    if b == 0 {
        a
    } else {
        gcd(b, a % b)
    }
}

fn lcm(a: u64, b: u64) -> u64 {
    a / gcd(a, b) * b
}

#[cfg(test)]
mod tests {
    use super::*;
    use bpush_types::TxnId;

    fn records(n: u32) -> Vec<ItemRecord> {
        (0..n)
            .map(|i| ItemRecord::new(ItemId::new(i), ItemValue::initial(), None))
            .collect()
    }

    #[test]
    fn flat_packs_items_per_bucket() {
        let b = Flat::new(4).assemble(
            Cycle::ZERO,
            ControlInfo::empty(Cycle::ZERO),
            records(10),
            Vec::new(),
        );
        assert_eq!(b.data_slots(), 3);
        assert_eq!(b.slot_of_current(ItemId::new(0)), Some(0));
        assert_eq!(b.slot_of_current(ItemId::new(3)), Some(0));
        assert_eq!(b.slot_of_current(ItemId::new(4)), Some(1));
        assert_eq!(b.slot_of_current(ItemId::new(9)), Some(2));
    }

    #[test]
    #[should_panic(expected = "sorted")]
    fn flat_rejects_unsorted_records() {
        let mut recs = records(3);
        recs.swap(0, 1);
        let _ = Flat::new(1).assemble(
            Cycle::ZERO,
            ControlInfo::empty(Cycle::ZERO),
            recs,
            Vec::new(),
        );
    }

    #[test]
    #[should_panic(expected = "old versions")]
    fn flat_rejects_old_versions() {
        let _ = Flat::new(1).assemble(
            Cycle::ZERO,
            ControlInfo::empty(Cycle::ZERO),
            records(1),
            vec![(ItemId::new(0), vec![ItemValue::initial()])],
        );
    }

    fn old_chain(cycles: &[u64]) -> Vec<ItemValue> {
        cycles
            .iter()
            .map(|&c| {
                if c == 0 {
                    ItemValue::initial()
                } else {
                    ItemValue::written_by(TxnId::new(Cycle::new(c - 1), 0))
                }
            })
            .collect()
    }

    #[test]
    fn overflow_layout_places_old_versions_at_end() {
        let mut recs = records(5);
        recs[2] = ItemRecord::new(
            ItemId::new(2),
            ItemValue::written_by(TxnId::new(Cycle::new(4), 0)),
            None,
        );
        let old = vec![
            (ItemId::new(2), old_chain(&[3, 0])),
            (ItemId::new(4), old_chain(&[2])),
        ];
        let b = MultiversionOverflow::new(1).assemble(
            Cycle::new(5),
            ControlInfo::empty(Cycle::new(5)),
            recs,
            old,
        );
        assert_eq!(b.data_slots(), 5);
        assert_eq!(b.overflow_slots(), 3);
        assert_eq!(b.total_slots(), 8);
        // fixed positions preserved
        assert_eq!(b.slot_of_current(ItemId::new(2)), Some(2));
        // old versions in overflow area, most recent first
        let chain = b.old_versions_of(ItemId::new(2));
        assert_eq!(chain.len(), 2);
        assert!(chain[0].0 >= 5 && chain[1].0 >= 5);
        assert!(chain[0].1.version() > chain[1].1.version());
        // the record carries an overflow pointer
        assert_eq!(b.current(ItemId::new(2)).unwrap().overflow_ptr(), Some(0));
        assert_eq!(b.current(ItemId::new(4)).unwrap().overflow_ptr(), Some(2));
        assert_eq!(b.current(ItemId::new(0)).unwrap().overflow_ptr(), None);
    }

    #[test]
    fn clustered_layout_shifts_positions_and_indexes() {
        let mut recs = records(4);
        recs[1] = ItemRecord::new(
            ItemId::new(1),
            ItemValue::written_by(TxnId::new(Cycle::new(2), 0)),
            None,
        );
        let old = vec![(ItemId::new(1), old_chain(&[1]))];
        let b = MultiversionClustered::new().assemble(
            Cycle::new(3),
            ControlInfo::empty(Cycle::new(3)),
            recs,
            old,
        );
        // data: x0, x1, x1(old), x2, x3 -> 5 slots
        assert_eq!(b.data_slots(), 5);
        let dir = b.directory().expect("clustered broadcasts a directory");
        assert_eq!(dir.len(), 4);
        // item 2 shifted one slot right of where flat would put it
        let base = b.data_start();
        assert_eq!(b.slot_of_current(ItemId::new(1)), Some(base + 1));
        assert_eq!(b.slot_of_current(ItemId::new(2)), Some(base + 3));
        // old version of item 1 sits right after its current version
        assert_eq!(b.old_versions_of(ItemId::new(1))[0].0, base + 2);
        // directory agrees with actual positions
        assert_eq!(dir.slot_of(ItemId::new(2)), Some(3));
        // control segment includes the directory
        assert!(b.control_slots() > 0);
    }

    #[test]
    fn disks_hot_items_appear_more_often() {
        let org = BroadcastDisks::new(vec![
            DiskSpec {
                items: 2,
                rel_freq: 2,
            },
            DiskSpec {
                items: 4,
                rel_freq: 1,
            },
        ]);
        assert_eq!(org.expected_items(), 6);
        let b = org.assemble(
            Cycle::ZERO,
            ControlInfo::empty(Cycle::ZERO),
            records(6),
            Vec::new(),
        );
        // L = 2 minor cycles; hot disk (1 chunk of 2) appears twice; cold
        // disk split into 2 chunks of 2.
        assert_eq!(b.occurrences_of(ItemId::new(0)).len(), 2);
        assert_eq!(b.occurrences_of(ItemId::new(5)).len(), 1);
        // schedule: [0,1, 2,3] [0,1, 4,5] -> 8 slots
        assert_eq!(b.data_slots(), 8);
        assert_eq!(b.occurrences_of(ItemId::new(0)), &[0, 4]);
        assert_eq!(b.occurrences_of(ItemId::new(4)), &[6]);
    }

    #[test]
    fn disks_mean_wait_is_lower_for_hot_items() {
        // With frequency 2, expected wait for a hot item is ~1/4 of the
        // major cycle vs ~1/2 for a cold item.
        let org = BroadcastDisks::new(vec![
            DiskSpec {
                items: 4,
                rel_freq: 4,
            },
            DiskSpec {
                items: 16,
                rel_freq: 1,
            },
        ]);
        let b = org.assemble(
            Cycle::ZERO,
            ControlInfo::empty(Cycle::ZERO),
            records(20),
            Vec::new(),
        );
        let mean_wait = |item: ItemId| -> f64 {
            let occ = b.occurrences_of(item);
            let total = b.total_slots();
            // average over all starting slots of distance to next occurrence
            let mut sum = 0u64;
            for start in 0..total {
                let d = occ
                    .iter()
                    .map(|&s| {
                        if s >= start {
                            s - start
                        } else {
                            s + total - start
                        }
                    })
                    .min()
                    .unwrap();
                sum += d;
            }
            sum as f64 / total as f64
        };
        assert!(mean_wait(ItemId::new(0)) < mean_wait(ItemId::new(19)) / 2.0);
    }

    #[test]
    #[should_panic(expected = "match the disk partitioning")]
    fn disks_reject_wrong_item_count() {
        let org = BroadcastDisks::new(vec![DiskSpec {
            items: 3,
            rel_freq: 1,
        }]);
        let _ = org.assemble(
            Cycle::ZERO,
            ControlInfo::empty(Cycle::ZERO),
            records(2),
            Vec::new(),
        );
    }

    #[test]
    fn indexed_flat_interleaves_index_copies() {
        let org = IndexedFlat::new(4, 1);
        assert_eq!(org.segments(), 4);
        let b = org.assemble(
            Cycle::ZERO,
            ControlInfo::empty(Cycle::ZERO),
            records(20),
            Vec::new(),
        );
        assert_eq!(b.index_slots().len(), 4);
        let idx = org.index_copy_slots(20);
        // segments are evenly spread: chunk of 5 items after each copy
        let expected: Vec<u64> = (0..4).map(|i| i * (idx + 5)).collect();
        assert_eq!(b.index_slots(), expected.as_slice());
        // all items present, all within the data region
        for i in 0..20u32 {
            let s = b.slot_of_current(ItemId::new(i)).unwrap();
            assert!(s < b.total_slots());
        }
        // next_index_slot wraps correctly
        assert_eq!(b.next_index_slot(0), Some(expected[0]));
        assert_eq!(b.next_index_slot(expected[1] + 1), Some(expected[2]));
        assert_eq!(b.next_index_slot(expected[3] + 1), None);
        // total length = data + 4 index copies
        assert_eq!(b.total_slots(), 20 + 4 * idx);
    }

    #[test]
    fn indexed_flat_single_segment_is_flat_plus_one_index() {
        let org = IndexedFlat::new(1, 1);
        let b = org.assemble(
            Cycle::ZERO,
            ControlInfo::empty(Cycle::ZERO),
            records(10),
            Vec::new(),
        );
        assert_eq!(b.index_slots().len(), 1);
        assert_eq!(b.total_slots(), 10 + org.index_copy_slots(10));
    }

    #[test]
    #[should_panic(expected = "index segment")]
    fn indexed_flat_rejects_zero_segments() {
        let _ = IndexedFlat::new(0, 1);
    }

    #[test]
    fn lcm_gcd_helpers() {
        assert_eq!(gcd(12, 18), 6);
        assert_eq!(lcm(4, 6), 12);
        assert_eq!(lcm(1, 7), 7);
    }
}
