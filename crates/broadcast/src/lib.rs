//! The broadcast-medium substrate of the `bpush` suite.
//!
//! §2.1 of *Pitoura & Chrysanthis 1999* models the push channel as a
//! periodic sequence of **buckets** (the disk-block analog): each
//! broadcast cycle ("bcycle") transmits a **bcast** consisting of control
//! information followed by the database content, organized by one of
//! several schemes:
//!
//! * [`organization::Flat`] — every item once per cycle, fixed positions
//!   (the paper's evaluation default),
//! * [`organization::MultiversionClustered`] — all retained versions of an
//!   item broadcast successively (Figure 2a); positions shift each cycle
//!   so a fresh [`Directory`] is broadcast and read,
//! * [`organization::MultiversionOverflow`] — fixed positions plus
//!   overflow buckets holding old versions at the end of the bcast
//!   (Figure 2b),
//! * [`organization::BroadcastDisks`] — the §7 broadcast-disk extension
//!   where hot items appear multiple times per major cycle.
//!
//! The crate also carries the **control information** the protocols need
//! ([`control`]) and the **analytic size model** of §3 used to regenerate
//! Figure 7 ([`size_model`]).
//!
//! Time is measured in [`bpush_types::Slot`]s: transmitting one bucket
//! takes one slot, and all latency accounting downstream counts slots.
//!
//! # Example
//!
//! ```
//! use bpush_broadcast::organization::Flat;
//! use bpush_broadcast::{Bcast, ControlInfo, ItemRecord};
//! use bpush_types::{Cycle, ItemId, ItemValue};
//!
//! let records: Vec<ItemRecord> = (0..10)
//!     .map(|i| ItemRecord::new(ItemId::new(i), ItemValue::initial(), None))
//!     .collect();
//! let bcast = Flat::new(1).assemble(
//!     Cycle::ZERO,
//!     ControlInfo::empty(Cycle::ZERO),
//!     records,
//!     Vec::new(),
//! );
//! assert_eq!(bcast.data_slots(), 10);
//! let slot = bcast.slot_of_current(ItemId::new(3)).expect("item on air");
//! assert!(slot >= bcast.control_slots());
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]
#![warn(missing_debug_implementations)]

mod bcast;
mod bucket;
pub mod control;
mod directory;
pub mod feed;
pub mod organization;
pub mod size_model;
pub mod wire;

pub use bcast::Bcast;
pub use bucket::{Bucket, BucketHeader, ItemRecord, OldVersion};
pub use control::{AugmentedReport, ControlInfo, InvalidationReport};
pub use directory::Directory;
