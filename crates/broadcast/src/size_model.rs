//! The analytic broadcast-size model of §3, used to regenerate Figure 7.
//!
//! All sizes are expressed in abstract **bit units** and converted to
//! buckets by rounding up against the bucket payload size, exactly
//! mirroring the `⌈·/b⌉` expressions of the paper:
//!
//! * invalidation-only (§3.1): extra `⌈u·k / b⌉`,
//! * multiversion broadcast (§3.2): clustered vs. overflow organizations,
//!   with version numbers of `log(S)` bits and overflow pointers of
//!   `log(B)` bits,
//! * SGT (§3.3): last-writer tags of `log(N)` bits on every item, the
//!   augmented invalidation report, and the graph difference of at most
//!   `c·N` edges,
//! * multiversion caching (§4.2): the invalidation-only report plus
//!   per-item version numbers.

/// Abstract on-air field sizes, in bit units.
///
/// Defaults follow the paper's ratios: a key of `k` units, other
/// attributes `d = 5k`, and a bucket holding exactly one full record
/// (`b = k + d`), instantiated at `k = 32` bits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SizeParams {
    /// Key size `k` in bits.
    pub key: u32,
    /// Non-key attribute size `d` in bits.
    pub data: u32,
    /// Bucket payload size `b` in bits.
    pub bucket: u32,
    /// Transaction-identifier size in bits (`log N (+ log S)`).
    pub tid: u32,
    /// Version-number size in bits (`log S`).
    pub version: u32,
    /// Overflow-pointer size in bits (`log B`).
    pub ptr: u32,
}

impl Default for SizeParams {
    fn default() -> Self {
        SizeParams {
            key: 32,
            data: 160,
            bucket: 192,
            tid: 8,
            version: 2,
            ptr: 8,
        }
    }
}

/// Number of bits needed to count `0..=n` (`⌈log2(n + 1)⌉`, minimum 1).
pub fn bits_for(n: u64) -> u32 {
    (64 - n.leading_zeros()).max(1)
}

/// The broadcast-size model for a database of `d_items` items.
///
/// # Example
/// ```
/// use bpush_broadcast::size_model::SizeModel;
/// let m = SizeModel::paper_default();
/// let base = m.base_buckets();
/// assert_eq!(base, 1000);
/// // invalidation-only at U = 50 costs about 1% (the paper's Table 1)
/// let pct = m.percent_increase(m.invalidation_only_extra(50));
/// assert!(pct < 2.0, "{pct}");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SizeModel {
    d_items: u32,
    params: SizeParams,
}

impl SizeModel {
    /// Builds the model for `d_items` items with explicit field sizes.
    ///
    /// # Panics
    /// Panics if `d_items` is zero or the bucket payload is zero.
    pub fn new(d_items: u32, params: SizeParams) -> Self {
        assert!(d_items > 0, "database must be non-empty");
        assert!(params.bucket > 0, "bucket payload must be positive");
        SizeModel { d_items, params }
    }

    /// The paper's default instance: `D = 1000`, one record per bucket.
    pub fn paper_default() -> Self {
        SizeModel::new(1000, SizeParams::default())
    }

    /// Database size `D`.
    pub fn d_items(&self) -> u32 {
        self.d_items
    }

    /// Field sizes in use.
    pub fn params(&self) -> SizeParams {
        self.params
    }

    fn buckets_for(self, bits: u64) -> u64 {
        bits.div_ceil(u64::from(self.params.bucket))
    }

    /// Buckets of a plain bcast: `⌈D(k + d) / b⌉`.
    pub fn base_buckets(&self) -> u64 {
        self.buckets_for(u64::from(self.d_items) * u64::from(self.params.key + self.params.data))
    }

    /// Extra buckets for the invalidation-only method at `updates` items
    /// per cycle: `⌈u·k / b⌉` (§3.1).
    pub fn invalidation_only_extra(&self, updates: u32) -> u64 {
        self.buckets_for(u64::from(updates) * u64::from(self.params.key))
    }

    /// Bits of one old version on air: key + attributes + version number
    /// sized for `span` retained cycles.
    fn old_version_bits(&self, span: u32) -> u64 {
        u64::from(self.params.key + self.params.data) + u64::from(bits_for(u64::from(span)))
    }

    /// Number of old versions on air in steady state: `u(S − 1)` (§3.2;
    /// each update displaces a value that remains on air for the next
    /// `S − 1` cycles).
    pub fn old_version_count(&self, updates: u32, span: u32) -> u64 {
        u64::from(updates) * u64::from(span.saturating_sub(1))
    }

    /// Extra buckets for the overflow multiversion organization
    /// (Figure 2b): per-item overflow pointers of `log B` bits plus the
    /// overflow buckets themselves, plus the invalidation-only report
    /// (multiversion clients still read it to learn first-update cycles).
    pub fn multiversion_overflow_extra(&self, updates: u32, span: u32) -> u64 {
        let overflow_bits = self.old_version_count(updates, span) * self.old_version_bits(span);
        let overflow_buckets = self.buckets_for(overflow_bits);
        let ptr_bits = u64::from(self.d_items) * u64::from(bits_for(overflow_buckets));
        self.invalidation_only_extra(updates) + self.buckets_for(ptr_bits) + overflow_buckets
    }

    /// Extra buckets for the clustered multiversion organization
    /// (Figure 2a): every record gains a version number, the old versions
    /// are broadcast inline, and a rebuilt index (key + offset per item)
    /// is broadcast each cycle because positions shift.
    pub fn multiversion_clustered_extra(&self, updates: u32, span: u32) -> u64 {
        let version_bits = u64::from(self.d_items) * u64::from(bits_for(u64::from(span)));
        let old_bits = self.old_version_count(updates, span) * self.old_version_bits(span);
        let index_bits = u64::from(self.d_items)
            * u64::from(self.params.key + bits_for(u64::from(self.d_items)));
        self.invalidation_only_extra(updates)
            + self.buckets_for(version_bits)
            + self.buckets_for(old_bits)
            + self.buckets_for(index_bits)
    }

    /// Extra buckets for the SGT method (§3.3) with `n_txns` transactions
    /// of `ops_per_txn` operations each committing per cycle and
    /// `updates` updated items: last-writer tags on all data, the
    /// augmented invalidation report, and the graph difference of at most
    /// `c·N` edges, each edge a pair of transaction identifiers.
    pub fn sgt_extra(&self, n_txns: u32, ops_per_txn: u32, updates: u32) -> u64 {
        let tid_bits = u64::from(bits_for(u64::from(n_txns))) + u64::from(self.params.version);
        let tags = u64::from(self.d_items) * tid_bits;
        let report = u64::from(updates) * (u64::from(self.params.key) + tid_bits);
        let edges = u64::from(n_txns) * u64::from(ops_per_txn);
        let diff = edges * 2 * tid_bits;
        self.buckets_for(tags) + self.buckets_for(report) + self.buckets_for(diff)
    }

    /// Extra buckets for multiversion caching (§4.2): the
    /// invalidation-only report plus a version number on every item.
    pub fn multiversion_caching_extra(&self, updates: u32, span: u32) -> u64 {
        let version_bits = u64::from(self.d_items) * u64::from(bits_for(u64::from(span)));
        self.invalidation_only_extra(updates) + self.buckets_for(version_bits)
    }

    /// An extra bucket count as a percentage of the base bcast size.
    pub fn percent_increase(&self, extra_buckets: u64) -> f64 {
        extra_buckets as f64 / self.base_buckets() as f64 * 100.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bits_for_counts() {
        assert_eq!(bits_for(0), 1);
        assert_eq!(bits_for(1), 1);
        assert_eq!(bits_for(2), 2);
        assert_eq!(bits_for(3), 2);
        assert_eq!(bits_for(4), 3);
        assert_eq!(bits_for(255), 8);
        assert_eq!(bits_for(256), 9);
    }

    #[test]
    fn base_is_one_bucket_per_item_at_defaults() {
        let m = SizeModel::paper_default();
        assert_eq!(m.base_buckets(), 1000);
        assert_eq!(m.d_items(), 1000);
    }

    #[test]
    fn table1_magnitudes_hold() {
        // Table 1: at U = 50, span = 3, N = 10 the paper reports roughly
        // 1% (invalidation-only), 12% (multiversion), 2.5% (SGT with
        // c = 25 ops/txn), 1.8% (multiversion caching). We require the
        // same ordering and the same magnitude bands.
        let m = SizeModel::paper_default();
        let inv = m.percent_increase(m.invalidation_only_extra(50));
        let mv = m.percent_increase(m.multiversion_overflow_extra(50, 3));
        let sgt = m.percent_increase(m.sgt_extra(10, 25, 50));
        let mc = m.percent_increase(m.multiversion_caching_extra(50, 3));
        assert!(inv < 2.0, "invalidation-only ~1%: {inv}");
        assert!((5.0..25.0).contains(&mv), "multiversion ~12%: {mv}");
        assert!((1.0..10.0).contains(&sgt), "SGT ~2.5%: {sgt}");
        assert!((1.0..5.0).contains(&mc), "MC ~1.8%: {mc}");
        assert!(inv < mc && mc < mv, "ordering: {inv} < {mc} < {mv}");
        assert!(inv < sgt && sgt < mv, "ordering: {inv} < {sgt} < {mv}");
    }

    #[test]
    fn multiversion_grows_with_span_and_updates() {
        let m = SizeModel::paper_default();
        let mut prev = 0;
        for span in 1..=8 {
            let e = m.multiversion_overflow_extra(50, span);
            assert!(e >= prev, "monotone in span");
            prev = e;
        }
        assert!(
            m.multiversion_overflow_extra(500, 3) > m.multiversion_overflow_extra(50, 3),
            "monotone in updates"
        );
        // span 1 keeps no old versions at all
        assert_eq!(m.old_version_count(50, 1), 0);
    }

    #[test]
    fn clustered_costs_more_than_overflow() {
        // The clustered organization pays for a rebuilt index every cycle.
        let m = SizeModel::paper_default();
        for &(u, s) in &[(50u32, 3u32), (200, 5), (500, 8)] {
            assert!(
                m.multiversion_clustered_extra(u, s) > m.multiversion_overflow_extra(u, s),
                "u={u} s={s}"
            );
        }
    }

    #[test]
    fn sgt_grows_with_server_activity() {
        let m = SizeModel::paper_default();
        assert!(m.sgt_extra(10, 250, 500) > m.sgt_extra(10, 25, 50));
        assert!(m.sgt_extra(100, 25, 50) > m.sgt_extra(10, 25, 50));
    }

    #[test]
    fn invalidation_only_is_linear_in_updates() {
        let m = SizeModel::paper_default();
        let e50 = m.invalidation_only_extra(50);
        let e500 = m.invalidation_only_extra(500);
        assert!(e500 >= 9 * e50 && e500 <= 11 * e50, "{e50} vs {e500}");
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn zero_database_rejected() {
        let _ = SizeModel::new(0, SizeParams::default());
    }
}
