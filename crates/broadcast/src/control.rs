//! Control information broadcast ahead of the data (§3).
//!
//! Every bcast is preceded by an [`InvalidationReport`]; when the SGT
//! method is active the server additionally broadcasts an
//! [`AugmentedReport`] (item → first writer of the cycle) and the
//! serialization-graph difference ([`bpush_sgraph::GraphDiff`]).
//! [`ControlInfo`] bundles all three and knows its own on-air size.

use std::collections::BTreeMap;
use std::fmt;

// bpush-lint: sans_io — protocol core: pure control-information computation, no clocks/threads/files/sockets

use bpush_sgraph::GraphDiff;
use bpush_types::{BpushError, BucketId, Cycle, Granularity, ItemId, TxnId};

/// Widest id span (in 64-bit words) a report's dense bitmap covers:
/// 1024 words = 65,536 item ids. Reports name items of one broadcast
/// database, whose ids are assigned contiguously from zero, so real
/// report windows always fit; the cap only bounds memory against
/// adversarial (e.g. fuzzed wire-decode) id patterns, which simply fall
/// back to the galloping probes.
const DENSE_SPAN_WORDS: usize = 1024;

/// Dense 64-bit bitmap over a report's item-id range: bit `b` of
/// `words[w]` stands for item `(base_word + w) * 64 + b`. Built once per
/// cycle on the (cold) construction path; probed with word ANDs on the
/// per-cycle client hot path.
#[derive(Clone)]
struct DenseBits {
    base_word: u32,
    words: Vec<u64>,
}

impl DenseBits {
    /// Builds the bitmap over the (sorted, deduplicated) ids keying
    /// `entries`; `None` when there are no entries or the id span
    /// exceeds [`DENSE_SPAN_WORDS`]. Cold path: construction only.
    fn from_entries<T>(entries: &[(ItemId, T)]) -> Option<DenseBits> {
        let first = entries.first()?.0;
        let last = entries.last()?.0;
        let base_word = first.index() >> 6;
        let span = ((last.index() >> 6) - base_word) as usize + 1;
        if span > DENSE_SPAN_WORDS {
            return None;
        }
        let mut words = vec![0u64; span];
        for (x, _) in entries {
            let off = ((x.index() >> 6) - base_word) as usize;
            if let Some(w) = words.get_mut(off) {
                *w |= 1u64 << (x.index() & 63);
            }
        }
        Some(DenseBits { base_word, words })
    }

    /// Whether any bit is set in both this bitmap and the word block
    /// `(other_base, other)` — a single pass of word ANDs over the
    /// overlapping range, short-circuiting on the first hit.
    // bpush-lint: hot_path — the word-AND kernel behind every *_set report probe
    fn intersects(&self, other_base: u32, other: &[u64]) -> bool {
        let lo = self.base_word.max(other_base);
        let ours = self.words.iter().skip((lo - self.base_word) as usize);
        let theirs = other.iter().skip((lo - other_base) as usize);
        ours.zip(theirs).any(|(a, b)| a & b != 0)
    }
}

/// Returns the first index `>= start` whose key is `>= key`, galloping:
/// exponential probe from `start`, then binary search inside the bracket.
/// O(log distance) per call, which makes a merge over two sorted
/// sequences linear in the shorter one.
// bpush-lint: hot_path — shared probe kernel of the per-cycle readset merges
fn gallop_to<T, K: Ord + Copy>(xs: &[T], start: usize, key: K, key_of: impl Fn(&T) -> K) -> usize {
    let n = xs.len();
    let mut step = 1usize;
    let mut lo = start;
    let mut hi = start;
    // bpush-lint: allow(panic-reach) — hi < n is checked by the loop condition
    while hi < n && key_of(&xs[hi]) < key {
        lo = hi + 1;
        hi += step;
        step <<= 1;
    }
    let hi = hi.min(n);
    lo + xs[lo..hi].partition_point(|x| key_of(x) < key) // bpush-lint: allow(panic-reach) — lo ≤ hi ≤ n by construction of the probe bracket
}

/// Binary-search lookup in a sorted `(key, value)` slice.
// bpush-lint: hot_path — per-item report probe
fn lookup<K: Ord + Copy, V: Copy>(entries: &[(K, V)], key: K) -> Option<V> {
    entries
        .binary_search_by_key(&key, |e| e.0)
        .ok()
        .map(|i| entries[i].1) // bpush-lint: allow(panic-reach) — i is a binary_search hit, in bounds by contract
}

/// Galloping merge of sorted `(key, cycle)` entries against a sorted,
/// nondecreasing key sequence; returns whether any matching entry's
/// cycle satisfies `pred`. Short-circuits on the first hit.
// bpush-lint: hot_path — the galloping merge behind any_stale/any_invalidated
fn any_entry_matching<K: Ord + Copy>(
    entries: &[(K, Cycle)],
    keys: impl Iterator<Item = K>,
    pred: impl Fn(Cycle) -> bool,
) -> bool {
    let mut cursor = 0usize;
    for key in keys {
        cursor = gallop_to(entries, cursor, key, |e| e.0);
        match entries.get(cursor) {
            None => return false,
            Some(&(k, c)) if k == key => {
                if pred(c) {
                    return true;
                }
                // duplicate keys in the input sequence (bucket collapse)
                // must re-test this same entry, so do not advance
            }
            Some(_) => {}
        }
    }
    false
}

/// The invalidation report broadcast at the beginning of a cycle (§3.1):
/// the items updated at the server during the covered window of previous
/// cycles (window 1 — just the previous cycle — is the paper's default;
/// larger windows are the §5.2.2 resynchronization extension).
///
/// The report supports both granularities of §7: at
/// [`Granularity::Bucket`] a client sees only which *buckets* changed, so
/// membership tests are conservative.
///
/// # Example
/// ```
/// use bpush_broadcast::InvalidationReport;
/// use bpush_types::{Cycle, Granularity, ItemId};
///
/// let report = InvalidationReport::new(
///     Cycle::new(5),
///     1,
///     [ItemId::new(3), ItemId::new(8)],
///     Granularity::Item,
///     4, // items per bucket
/// );
/// assert!(report.invalidates(ItemId::new(3)));
/// assert!(!report.invalidates(ItemId::new(4)));
///
/// let coarse = report.clone().at_granularity(Granularity::Bucket);
/// // item 1 shares bucket 0 with updated item 3 -> conservatively stale
/// assert!(coarse.invalidates(ItemId::new(1)));
/// ```
#[derive(Clone)]
pub struct InvalidationReport {
    cycle: Cycle,
    window: u32,
    granularity: Granularity,
    items_per_bucket: u32,
    /// Updated item -> the latest cycle (within the window) during which
    /// it was updated, sorted by item and deduplicated. The per-entry
    /// cycle is what lets windowed reports re-announce old updates
    /// without causing false aborts (§5.2.2). Sorted-`Vec` storage makes
    /// membership a binary search and readset intersection a galloping
    /// merge ([`InvalidationReport::any_stale`]) — clients probe these
    /// on every broadcast cycle.
    items: Vec<(ItemId, Cycle)>,
    /// The items collapsed to buckets, sorted and deduplicated.
    buckets: Vec<(BucketId, Cycle)>,
    /// Dense bitmap over the updated item ids, built once at
    /// construction; `None` when the report is empty or its id span
    /// exceeds the dense cap. Derived state: never rendered, compared,
    /// or transmitted.
    item_bits: Option<DenseBits>,
    /// The earliest per-entry update cycle (`Cycle::ZERO` when empty):
    /// a membership hit is definitely stale for any state at or below
    /// this bound, which lets the word-AND fast path answer without
    /// consulting per-entry cycles in the common window-1 case.
    min_update: Cycle,
}

/// Renders exactly like the pre-bitmap derived form: the bitmap and the
/// min-update bound are cached projections of `items`, and report
/// renderings feed mc dedup keys and trace snapshots, which must not
/// change with the representation.
impl fmt::Debug for InvalidationReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("InvalidationReport")
            .field("cycle", &self.cycle)
            .field("window", &self.window)
            .field("granularity", &self.granularity)
            .field("items_per_bucket", &self.items_per_bucket)
            .field("items", &self.items)
            .field("buckets", &self.buckets)
            .finish()
    }
}

/// Equality is on the transmitted fields alone; the bitmap is derived.
impl PartialEq for InvalidationReport {
    fn eq(&self, other: &Self) -> bool {
        self.cycle == other.cycle
            && self.window == other.window
            && self.granularity == other.granularity
            && self.items_per_bucket == other.items_per_bucket
            && self.items == other.items
            && self.buckets == other.buckets
    }
}

impl Eq for InvalidationReport {}

impl InvalidationReport {
    /// Builds the report broadcast at the beginning of `cycle`, covering
    /// updates from the previous `window` cycles.
    ///
    /// # Panics
    /// Panics if `window == 0` or `items_per_bucket == 0`; use
    /// [`InvalidationReport::try_new`] to handle those as errors.
    pub fn new(
        cycle: Cycle,
        window: u32,
        updated: impl IntoIterator<Item = ItemId>,
        granularity: Granularity,
        items_per_bucket: u32,
    ) -> Self {
        Self::try_new(cycle, window, updated, granularity, items_per_bucket)
            // lint: allow(panic) — documented panic; try_new is the fallible form
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible form of [`InvalidationReport::new`].
    ///
    /// # Errors
    /// Returns [`BpushError::InvalidConfig`] when `window == 0` or
    /// `items_per_bucket == 0`.
    pub fn try_new(
        cycle: Cycle,
        window: u32,
        updated: impl IntoIterator<Item = ItemId>,
        granularity: Granularity,
        items_per_bucket: u32,
    ) -> Result<Self, BpushError> {
        let prev = cycle.checked_sub(1).unwrap_or(Cycle::ZERO);
        InvalidationReport::try_with_dated(
            cycle,
            window,
            updated.into_iter().map(|x| (x, prev)),
            granularity,
            items_per_bucket,
        )
    }

    /// The general constructor: every updated item is paired with the
    /// latest cycle during which it was updated (which must lie within
    /// the window).
    ///
    /// # Panics
    /// Panics if `window == 0` or `items_per_bucket == 0`; use
    /// [`InvalidationReport::try_with_dated`] to handle those as errors.
    pub fn with_dated(
        cycle: Cycle,
        window: u32,
        updated: impl IntoIterator<Item = (ItemId, Cycle)>,
        granularity: Granularity,
        items_per_bucket: u32,
    ) -> Self {
        Self::try_with_dated(cycle, window, updated, granularity, items_per_bucket)
            // lint: allow(panic) — documented panic; try_with_dated is the fallible form
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible form of [`InvalidationReport::with_dated`], for untrusted
    /// input such as the wire-decode path.
    ///
    /// # Errors
    /// Returns [`BpushError::InvalidConfig`] when `window == 0` or
    /// `items_per_bucket == 0`.
    pub fn try_with_dated(
        cycle: Cycle,
        window: u32,
        updated: impl IntoIterator<Item = (ItemId, Cycle)>,
        granularity: Granularity,
        items_per_bucket: u32,
    ) -> Result<Self, BpushError> {
        if window == 0 {
            return Err(BpushError::invalid_config(
                "report window must cover at least one cycle",
            ));
        }
        if items_per_bucket == 0 {
            return Err(BpushError::invalid_config(
                "items_per_bucket must be positive",
            ));
        }
        // Construction is the cold path (server side, once per cycle);
        // dedup through an ordered map, then flatten to the sorted
        // vectors the clients probe.
        let mut dedup: BTreeMap<ItemId, Cycle> = BTreeMap::new();
        for (x, c) in updated {
            let slot = dedup.entry(x).or_insert(c);
            *slot = (*slot).max(c);
        }
        let mut buckets: Vec<(BucketId, Cycle)> = Vec::new();
        for (x, &c) in &dedup {
            let b = BucketId::new(x.index() / items_per_bucket); // bpush-lint: allow(panic-reach) — items_per_bucket is validated nonzero above
            match buckets.last_mut() {
                // items are sorted, so bucket ids arrive nondecreasing
                Some(last) if last.0 == b => last.1 = last.1.max(c),
                _ => buckets.push((b, c)),
            }
        }
        let items: Vec<(ItemId, Cycle)> = dedup.into_iter().collect();
        let item_bits = DenseBits::from_entries(&items);
        let min_update = items.iter().map(|&(_, c)| c).min().unwrap_or(Cycle::ZERO);
        Ok(InvalidationReport {
            cycle,
            window,
            granularity,
            items_per_bucket,
            items,
            buckets,
            item_bits,
            min_update,
        })
    }

    /// An empty report for `cycle` (no updates).
    pub fn empty(cycle: Cycle) -> Self {
        InvalidationReport::new(cycle, 1, [], Granularity::Item, 1)
    }

    /// The cycle at whose beginning this report is broadcast.
    pub fn cycle(&self) -> Cycle {
        self.cycle
    }

    /// How many previous cycles of updates this report covers.
    pub fn window(&self) -> u32 {
        self.window
    }

    /// The report's granularity.
    pub fn granularity(&self) -> Granularity {
        self.granularity
    }

    /// Items per bucket used for bucket-granularity coarsening.
    pub fn items_per_bucket(&self) -> u32 {
        self.items_per_bucket
    }

    /// Returns the same report re-expressed at a different granularity.
    #[must_use]
    pub fn at_granularity(mut self, granularity: Granularity) -> Self {
        self.granularity = granularity;
        self
    }

    /// Whether this report mentions an update of `item` at all.
    /// Conservative at bucket granularity.
    pub fn invalidates(&self, item: ItemId) -> bool {
        self.update_cycle(item).is_some()
    }

    /// The latest update cycle this report records for `item`
    /// (granularity-aware; at bucket granularity the bucket's latest).
    pub fn update_cycle(&self, item: ItemId) -> Option<Cycle> {
        match self.granularity {
            Granularity::Item => lookup(&self.items, item),
            Granularity::Bucket => lookup(
                &self.buckets,
                BucketId::new(item.index() / self.items_per_bucket), // bpush-lint: allow(panic-reach) — items_per_bucket is validated nonzero at construction
            ),
        }
    }

    /// Whether any member of `readset` (which must be sorted ascending,
    /// as `bpush-core` readsets are) is reported updated at all.
    /// Granularity-aware and conservative at bucket granularity, exactly
    /// like per-item [`InvalidationReport::invalidates`], but a single
    /// galloping merge over the two sorted sequences instead of one
    /// probe per readset member.
    // bpush-lint: hot_path — per-cycle client probe over every active readset
    pub fn any_invalidated(&self, readset: &[ItemId]) -> bool {
        self.any_stale(readset, Cycle::ZERO)
    }

    /// Whether any member of the sorted `readset`, known current at
    /// database state `state`, is invalidated by this report — the
    /// galloping-merge form of [`InvalidationReport::stale_at`]. This is
    /// the per-cycle client hot path: every active query intersects its
    /// readset with every report.
    // bpush-lint: hot_path — per-cycle client staleness probe (PR-3 allocation-freedom contract)
    pub fn any_stale(&self, readset: &[ItemId], state: Cycle) -> bool {
        debug_assert!(readset.windows(2).all(|w| w[0] < w[1]), "readset sorted"); // bpush-lint: allow(panic-reach) — debug-only assertion; windows(2) yields exactly-2 slices
        match self.granularity {
            Granularity::Item => {
                any_entry_matching(&self.items, readset.iter().copied(), |u| u >= state)
            }
            // readset sorted by item ⇒ its bucket projection is
            // nondecreasing, so the same single-cursor merge applies
            Granularity::Bucket => any_entry_matching(
                &self.buckets,
                readset
                    .iter()
                    .map(|x| BucketId::new(x.index() / self.items_per_bucket)), // bpush-lint: allow(panic-reach) — items_per_bucket is validated nonzero at construction
                |u| u >= state,
            ),
        }
    }

    /// Word-AND form of [`InvalidationReport::any_invalidated`]: when
    /// both the report and the readset have a dense word block, the
    /// membership answer is a single pass of word ANDs; otherwise it
    /// falls back to the galloping merge over `readset`, which stays
    /// the differential oracle. Always answers exactly like
    /// `any_invalidated`.
    // bpush-lint: hot_path — per-cycle word-parallel readset probe (PR-8 allocation-freedom contract)
    pub fn any_invalidated_set(&self, readset: &[ItemId], words: Option<(u32, &[u64])>) -> bool {
        match self.intersects_words(words) {
            Some(hit) => hit,
            None => self.any_invalidated(readset),
        }
    }

    /// Word-AND form of [`InvalidationReport::any_stale`]. The bitmap
    /// only answers *membership*, so a miss is an exact "not stale"; a
    /// hit is exact only when `state <= min_update` (every recorded
    /// update is then at or after `state` — the window-1 common case,
    /// where clients validate against the immediately preceding cycle).
    /// For a hit with a later `state` the per-entry cycles matter and
    /// the galloping merge decides. Always answers exactly like
    /// `any_stale`.
    // bpush-lint: hot_path — per-cycle word-parallel staleness probe (PR-8 allocation-freedom contract)
    pub fn any_stale_set(
        &self,
        readset: &[ItemId],
        words: Option<(u32, &[u64])>,
        state: Cycle,
    ) -> bool {
        match self.intersects_words(words) {
            Some(false) => false,
            Some(true) if state <= self.min_update => true,
            _ => self.any_stale(readset, state),
        }
    }

    /// Whether the report's item bitmap intersects the word block
    /// `(base, words)`; `None` when the word-AND path cannot decide —
    /// bucket granularity, an empty/degraded report bitmap, or no
    /// caller word block. Exposed so batch screens in `bpush-core` can
    /// test a whole cohort's union bitmap against one report.
    // bpush-lint: hot_path — word-AND dispatch shared by the *_set probes and cohort screens
    pub fn intersects_words(&self, words: Option<(u32, &[u64])>) -> Option<bool> {
        if self.granularity != Granularity::Item {
            return None;
        }
        let bits = self.item_bits.as_ref()?;
        let (base, block) = words?;
        Some(bits.intersects(base, block))
    }

    /// Whether a value of `item` known current at database state `state`
    /// is invalidated by this report: true iff the report records an
    /// update during cycle `state` or later (an update before `state`
    /// was already reflected in the value).
    pub fn stale_at(&self, item: ItemId, state: Cycle) -> bool {
        self.update_cycle(item).is_some_and(|u| u >= state)
    }

    /// Whether the bucket as a whole was invalidated (used for cache-page
    /// invalidation, which is always at bucket/page granularity, §4).
    pub fn invalidates_bucket(&self, bucket: BucketId) -> bool {
        self.bucket_update_cycle(bucket).is_some()
    }

    /// The latest update cycle recorded for a bucket.
    pub fn bucket_update_cycle(&self, bucket: BucketId) -> Option<Cycle> {
        lookup(&self.buckets, bucket)
    }

    /// The exact updated items (ground truth; what an item-granularity
    /// report transmits).
    pub fn items(&self) -> impl Iterator<Item = ItemId> + '_ {
        self.items.iter().map(|&(x, _)| x)
    }

    /// Updated items with their latest update cycle.
    pub fn dated_items(&self) -> impl Iterator<Item = (ItemId, Cycle)> + '_ {
        self.items.iter().copied()
    }

    /// The updated buckets.
    pub fn buckets(&self) -> impl Iterator<Item = BucketId> + '_ {
        self.buckets.iter().map(|&(b, _)| b)
    }

    /// Number of transmitted entries at the configured granularity.
    pub fn len(&self) -> usize {
        match self.granularity {
            Granularity::Item => self.items.len(),
            Granularity::Bucket => self.buckets.len(),
        }
    }

    /// Whether the report lists nothing.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// On-air size in abstract units: one key per entry (§3.1's
    /// `⌈u·k / b⌉` numerator).
    pub fn size_units(&self, key_size: u32) -> u64 {
        self.len() as u64 * u64::from(key_size)
    }
}

/// The augmented invalidation report of the SGT method (§3.3): every item
/// written during the covered cycle together with the *first* transaction
/// that wrote it in that cycle (Claim 2 shows one precedence edge to the
/// first writer suffices).
///
/// # Example
/// ```
/// use bpush_broadcast::AugmentedReport;
/// use bpush_types::{Cycle, ItemId, TxnId};
/// let c = Cycle::new(2);
/// let report = AugmentedReport::new(c, [(ItemId::new(1), TxnId::new(c, 0))]);
/// assert_eq!(report.first_writer(ItemId::new(1)), Some(TxnId::new(c, 0)));
/// assert_eq!(report.first_writer(ItemId::new(2)), None);
/// ```
#[derive(Clone)]
pub struct AugmentedReport {
    cycle: Cycle,
    /// `(item, first writer)`, sorted by item and deduplicated (the last
    /// entry wins on duplicates, matching map-collect semantics).
    first_writers: Vec<(ItemId, TxnId)>,
    /// Dense bitmap over the written item ids (same derived-state rules
    /// as [`InvalidationReport`]'s: never rendered, compared, or
    /// transmitted).
    item_bits: Option<DenseBits>,
}

/// Renders exactly like the pre-bitmap derived form — augmented-report
/// renderings feed mc dedup keys and trace snapshots.
impl fmt::Debug for AugmentedReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("AugmentedReport")
            .field("cycle", &self.cycle)
            .field("first_writers", &self.first_writers)
            .finish()
    }
}

/// Equality is on the transmitted fields alone; the bitmap is derived.
impl PartialEq for AugmentedReport {
    fn eq(&self, other: &Self) -> bool {
        self.cycle == other.cycle && self.first_writers == other.first_writers
    }
}

impl Eq for AugmentedReport {}

impl AugmentedReport {
    /// Builds the report for updates committed during `cycle` (broadcast
    /// at the beginning of the following cycle).
    pub fn new(cycle: Cycle, entries: impl IntoIterator<Item = (ItemId, TxnId)>) -> Self {
        let dedup: BTreeMap<ItemId, TxnId> = entries.into_iter().collect();
        debug_assert!(
            dedup.values().all(|t| t.cycle() == cycle),
            "first writers must have committed during the covered cycle"
        );
        let first_writers: Vec<(ItemId, TxnId)> = dedup.into_iter().collect();
        let item_bits = DenseBits::from_entries(&first_writers);
        AugmentedReport {
            cycle,
            first_writers,
            item_bits,
        }
    }

    /// The cycle whose updates this report describes.
    pub fn cycle(&self) -> Cycle {
        self.cycle
    }

    /// The first transaction that wrote `item` during the covered cycle.
    pub fn first_writer(&self, item: ItemId) -> Option<TxnId> {
        lookup(&self.first_writers, item)
    }

    /// All `(item, first writer)` entries.
    pub fn entries(&self) -> impl Iterator<Item = (ItemId, TxnId)> + '_ {
        self.first_writers.iter().copied()
    }

    /// The entries whose item appears in the sorted `readset`, in item
    /// order — a galloping merge of the two sorted sequences. This is
    /// the SGT client hot path: every active query intersects its
    /// readset with every cycle's augmented report to add precedence
    /// edges (§3.3), and the merge replaces a per-entry set probe.
    // bpush-lint: hot_path — per-cycle SGT readset/report merge (PR-3 allocation-freedom contract)
    pub fn matches_in<'a>(
        &'a self,
        readset: &'a [ItemId],
    ) -> impl Iterator<Item = (ItemId, TxnId)> + 'a {
        debug_assert!(readset.windows(2).all(|w| w[0] < w[1]), "readset sorted"); // bpush-lint: allow(panic-reach) — debug-only assertion; windows(2) yields exactly-2 slices
        let entries = self.first_writers.as_slice();
        let mut ei = 0usize;
        let mut ri = 0usize;
        std::iter::from_fn(move || loop {
            let &target = readset.get(ri)?;
            ei = gallop_to(entries, ei, target, |e| e.0);
            let &(item, writer) = entries.get(ei)?;
            if item == target {
                ri += 1;
                ei += 1;
                return Some((item, writer));
            }
            // entries jumped past `target`: gallop the readset forward
            ri = gallop_to(readset, ri, item, |&x| x);
        })
    }

    /// Word-AND screened form of [`AugmentedReport::matches_in`]: when
    /// the bitmaps prove the readset and the report are disjoint, the
    /// merge is skipped entirely (the overwhelmingly common per-cycle
    /// outcome); otherwise it delegates to the galloping merge, which
    /// stays the differential oracle. Always yields exactly what
    /// `matches_in` yields.
    // bpush-lint: hot_path — per-cycle word-screened SGT readset/report merge (PR-8 allocation-freedom contract)
    pub fn matches_in_set<'a>(
        &'a self,
        readset: &'a [ItemId],
        words: Option<(u32, &[u64])>,
    ) -> impl Iterator<Item = (ItemId, TxnId)> + 'a {
        let screened: &[ItemId] = if self.intersects_words(words) == Some(false) {
            &[]
        } else {
            readset
        };
        self.matches_in(screened)
    }

    /// Whether the report's item bitmap intersects the word block
    /// `(base, words)`; `None` when the word-AND path cannot decide
    /// (empty/degraded report bitmap or no caller word block).
    // bpush-lint: hot_path — word-AND dispatch shared by matches_in_set and cohort screens
    pub fn intersects_words(&self, words: Option<(u32, &[u64])>) -> Option<bool> {
        let bits = self.item_bits.as_ref()?;
        let (base, block) = words?;
        Some(bits.intersects(base, block))
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.first_writers.len()
    }

    /// Whether the report is empty.
    pub fn is_empty(&self) -> bool {
        self.first_writers.is_empty()
    }

    /// On-air size in units: a key plus a transaction id per entry
    /// (§3.3's `⌈u(k + log N) / b⌉` numerator).
    pub fn size_units(&self, key_size: u32, tid_size: u32) -> u64 {
        self.len() as u64 * u64::from(key_size + tid_size)
    }
}

/// Everything broadcast ahead of the data segment of one bcast.
#[derive(Debug, Clone, PartialEq)]
pub struct ControlInfo {
    cycle: Cycle,
    invalidation: InvalidationReport,
    augmented: Option<AugmentedReport>,
    graph_diff: Option<GraphDiff>,
}

impl ControlInfo {
    /// Bundles the control information for `cycle`.
    ///
    /// # Panics
    /// Panics if any constituent report is stamped with a different cycle
    /// (the invalidation report is stamped with the cycle it *precedes*;
    /// the augmented report and diff with the cycle they *describe*, i.e.
    /// the previous one). Use [`ControlInfo::try_new`] to handle the
    /// mismatch as an error instead.
    pub fn new(
        cycle: Cycle,
        invalidation: InvalidationReport,
        augmented: Option<AugmentedReport>,
        graph_diff: Option<GraphDiff>,
    ) -> Self {
        // lint: allow(panic) — documented panic; try_new is the fallible form
        Self::try_new(cycle, invalidation, augmented, graph_diff).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible form of [`ControlInfo::new`], for untrusted input such
    /// as the wire-decode path.
    ///
    /// # Errors
    /// Returns [`BpushError::InvalidConfig`] if any constituent report
    /// is stamped with a different cycle.
    pub fn try_new(
        cycle: Cycle,
        invalidation: InvalidationReport,
        augmented: Option<AugmentedReport>,
        graph_diff: Option<GraphDiff>,
    ) -> Result<Self, BpushError> {
        if invalidation.cycle() != cycle {
            return Err(BpushError::invalid_config(
                "invalidation report cycle mismatch",
            ));
        }
        if let Some(aug) = &augmented {
            if aug.cycle().next() != cycle {
                return Err(BpushError::invalid_config(
                    "augmented report must describe the previous cycle",
                ));
            }
        }
        if let Some(diff) = &graph_diff {
            if diff.cycle().next() != cycle {
                return Err(BpushError::invalid_config(
                    "graph diff must describe the previous cycle",
                ));
            }
        }
        Ok(ControlInfo {
            cycle,
            invalidation,
            augmented,
            graph_diff,
        })
    }

    /// Control info carrying an empty invalidation report and nothing else.
    pub fn empty(cycle: Cycle) -> Self {
        ControlInfo::new(cycle, InvalidationReport::empty(cycle), None, None)
    }

    /// The cycle this control segment precedes.
    pub fn cycle(&self) -> Cycle {
        self.cycle
    }

    /// The invalidation report.
    pub fn invalidation(&self) -> &InvalidationReport {
        &self.invalidation
    }

    /// The SGT augmented report, when broadcast.
    pub fn augmented(&self) -> Option<&AugmentedReport> {
        self.augmented.as_ref()
    }

    /// The SGT serialization-graph difference, when broadcast.
    pub fn graph_diff(&self) -> Option<&GraphDiff> {
        self.graph_diff.as_ref()
    }

    /// On-air size of the whole control segment, in buckets of payload
    /// size `bucket_size` units.
    ///
    /// # Panics
    /// Panics if `bucket_size` is zero.
    pub fn slots(&self, bucket_size: u32, key_size: u32, tid_size: u32) -> u64 {
        assert!(bucket_size > 0, "bucket size must be positive");
        let mut units = self.invalidation.size_units(key_size);
        if let Some(aug) = &self.augmented {
            units += aug.size_units(key_size, tid_size);
        }
        if let Some(diff) = &self.graph_diff {
            units += diff.size_units(tid_size);
        }
        units.div_ceil(u64::from(bucket_size))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(cycle: u64, items: &[u32]) -> InvalidationReport {
        InvalidationReport::new(
            Cycle::new(cycle),
            1,
            items.iter().map(|&i| ItemId::new(i)),
            Granularity::Item,
            1,
        )
    }

    #[test]
    fn invalidation_membership_item_granularity() {
        let r = report(3, &[1, 5, 9]);
        assert!(r.invalidates(ItemId::new(5)));
        assert!(!r.invalidates(ItemId::new(4)));
        assert_eq!(r.len(), 3);
        assert!(!r.is_empty());
        assert_eq!(r.size_units(1), 3);
        assert_eq!(r.size_units(2), 6);
        assert_eq!(r.cycle(), Cycle::new(3));
        assert_eq!(r.window(), 1);
    }

    #[test]
    fn invalidation_bucket_granularity_is_conservative() {
        let r = InvalidationReport::new(Cycle::ZERO, 1, [ItemId::new(5)], Granularity::Bucket, 4);
        // bucket 1 holds items 4..8
        assert!(r.invalidates(ItemId::new(4)));
        assert!(r.invalidates(ItemId::new(7)));
        assert!(!r.invalidates(ItemId::new(3)));
        assert!(r.invalidates_bucket(BucketId::new(1)));
        assert!(!r.invalidates_bucket(BucketId::new(0)));
        assert_eq!(r.len(), 1, "one bucket entry transmitted");
    }

    #[test]
    fn bucket_report_can_be_smaller() {
        let fine = InvalidationReport::new(
            Cycle::ZERO,
            1,
            (0..8).map(ItemId::new),
            Granularity::Item,
            4,
        );
        let coarse = fine.clone().at_granularity(Granularity::Bucket);
        assert_eq!(fine.len(), 8);
        assert_eq!(coarse.len(), 2);
        assert!(coarse.size_units(1) < fine.size_units(1));
    }

    #[test]
    fn empty_report() {
        let r = InvalidationReport::empty(Cycle::new(9));
        assert!(r.is_empty());
        assert_eq!(r.len(), 0);
        assert!(!r.invalidates(ItemId::new(0)));
    }

    #[test]
    #[should_panic(expected = "window")]
    fn zero_window_rejected() {
        let _ = InvalidationReport::new(Cycle::ZERO, 0, [], Granularity::Item, 1);
    }

    #[test]
    fn any_stale_agrees_with_per_item_probes() {
        let r = InvalidationReport::with_dated(
            Cycle::new(6),
            4,
            [
                (ItemId::new(2), Cycle::new(3)),
                (ItemId::new(5), Cycle::new(5)),
                (ItemId::new(9), Cycle::new(4)),
            ],
            Granularity::Item,
            4,
        );
        let sets: [&[ItemId]; 5] = [
            &[],
            &[ItemId::new(0), ItemId::new(1)],
            &[ItemId::new(2)],
            &[ItemId::new(3), ItemId::new(5), ItemId::new(7)],
            &[ItemId::new(9), ItemId::new(11)],
        ];
        for set in sets {
            for state in 0..7 {
                let state = Cycle::new(state);
                let naive = set.iter().any(|&x| r.stale_at(x, state));
                assert_eq!(r.any_stale(set, state), naive, "{set:?} at {state}");
            }
            let naive = set.iter().any(|&x| r.invalidates(x));
            assert_eq!(r.any_invalidated(set), naive, "{set:?}");
        }
    }

    #[test]
    fn any_stale_bucket_granularity_is_conservative() {
        let r = InvalidationReport::new(Cycle::new(1), 1, [ItemId::new(5)], Granularity::Bucket, 4);
        // items 4..8 share updated bucket 1; several readset members
        // mapping to the same bucket must each be tested
        assert!(r.any_stale(&[ItemId::new(4), ItemId::new(6)], Cycle::ZERO));
        assert!(r.any_invalidated(&[ItemId::new(7)]));
        assert!(!r.any_invalidated(&[ItemId::new(1), ItemId::new(3), ItemId::new(8)]));
    }

    #[test]
    fn augmented_matches_in_gallops_both_sides() {
        let c = Cycle::new(3);
        let entries: Vec<(ItemId, TxnId)> = (0..40)
            .filter(|i| i % 3 == 0)
            .map(|i| (ItemId::new(i), TxnId::new(c, i)))
            .collect();
        let r = AugmentedReport::new(c, entries);
        let readset: Vec<ItemId> = (0..40).filter(|i| i % 5 == 0).map(ItemId::new).collect();
        let merged: Vec<(ItemId, TxnId)> = r.matches_in(&readset).collect();
        let naive: Vec<(ItemId, TxnId)> =
            r.entries().filter(|(x, _)| readset.contains(x)).collect();
        assert_eq!(merged, naive);
        assert_eq!(merged.len(), 3, "multiples of 15 in 0..40");
        assert!(r.matches_in(&[]).next().is_none());
        assert!(r.matches_in(&[ItemId::new(41)]).next().is_none());
    }

    /// Builds the dense word block for a sorted item list, mirroring
    /// `ReadSet::word_blocks` in `bpush-core` (which broadcast cannot
    /// depend on).
    fn blocks_of(items: &[ItemId]) -> Option<(u32, Vec<u64>)> {
        let first = items.first()?;
        let base = first.index() >> 6;
        let mut words = Vec::new();
        for x in items {
            let off = ((x.index() >> 6) - base) as usize;
            if off >= words.len() {
                words.resize(off + 1, 0u64);
            }
            words[off] |= 1u64 << (x.index() & 63);
        }
        Some((base, words))
    }

    #[test]
    fn set_probes_agree_with_galloping() {
        let r = InvalidationReport::with_dated(
            Cycle::new(6),
            4,
            [
                (ItemId::new(2), Cycle::new(3)),
                (ItemId::new(5), Cycle::new(5)),
                (ItemId::new(70), Cycle::new(4)),
                (ItemId::new(200), Cycle::new(5)),
            ],
            Granularity::Item,
            4,
        );
        let sets: [&[ItemId]; 6] = [
            &[],
            &[ItemId::new(0), ItemId::new(1)],
            &[ItemId::new(2)],
            &[ItemId::new(3), ItemId::new(5), ItemId::new(7)],
            &[ItemId::new(64), ItemId::new(70), ItemId::new(199)],
            &[ItemId::new(201), ItemId::new(500)],
        ];
        for set in sets {
            let blocks = blocks_of(set);
            let words = blocks.as_ref().map(|(b, w)| (*b, w.as_slice()));
            assert_eq!(
                r.any_invalidated_set(set, words),
                r.any_invalidated(set),
                "{set:?}"
            );
            for state in 0..8 {
                let state = Cycle::new(state);
                assert_eq!(
                    r.any_stale_set(set, words, state),
                    r.any_stale(set, state),
                    "{set:?} at {state}"
                );
            }
            // and without a word block the probes still agree (fallback)
            assert_eq!(r.any_invalidated_set(set, None), r.any_invalidated(set));
        }
    }

    #[test]
    fn set_probes_fall_back_at_bucket_granularity() {
        let r = InvalidationReport::new(Cycle::new(1), 1, [ItemId::new(5)], Granularity::Bucket, 4);
        let set = [ItemId::new(4), ItemId::new(6)];
        let blocks = blocks_of(&set).expect("nonempty");
        let words = Some((blocks.0, blocks.1.as_slice()));
        assert_eq!(
            r.intersects_words(words),
            None,
            "bucket reports can't use bits"
        );
        // bucket 1 holds 4..8 but items 4 and 6 are not literally listed:
        // the bitmap would say "disjoint"; the fallback keeps it conservative
        assert!(r.any_stale_set(&set, words, Cycle::ZERO));
        assert!(r.any_invalidated_set(&set, words));
    }

    #[test]
    fn set_probes_survive_a_wide_id_span() {
        // id span > DENSE_SPAN_WORDS * 64 -> the report keeps no bitmap
        let r = report(3, &[0, 70_000, u32::MAX]);
        let set = [ItemId::new(70_000)];
        let blocks = blocks_of(&set).expect("nonempty");
        let words = Some((blocks.0, blocks.1.as_slice()));
        assert_eq!(r.intersects_words(words), None, "degraded report bitmap");
        assert!(r.any_invalidated_set(&set, words));
        assert!(!r.any_invalidated_set(&[ItemId::new(1)], None));
    }

    #[test]
    fn matches_in_set_agrees_with_matches_in() {
        let c = Cycle::new(3);
        let entries: Vec<(ItemId, TxnId)> = (0..60)
            .filter(|i| i % 3 == 0)
            .map(|i| (ItemId::new(i), TxnId::new(c, i)))
            .collect();
        let r = AugmentedReport::new(c, entries);
        let readsets: [&[ItemId]; 4] = [
            &[],
            &[ItemId::new(1), ItemId::new(2)],
            &[ItemId::new(15), ItemId::new(44)],
            &[ItemId::new(61), ItemId::new(100)],
        ];
        for readset in readsets {
            let blocks = blocks_of(readset);
            let words = blocks.as_ref().map(|(b, w)| (*b, w.as_slice()));
            let screened: Vec<(ItemId, TxnId)> = r.matches_in_set(readset, words).collect();
            let oracle: Vec<(ItemId, TxnId)> = r.matches_in(readset).collect();
            assert_eq!(screened, oracle, "{readset:?}");
            let unscreened: Vec<(ItemId, TxnId)> = r.matches_in_set(readset, None).collect();
            assert_eq!(unscreened, oracle, "{readset:?} without a word block");
        }
    }

    #[test]
    fn report_debug_and_eq_ignore_the_bitmap() {
        let r = report(3, &[1, 5, 9]);
        let dbg = format!("{r:?}");
        assert!(dbg.starts_with("InvalidationReport { cycle:"), "{dbg}");
        assert!(!dbg.contains("item_bits"), "{dbg}");
        assert!(!dbg.contains("min_update"), "{dbg}");
        assert_eq!(r, r.clone());

        let c = Cycle::new(3);
        let aug = AugmentedReport::new(c, [(ItemId::new(1), TxnId::new(c, 0))]);
        let dbg = format!("{aug:?}");
        assert!(dbg.starts_with("AugmentedReport { cycle:"), "{dbg}");
        assert!(!dbg.contains("item_bits"), "{dbg}");
        assert_eq!(aug, aug.clone());
    }

    #[test]
    fn augmented_report_lookup() {
        let c = Cycle::new(4);
        let r = AugmentedReport::new(
            c,
            [
                (ItemId::new(1), TxnId::new(c, 2)),
                (ItemId::new(3), TxnId::new(c, 0)),
            ],
        );
        assert_eq!(r.first_writer(ItemId::new(3)), Some(TxnId::new(c, 0)));
        assert_eq!(r.first_writer(ItemId::new(2)), None);
        assert_eq!(r.len(), 2);
        assert!(!r.is_empty());
        assert_eq!(r.size_units(1, 1), 4);
        assert_eq!(r.entries().count(), 2);
    }

    #[test]
    fn control_info_slot_accounting() {
        let c = Cycle::new(5);
        let prev = c.prev();
        let inv = report(5, &[1, 2, 3, 4, 5]);
        let aug = AugmentedReport::new(prev, [(ItemId::new(1), TxnId::new(prev, 0))]);
        let diff = GraphDiff::new(
            prev,
            vec![TxnId::new(prev, 0)],
            vec![(TxnId::new(Cycle::new(3), 0), TxnId::new(prev, 0))],
        );
        let ctrl = ControlInfo::new(c, inv.clone(), Some(aug), Some(diff));
        // units: inv 5*1 + aug 1*(1+1) + diff (1*1 + 1*2*1) = 5 + 2 + 3 = 10
        assert_eq!(ctrl.slots(5, 1, 1), 2);
        assert_eq!(ctrl.slots(10, 1, 1), 1);
        assert_eq!(ctrl.cycle(), c);
        assert!(ctrl.augmented().is_some());
        assert!(ctrl.graph_diff().is_some());

        let bare = ControlInfo::new(c, inv, None, None);
        assert_eq!(bare.slots(5, 1, 1), 1);
    }

    #[test]
    fn control_info_empty_has_zero_slots() {
        let ctrl = ControlInfo::empty(Cycle::new(1));
        assert_eq!(ctrl.slots(5, 1, 1), 0);
        assert!(ctrl.invalidation().is_empty());
    }

    #[test]
    #[should_panic(expected = "previous cycle")]
    fn control_info_rejects_misaligned_diff() {
        let c = Cycle::new(5);
        let diff = GraphDiff::empty(c); // must be c - 1
        let _ = ControlInfo::new(c, InvalidationReport::empty(c), None, Some(diff));
    }
}
