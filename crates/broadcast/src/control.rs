//! Control information broadcast ahead of the data (§3).
//!
//! Every bcast is preceded by an [`InvalidationReport`]; when the SGT
//! method is active the server additionally broadcasts an
//! [`AugmentedReport`] (item → first writer of the cycle) and the
//! serialization-graph difference ([`bpush_sgraph::GraphDiff`]).
//! [`ControlInfo`] bundles all three and knows its own on-air size.

use std::collections::BTreeMap;

use bpush_sgraph::GraphDiff;
use bpush_types::{BpushError, BucketId, Cycle, Granularity, ItemId, TxnId};

/// The invalidation report broadcast at the beginning of a cycle (§3.1):
/// the items updated at the server during the covered window of previous
/// cycles (window 1 — just the previous cycle — is the paper's default;
/// larger windows are the §5.2.2 resynchronization extension).
///
/// The report supports both granularities of §7: at
/// [`Granularity::Bucket`] a client sees only which *buckets* changed, so
/// membership tests are conservative.
///
/// # Example
/// ```
/// use bpush_broadcast::InvalidationReport;
/// use bpush_types::{Cycle, Granularity, ItemId};
///
/// let report = InvalidationReport::new(
///     Cycle::new(5),
///     1,
///     [ItemId::new(3), ItemId::new(8)],
///     Granularity::Item,
///     4, // items per bucket
/// );
/// assert!(report.invalidates(ItemId::new(3)));
/// assert!(!report.invalidates(ItemId::new(4)));
///
/// let coarse = report.clone().at_granularity(Granularity::Bucket);
/// // item 1 shares bucket 0 with updated item 3 -> conservatively stale
/// assert!(coarse.invalidates(ItemId::new(1)));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InvalidationReport {
    cycle: Cycle,
    window: u32,
    granularity: Granularity,
    items_per_bucket: u32,
    /// Updated item -> the latest cycle (within the window) during which
    /// it was updated. The per-entry cycle is what lets windowed reports
    /// re-announce old updates without causing false aborts (§5.2.2).
    items: BTreeMap<ItemId, Cycle>,
    buckets: BTreeMap<BucketId, Cycle>,
}

impl InvalidationReport {
    /// Builds the report broadcast at the beginning of `cycle`, covering
    /// updates from the previous `window` cycles.
    ///
    /// # Panics
    /// Panics if `window == 0` or `items_per_bucket == 0`; use
    /// [`InvalidationReport::try_new`] to handle those as errors.
    pub fn new(
        cycle: Cycle,
        window: u32,
        updated: impl IntoIterator<Item = ItemId>,
        granularity: Granularity,
        items_per_bucket: u32,
    ) -> Self {
        Self::try_new(cycle, window, updated, granularity, items_per_bucket)
            // lint: allow(panic) — documented panic; try_new is the fallible form
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible form of [`InvalidationReport::new`].
    ///
    /// # Errors
    /// Returns [`BpushError::InvalidConfig`] when `window == 0` or
    /// `items_per_bucket == 0`.
    pub fn try_new(
        cycle: Cycle,
        window: u32,
        updated: impl IntoIterator<Item = ItemId>,
        granularity: Granularity,
        items_per_bucket: u32,
    ) -> Result<Self, BpushError> {
        let prev = cycle.checked_sub(1).unwrap_or(Cycle::ZERO);
        InvalidationReport::try_with_dated(
            cycle,
            window,
            updated.into_iter().map(|x| (x, prev)),
            granularity,
            items_per_bucket,
        )
    }

    /// The general constructor: every updated item is paired with the
    /// latest cycle during which it was updated (which must lie within
    /// the window).
    ///
    /// # Panics
    /// Panics if `window == 0` or `items_per_bucket == 0`; use
    /// [`InvalidationReport::try_with_dated`] to handle those as errors.
    pub fn with_dated(
        cycle: Cycle,
        window: u32,
        updated: impl IntoIterator<Item = (ItemId, Cycle)>,
        granularity: Granularity,
        items_per_bucket: u32,
    ) -> Self {
        Self::try_with_dated(cycle, window, updated, granularity, items_per_bucket)
            // lint: allow(panic) — documented panic; try_with_dated is the fallible form
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible form of [`InvalidationReport::with_dated`], for untrusted
    /// input such as the wire-decode path.
    ///
    /// # Errors
    /// Returns [`BpushError::InvalidConfig`] when `window == 0` or
    /// `items_per_bucket == 0`.
    pub fn try_with_dated(
        cycle: Cycle,
        window: u32,
        updated: impl IntoIterator<Item = (ItemId, Cycle)>,
        granularity: Granularity,
        items_per_bucket: u32,
    ) -> Result<Self, BpushError> {
        if window == 0 {
            return Err(BpushError::invalid_config(
                "report window must cover at least one cycle",
            ));
        }
        if items_per_bucket == 0 {
            return Err(BpushError::invalid_config(
                "items_per_bucket must be positive",
            ));
        }
        let mut items: BTreeMap<ItemId, Cycle> = BTreeMap::new();
        for (x, c) in updated {
            let slot = items.entry(x).or_insert(c);
            *slot = (*slot).max(c);
        }
        let mut buckets: BTreeMap<BucketId, Cycle> = BTreeMap::new();
        for (x, &c) in &items {
            let b = BucketId::new(x.index() / items_per_bucket);
            let slot = buckets.entry(b).or_insert(c);
            *slot = (*slot).max(c);
        }
        Ok(InvalidationReport {
            cycle,
            window,
            granularity,
            items_per_bucket,
            items,
            buckets,
        })
    }

    /// An empty report for `cycle` (no updates).
    pub fn empty(cycle: Cycle) -> Self {
        InvalidationReport::new(cycle, 1, [], Granularity::Item, 1)
    }

    /// The cycle at whose beginning this report is broadcast.
    pub fn cycle(&self) -> Cycle {
        self.cycle
    }

    /// How many previous cycles of updates this report covers.
    pub fn window(&self) -> u32 {
        self.window
    }

    /// The report's granularity.
    pub fn granularity(&self) -> Granularity {
        self.granularity
    }

    /// Returns the same report re-expressed at a different granularity.
    #[must_use]
    pub fn at_granularity(mut self, granularity: Granularity) -> Self {
        self.granularity = granularity;
        self
    }

    /// Whether this report mentions an update of `item` at all.
    /// Conservative at bucket granularity.
    pub fn invalidates(&self, item: ItemId) -> bool {
        self.update_cycle(item).is_some()
    }

    /// The latest update cycle this report records for `item`
    /// (granularity-aware; at bucket granularity the bucket's latest).
    pub fn update_cycle(&self, item: ItemId) -> Option<Cycle> {
        match self.granularity {
            Granularity::Item => self.items.get(&item).copied(),
            Granularity::Bucket => self
                .buckets
                .get(&BucketId::new(item.index() / self.items_per_bucket))
                .copied(),
        }
    }

    /// Whether a value of `item` known current at database state `state`
    /// is invalidated by this report: true iff the report records an
    /// update during cycle `state` or later (an update before `state`
    /// was already reflected in the value).
    pub fn stale_at(&self, item: ItemId, state: Cycle) -> bool {
        self.update_cycle(item).is_some_and(|u| u >= state)
    }

    /// Whether the bucket as a whole was invalidated (used for cache-page
    /// invalidation, which is always at bucket/page granularity, §4).
    pub fn invalidates_bucket(&self, bucket: BucketId) -> bool {
        self.buckets.contains_key(&bucket)
    }

    /// The latest update cycle recorded for a bucket.
    pub fn bucket_update_cycle(&self, bucket: BucketId) -> Option<Cycle> {
        self.buckets.get(&bucket).copied()
    }

    /// The exact updated items (ground truth; what an item-granularity
    /// report transmits).
    pub fn items(&self) -> impl Iterator<Item = ItemId> + '_ {
        self.items.keys().copied()
    }

    /// Updated items with their latest update cycle.
    pub fn dated_items(&self) -> impl Iterator<Item = (ItemId, Cycle)> + '_ {
        self.items.iter().map(|(&x, &c)| (x, c))
    }

    /// The updated buckets.
    pub fn buckets(&self) -> impl Iterator<Item = BucketId> + '_ {
        self.buckets.keys().copied()
    }

    /// Number of transmitted entries at the configured granularity.
    pub fn len(&self) -> usize {
        match self.granularity {
            Granularity::Item => self.items.len(),
            Granularity::Bucket => self.buckets.len(),
        }
    }

    /// Whether the report lists nothing.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// On-air size in abstract units: one key per entry (§3.1's
    /// `⌈u·k / b⌉` numerator).
    pub fn size_units(&self, key_size: u32) -> u64 {
        self.len() as u64 * u64::from(key_size)
    }
}

/// The augmented invalidation report of the SGT method (§3.3): every item
/// written during the covered cycle together with the *first* transaction
/// that wrote it in that cycle (Claim 2 shows one precedence edge to the
/// first writer suffices).
///
/// # Example
/// ```
/// use bpush_broadcast::AugmentedReport;
/// use bpush_types::{Cycle, ItemId, TxnId};
/// let c = Cycle::new(2);
/// let report = AugmentedReport::new(c, [(ItemId::new(1), TxnId::new(c, 0))]);
/// assert_eq!(report.first_writer(ItemId::new(1)), Some(TxnId::new(c, 0)));
/// assert_eq!(report.first_writer(ItemId::new(2)), None);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AugmentedReport {
    cycle: Cycle,
    first_writers: BTreeMap<ItemId, TxnId>,
}

impl AugmentedReport {
    /// Builds the report for updates committed during `cycle` (broadcast
    /// at the beginning of the following cycle).
    pub fn new(cycle: Cycle, entries: impl IntoIterator<Item = (ItemId, TxnId)>) -> Self {
        let first_writers: BTreeMap<ItemId, TxnId> = entries.into_iter().collect();
        debug_assert!(
            first_writers.values().all(|t| t.cycle() == cycle),
            "first writers must have committed during the covered cycle"
        );
        AugmentedReport {
            cycle,
            first_writers,
        }
    }

    /// The cycle whose updates this report describes.
    pub fn cycle(&self) -> Cycle {
        self.cycle
    }

    /// The first transaction that wrote `item` during the covered cycle.
    pub fn first_writer(&self, item: ItemId) -> Option<TxnId> {
        self.first_writers.get(&item).copied()
    }

    /// All `(item, first writer)` entries.
    pub fn entries(&self) -> impl Iterator<Item = (ItemId, TxnId)> + '_ {
        self.first_writers.iter().map(|(&x, &t)| (x, t))
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.first_writers.len()
    }

    /// Whether the report is empty.
    pub fn is_empty(&self) -> bool {
        self.first_writers.is_empty()
    }

    /// On-air size in units: a key plus a transaction id per entry
    /// (§3.3's `⌈u(k + log N) / b⌉` numerator).
    pub fn size_units(&self, key_size: u32, tid_size: u32) -> u64 {
        self.len() as u64 * u64::from(key_size + tid_size)
    }
}

/// Everything broadcast ahead of the data segment of one bcast.
#[derive(Debug, Clone, PartialEq)]
pub struct ControlInfo {
    cycle: Cycle,
    invalidation: InvalidationReport,
    augmented: Option<AugmentedReport>,
    graph_diff: Option<GraphDiff>,
}

impl ControlInfo {
    /// Bundles the control information for `cycle`.
    ///
    /// # Panics
    /// Panics if any constituent report is stamped with a different cycle
    /// (the invalidation report is stamped with the cycle it *precedes*;
    /// the augmented report and diff with the cycle they *describe*, i.e.
    /// the previous one). Use [`ControlInfo::try_new`] to handle the
    /// mismatch as an error instead.
    pub fn new(
        cycle: Cycle,
        invalidation: InvalidationReport,
        augmented: Option<AugmentedReport>,
        graph_diff: Option<GraphDiff>,
    ) -> Self {
        // lint: allow(panic) — documented panic; try_new is the fallible form
        Self::try_new(cycle, invalidation, augmented, graph_diff).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible form of [`ControlInfo::new`], for untrusted input such
    /// as the wire-decode path.
    ///
    /// # Errors
    /// Returns [`BpushError::InvalidConfig`] if any constituent report
    /// is stamped with a different cycle.
    pub fn try_new(
        cycle: Cycle,
        invalidation: InvalidationReport,
        augmented: Option<AugmentedReport>,
        graph_diff: Option<GraphDiff>,
    ) -> Result<Self, BpushError> {
        if invalidation.cycle() != cycle {
            return Err(BpushError::invalid_config(
                "invalidation report cycle mismatch",
            ));
        }
        if let Some(aug) = &augmented {
            if aug.cycle().next() != cycle {
                return Err(BpushError::invalid_config(
                    "augmented report must describe the previous cycle",
                ));
            }
        }
        if let Some(diff) = &graph_diff {
            if diff.cycle().next() != cycle {
                return Err(BpushError::invalid_config(
                    "graph diff must describe the previous cycle",
                ));
            }
        }
        Ok(ControlInfo {
            cycle,
            invalidation,
            augmented,
            graph_diff,
        })
    }

    /// Control info carrying an empty invalidation report and nothing else.
    pub fn empty(cycle: Cycle) -> Self {
        ControlInfo::new(cycle, InvalidationReport::empty(cycle), None, None)
    }

    /// The cycle this control segment precedes.
    pub fn cycle(&self) -> Cycle {
        self.cycle
    }

    /// The invalidation report.
    pub fn invalidation(&self) -> &InvalidationReport {
        &self.invalidation
    }

    /// The SGT augmented report, when broadcast.
    pub fn augmented(&self) -> Option<&AugmentedReport> {
        self.augmented.as_ref()
    }

    /// The SGT serialization-graph difference, when broadcast.
    pub fn graph_diff(&self) -> Option<&GraphDiff> {
        self.graph_diff.as_ref()
    }

    /// On-air size of the whole control segment, in buckets of payload
    /// size `bucket_size` units.
    ///
    /// # Panics
    /// Panics if `bucket_size` is zero.
    pub fn slots(&self, bucket_size: u32, key_size: u32, tid_size: u32) -> u64 {
        assert!(bucket_size > 0, "bucket size must be positive");
        let mut units = self.invalidation.size_units(key_size);
        if let Some(aug) = &self.augmented {
            units += aug.size_units(key_size, tid_size);
        }
        if let Some(diff) = &self.graph_diff {
            units += diff.size_units(tid_size);
        }
        units.div_ceil(u64::from(bucket_size))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(cycle: u64, items: &[u32]) -> InvalidationReport {
        InvalidationReport::new(
            Cycle::new(cycle),
            1,
            items.iter().map(|&i| ItemId::new(i)),
            Granularity::Item,
            1,
        )
    }

    #[test]
    fn invalidation_membership_item_granularity() {
        let r = report(3, &[1, 5, 9]);
        assert!(r.invalidates(ItemId::new(5)));
        assert!(!r.invalidates(ItemId::new(4)));
        assert_eq!(r.len(), 3);
        assert!(!r.is_empty());
        assert_eq!(r.size_units(1), 3);
        assert_eq!(r.size_units(2), 6);
        assert_eq!(r.cycle(), Cycle::new(3));
        assert_eq!(r.window(), 1);
    }

    #[test]
    fn invalidation_bucket_granularity_is_conservative() {
        let r = InvalidationReport::new(Cycle::ZERO, 1, [ItemId::new(5)], Granularity::Bucket, 4);
        // bucket 1 holds items 4..8
        assert!(r.invalidates(ItemId::new(4)));
        assert!(r.invalidates(ItemId::new(7)));
        assert!(!r.invalidates(ItemId::new(3)));
        assert!(r.invalidates_bucket(BucketId::new(1)));
        assert!(!r.invalidates_bucket(BucketId::new(0)));
        assert_eq!(r.len(), 1, "one bucket entry transmitted");
    }

    #[test]
    fn bucket_report_can_be_smaller() {
        let fine = InvalidationReport::new(
            Cycle::ZERO,
            1,
            (0..8).map(ItemId::new),
            Granularity::Item,
            4,
        );
        let coarse = fine.clone().at_granularity(Granularity::Bucket);
        assert_eq!(fine.len(), 8);
        assert_eq!(coarse.len(), 2);
        assert!(coarse.size_units(1) < fine.size_units(1));
    }

    #[test]
    fn empty_report() {
        let r = InvalidationReport::empty(Cycle::new(9));
        assert!(r.is_empty());
        assert_eq!(r.len(), 0);
        assert!(!r.invalidates(ItemId::new(0)));
    }

    #[test]
    #[should_panic(expected = "window")]
    fn zero_window_rejected() {
        let _ = InvalidationReport::new(Cycle::ZERO, 0, [], Granularity::Item, 1);
    }

    #[test]
    fn augmented_report_lookup() {
        let c = Cycle::new(4);
        let r = AugmentedReport::new(
            c,
            [
                (ItemId::new(1), TxnId::new(c, 2)),
                (ItemId::new(3), TxnId::new(c, 0)),
            ],
        );
        assert_eq!(r.first_writer(ItemId::new(3)), Some(TxnId::new(c, 0)));
        assert_eq!(r.first_writer(ItemId::new(2)), None);
        assert_eq!(r.len(), 2);
        assert!(!r.is_empty());
        assert_eq!(r.size_units(1, 1), 4);
        assert_eq!(r.entries().count(), 2);
    }

    #[test]
    fn control_info_slot_accounting() {
        let c = Cycle::new(5);
        let prev = c.prev();
        let inv = report(5, &[1, 2, 3, 4, 5]);
        let aug = AugmentedReport::new(prev, [(ItemId::new(1), TxnId::new(prev, 0))]);
        let diff = GraphDiff::new(
            prev,
            vec![TxnId::new(prev, 0)],
            vec![(TxnId::new(Cycle::new(3), 0), TxnId::new(prev, 0))],
        );
        let ctrl = ControlInfo::new(c, inv.clone(), Some(aug), Some(diff));
        // units: inv 5*1 + aug 1*(1+1) + diff (1*1 + 1*2*1) = 5 + 2 + 3 = 10
        assert_eq!(ctrl.slots(5, 1, 1), 2);
        assert_eq!(ctrl.slots(10, 1, 1), 1);
        assert_eq!(ctrl.cycle(), c);
        assert!(ctrl.augmented().is_some());
        assert!(ctrl.graph_diff().is_some());

        let bare = ControlInfo::new(c, inv, None, None);
        assert_eq!(bare.slots(5, 1, 1), 1);
    }

    #[test]
    fn control_info_empty_has_zero_slots() {
        let ctrl = ControlInfo::empty(Cycle::new(1));
        assert_eq!(ctrl.slots(5, 1, 1), 0);
        assert!(ctrl.invalidation().is_empty());
    }

    #[test]
    #[should_panic(expected = "previous cycle")]
    fn control_info_rejects_misaligned_diff() {
        let c = Cycle::new(5);
        let diff = GraphDiff::empty(c); // must be c - 1
        let _ = ControlInfo::new(c, InvalidationReport::empty(c), None, Some(diff));
    }
}
