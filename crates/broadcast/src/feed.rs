//! Segment framing for the broadcast feed: the sans-IO transport layer.
//!
//! A transport (the in-process simulator, the model checker, or a future
//! socket server) delivers the broadcast as a byte stream. This module
//! frames that stream into self-describing **segments** — control, data
//! and directory — and decodes each back into the in-memory structures
//! the protocols consume. The client side is a pure push parser
//! ([`WireFeed`]): bytes in, complete segments out, no clock, no channel,
//! and no allocation on the scan path (payload decoding builds the
//! per-cycle report structures, exactly like the struct-fed path does).
//!
//! Segment layout (byte-aligned so a socket transport can frame without
//! bit state): a 13-byte header — kind (1 byte), cycle (8 bytes, big
//! endian), payload length (4 bytes, big endian) — followed by the
//! bit-packed payload produced by [`crate::wire`]. Control payloads are
//! self-describing: window, granularity, items-per-bucket and the
//! presence flags for the SGT reports ride in-band, so decoding needs
//! only the deployment's fixed [`WireParams`] widths.

// bpush-lint: sans_io — protocol core: pure byte-stream framing, no clocks/threads/files/sockets

// bpush-lint: decode_path — all broadcast-feed input is read through checked take_* accessors

use bpush_types::{BpushError, Cycle, Granularity, ItemId, ItemValue, TxnId};

use crate::bcast::Bcast;
use crate::bucket::ItemRecord;
use crate::control::ControlInfo;
use crate::directory::Directory;
use crate::wire::{
    decode_augmented_from, decode_diff_from, decode_invalidation_from, encode_augmented_into,
    encode_diff_into, encode_invalidation_into, BitReader, BitWriter, WireParams,
};

/// Bytes in a segment header: kind, cycle, payload length.
pub const SEGMENT_HEADER_BYTES: usize = 1 + 8 + 4;

/// What a framed segment carries.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
// bpush-lint: protocol_enum — the segment vocabulary of the broadcast feed
pub enum SegmentKind {
    /// The control information preceding a cycle's data (§3).
    Control,
    /// Data-segment records (current versions, §2.1).
    Data,
    /// The on-air directory (§3.2 shifting-position organizations).
    Directory,
}

impl SegmentKind {
    /// The header byte of this kind.
    pub fn to_byte(self) -> u8 {
        match self {
            SegmentKind::Control => 0,
            SegmentKind::Data => 1,
            SegmentKind::Directory => 2,
        }
    }

    /// Parses a header byte.
    ///
    /// # Errors
    /// Returns [`BpushError::InvalidConfig`] for an unknown kind byte.
    // bpush-lint: hot_path — per-segment header parse on the broadcast feed path
    pub fn from_byte(b: u8) -> Result<Self, BpushError> {
        match b {
            0 => Ok(SegmentKind::Control),
            1 => Ok(SegmentKind::Data),
            2 => Ok(SegmentKind::Directory),
            _ => Err(BpushError::invalid_config("unknown segment kind byte")),
        }
    }
}

/// A complete segment, borrowed out of a [`WireFeed`]'s buffer: the
/// framing scan hands these out without copying the payload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SegmentView<'a> {
    /// What the segment carries.
    pub kind: SegmentKind,
    /// The broadcast cycle the segment belongs to.
    pub cycle: Cycle,
    /// The bit-packed payload.
    pub payload: &'a [u8],
}

/// A decoded segment, ready for the protocol layer.
#[derive(Debug, Clone, PartialEq)]
// bpush-lint: protocol_enum — decoded form of the segment vocabulary
// Boxing the inline ControlInfo would trade 240 stack bytes for a heap
// allocation on every decoded control segment — the per-cycle decode
// path stays allocation-free instead.
#[allow(clippy::large_enum_variant)]
pub enum DecodedSegment {
    /// A decoded control segment.
    Control(ControlInfo),
    /// Decoded data-segment records.
    Data(Cycle, Vec<ItemRecord>),
    /// A decoded directory.
    Directory(Directory),
}

/// Frames `payload` as a segment of `kind` for `cycle`.
fn frame(kind: SegmentKind, cycle: Cycle, payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(SEGMENT_HEADER_BYTES + payload.len());
    out.push(kind.to_byte());
    out.extend_from_slice(&cycle.number().to_be_bytes());
    // lint: allow(casts) — the length field is u32 by wire-format definition; single-cycle payloads sit far below 4 GiB
    out.extend_from_slice(&(payload.len() as u32).to_be_bytes());
    out.extend_from_slice(payload);
    out
}

/// Encodes one cycle's control information as a complete framed segment.
///
/// The payload is self-describing: window, granularity, items-per-bucket
/// and the SGT presence flags precede the report bodies, so the decoder
/// needs nothing beyond the fixed [`WireParams`] widths.
pub fn encode_control_segment(ctrl: &ControlInfo, params: WireParams) -> Vec<u8> {
    let mut w = BitWriter::new();
    let inv = ctrl.invalidation();
    w.put(u64::from(inv.window()), 32);
    w.put(u64::from(inv.granularity() == Granularity::Bucket), 1);
    w.put(u64::from(inv.items_per_bucket()), 32);
    w.put(u64::from(ctrl.augmented().is_some()), 1);
    w.put(u64::from(ctrl.graph_diff().is_some()), 1);
    encode_invalidation_into(&mut w, inv, params);
    if let Some(aug) = ctrl.augmented() {
        encode_augmented_into(&mut w, aug, ctrl.cycle(), params);
    }
    if let Some(diff) = ctrl.graph_diff() {
        encode_diff_into(&mut w, diff, ctrl.cycle(), params);
    }
    frame(SegmentKind::Control, ctrl.cycle(), &w.into_bytes())
}

/// Decodes a control-segment payload for `cycle`.
///
/// # Errors
/// Returns [`BpushError::InvalidConfig`] on a truncated or malformed
/// payload (including report invariant violations — see
/// [`crate::wire::decode_augmented`] and [`crate::wire::decode_diff`]).
pub fn decode_control_payload(
    payload: &[u8],
    params: WireParams,
    cycle: Cycle,
) -> Result<ControlInfo, BpushError> {
    let mut r = BitReader::new(payload);
    let window = take_u32_field(&mut r)?;
    let bucket = r.take(1)? == 1;
    let items_per_bucket = take_u32_field(&mut r)?;
    let has_augmented = r.take(1)? == 1;
    let has_diff = r.take(1)? == 1;
    let granularity = if bucket {
        Granularity::Bucket
    } else {
        Granularity::Item
    };
    let invalidation =
        decode_invalidation_from(&mut r, params, cycle, window, granularity, items_per_bucket)?;
    let augmented = if has_augmented {
        Some(decode_augmented_from(&mut r, params, cycle)?)
    } else {
        None
    };
    let graph_diff = if has_diff {
        Some(decode_diff_from(&mut r, params, cycle)?)
    } else {
        None
    };
    ControlInfo::try_new(cycle, invalidation, augmented, graph_diff)
}

/// Reads a 32-bit header field out of a payload stream.
// bpush-lint: hot_path — per-field decode primitive on the broadcast feed path
fn take_u32_field(r: &mut BitReader<'_>) -> Result<u32, BpushError> {
    u32::try_from(r.take(32)?)
        .map_err(|_| BpushError::invalid_config("wire field does not fit in 32 bits"))
}

/// Encodes data-segment records (current versions with their SGT tags
/// and overflow pointers) as a complete framed segment. Values carry no
/// payload bytes in this model — a value is identified by its writer —
/// so a record transmits the item key, the value's writer, the optional
/// last-writer tag and the optional overflow pointer.
pub fn encode_data_segment(cycle: Cycle, records: &[ItemRecord], params: WireParams) -> Vec<u8> {
    let mut w = BitWriter::new();
    w.put(records.len() as u64, 32);
    for rec in records {
        w.put(u64::from(rec.item().index()), params.key_bits);
        put_opt_txn(&mut w, rec.value().writer(), cycle, params);
        put_opt_txn(&mut w, rec.last_writer(), cycle, params);
        match rec.overflow_ptr() {
            Some(ptr) => {
                w.put(1, 1);
                w.put(ptr, 64);
            }
            None => w.put(0, 1),
        }
    }
    frame(SegmentKind::Data, cycle, &w.into_bytes())
}

/// Decodes a data-segment payload for `cycle`.
///
/// # Errors
/// Returns [`BpushError::InvalidConfig`] on a truncated stream.
pub fn decode_data_payload(
    payload: &[u8],
    params: WireParams,
    cycle: Cycle,
) -> Result<Vec<ItemRecord>, BpushError> {
    let mut r = BitReader::new(payload);
    let count = r.take(32)?;
    // 3 flag bits + the item key is the minimum footprint of one record
    let min_bits = params.key_bits + 3;
    let cap = count.min(r.remaining_bits() / u64::from(min_bits.max(1))) as usize; // bpush-lint: allow(panic-reach) — the divisor is clamped to ≥ 1
    let mut records = Vec::with_capacity(cap);
    for _ in 0..count {
        let item = ItemId::new(take_u32_width(&mut r, params.key_bits)?);
        let value = match take_opt_txn(&mut r, cycle, params)? {
            Some(writer) => ItemValue::written_by(writer),
            None => ItemValue::initial(),
        };
        let tag = take_opt_txn(&mut r, cycle, params)?;
        let mut rec = ItemRecord::new(item, value, tag);
        if r.take(1)? == 1 {
            rec = rec.with_overflow_ptr(r.take(64)?);
        }
        records.push(rec);
    }
    Ok(records)
}

/// Reads a `width`-bit field checked-narrowed to `u32`.
// bpush-lint: hot_path — per-field decode primitive on the broadcast feed path
fn take_u32_width(r: &mut BitReader<'_>, width: u32) -> Result<u32, BpushError> {
    u32::try_from(r.take(width)?)
        .map_err(|_| BpushError::invalid_config("wire field does not fit in 32 bits"))
}

fn put_opt_txn(w: &mut BitWriter, t: Option<TxnId>, now: Cycle, params: WireParams) {
    match t {
        Some(t) => {
            w.put(1, 1);
            crate::wire::put_txn(w, t, now, params);
        }
        None => w.put(0, 1),
    }
}

// bpush-lint: hot_path — per-record optional-txn decode on the broadcast feed path
fn take_opt_txn(
    r: &mut BitReader<'_>,
    now: Cycle,
    params: WireParams,
) -> Result<Option<TxnId>, BpushError> {
    if r.take(1)? == 0 {
        return Ok(None);
    }
    crate::wire::take_txn(r, now, params).map(Some)
}

/// Encodes a directory as a complete framed segment: one key and one
/// 64-bit slot offset per entry.
pub fn encode_directory_segment(dir: &Directory, params: WireParams) -> Vec<u8> {
    let mut w = BitWriter::new();
    w.put(dir.len() as u64, 32);
    for (item, slot) in dir.entries() {
        w.put(u64::from(item.index()), params.key_bits);
        w.put(slot, 64);
    }
    frame(SegmentKind::Directory, dir.cycle(), &w.into_bytes())
}

/// Decodes a directory payload for `cycle`.
///
/// # Errors
/// Returns [`BpushError::InvalidConfig`] on a truncated stream.
pub fn decode_directory_payload(
    payload: &[u8],
    params: WireParams,
    cycle: Cycle,
) -> Result<Directory, BpushError> {
    let mut r = BitReader::new(payload);
    let count = r.take(32)?;
    let mut entries = Vec::new();
    for _ in 0..count {
        let item = ItemId::new(take_u32_width(&mut r, params.key_bits)?);
        let slot = r.take(64)?;
        entries.push((item, slot));
    }
    Ok(Directory::new(cycle, entries))
}

/// Encodes a whole bcast as its on-wire segment sequence: directory (for
/// shifting-position organizations) first, then control, then the data
/// segment — the §2.1 cycle structure a transport actually transmits.
pub fn encode_bcast_segments(bcast: &Bcast, params: WireParams) -> Vec<u8> {
    let mut out = Vec::new();
    if let Some(dir) = bcast.directory() {
        out.extend_from_slice(&encode_directory_segment(dir, params));
    }
    out.extend_from_slice(&encode_control_segment(bcast.control(), params));
    let records: Vec<ItemRecord> = bcast.records().copied().collect();
    out.extend_from_slice(&encode_data_segment(bcast.cycle(), &records, params));
    out
}

/// Decodes any complete segment into its in-memory form.
///
/// # Errors
/// Returns [`BpushError::InvalidConfig`] on a malformed payload.
pub fn decode_segment(
    seg: SegmentView<'_>,
    params: WireParams,
) -> Result<DecodedSegment, BpushError> {
    match seg.kind {
        SegmentKind::Control => {
            decode_control_payload(seg.payload, params, seg.cycle).map(DecodedSegment::Control)
        }
        SegmentKind::Data => decode_data_payload(seg.payload, params, seg.cycle)
            .map(|records| DecodedSegment::Data(seg.cycle, records)),
        SegmentKind::Directory => {
            decode_directory_payload(seg.payload, params, seg.cycle).map(DecodedSegment::Directory)
        }
    }
}

/// An incremental segment parser: push byte chunks of any size in, pop
/// complete segments out. This is the client's transport boundary — a
/// socket reader, the simulator and the model checker all feed it the
/// same bytes, and everything past it is the pure protocol core.
///
/// The scan path allocates nothing: [`WireFeed::pop`] hands out
/// [`SegmentView`]s borrowing the internal buffer. Buffer space itself
/// amortizes across [`WireFeed::push`] calls and is compacted as
/// segments are consumed.
///
/// # Example
/// ```
/// use bpush_broadcast::feed::{encode_control_segment, SegmentKind, WireFeed};
/// use bpush_broadcast::wire::WireParams;
/// use bpush_broadcast::ControlInfo;
/// use bpush_types::Cycle;
///
/// let params = WireParams::derive(100, 1, 4, 4);
/// let bytes = encode_control_segment(&ControlInfo::empty(Cycle::new(2)), params);
/// let mut feed = WireFeed::new();
/// // deliver byte-by-byte, as a slow socket would
/// for b in &bytes {
///     feed.push(std::slice::from_ref(b));
/// }
/// let seg = feed.pop().unwrap().expect("one complete segment");
/// assert_eq!(seg.kind, SegmentKind::Control);
/// assert_eq!(seg.cycle, Cycle::new(2));
/// ```
#[derive(Debug, Default, Clone)]
pub struct WireFeed {
    buf: Vec<u8>,
    /// Bytes of `buf` already consumed by popped segments.
    read: usize,
}

impl WireFeed {
    /// An empty feed.
    pub fn new() -> Self {
        WireFeed::default()
    }

    /// Appends a chunk of transport bytes. Consumed buffer space is
    /// reclaimed here, outside the scan path.
    pub fn push(&mut self, chunk: &[u8]) {
        if self.read > 0 {
            self.buf.drain(..self.read);
            self.read = 0;
        }
        self.buf.extend_from_slice(chunk);
    }

    /// Bytes buffered but not yet consumed by a popped segment.
    pub fn buffered(&self) -> usize {
        self.buf.len() - self.read
    }

    /// Pops the next complete segment, or `None` when more bytes are
    /// needed. The view borrows this feed's buffer and is consumed by
    /// the call — the next `pop` moves past it.
    ///
    /// # Errors
    /// Returns [`BpushError::InvalidConfig`] on an unknown segment kind:
    /// the stream is unsynchronized and the transport must resync (§2.1
    /// self-description) before feeding more bytes.
    // bpush-lint: hot_path — the segment-boundary scan of the broadcast feed path
    pub fn pop(&mut self) -> Result<Option<SegmentView<'_>>, BpushError> {
        let mut header = self.buf.iter().skip(self.read).copied();
        let Some(kind_byte) = header.next() else {
            return Ok(None);
        };
        let kind = SegmentKind::from_byte(kind_byte)?;
        let mut cycle: u64 = 0;
        let mut len: u64 = 0;
        let mut have = 0usize;
        for b in header.by_ref().take(8) {
            cycle = (cycle << 8) | u64::from(b);
            have += 1;
        }
        for b in header.take(4) {
            len = (len << 8) | u64::from(b);
            have += 1;
        }
        if have < 12 {
            return Ok(None);
        }
        let start = self.read + SEGMENT_HEADER_BYTES;
        let end = start + len as usize;
        if end > self.buf.len() {
            return Ok(None);
        }
        let Some(payload) = self.buf.get(start..end) else {
            return Ok(None);
        };
        self.read = end;
        Ok(Some(SegmentView {
            kind,
            cycle: Cycle::new(cycle),
            payload,
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::control::{AugmentedReport, InvalidationReport};
    use bpush_sgraph::GraphDiff;

    fn params() -> WireParams {
        WireParams::derive(1000, 4, 10, 8)
    }

    fn sgt_control(cycle: u64) -> ControlInfo {
        let c = Cycle::new(cycle);
        let prev = c.prev();
        let inv = InvalidationReport::with_dated(
            c,
            4,
            [
                (ItemId::new(3), prev),
                (ItemId::new(99), Cycle::new(cycle.saturating_sub(9))),
            ],
            Granularity::Item,
            4,
        );
        let aug = AugmentedReport::new(prev, [(ItemId::new(3), TxnId::new(prev, 2))]);
        let old = TxnId::new(Cycle::ZERO, 1);
        let diff = GraphDiff::new(
            prev,
            vec![TxnId::new(prev, 2)],
            vec![(old, TxnId::new(prev, 2))],
        );
        ControlInfo::new(c, inv, Some(aug), Some(diff))
    }

    #[test]
    fn control_segment_roundtrip_with_sgt_reports() {
        let ctrl = sgt_control(20);
        let bytes = encode_control_segment(&ctrl, params());
        let mut feed = WireFeed::new();
        feed.push(&bytes);
        let seg = feed.pop().unwrap().expect("complete");
        assert_eq!(seg.kind, SegmentKind::Control);
        assert_eq!(seg.cycle, Cycle::new(20));
        let decoded = decode_control_payload(seg.payload, params(), seg.cycle).unwrap();
        assert_eq!(decoded, ctrl);
    }

    #[test]
    fn bucket_granularity_and_window_ride_in_band() {
        let c = Cycle::new(7);
        let inv = InvalidationReport::new(
            c,
            3,
            [ItemId::new(5), ItemId::new(11)],
            Granularity::Bucket,
            4,
        );
        let ctrl = ControlInfo::new(c, inv, None, None);
        let bytes = encode_control_segment(&ctrl, params());
        let mut feed = WireFeed::new();
        feed.push(&bytes);
        let seg = feed.pop().unwrap().expect("complete");
        let decoded = decode_control_payload(seg.payload, params(), seg.cycle).unwrap();
        assert_eq!(decoded, ctrl);
        assert_eq!(decoded.invalidation().granularity(), Granularity::Bucket);
        assert_eq!(decoded.invalidation().window(), 3);
        // conservative bucket verdicts survive the wire
        assert!(decoded.invalidation().invalidates(ItemId::new(4)));
    }

    #[test]
    fn arbitrary_chunk_boundaries_reassemble() {
        let a = encode_control_segment(&sgt_control(20), params());
        let b = encode_control_segment(&ControlInfo::empty(Cycle::new(21)), params());
        let stream: Vec<u8> = a.iter().chain(b.iter()).copied().collect();
        for chunk in [1usize, 2, 3, 7, stream.len()] {
            let mut feed = WireFeed::new();
            let mut cycles = Vec::new();
            for piece in stream.chunks(chunk) {
                feed.push(piece);
                while let Some(seg) = feed.pop().unwrap() {
                    cycles.push(seg.cycle.number());
                }
            }
            assert_eq!(cycles, vec![20, 21], "chunk size {chunk}");
            assert_eq!(feed.buffered(), 0, "chunk size {chunk}");
        }
    }

    #[test]
    fn data_segment_roundtrip() {
        let c = Cycle::new(9);
        let w = TxnId::new(Cycle::new(7), 3);
        let records = vec![
            ItemRecord::new(ItemId::new(0), ItemValue::initial(), None),
            ItemRecord::new(ItemId::new(5), ItemValue::written_by(w), Some(w)),
            ItemRecord::new(ItemId::new(7), ItemValue::written_by(w), None).with_overflow_ptr(12),
        ];
        let bytes = encode_data_segment(c, &records, params());
        let mut feed = WireFeed::new();
        feed.push(&bytes);
        let seg = feed.pop().unwrap().expect("complete");
        assert_eq!(seg.kind, SegmentKind::Data);
        match decode_segment(seg, params()).unwrap() {
            DecodedSegment::Data(cycle, decoded) => {
                assert_eq!(cycle, c);
                assert_eq!(decoded, records);
            }
            other => panic!("expected data, got {other:?}"),
        }
    }

    #[test]
    fn directory_segment_roundtrip() {
        let dir = Directory::new(
            Cycle::new(4),
            (0..10u32).map(|i| (ItemId::new(i), u64::from(i) + 3)),
        );
        let bytes = encode_directory_segment(&dir, params());
        let mut feed = WireFeed::new();
        feed.push(&bytes);
        let seg = feed.pop().unwrap().expect("complete");
        assert_eq!(seg.kind, SegmentKind::Directory);
        match decode_segment(seg, params()).unwrap() {
            DecodedSegment::Directory(decoded) => assert_eq!(decoded, dir),
            other => panic!("expected directory, got {other:?}"),
        }
    }

    #[test]
    fn unknown_kind_byte_is_an_error_not_a_panic() {
        let mut feed = WireFeed::new();
        feed.push(&[9, 0, 0, 0]);
        assert!(feed.pop().is_err());
    }

    #[test]
    fn truncated_payloads_are_rejected() {
        let ctrl = sgt_control(20);
        let bytes = encode_control_segment(&ctrl, params());
        let seg = SegmentView {
            kind: SegmentKind::Control,
            cycle: Cycle::new(20),
            payload: bytes.get(SEGMENT_HEADER_BYTES..bytes.len() - 1).unwrap(),
        };
        assert!(decode_segment(seg, params()).is_err());
    }

    #[test]
    fn empty_feed_pops_nothing() {
        let mut feed = WireFeed::new();
        assert!(feed.pop().unwrap().is_none());
        feed.push(&[0]); // a control kind byte alone is not a header
        assert!(feed.pop().unwrap().is_none());
        assert_eq!(feed.buffered(), 1);
    }
}
