//! Bit-exact wire encoding of the control information.
//!
//! The size model of [`crate::size_model`] *counts* bits; this module
//! actually produces them, so the `⌈·/b⌉` expressions of §3 are backed by
//! a real codec: invalidation reports, augmented reports and graph diffs
//! round-trip through packed bit streams whose lengths match the model.
//!
//! Field widths follow the paper's economies: item keys use `log₂ D`
//! bits, update ages `log₂(w + 1)` bits relative to the report cycle
//! ("instead of broadcasting the number of the cycle ... we can broadcast
//! the difference", §3.2), and transaction identifiers `log₂ N` bits of
//! sequence plus `log₂ S` bits of cycle age (§3.3). Each age field
//! reserves one escape code for cycles outside the relative range (see
//! [`WireParams`]), so decoding is always *exact* — never a clamped
//! approximation of what the server put on the air.

// bpush-lint: decode_path — all broadcast-feed input is read through BitReader take_* accessors

// bpush-lint: sans_io — protocol core: the codec is pure bytes-in/bytes-out (the ROADMAP item-1 sans-IO boundary)

use bpush_types::{BpushError, Cycle, Granularity, ItemId, TxnId};

use crate::control::{AugmentedReport, InvalidationReport};

/// Fixed field widths for one deployment, derived from the broadcast
/// parameters.
///
/// Age fields reserve their all-ones pattern as an escape code: an age
/// outside the direct range (an update re-announced from before the
/// window, a conflict edge from a transaction older than the relevance
/// horizon) is transmitted as the escape followed by the absolute
/// 64-bit cycle number. Every cycle therefore round-trips exactly; the
/// compact relative form remains the common case the paper's §3.2
/// economy describes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WireParams {
    /// Bits per item key: `⌈log₂ D⌉`.
    pub key_bits: u32,
    /// Bits per update age: `⌈log₂(window + 2)⌉` — window + 1 direct
    /// ages (0..=window) plus the reserved escape code.
    pub age_bits: u32,
    /// Bits per in-cycle transaction sequence number: `⌈log₂ N⌉`.
    pub seq_bits: u32,
    /// Bits per transaction cycle age: `⌈log₂(S + 2)⌉` — span + 1
    /// direct ages plus the reserved escape code.
    pub txn_age_bits: u32,
    /// Bits for entry counts (report/diff lengths).
    pub count_bits: u32,
}

impl WireParams {
    /// Derives widths for a broadcast of `d_items` items, report window
    /// `window`, `n_txns` transactions per cycle and a transaction
    /// relevance horizon of `span` cycles.
    pub fn derive(d_items: u32, window: u32, n_txns: u32, span: u32) -> Self {
        let bits = |n: u64| -> u32 { crate::size_model::bits_for(n) };
        WireParams {
            key_bits: bits(u64::from(d_items.saturating_sub(1))),
            // +1 keeps the all-ones escape code out of the direct range
            // even when the bound itself is all-ones (window 1, 3, 7…).
            age_bits: bits(u64::from(window) + 1),
            seq_bits: bits(u64::from(n_txns.saturating_sub(1))),
            txn_age_bits: bits(u64::from(span) + 1),
            count_bits: 24,
        }
    }
}

/// The all-ones escape pattern of a `width`-bit age field.
const fn age_escape(width: u32) -> u64 {
    u64::MAX >> (64 - width)
}

/// Writes the cycle `then` relative to `now` as a `width`-bit age.
/// Ages that fit below the escape pattern are written directly; older
/// (or future-dated) cycles escape to an absolute 64-bit cycle number,
/// so any cycle round-trips exactly.
fn put_cycle_rel(w: &mut BitWriter, now: Cycle, then: Cycle, width: u32) {
    let escape = age_escape(width);
    match now.number().checked_sub(then.number()) {
        Some(age) if age < escape => w.put(age, width),
        _ => {
            w.put(escape, width);
            w.put(then.number(), 64);
        }
    }
}

/// Reads a cycle written by [`put_cycle_rel`].
// bpush-lint: hot_path — per-entry age decode on the broadcast feed path
fn take_cycle_rel(r: &mut BitReader<'_>, now: Cycle, width: u32) -> Result<Cycle, BpushError> {
    let age = r.take(width)?;
    if age == age_escape(width) {
        return Ok(Cycle::new(r.take(64)?));
    }
    Ok(Cycle::new(now.number().saturating_sub(age)))
}

/// Bounds a decode-side `Vec` preallocation: an honest stream carrying
/// `count` entries of at least `entry_bits` each must still hold that
/// many bits past the reader's position, so capacity beyond that bound
/// only serves adversarial counts (a 24-bit count field can claim 16M
/// entries on a 3-byte stream).
fn capped_capacity(count: u64, entry_bits: u32, r: &BitReader<'_>) -> usize {
    // bpush-lint: allow(panic-reach) — the divisor is clamped to ≥ 1
    count.min(r.remaining_bits() / u64::from(entry_bits.max(1))) as usize
}

/// An append-only bit stream.
#[derive(Debug, Default, Clone)]
pub struct BitWriter {
    bytes: Vec<u8>,
    /// Bits used in the last byte (0 = byte boundary).
    partial: u32,
}

impl BitWriter {
    /// An empty stream.
    pub fn new() -> Self {
        BitWriter::default()
    }

    /// Appends the low `width` bits of `value`, most significant first.
    ///
    /// # Panics
    /// Panics if `width` is 0 or exceeds 64, or if `value` does not fit.
    pub fn put(&mut self, value: u64, width: u32) {
        assert!((1..=64).contains(&width), "width must be 1..=64");
        assert!(
            width == 64 || value < (1u64 << width),
            "value {value} does not fit in {width} bits"
        );
        for i in (0..width).rev() {
            let bit = (value >> i) & 1;
            if self.partial == 0 {
                self.bytes.push(0);
            }
            // lint: allow(panic) — a byte was pushed on the line above when partial == 0
            let last = self.bytes.last_mut().expect("just ensured");
            *last |= u8::from(bit == 1) << (7 - self.partial);
            self.partial = (self.partial + 1) % 8;
        }
    }

    /// Total bits written.
    pub fn bit_len(&self) -> u64 {
        self.bytes.len() as u64 * 8 - u64::from((8 - self.partial) % 8)
    }

    /// Finishes the stream, returning the packed bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.bytes
    }
}

/// A sequential bit-stream reader.
#[derive(Debug, Clone)]
pub struct BitReader<'a> {
    bytes: &'a [u8],
    pos: u64,
}

impl<'a> BitReader<'a> {
    /// Reads from packed bytes.
    pub fn new(bytes: &'a [u8]) -> Self {
        BitReader { bytes, pos: 0 }
    }

    /// Reads `width` bits, most significant first.
    ///
    /// # Errors
    /// Returns [`BpushError::InvalidConfig`] on stream underflow.
    // bpush-lint: hot_path — per-field decode primitive on the broadcast feed path
    pub fn take(&mut self, width: u32) -> Result<u64, BpushError> {
        if self.pos + u64::from(width) > self.bytes.len() as u64 * 8 {
            return Err(BpushError::invalid_config("bit stream underflow"));
        }
        let mut out = 0u64;
        for _ in 0..width {
            let byte = match self.bytes.get((self.pos / 8) as usize) {
                Some(&b) => b,
                // unreachable given the width check above; kept as a
                // checked read so truncation can never panic
                None => return Err(BpushError::invalid_config("bit stream underflow")),
            };
            let bit = (byte >> (7 - (self.pos % 8))) & 1;
            out = (out << 1) | u64::from(bit);
            self.pos += 1;
        }
        Ok(out)
    }

    /// Bits consumed so far.
    pub fn position(&self) -> u64 {
        self.pos
    }

    /// Bits still unread.
    // bpush-lint: hot_path — decode-side budget probe on the broadcast feed path
    pub fn remaining_bits(&self) -> u64 {
        (self.bytes.len() as u64 * 8).saturating_sub(self.pos)
    }
}

/// Encodes an invalidation report: count, then per entry the item key and
/// the update age (report cycle − update cycle).
pub fn encode_invalidation(report: &InvalidationReport, params: WireParams) -> Vec<u8> {
    let mut w = BitWriter::new();
    encode_invalidation_into(&mut w, report, params);
    w.into_bytes()
}

/// Appends an invalidation report to an open bit stream (the segment
/// framing layer embeds reports mid-stream).
pub(crate) fn encode_invalidation_into(
    w: &mut BitWriter,
    report: &InvalidationReport,
    params: WireParams,
) {
    let entries: Vec<(ItemId, Cycle)> = report.dated_items().collect();
    w.put(entries.len() as u64, params.count_bits);
    for (item, update_cycle) in entries {
        w.put(u64::from(item.index()), params.key_bits);
        put_cycle_rel(w, report.cycle(), update_cycle, params.age_bits);
    }
}

/// Decodes an invalidation report broadcast at `cycle` with window
/// `window`.
///
/// # Errors
/// Returns [`BpushError::InvalidConfig`] on a truncated stream.
pub fn decode_invalidation(
    bytes: &[u8],
    params: WireParams,
    cycle: Cycle,
    window: u32,
    granularity: Granularity,
    items_per_bucket: u32,
) -> Result<InvalidationReport, BpushError> {
    let mut r = BitReader::new(bytes);
    decode_invalidation_from(&mut r, params, cycle, window, granularity, items_per_bucket)
}

/// Reads an invalidation report from an open bit stream.
pub(crate) fn decode_invalidation_from(
    r: &mut BitReader<'_>,
    params: WireParams,
    cycle: Cycle,
    window: u32,
    granularity: Granularity,
    items_per_bucket: u32,
) -> Result<InvalidationReport, BpushError> {
    let count = r.take(params.count_bits)?;
    let cap = capped_capacity(count, params.key_bits + params.age_bits, r);
    let mut entries = Vec::with_capacity(cap);
    for _ in 0..count {
        let item = ItemId::new(take_u32(r, params.key_bits)?);
        let update = take_cycle_rel(r, cycle, params.age_bits)?;
        entries.push((item, update));
    }
    InvalidationReport::try_with_dated(cycle, window, entries, granularity, items_per_bucket)
}

pub(crate) fn put_txn(w: &mut BitWriter, t: TxnId, now: Cycle, params: WireParams) {
    put_cycle_rel(w, now, t.cycle(), params.txn_age_bits);
    w.put(u64::from(t.seq()), params.seq_bits);
}

/// Reads `width` bits and narrows them checked into a `u32`: a wire
/// field that does not fit is malformed input, reported as an error
/// rather than truncated.
// bpush-lint: hot_path — per-field decode primitive on the broadcast feed path
fn take_u32(r: &mut BitReader<'_>, width: u32) -> Result<u32, BpushError> {
    u32::try_from(r.take(width)?)
        .map_err(|_| BpushError::invalid_config("wire field does not fit in 32 bits"))
}

// bpush-lint: hot_path — per-entry transaction-id decode on the broadcast feed path
pub(crate) fn take_txn(
    r: &mut BitReader<'_>,
    now: Cycle,
    params: WireParams,
) -> Result<TxnId, BpushError> {
    let cycle = take_cycle_rel(r, now, params.txn_age_bits)?;
    let seq = take_u32(r, params.seq_bits)?;
    Ok(TxnId::new(cycle, seq))
}

/// Encodes an augmented report (item → first writer, §3.3): writers are
/// transmitted as (cycle age, sequence) pairs relative to `now`, the
/// cycle at whose beginning the report airs.
pub fn encode_augmented(report: &AugmentedReport, now: Cycle, params: WireParams) -> Vec<u8> {
    let mut w = BitWriter::new();
    encode_augmented_into(&mut w, report, now, params);
    w.into_bytes()
}

/// Appends an augmented report to an open bit stream.
pub(crate) fn encode_augmented_into(
    w: &mut BitWriter,
    report: &AugmentedReport,
    now: Cycle,
    params: WireParams,
) {
    let entries: Vec<(ItemId, TxnId)> = report.entries().collect();
    w.put(entries.len() as u64, params.count_bits);
    for (item, txn) in entries {
        w.put(u64::from(item.index()), params.key_bits);
        put_txn(w, txn, now, params);
    }
}

/// Decodes an augmented report describing the cycle before `now`.
///
/// # Errors
/// Returns [`BpushError::InvalidConfig`] on a truncated stream, or when
/// a decoded first writer did not commit during the covered cycle (the
/// [`AugmentedReport`] invariant — honest encoders never produce such a
/// stream, so it is malformed input, not a panic).
pub fn decode_augmented(
    bytes: &[u8],
    params: WireParams,
    now: Cycle,
) -> Result<AugmentedReport, BpushError> {
    let mut r = BitReader::new(bytes);
    decode_augmented_from(&mut r, params, now)
}

/// Reads an augmented report from an open bit stream.
pub(crate) fn decode_augmented_from(
    r: &mut BitReader<'_>,
    params: WireParams,
    now: Cycle,
) -> Result<AugmentedReport, BpushError> {
    let count = r.take(params.count_bits)?;
    let entry_bits = params.key_bits + params.txn_age_bits + params.seq_bits;
    let mut entries = Vec::with_capacity(capped_capacity(count, entry_bits, r));
    for _ in 0..count {
        let item = ItemId::new(take_u32(r, params.key_bits)?);
        let txn = take_txn(r, now, params)?;
        if txn.cycle() != now.prev() {
            return Err(BpushError::invalid_config(
                "augmented-report writer outside the covered cycle",
            ));
        }
        entries.push((item, txn));
    }
    Ok(AugmentedReport::new(now.prev(), entries))
}

/// Encodes a graph diff (§3.3): the committed transactions, then the
/// conflict edges as transaction-id pairs.
pub fn encode_diff(diff: &bpush_sgraph::GraphDiff, now: Cycle, params: WireParams) -> Vec<u8> {
    let mut w = BitWriter::new();
    encode_diff_into(&mut w, diff, now, params);
    w.into_bytes()
}

/// Appends a graph diff to an open bit stream.
pub(crate) fn encode_diff_into(
    w: &mut BitWriter,
    diff: &bpush_sgraph::GraphDiff,
    now: Cycle,
    params: WireParams,
) {
    w.put(diff.committed().len() as u64, params.count_bits);
    for &t in diff.committed() {
        put_txn(w, t, now, params);
    }
    w.put(diff.edges().len() as u64, params.count_bits);
    for &(a, b) in diff.edges() {
        put_txn(w, a, now, params);
        put_txn(w, b, now, params);
    }
}

/// Decodes a graph diff describing the cycle before `now`.
///
/// # Errors
/// Returns [`BpushError::InvalidConfig`] on a truncated stream, or when
/// the decoded diff violates the [`bpush_sgraph::GraphDiff`] invariants
/// (committed transactions outside the covered cycle, edges not pointing
/// forward into it) — honest encoders never produce such streams, so
/// they are malformed input, not panics.
pub fn decode_diff(
    bytes: &[u8],
    params: WireParams,
    now: Cycle,
) -> Result<bpush_sgraph::GraphDiff, BpushError> {
    let mut r = BitReader::new(bytes);
    decode_diff_from(&mut r, params, now)
}

/// Reads a graph diff from an open bit stream.
pub(crate) fn decode_diff_from(
    r: &mut BitReader<'_>,
    params: WireParams,
    now: Cycle,
) -> Result<bpush_sgraph::GraphDiff, BpushError> {
    let prev = now.prev();
    let txn_bits = params.txn_age_bits + params.seq_bits;
    let n_committed = r.take(params.count_bits)?;
    let mut committed = Vec::with_capacity(capped_capacity(n_committed, txn_bits, r));
    for _ in 0..n_committed {
        let t = take_txn(r, now, params)?;
        if t.cycle() != prev {
            return Err(BpushError::invalid_config(
                "graph-diff commit outside the covered cycle",
            ));
        }
        committed.push(t);
    }
    let n_edges = r.take(params.count_bits)?;
    let mut edges = Vec::with_capacity(capped_capacity(n_edges, 2 * txn_bits, r));
    for _ in 0..n_edges {
        let a = take_txn(r, now, params)?;
        let b = take_txn(r, now, params)?;
        if b.cycle() != prev || a >= b {
            return Err(BpushError::invalid_config(
                "graph-diff edge does not point forward into the covered cycle",
            ));
        }
        edges.push((a, b));
    }
    Ok(bpush_sgraph::GraphDiff::new(prev, committed, edges))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bit_writer_reader_roundtrip() {
        let mut w = BitWriter::new();
        w.put(0b101, 3);
        w.put(0xFFFF, 16);
        w.put(0, 1);
        w.put(42, 13);
        assert_eq!(w.bit_len(), 33);
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        assert_eq!(r.take(3).unwrap(), 0b101);
        assert_eq!(r.take(16).unwrap(), 0xFFFF);
        assert_eq!(r.take(1).unwrap(), 0);
        assert_eq!(r.take(13).unwrap(), 42);
        assert_eq!(r.position(), 33);
        assert!(r.take(8).is_err(), "underflow detected");
    }

    #[test]
    #[should_panic(expected = "does not fit")]
    fn writer_rejects_oversized_values() {
        let mut w = BitWriter::new();
        w.put(8, 3);
    }

    /// The checked `take` reads bit-for-bit what the original unchecked
    /// indexing read on every in-bounds stream — the L14 fix changes
    /// only the out-of-bounds path (panic → error).
    #[test]
    fn checked_take_matches_the_unchecked_oracle() {
        // The pre-fix algorithm: raw indexing, no underflow handling.
        fn oracle(bytes: &[u8], pos: &mut u64, width: u32) -> u64 {
            let mut out = 0u64;
            for _ in 0..width {
                let byte = bytes[(*pos / 8) as usize];
                let bit = (byte >> (7 - (*pos % 8))) & 1;
                out = (out << 1) | u64::from(bit);
                *pos += 1;
            }
            out
        }
        let mut w = BitWriter::new();
        let fields: [(u64, u32); 6] = [
            (0b1, 1),
            (0x2A, 7),
            (0, 3),
            (0xFFFF_FFFF, 32),
            (0x1234, 13),
            (1, 8),
        ];
        for (value, width) in fields {
            w.put(value, width);
        }
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        let mut pos = 0u64;
        for (value, width) in fields {
            let got = r.take(width).unwrap();
            assert_eq!(got, oracle(&bytes, &mut pos, width));
            assert_eq!(got, value);
        }
        assert_eq!(r.position(), pos);
        // Out of bounds is the only divergence: an error, not a panic.
        assert!(r.take(64).is_err());
    }

    fn params() -> WireParams {
        WireParams::derive(1000, 4, 10, 8)
    }

    #[test]
    fn derived_widths_are_logarithmic() {
        let p = params();
        assert_eq!(p.key_bits, 10); // log2(999) -> 10
        assert_eq!(p.age_bits, 3); // window 4
        assert_eq!(p.seq_bits, 4); // N = 10
        assert_eq!(p.txn_age_bits, 4); // span 8
    }

    #[test]
    fn invalidation_report_roundtrip() {
        let cycle = Cycle::new(20);
        let report = InvalidationReport::with_dated(
            cycle,
            4,
            [
                (ItemId::new(3), Cycle::new(19)),
                (ItemId::new(999), Cycle::new(17)),
                (ItemId::new(0), Cycle::new(18)),
            ],
            Granularity::Item,
            1,
        );
        let bytes = encode_invalidation(&report, params());
        let decoded =
            decode_invalidation(&bytes, params(), cycle, 4, Granularity::Item, 1).unwrap();
        assert_eq!(decoded, report);
    }

    #[test]
    fn encoded_size_matches_model_scale() {
        // 50 entries at 10 + 3 bits each, plus a 24-bit count
        let cycle = Cycle::new(5);
        let report = InvalidationReport::with_dated(
            cycle,
            1,
            (0..50).map(|i| (ItemId::new(i * 7), Cycle::new(4))),
            Granularity::Item,
            1,
        );
        let bytes = encode_invalidation(&report, params());
        let bits: usize = 24 + 50 * (10 + 3);
        assert_eq!(bytes.len(), bits.div_ceil(8));
    }

    #[test]
    fn augmented_report_roundtrip() {
        let now = Cycle::new(9);
        let prev = now.prev();
        let report = AugmentedReport::new(
            prev,
            [
                (ItemId::new(1), TxnId::new(prev, 0)),
                (ItemId::new(500), TxnId::new(prev, 9)),
            ],
        );
        let bytes = encode_augmented(&report, now, params());
        let decoded = decode_augmented(&bytes, params(), now).unwrap();
        assert_eq!(decoded, report);
    }

    #[test]
    fn graph_diff_roundtrip() {
        let now = Cycle::new(9);
        let prev = now.prev();
        let t0 = TxnId::new(prev, 0);
        let t1 = TxnId::new(prev, 1);
        let old = TxnId::new(Cycle::new(5), 3);
        let diff = bpush_sgraph::GraphDiff::new(prev, vec![t0, t1], vec![(old, t0), (t0, t1)]);
        let bytes = encode_diff(&diff, now, params());
        let decoded = decode_diff(&bytes, params(), now).unwrap();
        assert_eq!(decoded, diff);
    }

    #[test]
    fn empty_payloads_roundtrip() {
        let now = Cycle::new(3);
        let report = InvalidationReport::empty(now);
        let bytes = encode_invalidation(&report, params());
        let decoded = decode_invalidation(&bytes, params(), now, 1, Granularity::Item, 1).unwrap();
        assert!(decoded.is_empty());

        let diff = bpush_sgraph::GraphDiff::empty(now.prev());
        let bytes = encode_diff(&diff, now, params());
        assert_eq!(decode_diff(&bytes, params(), now).unwrap(), diff);
    }

    /// Regression (wire/in-memory divergence): a windowed report may
    /// re-announce an update from *before* the representable age range
    /// (§5.2.2 resynchronization). The old encoder clamped the age, so
    /// the decoded report dated the update later than the server did —
    /// changing `stale_at` verdicts. The escape code round-trips it.
    #[test]
    fn rewound_updates_roundtrip_beyond_the_window() {
        let cycle = Cycle::new(20);
        // window 4 -> 3 age bits -> direct ages 0..=6; age 18 escapes
        let report = InvalidationReport::with_dated(
            cycle,
            4,
            [(ItemId::new(3), Cycle::new(2))],
            Granularity::Item,
            1,
        );
        let bytes = encode_invalidation(&report, params());
        let decoded =
            decode_invalidation(&bytes, params(), cycle, 4, Granularity::Item, 1).unwrap();
        assert_eq!(decoded, report);
        assert_eq!(decoded.update_cycle(ItemId::new(3)), Some(Cycle::new(2)));
        // the verdict the clamp used to flip: a value current since
        // cycle 3 is NOT stale under an update dated cycle 2
        assert!(!decoded.stale_at(ItemId::new(3), Cycle::new(3)));
    }

    /// Regression (wire/in-memory divergence): graph-diff conflict
    /// edges may originate from transactions older than the relevance
    /// horizon. The old encoder clamped the cycle age, so the decoded
    /// `from` endpoint named a *different transaction* — corrupting the
    /// client's serialization graph. The escape code round-trips it.
    #[test]
    fn old_diff_edge_endpoints_roundtrip_beyond_the_horizon() {
        let now = Cycle::new(40);
        let prev = now.prev();
        // span 8 -> 4 txn-age bits -> direct ages 0..=14; age 40 escapes
        let old = TxnId::new(Cycle::ZERO, 3);
        let t = TxnId::new(prev, 0);
        let diff = bpush_sgraph::GraphDiff::new(prev, vec![t], vec![(old, t)]);
        let bytes = encode_diff(&diff, now, params());
        let decoded = decode_diff(&bytes, params(), now).unwrap();
        assert_eq!(decoded, diff);
        assert_eq!(decoded.edges()[0].0, old);
    }

    /// Regression (wire/in-memory divergence): an entry dated *after*
    /// the report cycle (nothing in the constructor forbids it) used to
    /// encode through `saturating_sub` as age 0 and decode to the report
    /// cycle itself. The escape code round-trips the absolute cycle.
    #[test]
    fn future_dated_entries_roundtrip() {
        let cycle = Cycle::new(20);
        let report = InvalidationReport::with_dated(
            cycle,
            4,
            [(ItemId::new(7), Cycle::new(21))],
            Granularity::Item,
            1,
        );
        let bytes = encode_invalidation(&report, params());
        let decoded =
            decode_invalidation(&bytes, params(), cycle, 4, Granularity::Item, 1).unwrap();
        assert_eq!(decoded, report);
        assert_eq!(decoded.update_cycle(ItemId::new(7)), Some(Cycle::new(21)));
    }

    /// Regression (decode-path robustness): a malformed stream whose
    /// decoded first writer lies outside the covered cycle used to reach
    /// `AugmentedReport::new`'s debug assertion — a panic on untrusted
    /// input. It is now rejected as an error.
    #[test]
    fn malformed_augmented_writers_are_rejected_not_panicked() {
        let now = Cycle::new(9);
        let p = params();
        let mut w = BitWriter::new();
        w.put(1, p.count_bits); // one entry
        w.put(5, p.key_bits); // item 5
        w.put(3, p.txn_age_bits); // writer aged 3 cycles: not now.prev()
        w.put(0, p.seq_bits);
        let err = decode_augmented(&w.into_bytes(), p, now).unwrap_err();
        assert!(err.to_string().contains("covered cycle"), "{err}");
    }

    /// Regression (decode-path robustness): malformed diff streams —
    /// a commit outside the covered cycle, or an edge not pointing
    /// forward into it — used to reach `GraphDiff::new`'s debug
    /// assertions. They are now rejected as errors.
    #[test]
    fn malformed_diff_streams_are_rejected_not_panicked() {
        let now = Cycle::new(9);
        let p = params();
        // a commit aged 2 cycles: not the covered cycle
        let mut w = BitWriter::new();
        w.put(1, p.count_bits);
        w.put(2, p.txn_age_bits);
        w.put(0, p.seq_bits);
        w.put(0, p.count_bits); // no edges
        assert!(decode_diff(&w.into_bytes(), p, now).is_err());
        // an edge whose endpoints are not ordered forward: (prev,1) -> (prev,1)
        let mut w = BitWriter::new();
        w.put(0, p.count_bits); // no commits
        w.put(1, p.count_bits); // one edge
        for _ in 0..2 {
            w.put(1, p.txn_age_bits);
            w.put(1, p.seq_bits);
        }
        assert!(decode_diff(&w.into_bytes(), p, now).is_err());
    }

    /// An adversarial count field (24 bits can claim 16M entries on a
    /// 3-byte stream) must neither preallocate for the claim nor panic:
    /// capacity is bounded by the bits actually present, and the decode
    /// fails with an underflow error.
    #[test]
    fn adversarial_counts_are_capped_and_rejected() {
        let p = params();
        let mut w = BitWriter::new();
        w.put((1 << p.count_bits) - 1, p.count_bits);
        let bytes = w.into_bytes();
        assert!(decode_invalidation(&bytes, p, Cycle::new(5), 1, Granularity::Item, 1).is_err());
        assert!(decode_augmented(&bytes, p, Cycle::new(5)).is_err());
        assert!(decode_diff(&bytes, p, Cycle::new(5)).is_err());
    }

    #[test]
    fn truncated_streams_are_rejected() {
        let cycle = Cycle::new(20);
        let report = InvalidationReport::with_dated(
            cycle,
            1,
            [(ItemId::new(3), Cycle::new(19))],
            Granularity::Item,
            1,
        );
        let mut bytes = encode_invalidation(&report, params());
        bytes.truncate(bytes.len() - 1);
        assert!(decode_invalidation(&bytes, params(), cycle, 1, Granularity::Item, 1).is_err());
    }
}
