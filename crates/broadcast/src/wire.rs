//! Bit-exact wire encoding of the control information.
//!
//! The size model of [`crate::size_model`] *counts* bits; this module
//! actually produces them, so the `⌈·/b⌉` expressions of §3 are backed by
//! a real codec: invalidation reports, augmented reports and graph diffs
//! round-trip through packed bit streams whose lengths match the model.
//!
//! Field widths follow the paper's economies: item keys use `log₂ D`
//! bits, update ages `log₂(w + 1)` bits relative to the report cycle
//! ("instead of broadcasting the number of the cycle ... we can broadcast
//! the difference", §3.2), and transaction identifiers `log₂ N` bits of
//! sequence plus `log₂ S` bits of cycle age (§3.3).

// bpush-lint: decode_path — all broadcast-feed input is read through BitReader take_* accessors

// bpush-lint: sans_io — protocol core: the codec is pure bytes-in/bytes-out (the ROADMAP item-1 sans-IO boundary)

use bpush_types::{BpushError, Cycle, Granularity, ItemId, TxnId};

use crate::control::{AugmentedReport, InvalidationReport};

/// Fixed field widths for one deployment, derived from the broadcast
/// parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WireParams {
    /// Bits per item key: `⌈log₂ D⌉`.
    pub key_bits: u32,
    /// Bits per update age: `⌈log₂(window + 1)⌉`.
    pub age_bits: u32,
    /// Bits per in-cycle transaction sequence number: `⌈log₂ N⌉`.
    pub seq_bits: u32,
    /// Bits per transaction cycle age: `⌈log₂(S + 1)⌉`.
    pub txn_age_bits: u32,
    /// Bits for entry counts (report/diff lengths).
    pub count_bits: u32,
}

impl WireParams {
    /// Derives widths for a broadcast of `d_items` items, report window
    /// `window`, `n_txns` transactions per cycle and a transaction
    /// relevance horizon of `span` cycles.
    pub fn derive(d_items: u32, window: u32, n_txns: u32, span: u32) -> Self {
        let bits = |n: u64| -> u32 { crate::size_model::bits_for(n) };
        WireParams {
            key_bits: bits(u64::from(d_items.saturating_sub(1))),
            age_bits: bits(u64::from(window)),
            seq_bits: bits(u64::from(n_txns.saturating_sub(1))),
            txn_age_bits: bits(u64::from(span)),
            count_bits: 24,
        }
    }
}

/// An append-only bit stream.
#[derive(Debug, Default, Clone)]
pub struct BitWriter {
    bytes: Vec<u8>,
    /// Bits used in the last byte (0 = byte boundary).
    partial: u32,
}

impl BitWriter {
    /// An empty stream.
    pub fn new() -> Self {
        BitWriter::default()
    }

    /// Appends the low `width` bits of `value`, most significant first.
    ///
    /// # Panics
    /// Panics if `width` is 0 or exceeds 64, or if `value` does not fit.
    pub fn put(&mut self, value: u64, width: u32) {
        assert!((1..=64).contains(&width), "width must be 1..=64");
        assert!(
            width == 64 || value < (1u64 << width),
            "value {value} does not fit in {width} bits"
        );
        for i in (0..width).rev() {
            let bit = (value >> i) & 1;
            if self.partial == 0 {
                self.bytes.push(0);
            }
            // lint: allow(panic) — a byte was pushed on the line above when partial == 0
            let last = self.bytes.last_mut().expect("just ensured");
            *last |= u8::from(bit == 1) << (7 - self.partial);
            self.partial = (self.partial + 1) % 8;
        }
    }

    /// Total bits written.
    pub fn bit_len(&self) -> u64 {
        self.bytes.len() as u64 * 8 - u64::from((8 - self.partial) % 8)
    }

    /// Finishes the stream, returning the packed bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.bytes
    }
}

/// A sequential bit-stream reader.
#[derive(Debug, Clone)]
pub struct BitReader<'a> {
    bytes: &'a [u8],
    pos: u64,
}

impl<'a> BitReader<'a> {
    /// Reads from packed bytes.
    pub fn new(bytes: &'a [u8]) -> Self {
        BitReader { bytes, pos: 0 }
    }

    /// Reads `width` bits, most significant first.
    ///
    /// # Errors
    /// Returns [`BpushError::InvalidConfig`] on stream underflow.
    // bpush-lint: hot_path — per-field decode primitive on the broadcast feed path
    pub fn take(&mut self, width: u32) -> Result<u64, BpushError> {
        if self.pos + u64::from(width) > self.bytes.len() as u64 * 8 {
            return Err(BpushError::invalid_config("bit stream underflow"));
        }
        let mut out = 0u64;
        for _ in 0..width {
            let byte = match self.bytes.get((self.pos / 8) as usize) {
                Some(&b) => b,
                // unreachable given the width check above; kept as a
                // checked read so truncation can never panic
                None => return Err(BpushError::invalid_config("bit stream underflow")),
            };
            let bit = (byte >> (7 - (self.pos % 8))) & 1;
            out = (out << 1) | u64::from(bit);
            self.pos += 1;
        }
        Ok(out)
    }

    /// Bits consumed so far.
    pub fn position(&self) -> u64 {
        self.pos
    }
}

/// Encodes an invalidation report: count, then per entry the item key and
/// the update age (report cycle − update cycle).
pub fn encode_invalidation(report: &InvalidationReport, params: WireParams) -> Vec<u8> {
    let mut w = BitWriter::new();
    let entries: Vec<(ItemId, Cycle)> = report.dated_items().collect();
    w.put(entries.len() as u64, params.count_bits);
    for (item, update_cycle) in entries {
        w.put(u64::from(item.index()), params.key_bits);
        let age = report
            .cycle()
            .number()
            .saturating_sub(update_cycle.number());
        w.put(age.min((1 << params.age_bits) - 1), params.age_bits);
    }
    w.into_bytes()
}

/// Decodes an invalidation report broadcast at `cycle` with window
/// `window`.
///
/// # Errors
/// Returns [`BpushError::InvalidConfig`] on a truncated stream.
pub fn decode_invalidation(
    bytes: &[u8],
    params: WireParams,
    cycle: Cycle,
    window: u32,
    granularity: Granularity,
    items_per_bucket: u32,
) -> Result<InvalidationReport, BpushError> {
    let mut r = BitReader::new(bytes);
    let count = r.take(params.count_bits)?;
    let mut entries = Vec::with_capacity(count as usize);
    for _ in 0..count {
        let item = ItemId::new(take_u32(&mut r, params.key_bits)?);
        let age = r.take(params.age_bits)?;
        let update = Cycle::new(cycle.number().saturating_sub(age));
        entries.push((item, update));
    }
    InvalidationReport::try_with_dated(cycle, window, entries, granularity, items_per_bucket)
}

fn put_txn(w: &mut BitWriter, t: TxnId, now: Cycle, params: WireParams) {
    let age = now.number().saturating_sub(t.cycle().number());
    w.put(age.min((1 << params.txn_age_bits) - 1), params.txn_age_bits);
    w.put(u64::from(t.seq()), params.seq_bits);
}

/// Reads `width` bits and narrows them checked into a `u32`: a wire
/// field that does not fit is malformed input, reported as an error
/// rather than truncated.
// bpush-lint: hot_path — per-field decode primitive on the broadcast feed path
fn take_u32(r: &mut BitReader<'_>, width: u32) -> Result<u32, BpushError> {
    u32::try_from(r.take(width)?)
        .map_err(|_| BpushError::invalid_config("wire field does not fit in 32 bits"))
}

// bpush-lint: hot_path — per-entry transaction-id decode on the broadcast feed path
fn take_txn(r: &mut BitReader<'_>, now: Cycle, params: WireParams) -> Result<TxnId, BpushError> {
    let age = r.take(params.txn_age_bits)?;
    let seq = take_u32(r, params.seq_bits)?;
    Ok(TxnId::new(
        Cycle::new(now.number().saturating_sub(age)),
        seq,
    ))
}

/// Encodes an augmented report (item → first writer, §3.3): writers are
/// transmitted as (cycle age, sequence) pairs relative to `now`, the
/// cycle at whose beginning the report airs.
pub fn encode_augmented(report: &AugmentedReport, now: Cycle, params: WireParams) -> Vec<u8> {
    let mut w = BitWriter::new();
    let entries: Vec<(ItemId, TxnId)> = report.entries().collect();
    w.put(entries.len() as u64, params.count_bits);
    for (item, txn) in entries {
        w.put(u64::from(item.index()), params.key_bits);
        put_txn(&mut w, txn, now, params);
    }
    w.into_bytes()
}

/// Decodes an augmented report describing the cycle before `now`.
///
/// # Errors
/// Returns [`BpushError::InvalidConfig`] on a truncated stream.
pub fn decode_augmented(
    bytes: &[u8],
    params: WireParams,
    now: Cycle,
) -> Result<AugmentedReport, BpushError> {
    let mut r = BitReader::new(bytes);
    let count = r.take(params.count_bits)?;
    let mut entries = Vec::with_capacity(count as usize);
    for _ in 0..count {
        let item = ItemId::new(take_u32(&mut r, params.key_bits)?);
        let txn = take_txn(&mut r, now, params)?;
        entries.push((item, txn));
    }
    Ok(AugmentedReport::new(now.prev(), entries))
}

/// Encodes a graph diff (§3.3): the committed transactions, then the
/// conflict edges as transaction-id pairs.
pub fn encode_diff(diff: &bpush_sgraph::GraphDiff, now: Cycle, params: WireParams) -> Vec<u8> {
    let mut w = BitWriter::new();
    w.put(diff.committed().len() as u64, params.count_bits);
    for &t in diff.committed() {
        put_txn(&mut w, t, now, params);
    }
    w.put(diff.edges().len() as u64, params.count_bits);
    for &(a, b) in diff.edges() {
        put_txn(&mut w, a, now, params);
        put_txn(&mut w, b, now, params);
    }
    w.into_bytes()
}

/// Decodes a graph diff describing the cycle before `now`.
///
/// # Errors
/// Returns [`BpushError::InvalidConfig`] on a truncated stream.
pub fn decode_diff(
    bytes: &[u8],
    params: WireParams,
    now: Cycle,
) -> Result<bpush_sgraph::GraphDiff, BpushError> {
    let mut r = BitReader::new(bytes);
    let n_committed = r.take(params.count_bits)?;
    let mut committed = Vec::with_capacity(n_committed as usize);
    for _ in 0..n_committed {
        committed.push(take_txn(&mut r, now, params)?);
    }
    let n_edges = r.take(params.count_bits)?;
    let mut edges = Vec::with_capacity(n_edges as usize);
    for _ in 0..n_edges {
        let a = take_txn(&mut r, now, params)?;
        let b = take_txn(&mut r, now, params)?;
        edges.push((a, b));
    }
    Ok(bpush_sgraph::GraphDiff::new(now.prev(), committed, edges))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bit_writer_reader_roundtrip() {
        let mut w = BitWriter::new();
        w.put(0b101, 3);
        w.put(0xFFFF, 16);
        w.put(0, 1);
        w.put(42, 13);
        assert_eq!(w.bit_len(), 33);
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        assert_eq!(r.take(3).unwrap(), 0b101);
        assert_eq!(r.take(16).unwrap(), 0xFFFF);
        assert_eq!(r.take(1).unwrap(), 0);
        assert_eq!(r.take(13).unwrap(), 42);
        assert_eq!(r.position(), 33);
        assert!(r.take(8).is_err(), "underflow detected");
    }

    #[test]
    #[should_panic(expected = "does not fit")]
    fn writer_rejects_oversized_values() {
        let mut w = BitWriter::new();
        w.put(8, 3);
    }

    /// The checked `take` reads bit-for-bit what the original unchecked
    /// indexing read on every in-bounds stream — the L14 fix changes
    /// only the out-of-bounds path (panic → error).
    #[test]
    fn checked_take_matches_the_unchecked_oracle() {
        // The pre-fix algorithm: raw indexing, no underflow handling.
        fn oracle(bytes: &[u8], pos: &mut u64, width: u32) -> u64 {
            let mut out = 0u64;
            for _ in 0..width {
                let byte = bytes[(*pos / 8) as usize];
                let bit = (byte >> (7 - (*pos % 8))) & 1;
                out = (out << 1) | u64::from(bit);
                *pos += 1;
            }
            out
        }
        let mut w = BitWriter::new();
        let fields: [(u64, u32); 6] = [
            (0b1, 1),
            (0x2A, 7),
            (0, 3),
            (0xFFFF_FFFF, 32),
            (0x1234, 13),
            (1, 8),
        ];
        for (value, width) in fields {
            w.put(value, width);
        }
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        let mut pos = 0u64;
        for (value, width) in fields {
            let got = r.take(width).unwrap();
            assert_eq!(got, oracle(&bytes, &mut pos, width));
            assert_eq!(got, value);
        }
        assert_eq!(r.position(), pos);
        // Out of bounds is the only divergence: an error, not a panic.
        assert!(r.take(64).is_err());
    }

    fn params() -> WireParams {
        WireParams::derive(1000, 4, 10, 8)
    }

    #[test]
    fn derived_widths_are_logarithmic() {
        let p = params();
        assert_eq!(p.key_bits, 10); // log2(999) -> 10
        assert_eq!(p.age_bits, 3); // window 4
        assert_eq!(p.seq_bits, 4); // N = 10
        assert_eq!(p.txn_age_bits, 4); // span 8
    }

    #[test]
    fn invalidation_report_roundtrip() {
        let cycle = Cycle::new(20);
        let report = InvalidationReport::with_dated(
            cycle,
            4,
            [
                (ItemId::new(3), Cycle::new(19)),
                (ItemId::new(999), Cycle::new(17)),
                (ItemId::new(0), Cycle::new(18)),
            ],
            Granularity::Item,
            1,
        );
        let bytes = encode_invalidation(&report, params());
        let decoded =
            decode_invalidation(&bytes, params(), cycle, 4, Granularity::Item, 1).unwrap();
        assert_eq!(decoded, report);
    }

    #[test]
    fn encoded_size_matches_model_scale() {
        // 50 entries at 10 + 3 bits each, plus a 24-bit count
        let cycle = Cycle::new(5);
        let report = InvalidationReport::with_dated(
            cycle,
            1,
            (0..50).map(|i| (ItemId::new(i * 7), Cycle::new(4))),
            Granularity::Item,
            1,
        );
        let bytes = encode_invalidation(&report, params());
        let bits: usize = 24 + 50 * (10 + 3);
        assert_eq!(bytes.len(), bits.div_ceil(8));
    }

    #[test]
    fn augmented_report_roundtrip() {
        let now = Cycle::new(9);
        let prev = now.prev();
        let report = AugmentedReport::new(
            prev,
            [
                (ItemId::new(1), TxnId::new(prev, 0)),
                (ItemId::new(500), TxnId::new(prev, 9)),
            ],
        );
        let bytes = encode_augmented(&report, now, params());
        let decoded = decode_augmented(&bytes, params(), now).unwrap();
        assert_eq!(decoded, report);
    }

    #[test]
    fn graph_diff_roundtrip() {
        let now = Cycle::new(9);
        let prev = now.prev();
        let t0 = TxnId::new(prev, 0);
        let t1 = TxnId::new(prev, 1);
        let old = TxnId::new(Cycle::new(5), 3);
        let diff = bpush_sgraph::GraphDiff::new(prev, vec![t0, t1], vec![(old, t0), (t0, t1)]);
        let bytes = encode_diff(&diff, now, params());
        let decoded = decode_diff(&bytes, params(), now).unwrap();
        assert_eq!(decoded, diff);
    }

    #[test]
    fn empty_payloads_roundtrip() {
        let now = Cycle::new(3);
        let report = InvalidationReport::empty(now);
        let bytes = encode_invalidation(&report, params());
        let decoded = decode_invalidation(&bytes, params(), now, 1, Granularity::Item, 1).unwrap();
        assert!(decoded.is_empty());

        let diff = bpush_sgraph::GraphDiff::empty(now.prev());
        let bytes = encode_diff(&diff, now, params());
        assert_eq!(decode_diff(&bytes, params(), now).unwrap(), diff);
    }

    #[test]
    fn truncated_streams_are_rejected() {
        let cycle = Cycle::new(20);
        let report = InvalidationReport::with_dated(
            cycle,
            1,
            [(ItemId::new(3), Cycle::new(19))],
            Granularity::Item,
            1,
        );
        let mut bytes = encode_invalidation(&report, params());
        bytes.truncate(bytes.len() - 1);
        assert!(decode_invalidation(&bytes, params(), cycle, 1, Granularity::Item, 1).is_err());
    }
}
