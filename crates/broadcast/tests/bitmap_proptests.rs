//! Differential property tests for the PR-8 word-parallel report
//! membership path: every `*_set` probe (word-AND over the report's
//! dense bitmap) must agree with the PR-3 galloping probe it screens
//! for, over random reports, readsets, granularities, and id spans —
//! including spans wide enough to degrade the bitmap back to galloping.

// Integration tests are exempt from the panic-freedom policy
// (mirrors `allow-unwrap-in-tests` in clippy.toml and the `#[cfg(test)]`
// carve-out in `cargo xtask lint`).
#![allow(clippy::unwrap_used)]
use proptest::prelude::*;

use bpush_broadcast::{AugmentedReport, InvalidationReport};
use bpush_types::{Cycle, Granularity, ItemId, TxnId};

/// The word-block form of a sorted readset, exactly as
/// `ReadSet::word_blocks` exposes it to the probes: bit `b` of
/// `words[w]` is item `(base + w) * 64 + b`.
fn blocks_of(items: &[ItemId]) -> Option<(u32, Vec<u64>)> {
    let first = items.first()?;
    let base = first.index() >> 6;
    let mut words = Vec::new();
    for x in items {
        let off = ((x.index() >> 6) - base) as usize;
        if off >= words.len() {
            words.resize(off + 1, 0u64);
        }
        words[off] |= 1u64 << (x.index() & 63);
    }
    Some((base, words))
}

/// Random dated update entries. `wide` occasionally pushes one id far
/// out so the report's dense span cap trips and `item_bits` is `None`.
fn dated_entries(wide: bool) -> impl Strategy<Value = Vec<(ItemId, Cycle)>> {
    let id = if wide { 0u32..200_000 } else { 0u32..300 };
    proptest::collection::vec((id, 1u64..9), 0..24).prop_map(|v| {
        v.into_iter()
            .map(|(x, c)| (ItemId::new(x), Cycle::new(c)))
            .collect()
    })
}

/// A random sorted, deduped readset over the same id universe.
fn readset(wide: bool) -> impl Strategy<Value = Vec<ItemId>> {
    let id = if wide { 0u32..200_000 } else { 0u32..300 };
    proptest::collection::btree_set(id, 0..16)
        .prop_map(|s| s.into_iter().map(ItemId::new).collect())
}

proptest! {
    /// `any_invalidated_set` and `any_stale_set` agree with the galloping
    /// probes for every (report, readset, state) — at item granularity,
    /// at bucket granularity (where the bitmap must abstain), and over
    /// wide id spans (where the bitmap degrades).
    #[test]
    fn set_probes_agree_with_galloping(
        entries in dated_entries(false),
        wide_entries in dated_entries(true),
        set in readset(false),
        wide_set in readset(true),
        state in 0u64..10,
        window in 1u32..4,
        bucketed in proptest::bool::ANY,
    ) {
        let state = Cycle::new(state);
        for (entries, set) in [(&entries, &set), (&wide_entries, &wide_set)] {
            let mut r = InvalidationReport::with_dated(
                Cycle::new(9),
                window,
                entries.iter().copied(),
                Granularity::Item,
                4,
            );
            if bucketed {
                r = r.at_granularity(Granularity::Bucket);
            }
            let blocks = blocks_of(set);
            let words = blocks.as_ref().map(|(b, w)| (*b, w.as_slice()));
            prop_assert_eq!(
                r.any_invalidated_set(set, words),
                r.any_invalidated(set),
                "invalidated: {:?}", set
            );
            prop_assert_eq!(
                r.any_stale_set(set, words, state),
                r.any_stale(set, state),
                "stale at {:?}: {:?}", state, set
            );
        }
    }

    /// `matches_in_set` yields exactly the `(item, first_writer)` pairs
    /// of the galloping `matches_in`, in the same order.
    #[test]
    fn matches_in_set_agrees_with_galloping(
        entries in dated_entries(false),
        wide_entries in dated_entries(true),
        set in readset(false),
        wide_set in readset(true),
    ) {
        for (entries, set) in [(&entries, &set), (&wide_entries, &wide_set)] {
            let aug = AugmentedReport::new(
                Cycle::new(9),
                entries
                    .iter()
                    .map(|&(x, _)| (x, TxnId::new(Cycle::new(9), x.index() % 3))),
            );
            let blocks = blocks_of(set);
            let words = blocks.as_ref().map(|(b, w)| (*b, w.as_slice()));
            let via_words: Vec<(ItemId, TxnId)> = aug.matches_in_set(set, words).collect();
            let via_gallop: Vec<(ItemId, TxnId)> = aug.matches_in(set).collect();
            prop_assert_eq!(via_words, via_gallop, "{:?}", set);
        }
    }
}
