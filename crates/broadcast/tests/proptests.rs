//! Property tests for broadcast organizations and the size model.

// Integration tests are exempt from the panic-freedom policy
// (mirrors `allow-unwrap-in-tests` in clippy.toml and the `#[cfg(test)]`
// carve-out in `cargo xtask lint`).
#![allow(clippy::unwrap_used)]
use proptest::prelude::*;
use std::collections::HashMap;

use bpush_broadcast::organization::{
    BroadcastDisks, DiskSpec, Flat, MultiversionClustered, MultiversionOverflow,
};
use bpush_broadcast::size_model::{SizeModel, SizeParams};
use bpush_broadcast::{ControlInfo, ItemRecord};
use bpush_types::{Cycle, ItemId, ItemValue, TxnId};

/// Random database content: per item, a chain of version cycles
/// (ascending), the last being current.
fn contents() -> impl Strategy<Value = Vec<Vec<u64>>> {
    proptest::collection::vec(proptest::collection::btree_set(1u64..12, 0..4), 1..24).prop_map(
        |items| {
            items
                .into_iter()
                .map(|set| {
                    let mut v: Vec<u64> = vec![0];
                    v.extend(set);
                    v
                })
                .collect()
        },
    )
}

fn value_at(version: u64) -> ItemValue {
    if version == 0 {
        ItemValue::initial()
    } else {
        ItemValue::written_by(TxnId::new(Cycle::new(version - 1), 0))
    }
}

fn build_parts(chains: &[Vec<u64>]) -> (Vec<ItemRecord>, Vec<(ItemId, Vec<ItemValue>)>) {
    let mut records = Vec::new();
    let mut old = Vec::new();
    for (i, chain) in chains.iter().enumerate() {
        let item = ItemId::new(i as u32);
        let current = *chain.last().expect("nonempty");
        records.push(ItemRecord::new(item, value_at(current), None));
        if chain.len() > 1 {
            let mut versions: Vec<ItemValue> = chain[..chain.len() - 1]
                .iter()
                .rev()
                .map(|&v| value_at(v))
                .collect();
            versions.dedup();
            old.push((item, versions));
        }
    }
    (records, old)
}

/// The ground-truth multiversion read rule over the raw chains.
fn oracle_best(chain: &[u64], state: u64) -> Option<u64> {
    chain.iter().copied().filter(|&v| v <= state).max()
}

proptest! {
    /// Both multiversion organizations implement the §3.2 read rule
    /// exactly: `best_version_at_most` equals the chain maximum `≤ state`.
    #[test]
    fn multiversion_read_rule_is_exact(chains in contents(), state in 0u64..14) {
        let (records, old) = build_parts(&chains);
        let cycle = Cycle::new(14);
        let ctrl = ControlInfo::empty(cycle);
        for org in 0..2 {
            let bcast = if org == 0 {
                MultiversionOverflow::new(1).assemble(cycle, ctrl.clone(), records.clone(), old.clone())
            } else {
                MultiversionClustered::new().assemble(cycle, ctrl.clone(), records.clone(), old.clone())
            };
            for (i, chain) in chains.iter().enumerate() {
                let item = ItemId::new(i as u32);
                let got = bcast
                    .best_version_at_most(item, Cycle::new(state))
                    .map(|(_, v)| v.version().number());
                prop_assert_eq!(got, oracle_best(chain, state), "org {} item {}", org, i);
            }
        }
    }

    /// Every organization transmits every current version exactly at the
    /// slots it reports, within the bcast bounds, and fixed-position
    /// organizations put items in id order.
    #[test]
    fn occurrences_are_in_bounds_and_ordered(chains in contents()) {
        let (records, old) = build_parts(&chains);
        let cycle = Cycle::new(14);
        let flat = Flat::new(1).assemble(cycle, ControlInfo::empty(cycle), records.clone(), Vec::new());
        let over = MultiversionOverflow::new(1).assemble(cycle, ControlInfo::empty(cycle), records.clone(), old.clone());
        for bcast in [&flat, &over] {
            let mut last = None;
            for (i, _) in chains.iter().enumerate() {
                let item = ItemId::new(i as u32);
                let slot = bcast.slot_of_current(item).expect("on air");
                prop_assert!(slot >= bcast.data_start());
                prop_assert!(slot < bcast.data_start() + bcast.data_slots());
                if let Some(prev) = last {
                    prop_assert!(slot > prev, "fixed positions follow item order");
                }
                last = Some(slot);
            }
        }
        // total length is consistent
        prop_assert_eq!(
            over.total_slots(),
            over.control_slots() + over.data_slots() + over.overflow_slots()
        );
    }

    /// The clustered organization's on-air directory always agrees with
    /// the actual positions.
    #[test]
    fn clustered_directory_is_truthful(chains in contents()) {
        let (records, old) = build_parts(&chains);
        let cycle = Cycle::new(14);
        let bcast = MultiversionClustered::new().assemble(
            cycle,
            ControlInfo::empty(cycle),
            records,
            old,
        );
        let dir = bcast.directory().expect("clustered has a directory");
        for i in 0..chains.len() {
            let item = ItemId::new(i as u32);
            let via_dir = dir.slot_of(item).map(|rel| bcast.data_start() + rel);
            prop_assert_eq!(via_dir, bcast.slot_of_current(item));
        }
    }

    /// Broadcast disks: every item appears exactly `rel_freq` times per
    /// major cycle (with the regular chunk schedule used here), all
    /// within the data segment.
    #[test]
    fn disks_frequencies_hold(
        hot in 1u32..6,
        cold in 1u32..12,
        freq in 2u32..5,
    ) {
        let n = hot + cold;
        let records: Vec<ItemRecord> = (0..n)
            .map(|i| ItemRecord::new(ItemId::new(i), ItemValue::initial(), None))
            .collect();
        let org = BroadcastDisks::new(vec![
            DiskSpec { items: hot, rel_freq: freq },
            DiskSpec { items: cold, rel_freq: 1 },
        ]);
        let bcast = org.assemble(Cycle::ZERO, ControlInfo::empty(Cycle::ZERO), records, Vec::new());
        for i in 0..hot {
            prop_assert_eq!(bcast.occurrences_of(ItemId::new(i)).len(), freq as usize);
        }
        for i in hot..n {
            prop_assert_eq!(bcast.occurrences_of(ItemId::new(i)).len(), 1);
        }
        // no slot is double-booked
        let mut seen = HashMap::new();
        for i in 0..n {
            for &s in bcast.occurrences_of(ItemId::new(i)) {
                prop_assert!(seen.insert(s, i).is_none(), "slot {} double-booked", s);
            }
        }
    }

    /// Size model monotonicity: every method's extra cost is
    /// non-decreasing in the update volume, and the multiversion methods
    /// in the span.
    #[test]
    fn size_model_monotone(u1 in 1u32..400, u2 in 1u32..400, s1 in 1u32..10, s2 in 1u32..10) {
        let (ulo, uhi) = (u1.min(u2), u1.max(u2));
        let (slo, shi) = (s1.min(s2), s1.max(s2));
        let m = SizeModel::new(1000, SizeParams::default());
        prop_assert!(m.invalidation_only_extra(ulo) <= m.invalidation_only_extra(uhi));
        prop_assert!(m.multiversion_overflow_extra(ulo, slo) <= m.multiversion_overflow_extra(uhi, slo));
        prop_assert!(m.multiversion_overflow_extra(ulo, slo) <= m.multiversion_overflow_extra(ulo, shi));
        prop_assert!(m.multiversion_clustered_extra(ulo, slo) <= m.multiversion_clustered_extra(uhi, shi));
        prop_assert!(m.multiversion_caching_extra(ulo, slo) <= m.multiversion_caching_extra(uhi, shi));
        prop_assert!(m.sgt_extra(10, 25, ulo) <= m.sgt_extra(10, 25, uhi));
    }
}
