//! Property tests for the wire codec: arbitrary control information
//! round-trips bit-exactly, and encoded lengths match the closed-form
//! accounting.

// Integration tests are exempt from the panic-freedom policy
// (mirrors `allow-unwrap-in-tests` in clippy.toml and the `#[cfg(test)]`
// carve-out in `cargo xtask lint`).
#![allow(clippy::unwrap_used)]
use proptest::prelude::*;

use bpush_broadcast::wire::{
    decode_augmented, decode_diff, decode_invalidation, encode_augmented, encode_diff,
    encode_invalidation, BitReader, BitWriter, WireParams,
};
use bpush_broadcast::{AugmentedReport, InvalidationReport};
use bpush_sgraph::GraphDiff;
use bpush_types::{Cycle, Granularity, ItemId, TxnId};

fn params() -> WireParams {
    WireParams::derive(1024, 8, 16, 16)
}

proptest! {
    /// Arbitrary (value, width) sequences round-trip through the bit
    /// stream.
    #[test]
    fn bit_stream_roundtrip(fields in proptest::collection::vec((0u64..u64::MAX, 1u32..64), 0..64)) {
        let mut w = BitWriter::new();
        let masked: Vec<(u64, u32)> = fields
            .iter()
            .map(|&(v, width)| (v & ((1u64 << width) - 1), width))
            .collect();
        for &(v, width) in &masked {
            w.put(v, width);
        }
        let expected_bits: u64 = masked.iter().map(|&(_, w)| u64::from(w)).sum();
        prop_assert_eq!(w.bit_len(), expected_bits);
        let bytes = w.into_bytes();
        prop_assert_eq!(bytes.len() as u64, expected_bits.div_ceil(8));
        let mut r = BitReader::new(&bytes);
        for &(v, width) in &masked {
            prop_assert_eq!(r.take(width).unwrap(), v);
        }
    }

    /// Invalidation reports round-trip for any update set within the
    /// window.
    #[test]
    fn invalidation_roundtrip(
        cycle in 8u64..100,
        window in 1u32..8,
        raw in proptest::collection::vec((0u32..1024, 0u32..8), 0..64),
    ) {
        let entries: Vec<(ItemId, Cycle)> = raw
            .iter()
            .map(|&(i, age)| {
                (ItemId::new(i), Cycle::new(cycle - u64::from(age.min(window - 1))))
            })
            .collect();
        let report = InvalidationReport::with_dated(
            Cycle::new(cycle),
            window,
            entries,
            Granularity::Item,
            1,
        );
        let bytes = encode_invalidation(&report, params());
        let decoded = decode_invalidation(
            &bytes,
            params(),
            Cycle::new(cycle),
            window,
            Granularity::Item,
            1,
        )
        .unwrap();
        prop_assert_eq!(decoded, report);
    }

    /// Augmented reports round-trip for any first-writer assignment.
    #[test]
    fn augmented_roundtrip(
        now in 1u64..100,
        raw in proptest::collection::vec((0u32..1024, 0u32..16), 0..32),
    ) {
        let prev = Cycle::new(now - 1);
        let entries: Vec<(ItemId, TxnId)> = raw
            .iter()
            .map(|&(i, seq)| (ItemId::new(i), TxnId::new(prev, seq)))
            .collect();
        let report = AugmentedReport::new(prev, entries);
        let bytes = encode_augmented(&report, Cycle::new(now), params());
        let decoded = decode_augmented(&bytes, params(), Cycle::new(now)).unwrap();
        prop_assert_eq!(decoded, report);
    }

    /// Graph diffs round-trip for any edge set within the age horizon.
    #[test]
    fn diff_roundtrip(
        now in 16u64..100,
        seqs in proptest::collection::btree_set(0u32..16, 0..8),
        raw_edges in proptest::collection::vec((1u32..16, 0u32..16, 0u32..16), 0..16),
    ) {
        let prev = Cycle::new(now - 1);
        let committed: Vec<TxnId> = seqs.iter().map(|&s| TxnId::new(prev, s)).collect();
        let edges: Vec<(TxnId, TxnId)> = raw_edges
            .iter()
            .map(|&(age, s1, s2)| {
                (
                    TxnId::new(Cycle::new(now - 1 - u64::from(age.min(15))), s1),
                    TxnId::new(prev, s2),
                )
            })
            .filter(|(a, b)| a < b)
            .collect();
        let diff = GraphDiff::new(prev, committed, edges);
        let bytes = encode_diff(&diff, Cycle::new(now), params());
        let decoded = decode_diff(&bytes, params(), Cycle::new(now)).unwrap();
        prop_assert_eq!(decoded, diff);
    }
}
