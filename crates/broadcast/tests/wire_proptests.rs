//! Property tests for the wire codec: arbitrary control information
//! round-trips bit-exactly, encoded lengths match the closed-form
//! accounting, and — the sans-IO robustness contract — truncated or
//! corrupted input is rejected with an error, never a panic.

// Integration tests are exempt from the panic-freedom policy
// (mirrors `allow-unwrap-in-tests` in clippy.toml and the `#[cfg(test)]`
// carve-out in `cargo xtask lint`).
#![allow(clippy::unwrap_used)]
use proptest::prelude::*;

use bpush_broadcast::wire::{
    decode_augmented, decode_diff, decode_invalidation, encode_augmented, encode_diff,
    encode_invalidation, BitReader, BitWriter, WireParams,
};
use bpush_broadcast::{AugmentedReport, InvalidationReport};
use bpush_sgraph::GraphDiff;
use bpush_types::{Cycle, Granularity, ItemId, TxnId};

fn params() -> WireParams {
    WireParams::derive(1024, 8, 16, 16)
}

proptest! {
    /// Arbitrary (value, width) sequences round-trip through the bit
    /// stream.
    #[test]
    fn bit_stream_roundtrip(fields in proptest::collection::vec((0u64..u64::MAX, 1u32..64), 0..64)) {
        let mut w = BitWriter::new();
        let masked: Vec<(u64, u32)> = fields
            .iter()
            .map(|&(v, width)| (v & ((1u64 << width) - 1), width))
            .collect();
        for &(v, width) in &masked {
            w.put(v, width);
        }
        let expected_bits: u64 = masked.iter().map(|&(_, w)| u64::from(w)).sum();
        prop_assert_eq!(w.bit_len(), expected_bits);
        let bytes = w.into_bytes();
        prop_assert_eq!(bytes.len() as u64, expected_bits.div_ceil(8));
        let mut r = BitReader::new(&bytes);
        for &(v, width) in &masked {
            prop_assert_eq!(r.take(width).unwrap(), v);
        }
    }

    /// Invalidation reports round-trip for any update set within the
    /// window.
    #[test]
    fn invalidation_roundtrip(
        cycle in 8u64..100,
        window in 1u32..8,
        raw in proptest::collection::vec((0u32..1024, 0u32..8), 0..64),
    ) {
        let entries: Vec<(ItemId, Cycle)> = raw
            .iter()
            .map(|&(i, age)| {
                (ItemId::new(i), Cycle::new(cycle - u64::from(age.min(window - 1))))
            })
            .collect();
        let report = InvalidationReport::with_dated(
            Cycle::new(cycle),
            window,
            entries,
            Granularity::Item,
            1,
        );
        let bytes = encode_invalidation(&report, params());
        let decoded = decode_invalidation(
            &bytes,
            params(),
            Cycle::new(cycle),
            window,
            Granularity::Item,
            1,
        )
        .unwrap();
        prop_assert_eq!(decoded, report);
    }

    /// Augmented reports round-trip for any first-writer assignment.
    #[test]
    fn augmented_roundtrip(
        now in 1u64..100,
        raw in proptest::collection::vec((0u32..1024, 0u32..16), 0..32),
    ) {
        let prev = Cycle::new(now - 1);
        let entries: Vec<(ItemId, TxnId)> = raw
            .iter()
            .map(|&(i, seq)| (ItemId::new(i), TxnId::new(prev, seq)))
            .collect();
        let report = AugmentedReport::new(prev, entries);
        let bytes = encode_augmented(&report, Cycle::new(now), params());
        let decoded = decode_augmented(&bytes, params(), Cycle::new(now)).unwrap();
        prop_assert_eq!(decoded, report);
    }

    /// Graph diffs round-trip for any edge set within the age horizon.
    #[test]
    fn diff_roundtrip(
        now in 16u64..100,
        seqs in proptest::collection::btree_set(0u32..16, 0..8),
        raw_edges in proptest::collection::vec((1u32..16, 0u32..16, 0u32..16), 0..16),
    ) {
        let prev = Cycle::new(now - 1);
        let committed: Vec<TxnId> = seqs.iter().map(|&s| TxnId::new(prev, s)).collect();
        let edges: Vec<(TxnId, TxnId)> = raw_edges
            .iter()
            .map(|&(age, s1, s2)| {
                (
                    TxnId::new(Cycle::new(now - 1 - u64::from(age.min(15))), s1),
                    TxnId::new(prev, s2),
                )
            })
            .filter(|(a, b)| a < b)
            .collect();
        let diff = GraphDiff::new(prev, committed, edges);
        let bytes = encode_diff(&diff, Cycle::new(now), params());
        let decoded = decode_diff(&bytes, params(), Cycle::new(now)).unwrap();
        prop_assert_eq!(decoded, diff);
    }

    /// Every prefix of a valid invalidation encoding decodes to `Ok` or
    /// `Err` — never a panic. A client tuning in mid-broadcast sees
    /// exactly this shape of input.
    #[test]
    fn truncated_invalidation_never_panics(
        cycle in 8u64..100,
        window in 1u32..8,
        raw in proptest::collection::vec((0u32..1024, 0u32..8), 0..64),
        cut in 0usize..4096,
    ) {
        let entries: Vec<(ItemId, Cycle)> = raw
            .iter()
            .map(|&(i, age)| {
                (ItemId::new(i), Cycle::new(cycle - u64::from(age.min(window - 1))))
            })
            .collect();
        let report = InvalidationReport::with_dated(
            Cycle::new(cycle),
            window,
            entries,
            Granularity::Item,
            1,
        );
        let bytes = encode_invalidation(&report, params());
        let cut = cut.min(bytes.len());
        let _ = decode_invalidation(
            &bytes[..cut],
            params(),
            Cycle::new(cycle),
            window,
            Granularity::Item,
            1,
        );
    }

    /// Every prefix of a valid augmented-report encoding is handled
    /// without panicking.
    #[test]
    fn truncated_augmented_never_panics(
        now in 1u64..100,
        raw in proptest::collection::vec((0u32..1024, 0u32..16), 0..32),
        cut in 0usize..4096,
    ) {
        let prev = Cycle::new(now - 1);
        let entries: Vec<(ItemId, TxnId)> = raw
            .iter()
            .map(|&(i, seq)| (ItemId::new(i), TxnId::new(prev, seq)))
            .collect();
        let report = AugmentedReport::new(prev, entries);
        let bytes = encode_augmented(&report, Cycle::new(now), params());
        let cut = cut.min(bytes.len());
        let _ = decode_augmented(&bytes[..cut], params(), Cycle::new(now));
    }

    /// Every prefix of a valid graph-diff encoding is handled without
    /// panicking.
    #[test]
    fn truncated_diff_never_panics(
        now in 16u64..100,
        seqs in proptest::collection::btree_set(0u32..16, 0..8),
        raw_edges in proptest::collection::vec((1u32..16, 0u32..16, 0u32..16), 0..16),
        cut in 0usize..4096,
    ) {
        let prev = Cycle::new(now - 1);
        let committed: Vec<TxnId> = seqs.iter().map(|&s| TxnId::new(prev, s)).collect();
        let edges: Vec<(TxnId, TxnId)> = raw_edges
            .iter()
            .map(|&(age, s1, s2)| {
                (
                    TxnId::new(Cycle::new(now - 1 - u64::from(age.min(15))), s1),
                    TxnId::new(prev, s2),
                )
            })
            .filter(|(a, b)| a < b)
            .collect();
        let diff = GraphDiff::new(prev, committed, edges);
        let bytes = encode_diff(&diff, Cycle::new(now), params());
        let cut = cut.min(bytes.len());
        let _ = decode_diff(&bytes[..cut], params(), Cycle::new(now));
    }

    /// Differential roundtrip with UNCONSTRAINED update dates: ages may
    /// exceed the window (§5.2.2 re-announcements), even the escape
    /// threshold, or lie in the future — the encoder's escape code must
    /// reproduce every date exactly, and the decoded report must return
    /// the same staleness verdicts as the original at every probed
    /// state. (The pre-escape encoder clamped these ages, which this
    /// test catches immediately.)
    #[test]
    fn invalidation_roundtrip_with_unconstrained_dates(
        cycle in 0u64..200,
        granularity_bucket in proptest::bool::ANY,
        ipb in 1u32..8,
        raw in proptest::collection::vec((0u32..1024, 0u64..300), 0..64),
    ) {
        let granularity = if granularity_bucket { Granularity::Bucket } else { Granularity::Item };
        let entries: Vec<(ItemId, Cycle)> = raw
            .iter()
            .map(|&(i, date)| (ItemId::new(i), Cycle::new(date)))
            .collect();
        let report = InvalidationReport::with_dated(
            Cycle::new(cycle),
            8,
            entries,
            granularity,
            ipb,
        );
        let bytes = encode_invalidation(&report, params());
        let decoded = decode_invalidation(
            &bytes,
            params(),
            Cycle::new(cycle),
            8,
            granularity,
            ipb,
        )
        .unwrap();
        prop_assert_eq!(&decoded, &report);
        for &(i, _) in &raw {
            for probe in [i.saturating_sub(1), i, i + 1] {
                let x = ItemId::new(probe);
                prop_assert_eq!(decoded.update_cycle(x), report.update_cycle(x));
                for state in [0, cycle / 2, cycle, cycle + 1] {
                    let s = Cycle::new(state);
                    prop_assert_eq!(decoded.stale_at(x, s), report.stale_at(x, s));
                }
            }
        }
    }

    /// Differential roundtrip across the span cap: ids wide enough that
    /// the report's dense bitmap degrades (`DENSE_SPAN_WORDS`). The
    /// decoded report must give the word-parallel probes the same
    /// verdicts as the original — whether either side kept its bitmap
    /// or fell back to the galloping merge.
    #[test]
    fn span_cap_degrade_keeps_word_parallel_verdicts(
        cycle in 1u64..100,
        near in proptest::collection::vec(0u32..512, 0..16),
        far in proptest::collection::vec(1_000_000u32..1_002_000, 0..4),
    ) {
        let p = WireParams::derive(2_000_000, 1, 16, 16);
        let items: Vec<ItemId> = near.iter().chain(far.iter()).map(|&i| ItemId::new(i)).collect();
        let report = InvalidationReport::new(Cycle::new(cycle), 1, items.clone(), Granularity::Item, 4);
        let bytes = encode_invalidation(&report, p);
        let decoded = decode_invalidation(&bytes, p, Cycle::new(cycle), 1, Granularity::Item, 4).unwrap();
        prop_assert_eq!(&decoded, &report);
        // probe with a word block over the low id range
        let mut words = vec![0u64; 8];
        for &i in &near {
            words[(i >> 6) as usize % 8] |= 1u64 << (i & 63);
        }
        let block = Some((0u32, words.as_slice()));
        prop_assert_eq!(decoded.intersects_words(block), report.intersects_words(block));
        let readset: Vec<ItemId> = {
            let mut v: Vec<u32> = near.clone();
            v.sort_unstable();
            v.dedup();
            v.into_iter().map(ItemId::new).collect()
        };
        prop_assert_eq!(
            decoded.any_invalidated_set(&readset, block),
            report.any_invalidated_set(&readset, block)
        );
        prop_assert_eq!(decoded.any_invalidated(&readset), report.any_invalidated(&readset));
    }

    /// Graph diffs with UNCONSTRAINED edge origins: `from` endpoints
    /// arbitrarily older than the relevance horizon must round-trip
    /// exactly (the pre-escape encoder clamped their cycle age, decoding
    /// to a different transaction id).
    #[test]
    fn diff_roundtrip_with_ancient_edge_origins(
        now in 1u64..200,
        raw_edges in proptest::collection::vec((0u64..200, 0u32..16, 0u32..16), 0..16),
    ) {
        let prev = Cycle::new(now.saturating_sub(1));
        let committed: Vec<TxnId> = (0..4).map(|s| TxnId::new(prev, s)).collect();
        let edges: Vec<(TxnId, TxnId)> = raw_edges
            .iter()
            .map(|&(from_cycle, s1, s2)| {
                (TxnId::new(Cycle::new(from_cycle), s1), TxnId::new(prev, s2))
            })
            .filter(|(a, b)| a < b)
            .collect();
        let diff = GraphDiff::new(prev, committed, edges);
        let bytes = encode_diff(&diff, Cycle::new(now), params());
        let decoded = decode_diff(&bytes, params(), Cycle::new(now)).unwrap();
        prop_assert_eq!(decoded, diff);
    }

    /// Roundtrip under edge-case derived widths: the tiniest deployment
    /// (1 item, window 1, 1 txn/cycle, span 0) up through mixed small
    /// parameters. `WireParams::derive` must never produce a width a
    /// legitimate report of that deployment cannot encode through.
    #[test]
    fn derive_edge_widths_roundtrip(
        d_items in 1u32..16,
        window in 1u32..4,
        n_txns in 1u32..4,
        span in 0u32..4,
        cycle in 1u64..50,
        raw in proptest::collection::vec((0u32..16, 0u64..50), 0..8),
    ) {
        let p = WireParams::derive(d_items, window, n_txns, span);
        let entries: Vec<(ItemId, Cycle)> = raw
            .iter()
            .map(|&(i, date)| (ItemId::new(i % d_items), Cycle::new(date)))
            .collect();
        let report = InvalidationReport::with_dated(
            Cycle::new(cycle),
            window,
            entries,
            Granularity::Item,
            1,
        );
        let bytes = encode_invalidation(&report, p);
        let decoded =
            decode_invalidation(&bytes, p, Cycle::new(cycle), window, Granularity::Item, 1)
                .unwrap();
        prop_assert_eq!(&decoded, &report);

        let prev = Cycle::new(cycle - 1);
        let writers: Vec<(ItemId, TxnId)> = raw
            .iter()
            .map(|&(i, seq)| {
                (ItemId::new(i % d_items), TxnId::new(prev, (seq as u32) % n_txns))
            })
            .collect();
        let aug = AugmentedReport::new(prev, writers);
        let bytes = encode_augmented(&aug, Cycle::new(cycle), p);
        prop_assert_eq!(decode_augmented(&bytes, p, Cycle::new(cycle)).unwrap(), aug);
    }

    /// Arbitrary garbage bytes through all three decoders and the raw
    /// bit reader: errors, never panics, and the bit reader never hands
    /// back more bits than the buffer holds.
    #[test]
    fn garbage_bytes_never_panic_any_decoder(
        raw in proptest::collection::vec(0u16..256, 0..256),
        widths in proptest::collection::vec(1u32..64, 0..64),
    ) {
        let bytes: Vec<u8> = raw.iter().map(|&b| b as u8).collect();
        let _ = decode_invalidation(&bytes, params(), Cycle::new(50), 4, Granularity::Item, 1);
        let _ = decode_augmented(&bytes, params(), Cycle::new(50));
        let _ = decode_diff(&bytes, params(), Cycle::new(50));
        let mut r = BitReader::new(&bytes);
        let mut taken: u64 = 0;
        for &w in &widths {
            match r.take(w) {
                Ok(v) => {
                    taken += u64::from(w);
                    prop_assert!(w == 64 || v < (1u64 << w), "value wider than requested");
                }
                Err(_) => break,
            }
        }
        prop_assert!(taken <= bytes.len() as u64 * 8, "read past the buffer");
    }
}
