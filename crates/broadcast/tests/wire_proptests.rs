//! Property tests for the wire codec: arbitrary control information
//! round-trips bit-exactly, encoded lengths match the closed-form
//! accounting, and — the sans-IO robustness contract — truncated or
//! corrupted input is rejected with an error, never a panic.

// Integration tests are exempt from the panic-freedom policy
// (mirrors `allow-unwrap-in-tests` in clippy.toml and the `#[cfg(test)]`
// carve-out in `cargo xtask lint`).
#![allow(clippy::unwrap_used)]
use proptest::prelude::*;

use bpush_broadcast::wire::{
    decode_augmented, decode_diff, decode_invalidation, encode_augmented, encode_diff,
    encode_invalidation, BitReader, BitWriter, WireParams,
};
use bpush_broadcast::{AugmentedReport, InvalidationReport};
use bpush_sgraph::GraphDiff;
use bpush_types::{Cycle, Granularity, ItemId, TxnId};

fn params() -> WireParams {
    WireParams::derive(1024, 8, 16, 16)
}

proptest! {
    /// Arbitrary (value, width) sequences round-trip through the bit
    /// stream.
    #[test]
    fn bit_stream_roundtrip(fields in proptest::collection::vec((0u64..u64::MAX, 1u32..64), 0..64)) {
        let mut w = BitWriter::new();
        let masked: Vec<(u64, u32)> = fields
            .iter()
            .map(|&(v, width)| (v & ((1u64 << width) - 1), width))
            .collect();
        for &(v, width) in &masked {
            w.put(v, width);
        }
        let expected_bits: u64 = masked.iter().map(|&(_, w)| u64::from(w)).sum();
        prop_assert_eq!(w.bit_len(), expected_bits);
        let bytes = w.into_bytes();
        prop_assert_eq!(bytes.len() as u64, expected_bits.div_ceil(8));
        let mut r = BitReader::new(&bytes);
        for &(v, width) in &masked {
            prop_assert_eq!(r.take(width).unwrap(), v);
        }
    }

    /// Invalidation reports round-trip for any update set within the
    /// window.
    #[test]
    fn invalidation_roundtrip(
        cycle in 8u64..100,
        window in 1u32..8,
        raw in proptest::collection::vec((0u32..1024, 0u32..8), 0..64),
    ) {
        let entries: Vec<(ItemId, Cycle)> = raw
            .iter()
            .map(|&(i, age)| {
                (ItemId::new(i), Cycle::new(cycle - u64::from(age.min(window - 1))))
            })
            .collect();
        let report = InvalidationReport::with_dated(
            Cycle::new(cycle),
            window,
            entries,
            Granularity::Item,
            1,
        );
        let bytes = encode_invalidation(&report, params());
        let decoded = decode_invalidation(
            &bytes,
            params(),
            Cycle::new(cycle),
            window,
            Granularity::Item,
            1,
        )
        .unwrap();
        prop_assert_eq!(decoded, report);
    }

    /// Augmented reports round-trip for any first-writer assignment.
    #[test]
    fn augmented_roundtrip(
        now in 1u64..100,
        raw in proptest::collection::vec((0u32..1024, 0u32..16), 0..32),
    ) {
        let prev = Cycle::new(now - 1);
        let entries: Vec<(ItemId, TxnId)> = raw
            .iter()
            .map(|&(i, seq)| (ItemId::new(i), TxnId::new(prev, seq)))
            .collect();
        let report = AugmentedReport::new(prev, entries);
        let bytes = encode_augmented(&report, Cycle::new(now), params());
        let decoded = decode_augmented(&bytes, params(), Cycle::new(now)).unwrap();
        prop_assert_eq!(decoded, report);
    }

    /// Graph diffs round-trip for any edge set within the age horizon.
    #[test]
    fn diff_roundtrip(
        now in 16u64..100,
        seqs in proptest::collection::btree_set(0u32..16, 0..8),
        raw_edges in proptest::collection::vec((1u32..16, 0u32..16, 0u32..16), 0..16),
    ) {
        let prev = Cycle::new(now - 1);
        let committed: Vec<TxnId> = seqs.iter().map(|&s| TxnId::new(prev, s)).collect();
        let edges: Vec<(TxnId, TxnId)> = raw_edges
            .iter()
            .map(|&(age, s1, s2)| {
                (
                    TxnId::new(Cycle::new(now - 1 - u64::from(age.min(15))), s1),
                    TxnId::new(prev, s2),
                )
            })
            .filter(|(a, b)| a < b)
            .collect();
        let diff = GraphDiff::new(prev, committed, edges);
        let bytes = encode_diff(&diff, Cycle::new(now), params());
        let decoded = decode_diff(&bytes, params(), Cycle::new(now)).unwrap();
        prop_assert_eq!(decoded, diff);
    }

    /// Every prefix of a valid invalidation encoding decodes to `Ok` or
    /// `Err` — never a panic. A client tuning in mid-broadcast sees
    /// exactly this shape of input.
    #[test]
    fn truncated_invalidation_never_panics(
        cycle in 8u64..100,
        window in 1u32..8,
        raw in proptest::collection::vec((0u32..1024, 0u32..8), 0..64),
        cut in 0usize..4096,
    ) {
        let entries: Vec<(ItemId, Cycle)> = raw
            .iter()
            .map(|&(i, age)| {
                (ItemId::new(i), Cycle::new(cycle - u64::from(age.min(window - 1))))
            })
            .collect();
        let report = InvalidationReport::with_dated(
            Cycle::new(cycle),
            window,
            entries,
            Granularity::Item,
            1,
        );
        let bytes = encode_invalidation(&report, params());
        let cut = cut.min(bytes.len());
        let _ = decode_invalidation(
            &bytes[..cut],
            params(),
            Cycle::new(cycle),
            window,
            Granularity::Item,
            1,
        );
    }

    /// Every prefix of a valid augmented-report encoding is handled
    /// without panicking.
    #[test]
    fn truncated_augmented_never_panics(
        now in 1u64..100,
        raw in proptest::collection::vec((0u32..1024, 0u32..16), 0..32),
        cut in 0usize..4096,
    ) {
        let prev = Cycle::new(now - 1);
        let entries: Vec<(ItemId, TxnId)> = raw
            .iter()
            .map(|&(i, seq)| (ItemId::new(i), TxnId::new(prev, seq)))
            .collect();
        let report = AugmentedReport::new(prev, entries);
        let bytes = encode_augmented(&report, Cycle::new(now), params());
        let cut = cut.min(bytes.len());
        let _ = decode_augmented(&bytes[..cut], params(), Cycle::new(now));
    }

    /// Every prefix of a valid graph-diff encoding is handled without
    /// panicking.
    #[test]
    fn truncated_diff_never_panics(
        now in 16u64..100,
        seqs in proptest::collection::btree_set(0u32..16, 0..8),
        raw_edges in proptest::collection::vec((1u32..16, 0u32..16, 0u32..16), 0..16),
        cut in 0usize..4096,
    ) {
        let prev = Cycle::new(now - 1);
        let committed: Vec<TxnId> = seqs.iter().map(|&s| TxnId::new(prev, s)).collect();
        let edges: Vec<(TxnId, TxnId)> = raw_edges
            .iter()
            .map(|&(age, s1, s2)| {
                (
                    TxnId::new(Cycle::new(now - 1 - u64::from(age.min(15))), s1),
                    TxnId::new(prev, s2),
                )
            })
            .filter(|(a, b)| a < b)
            .collect();
        let diff = GraphDiff::new(prev, committed, edges);
        let bytes = encode_diff(&diff, Cycle::new(now), params());
        let cut = cut.min(bytes.len());
        let _ = decode_diff(&bytes[..cut], params(), Cycle::new(now));
    }

    /// Arbitrary garbage bytes through all three decoders and the raw
    /// bit reader: errors, never panics, and the bit reader never hands
    /// back more bits than the buffer holds.
    #[test]
    fn garbage_bytes_never_panic_any_decoder(
        raw in proptest::collection::vec(0u16..256, 0..256),
        widths in proptest::collection::vec(1u32..64, 0..64),
    ) {
        let bytes: Vec<u8> = raw.iter().map(|&b| b as u8).collect();
        let _ = decode_invalidation(&bytes, params(), Cycle::new(50), 4, Granularity::Item, 1);
        let _ = decode_augmented(&bytes, params(), Cycle::new(50));
        let _ = decode_diff(&bytes, params(), Cycle::new(50));
        let mut r = BitReader::new(&bytes);
        let mut taken: u64 = 0;
        for &w in &widths {
            match r.take(w) {
                Ok(v) => {
                    taken += u64::from(w);
                    prop_assert!(w == 64 || v < (1u64 << w), "value wider than requested");
                }
                Err(_) => break,
            }
        }
        prop_assert!(taken <= bytes.len() as u64 * 8, "read past the buffer");
    }
}
