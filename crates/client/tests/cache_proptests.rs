//! Oracle-based soundness property test for the client cache: whatever
//! sequence of reports, fetches, autoprefetches, gaps and lookups occurs,
//! a candidate returned for database state `s` must carry **exactly the
//! value that was current at state `s`** according to an independently
//! maintained ground truth.

// Integration tests are exempt from the panic-freedom policy
// (mirrors `allow-unwrap-in-tests` in clippy.toml and the `#[cfg(test)]`
// carve-out in `cargo xtask lint`).
#![allow(clippy::unwrap_used)]
use proptest::prelude::*;
use std::collections::HashMap;

use bpush_broadcast::organization::Flat;
use bpush_broadcast::{Bcast, ControlInfo, InvalidationReport, ItemRecord};
use bpush_client::{CacheParams, ClientCache};
use bpush_core::CacheMode;
use bpush_types::{Cycle, Granularity, ItemId, ItemValue, TxnId};

const N_ITEMS: u32 = 12;

/// Ground truth: every item's version chain (ascending version cycles).
#[derive(Debug, Default)]
struct Oracle {
    chains: HashMap<ItemId, Vec<ItemValue>>,
}

impl Oracle {
    fn new() -> Self {
        let mut chains = HashMap::new();
        for i in 0..N_ITEMS {
            chains.insert(ItemId::new(i), vec![ItemValue::initial()]);
        }
        Oracle { chains }
    }

    fn update(&mut self, item: ItemId, committed_during: Cycle) {
        let chain = self.chains.get_mut(&item).expect("known item");
        let value = ItemValue::written_by(TxnId::new(committed_during, item.index()));
        if chain.last().map(|v| v.version()) != Some(value.version()) {
            chain.push(value);
        }
    }

    fn current(&self, item: ItemId) -> ItemValue {
        *self.chains[&item].last().expect("nonempty")
    }

    fn value_at(&self, item: ItemId, state: Cycle) -> Option<ItemValue> {
        self.chains[&item]
            .iter()
            .rev()
            .find(|v| v.version() <= state)
            .copied()
    }

    fn bcast(&self, cycle: Cycle, updated: &[ItemId]) -> Bcast {
        let records: Vec<ItemRecord> = (0..N_ITEMS)
            .map(|i| {
                let item = ItemId::new(i);
                ItemRecord::new(item, self.current(item), None)
            })
            .collect();
        let report =
            InvalidationReport::new(cycle, 1, updated.iter().copied(), Granularity::Item, 1);
        let ctrl = ControlInfo::new(cycle, report, None, None);
        Flat::new(1).assemble(cycle, ctrl, records, Vec::new())
    }
}

/// One simulated cycle: which items the server updates, which items the
/// client demand-fetches, which items it looks up (and at which relative
/// past state), and whether the client misses the cycle.
#[derive(Debug, Clone)]
struct CycleScript {
    updates: Vec<u32>,
    fetches: Vec<u32>,
    lookups: Vec<(u32, u64)>,
    connected: bool,
}

fn cycle_script() -> impl Strategy<Value = CycleScript> {
    (
        proptest::collection::vec(0..N_ITEMS, 0..4),
        proptest::collection::vec(0..N_ITEMS, 0..4),
        proptest::collection::vec((0..N_ITEMS, 0u64..6), 0..6),
        proptest::bool::weighted(0.85),
    )
        .prop_map(|(updates, fetches, lookups, connected)| CycleScript {
            updates,
            fetches,
            lookups,
            connected,
        })
}

fn run_script(mode: CacheMode, capacity: u32, old_capacity: u32, script: &[CycleScript]) {
    let mut oracle = Oracle::new();
    let mut cache = ClientCache::new(CacheParams {
        mode,
        current_capacity: capacity,
        old_capacity,
        items_per_bucket: 1,
    });
    let mut pending_updates: Vec<ItemId> = Vec::new();

    for (n, step) in script.iter().enumerate() {
        let cycle = Cycle::new(n as u64);
        // the bcast for this cycle reflects all previous commits; the
        // report lists the items updated during the previous cycle
        let bcast = oracle.bcast(cycle, &pending_updates);

        if step.connected {
            cache.on_report(bcast.control().invalidation());
            cache.autoprefetch(&bcast);
            for &raw in &step.fetches {
                let item = ItemId::new(raw);
                let rec = bcast.current(item).expect("all items on air");
                cache.insert_from_broadcast(rec, cycle);
            }
            for &(raw, back) in &step.lookups {
                let item = ItemId::new(raw);
                let state = Cycle::new((n as u64).saturating_sub(back));
                if let Some(candidate) = cache.lookup(item, state) {
                    let expect = oracle.value_at(item, state);
                    assert_eq!(
                        Some(candidate.value),
                        expect,
                        "cycle {n}: cache served a wrong value for {item} at {state}"
                    );
                }
            }
        } else {
            cache.on_missed_cycle(cycle);
        }

        // the server commits this cycle's updates (visible next cycle)
        pending_updates.clear();
        for &raw in &step.updates {
            let item = ItemId::new(raw);
            oracle.update(item, cycle);
            pending_updates.push(item);
        }
        pending_updates.sort();
        pending_updates.dedup();
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    /// Plain-mode cache: every candidate it ever returns is the exact
    /// value current at the requested state.
    #[test]
    fn plain_cache_never_serves_wrong_values(
        script in proptest::collection::vec(cycle_script(), 1..20),
        capacity in 1u32..10,
    ) {
        run_script(CacheMode::Plain, capacity, 0, &script);
    }

    /// Versioned-mode cache: same soundness, including stale-but-tagged
    /// candidates served for pinned past states.
    #[test]
    fn versioned_cache_never_serves_wrong_values(
        script in proptest::collection::vec(cycle_script(), 1..20),
        capacity in 1u32..10,
    ) {
        run_script(CacheMode::Versioned, capacity, 0, &script);
    }

    /// Multiversion-mode cache: old-partition candidates must also be
    /// exactly right for the requested past state.
    #[test]
    fn multiversion_cache_never_serves_wrong_values(
        script in proptest::collection::vec(cycle_script(), 1..20),
        capacity in 1u32..10,
        old_capacity in 1u32..8,
    ) {
        run_script(CacheMode::Multiversion, capacity, old_capacity, &script);
    }
}
