//! The query executor: drives a client's read-only transactions across
//! broadcast cycles, accounting for tuning latency, think time, cache
//! hits, spans and disconnections.

use rand::rngs::StdRng;
use rand::Rng;
use rand::SeedableRng;

use bpush_broadcast::Bcast;
use bpush_core::instrument::{Instrumented, ProtocolStats};
use bpush_core::validator::ReadRecord;
use bpush_core::{
    AbortReason, ReadCandidate, ReadDirective, ReadOnlyProtocol, ReadOutcome, Source,
};
use bpush_obs::{Actor, EventKind, Obs};
use bpush_types::config::ReadOrder;
use bpush_types::zipf::AccessPattern;
use bpush_types::{BpushError, ClientConfig, ClientId, Cycle, ItemId, QueryId, Slot};

use crate::cache::ClientCache;

/// The fate of one query, with everything the experiments need.
#[derive(Debug, Clone)]
pub struct QueryOutcome {
    /// The client that ran the query.
    pub client: ClientId,
    /// The query id (unique within the client).
    pub id: QueryId,
    /// `None` if committed; the abort reason otherwise.
    pub aborted: Option<AbortReason>,
    /// Slot at which the query issued its first read request.
    pub started: Slot,
    /// Slot at which it committed or aborted.
    pub finished: Slot,
    /// Number of distinct broadcast cycles data was read from (§2.2).
    pub span: u32,
    /// The earliest broadcast cycle a value was read from, if any read
    /// came off the air (the `c_0` of §3.2 for cacheless methods).
    pub first_read_cycle: Option<Cycle>,
    /// The broadcast cycle during which the query finished.
    pub finished_cycle: Cycle,
    /// Reads served by the cache.
    pub cache_reads: u32,
    /// Reads served by the broadcast.
    pub broadcast_reads: u32,
    /// Slots the client spent actively listening on behalf of this query
    /// (control segments heard during its lifetime plus the data buckets
    /// read) — the selective-tuning energy cost of §2.1: everything else
    /// is doze time.
    pub tuning_slots: u64,
    /// The exact values read (for serializability validation).
    pub reads: Vec<ReadRecord>,
}

impl QueryOutcome {
    /// Whether the query committed.
    pub fn committed(&self) -> bool {
        self.aborted.is_none()
    }

    /// Latency in slots.
    pub fn latency_slots(&self) -> u64 {
        self.finished.since(self.started)
    }
}

/// Decides, read by read, whether the local cache may serve a lookup.
///
/// The executor consults the decider *before* probing the cache; a `false`
/// answer forces the read onto the broadcast path even when the cache
/// holds a suitable entry. The default (no decider installed) allows
/// every lookup. Injecting a decider makes cache hit/miss behaviour a
/// controlled input instead of an emergent one — deterministic
/// experiments can pin it, and the `bpush-mc` model checker branches on
/// exactly this decision point when it enumerates executions of the
/// caching methods.
pub trait CacheDecision: std::fmt::Debug {
    /// Whether the cache may serve `item` for a read that must observe
    /// the database state `state`.
    fn allow_cache(&mut self, item: ItemId, state: Cycle) -> bool;
}

/// A [`CacheDecision`] replaying a fixed per-read script of answers;
/// reads beyond the script allow the cache (the default behaviour).
#[derive(Debug, Clone)]
pub struct ScriptedCacheDecision {
    script: Vec<bool>,
    next: usize,
}

impl ScriptedCacheDecision {
    /// One answer per cache-eligible read, in read order.
    pub fn new(script: Vec<bool>) -> Self {
        ScriptedCacheDecision { script, next: 0 }
    }
}

impl CacheDecision for ScriptedCacheDecision {
    fn allow_cache(&mut self, _item: ItemId, _state: Cycle) -> bool {
        let allow = self.script.get(self.next).copied().unwrap_or(true);
        self.next += 1;
        allow
    }
}

#[derive(Debug)]
struct ActiveQuery {
    id: QueryId,
    items: Vec<ItemId>,
    next: usize,
    started: Slot,
    cycles_read: std::collections::BTreeSet<Cycle>,
    cache_reads: u32,
    broadcast_reads: u32,
    tuning_slots: u64,
    reads: Vec<ReadRecord>,
}

/// Drives one simulated client: starts queries, performs their reads
/// against the cache and the broadcast under the protocol's directives,
/// and reports a [`QueryOutcome`] per finished query.
///
/// Timing model: transmitting one bucket takes one [`Slot`]; a client
/// must wait until the slot carrying the data it needs. Cache reads are
/// instantaneous. After every read the client "thinks" for
/// [`ClientConfig::think_time`] slots (§5.1).
#[derive(Debug)]
pub struct QueryExecutor {
    client: ClientId,
    config: ClientConfig,
    protocol: Box<dyn ReadOnlyProtocol>,
    cache: Option<ClientCache>,
    cache_decider: Option<Box<dyn CacheDecision>>,
    pattern: AccessPattern,
    rng: StdRng,
    next_query: QueryId,
    active: Option<ActiveQuery>,
    /// Absolute next-action time.
    cursor: Slot,
    queries_budget: u32,
    obs: Obs,
}

impl QueryExecutor {
    /// Creates an executor.
    ///
    /// `queries_budget` bounds how many queries the client will run in
    /// total (commit or abort); afterwards [`QueryExecutor::is_done`]
    /// turns true and `run_cycle` only drains the in-flight query.
    ///
    /// # Errors
    /// Returns [`BpushError::InvalidConfig`] if the client configuration
    /// is inconsistent (empty read range, excessive query size, ...).
    pub fn new(
        client: ClientId,
        config: ClientConfig,
        protocol: Box<dyn ReadOnlyProtocol>,
        cache: Option<ClientCache>,
        queries_budget: u32,
        seed: u64,
    ) -> Result<Self, BpushError> {
        if config.read_range == 0 {
            return Err(BpushError::invalid_config("read_range must be > 0"));
        }
        if config.reads_per_query == 0 || config.reads_per_query > config.read_range {
            return Err(BpushError::invalid_config(
                "reads_per_query must be in 1..=read_range",
            ));
        }
        let pattern = AccessPattern::new(config.read_range, config.theta, 0)?;
        Ok(QueryExecutor {
            client,
            config,
            protocol,
            cache,
            cache_decider: None,
            pattern,
            rng: StdRng::seed_from_u64(seed),
            next_query: QueryId::new(0),
            active: None,
            cursor: Slot::ZERO,
            queries_budget,
            obs: Obs::off(),
        })
    }

    /// Routes this client's activity into `obs`: the protocol is
    /// wrapped in an [`Instrumented`] decorator emitting per-operation
    /// events, and the executor itself emits cache hit/miss and query
    /// commit/abort events, all attributed to this client's
    /// [`Actor`] lane.
    #[must_use]
    pub fn with_obs(mut self, obs: Obs) -> Self {
        let actor = Actor::Client(self.client.index());
        // Briefly park a throwaway protocol so the real one can be
        // moved into the decorator.
        let placeholder = bpush_core::Method::InvalidationOnly.build_protocol();
        let inner = std::mem::replace(&mut self.protocol, placeholder);
        self.protocol = Box::new(Instrumented::with_obs(inner, obs.clone(), actor));
        self.obs = obs;
        self
    }

    /// Feeds this client's control reports through the wire codec: the
    /// protocol is wrapped in a [`bpush_core::wirefed::WireFed`]
    /// decorator that encodes every report to framed broadcast segments
    /// and decodes it back before the protocol hears it. The run must
    /// stay bit-identical to the struct-fed run — any difference is a
    /// wire/in-memory divergence in the codec. Call before
    /// [`QueryExecutor::with_obs`] so instrumentation counts the
    /// decoded reports.
    #[must_use]
    pub fn with_wire_feed(mut self, params: bpush_broadcast::wire::WireParams) -> Self {
        let placeholder = bpush_core::Method::InvalidationOnly.build_protocol();
        let inner = std::mem::replace(&mut self.protocol, placeholder);
        self.protocol = Box::new(bpush_core::wirefed::WireFed::new(inner, params));
        self
    }

    /// Replaces the inner protocol — the fault-injection seam the
    /// monitor-layer tests use to run a broken mutant under an otherwise
    /// identical workload. Call before [`QueryExecutor::with_wire_feed`]
    /// / [`QueryExecutor::with_obs`] so the decorators wrap the
    /// replacement.
    #[must_use]
    pub fn with_protocol(mut self, protocol: Box<dyn ReadOnlyProtocol>) -> Self {
        self.protocol = protocol;
        self
    }

    /// The inner protocol's opaque state snapshot — the input to the
    /// flight recorder's client-state fingerprint.
    pub fn debug_snapshot(&self) -> String {
        self.protocol.debug_snapshot()
    }

    /// The wrapped protocol's operation counters, when this executor
    /// was instrumented via [`QueryExecutor::with_obs`].
    pub fn protocol_stats(&self) -> Option<ProtocolStats> {
        self.protocol.protocol_stats()
    }

    /// The client this executor simulates.
    pub fn client(&self) -> ClientId {
        self.client
    }

    /// Installs a [`CacheDecision`] gate consulted before every cache
    /// lookup. Without one, every lookup is allowed.
    #[must_use]
    pub fn with_cache_decider(mut self, decider: Box<dyn CacheDecision>) -> Self {
        self.cache_decider = Some(decider);
        self
    }

    /// Whether the query budget is exhausted and no query is in flight.
    pub fn is_done(&self) -> bool {
        self.queries_budget == 0 && self.active.is_none()
    }

    /// Cache statistics, if a cache is configured.
    pub fn cache_stats(&self) -> Option<crate::cache::CacheStats> {
        self.cache.as_ref().map(|c| c.stats())
    }

    /// The protocol's current validation-structure size (`(nodes,
    /// edges)` of the SGT graph), if it maintains one — sampled by the
    /// simulator to track the peak space overhead.
    pub fn space_metrics(&self) -> Option<(usize, usize)> {
        self.protocol.space_metrics()
    }

    /// Whether the client is disconnected for the coming cycle.
    pub fn roll_disconnect(&mut self) -> bool {
        self.config.disconnect_prob > 0.0 && self.rng.gen::<f64>() < self.config.disconnect_prob
    }

    fn start_query(&mut self, bcast: &Bcast, now: Slot) -> ActiveQuery {
        let id = self.next_query;
        self.next_query = id.next();
        self.queries_budget -= 1;
        let mut items = self
            .pattern
            .sample_distinct(&mut self.rng, self.config.reads_per_query as usize);
        if self.config.read_order == ReadOrder::BroadcastOrder {
            items.sort_by_key(|&x| bcast.slot_of_current(x).unwrap_or(u64::MAX));
        }
        self.protocol.begin_query(id, bcast.cycle());
        ActiveQuery {
            id,
            items,
            next: 0,
            started: now,
            cycles_read: std::collections::BTreeSet::new(),
            cache_reads: 0,
            broadcast_reads: 0,
            tuning_slots: 0,
            reads: Vec::new(),
        }
    }

    fn finish(
        &mut self,
        aq: ActiveQuery,
        aborted: Option<AbortReason>,
        now: Slot,
        cycle: Cycle,
    ) -> QueryOutcome {
        self.protocol.finish_query(aq.id);
        if self.obs.is_enabled() {
            let actor = Actor::Client(self.client.index());
            match aborted {
                None => self.obs.emit(
                    cycle,
                    actor,
                    EventKind::QueryCommitted {
                        query: aq.id.number(),
                        latency_slots: now.since(aq.started),
                    },
                ),
                Some(reason) => self.obs.emit(
                    cycle,
                    actor,
                    EventKind::QueryAborted {
                        query: aq.id.number(),
                        reason,
                    },
                ),
            }
            self.obs.record("query.tuning.slots", aq.tuning_slots);
        }
        QueryOutcome {
            client: self.client,
            id: aq.id,
            aborted,
            started: aq.started,
            finished: now,
            span: u32::try_from(aq.cycles_read.len()).unwrap_or(u32::MAX),
            first_read_cycle: aq.cycles_read.iter().min().copied(),
            finished_cycle: cycle,
            cache_reads: aq.cache_reads,
            broadcast_reads: aq.broadcast_reads,
            tuning_slots: aq.tuning_slots,
            reads: aq.reads,
        }
    }

    /// A broadcast candidate for `item` current at `state`, with the slot
    /// (within the bcast) that carries it. For current-version reads the
    /// slot is the next occurrence at or after `not_before` — under the
    /// broadcast-disk organization an item airs several times per cycle,
    /// and a read issued after the first repetition must still catch a
    /// later one. Falls back to the first occurrence (caller waits a
    /// cycle) when all repetitions have passed.
    fn broadcast_candidate(
        bcast: &Bcast,
        item: ItemId,
        state: Cycle,
        not_before: u64,
    ) -> Option<(u64, ReadCandidate)> {
        let record = bcast.current(item)?;
        if record.value().version() <= state {
            let slot = bcast
                .next_slot_of_current(item, not_before)
                .or_else(|| bcast.slot_of_current(item))?;
            return Some((slot, ReadCandidate::from_broadcast(record)));
        }
        // walk the old-version chain; it is in reverse chronological
        // order, so the successor of each entry is the previous one
        let chain = bcast.old_versions_of(item);
        let mut successor = record.value().version();
        for &(slot, value) in chain {
            if value.version() <= state {
                let cand = ReadCandidate {
                    value,
                    last_writer_tag: value.writer(),
                    valid_from: value.version(),
                    valid_until: Some(successor),
                    source: Source::BroadcastOld,
                };
                // a retention gap would make the candidate invalid; treat
                // it as off-air rather than serve a wrong version
                return cand.current_at(state).then_some((slot, cand));
            }
            successor = value.version();
        }
        None
    }

    /// Runs the client over one broadcast cycle. `cycle_start` is the
    /// absolute slot at which this bcast begins; `connected` is false if
    /// the client misses the whole cycle.
    ///
    /// Returns the queries that finished during the cycle.
    ///
    /// # Errors
    /// Returns [`BpushError::Internal`] if the executor's own state
    /// machine loses track of the active query — a bug, not a user
    /// error; surfaced as a `Result` so long simulations fail with
    /// context instead of a panic.
    pub fn run_cycle(
        &mut self,
        bcast: &Bcast,
        cycle_start: Slot,
        connected: bool,
    ) -> Result<Vec<QueryOutcome>, BpushError> {
        let cycle_end = cycle_start.plus(bcast.total_slots());
        let mut out = Vec::new();

        if !connected {
            self.protocol.on_missed_cycle(bcast.cycle());
            if let Some(cache) = &mut self.cache {
                cache.on_missed_cycle(bcast.cycle());
            }
            self.cursor = self.cursor.max(cycle_end);
            return Ok(out);
        }

        // Hear the control segment, keep the cache coherent.
        self.protocol.on_control(bcast.control());
        if let Some(cache) = &mut self.cache {
            cache.on_report(bcast.control().invalidation());
            cache.autoprefetch(bcast);
        }
        // Reading the control segment occupies its slots; a query alive
        // across the boundary pays that listening cost (§2.1).
        if let Some(aq) = &mut self.active {
            aq.tuning_slots += bcast.control_slots();
        }
        self.cursor = self.cursor.max(cycle_start.plus(bcast.control_slots()));

        while self.cursor < cycle_end {
            // Ensure there is an active query (or we are done).
            if self.active.is_none() {
                if self.queries_budget == 0 {
                    break;
                }
                let now = self.cursor;
                let aq = self.start_query(bcast, now);
                self.active = Some(aq);
            }
            let Some(aq) = self.active.as_mut() else {
                return Err(BpushError::internal("no active query after ensuring one"));
            };
            let item = aq.items[aq.next];

            match self.protocol.read_directive(aq.id, item, bcast.cycle()) {
                ReadDirective::Doom(reason) => {
                    let Some(aq) = self.active.take() else {
                        return Err(BpushError::internal("active query vanished mid-doom"));
                    };
                    let now = self.cursor;
                    out.push(self.finish(aq, Some(reason), now, bcast.cycle()));
                    // move on after a minimal regrouping pause
                    self.cursor = self.cursor.plus(1);
                }
                ReadDirective::Read(constraint) => {
                    // 1. Try the cache (unless the injected decision
                    //    point routes this read to the broadcast).
                    let cache_allowed = match &mut self.cache_decider {
                        Some(d) => d.allow_cache(item, constraint.state),
                        None => true,
                    };
                    let cached = if cache_allowed {
                        self.cache
                            .as_mut()
                            .and_then(|c| c.lookup(item, constraint.state))
                    } else {
                        None
                    };
                    if self.obs.is_enabled() && self.cache.is_some() && cache_allowed {
                        let kind = match cached {
                            Some(_) => EventKind::CacheHit { item: item.index() },
                            None => EventKind::CacheMiss { item: item.index() },
                        };
                        self.obs
                            .emit(bcast.cycle(), Actor::Client(self.client.index()), kind);
                    }
                    let (candidate, read_slot) = match cached {
                        Some(c) => (Some(c), None),
                        None if constraint.cache_only => (None, None),
                        None => {
                            // 2. Fall back to the broadcast. Without a
                            // locally stored directory (§2.1), the client
                            // must first locate the item: via the next
                            // on-air index copy when one exists, or by
                            // scanning the channel otherwise.
                            let mut in_cycle = self.cursor.since(cycle_start);
                            let mut probe_tuning = 0u64;
                            let mut scanning = false;
                            if !self.config.has_directory {
                                if bcast.index_slots().is_empty() {
                                    scanning = true;
                                } else {
                                    match bcast.next_index_slot(in_cycle) {
                                        Some(i) => {
                                            // doze to the index copy, probe it
                                            in_cycle = i + 1;
                                            probe_tuning = 1;
                                        }
                                        None => {
                                            // no index copy left this cycle
                                            self.cursor = cycle_end;
                                            break;
                                        }
                                    }
                                }
                            }
                            match Self::broadcast_candidate(bcast, item, constraint.state, in_cycle)
                            {
                                None => (None, None),
                                Some((slot, mut cand)) => {
                                    // Without versions on air (plain and
                                    // versioned cache modes), the client
                                    // only knows what its report stream
                                    // proves: clamp the candidate's
                                    // validity to the provable floor.
                                    if cand.source == Source::BroadcastCurrent {
                                        if let Some(cache) = &self.cache {
                                            if cache.params().mode
                                                != bpush_core::CacheMode::Multiversion
                                            {
                                                cand.valid_from = cache
                                                    .provable_floor(item)
                                                    .unwrap_or(bcast.cycle());
                                            }
                                        }
                                    }
                                    if !cand.current_at(constraint.state) {
                                        // on air, but not provably part of
                                        // the required snapshot
                                        (None, None)
                                    } else if slot < in_cycle {
                                        // already passed: wait for the
                                        // next bcast
                                        self.cursor = cycle_end;
                                        break;
                                    } else {
                                        if scanning {
                                            // listened to everything from
                                            // the current position to the
                                            // item (§2.1 energy cost)
                                            probe_tuning = slot - in_cycle;
                                        }
                                        aq.tuning_slots += probe_tuning;
                                        (Some(cand), Some(slot))
                                    }
                                }
                            }
                        }
                    };

                    let Some(candidate) = candidate else {
                        let Some(aq) = self.active.take() else {
                            return Err(BpushError::internal(
                                "active query vanished on an unavailable version",
                            ));
                        };
                        let now = self.cursor;
                        out.push(self.finish(
                            aq,
                            Some(AbortReason::VersionUnavailable),
                            now,
                            bcast.cycle(),
                        ));
                        self.cursor = self.cursor.plus(1);
                        continue;
                    };

                    // Account the tuning time for a broadcast read.
                    if let Some(slot) = read_slot {
                        self.cursor = cycle_start.plus(slot + 1);
                    }
                    if self.cursor > cycle_end {
                        self.cursor = cycle_end;
                    }

                    match self
                        .protocol
                        .apply_read(aq.id, item, &candidate, bcast.cycle())
                    {
                        ReadOutcome::Rejected(reason) => {
                            let Some(aq) = self.active.take() else {
                                return Err(BpushError::internal(
                                    "active query vanished on a rejected read",
                                ));
                            };
                            let now = self.cursor;
                            out.push(self.finish(aq, Some(reason), now, bcast.cycle()));
                            self.cursor = self.cursor.plus(1);
                        }
                        ReadOutcome::Accepted => {
                            if candidate.source.is_cache() {
                                aq.cache_reads += 1;
                            } else {
                                aq.broadcast_reads += 1;
                                aq.tuning_slots += 1; // the data bucket itself
                                aq.cycles_read.insert(bcast.cycle());
                                // demand-cache current values
                                if candidate.source == Source::BroadcastCurrent {
                                    if let (Some(cache), Some(rec)) =
                                        (&mut self.cache, bcast.current(item))
                                    {
                                        cache.insert_from_broadcast(rec, bcast.cycle());
                                    }
                                }
                            }
                            aq.reads.push(ReadRecord::new(item, candidate.value));
                            aq.next += 1;
                            if aq.next == aq.items.len() {
                                let Some(aq) = self.active.take() else {
                                    return Err(BpushError::internal(
                                        "active query vanished on commit",
                                    ));
                                };
                                let now = self.cursor;
                                out.push(self.finish(aq, None, now, bcast.cycle()));
                                self.cursor = self.cursor.plus(1);
                            } else {
                                self.cursor =
                                    self.cursor.plus(u64::from(self.config.think_time).max(1));
                            }
                        }
                    }
                }
            }
        }
        self.cursor = self.cursor.max(cycle_end);
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::{CacheParams, ClientCache};
    use bpush_core::{CacheMode, Method};
    use bpush_server::{BroadcastServer, ServerOptions};
    use bpush_types::config::MultiversionLayout;
    use bpush_types::ServerConfig;

    fn server_config() -> ServerConfig {
        ServerConfig {
            broadcast_size: 100,
            update_range: 50,
            server_read_range: 100,
            updates_per_cycle: 10,
            txns_per_cycle: 5,
            offset: 0,
            versions_retained: 4,
            ..ServerConfig::default()
        }
    }

    fn client_config() -> ClientConfig {
        ClientConfig {
            read_range: 100,
            reads_per_query: 5,
            think_time: 2,
            ..ClientConfig::default()
        }
    }

    fn executor_for(method: Method, budget: u32) -> QueryExecutor {
        let cache = method.uses_cache().then(|| {
            ClientCache::new(CacheParams {
                mode: method.cache_mode(),
                current_capacity: 20,
                old_capacity: if method.cache_mode() == CacheMode::Multiversion {
                    10
                } else {
                    0
                },
                items_per_bucket: 1,
            })
        });
        QueryExecutor::new(
            ClientId::new(0),
            client_config(),
            method.build_protocol(),
            cache,
            budget,
            7,
        )
        .unwrap()
    }

    fn run(method: Method, opts: ServerOptions, cycles: u32, budget: u32) -> Vec<QueryOutcome> {
        let mut server = BroadcastServer::new(server_config(), opts, 3).unwrap();
        let mut exec = executor_for(method, budget);
        let mut outcomes = Vec::new();
        let mut start = Slot::ZERO;
        for _ in 0..cycles {
            let bcast = server.run_cycle();
            outcomes.extend(exec.run_cycle(&bcast, start, true).unwrap());
            start = start.plus(bcast.total_slots());
        }
        outcomes
    }

    #[test]
    fn invalidation_only_completes_queries() {
        let outcomes = run(Method::InvalidationOnly, ServerOptions::plain(), 40, 10);
        assert_eq!(outcomes.len(), 10, "budget fully consumed");
        let committed = outcomes.iter().filter(|o| o.committed()).count();
        assert!(committed > 0, "some queries commit");
        for o in &outcomes {
            if o.committed() {
                assert_eq!(o.reads.len(), 5);
                assert!(o.span >= 1);
                assert!(o.finished >= o.started);
            } else {
                assert!(o.aborted.is_some());
            }
        }
    }

    #[test]
    fn committed_readsets_are_serializable() {
        for method in Method::ALL {
            let opts = method.server_options(MultiversionLayout::Overflow);
            let mut server = BroadcastServer::new(server_config(), opts, 11).unwrap();
            let mut exec = executor_for(method, 30);
            let mut outcomes = Vec::new();
            let mut start = Slot::ZERO;
            for _ in 0..60 {
                let bcast = server.run_cycle();
                outcomes.extend(exec.run_cycle(&bcast, start, true).unwrap());
                start = start.plus(bcast.total_slots());
            }
            let validator = bpush_core::validator::SerializabilityValidator::new(server.history());
            let sgt_like = matches!(method, Method::Sgt | Method::SgtCache);
            let mut committed = 0;
            for o in &outcomes {
                if o.committed() {
                    committed += 1;
                    if sgt_like {
                        // SGT guarantees the paper's criterion (§2.2):
                        // a state of *some* serializable execution
                        validator
                            .check_serializable(server.conflict_graph(), &o.reads)
                            .unwrap_or_else(|e| {
                                panic!("{method}: query {} inconsistent: {e}", o.id)
                            });
                    } else {
                        // snapshot methods satisfy the stronger
                        // prefix-snapshot property
                        validator.check(&o.reads).unwrap_or_else(|e| {
                            panic!("{method}: query {} inconsistent: {e}", o.id)
                        });
                    }
                }
            }
            assert!(committed > 0, "{method}: no queries committed");
        }
    }

    #[test]
    fn multiversion_accepts_everything_within_span() {
        let opts = ServerOptions::multiversion(MultiversionLayout::Overflow);
        let outcomes = run(Method::MultiversionBroadcast, opts, 120, 20);
        let aborted = outcomes.iter().filter(|o| !o.committed()).count();
        // spans of 5-read queries stay well within versions_retained = 4
        assert_eq!(aborted, 0, "multiversion must accept span<=V queries");
        assert_eq!(outcomes.len(), 20);
    }

    #[test]
    fn cache_reduces_latency() {
        let no_cache = run(Method::InvalidationOnly, ServerOptions::plain(), 80, 20);
        let with_cache = run(Method::InvalidationCache, ServerOptions::plain(), 80, 20);
        let mean = |os: &[QueryOutcome]| -> f64 {
            let committed: Vec<_> = os.iter().filter(|o| o.committed()).collect();
            committed
                .iter()
                .map(|o| o.latency_slots() as f64)
                .sum::<f64>()
                / committed.len().max(1) as f64
        };
        assert!(
            mean(&with_cache) < mean(&no_cache),
            "cache must cut latency: {} vs {}",
            mean(&with_cache),
            mean(&no_cache)
        );
        let cached_total: u32 = with_cache.iter().map(|o| o.cache_reads).sum();
        assert!(cached_total > 0, "cache reads happen");
    }

    #[test]
    fn cache_decider_forces_broadcast_reads() {
        let run_with = |deny_cache: bool| -> (u32, u32) {
            let mut server =
                BroadcastServer::new(server_config(), ServerOptions::plain(), 3).unwrap();
            let mut exec = executor_for(Method::InvalidationCache, 20);
            if deny_cache {
                exec = exec
                    .with_cache_decider(Box::new(ScriptedCacheDecision::new(vec![false; 1000])));
            }
            let mut outcomes = Vec::new();
            let mut start = Slot::ZERO;
            for _ in 0..80 {
                let bcast = server.run_cycle();
                outcomes.extend(exec.run_cycle(&bcast, start, true).unwrap());
                start = start.plus(bcast.total_slots());
            }
            (
                outcomes.iter().map(|o| o.cache_reads).sum(),
                outcomes.iter().map(|o| o.broadcast_reads).sum(),
            )
        };
        let (hits_allowed, _) = run_with(false);
        let (hits_denied, bcast_denied) = run_with(true);
        assert!(hits_allowed > 0, "control run must see cache hits");
        assert_eq!(hits_denied, 0, "denied decider forces every read on air");
        assert!(bcast_denied > 0);
    }

    #[test]
    fn scripted_cache_decision_defaults_to_allow_past_script() {
        let mut d = ScriptedCacheDecision::new(vec![false, true]);
        let x = ItemId::new(0);
        assert!(!d.allow_cache(x, Cycle::ZERO));
        assert!(d.allow_cache(x, Cycle::ZERO));
        assert!(d.allow_cache(x, Cycle::ZERO), "exhausted script allows");
    }

    #[test]
    fn broadcast_order_reduces_span() {
        let run_order = |order: ReadOrder| -> f64 {
            let mut server =
                BroadcastServer::new(server_config(), ServerOptions::plain(), 3).unwrap();
            let mut exec = QueryExecutor::new(
                ClientId::new(0),
                ClientConfig {
                    read_order: order,
                    ..client_config()
                },
                Method::InvalidationOnly.build_protocol(),
                None,
                20,
                7,
            )
            .unwrap();
            let mut outcomes = Vec::new();
            let mut start = Slot::ZERO;
            for _ in 0..100 {
                let b = server.run_cycle();
                outcomes.extend(exec.run_cycle(&b, start, true).unwrap());
                start = start.plus(b.total_slots());
            }
            let committed: Vec<_> = outcomes.iter().filter(|o| o.committed()).collect();
            committed.iter().map(|o| f64::from(o.span)).sum::<f64>() / committed.len() as f64
        };
        let as_issued = run_order(ReadOrder::AsIssued);
        let optimized = run_order(ReadOrder::BroadcastOrder);
        assert!(
            optimized < as_issued,
            "read-order optimization must shrink span: {optimized} vs {as_issued}"
        );
    }

    #[test]
    fn disconnection_dooms_invalidation_only() {
        let mut server = BroadcastServer::new(server_config(), ServerOptions::plain(), 3).unwrap();
        let mut exec = executor_for(Method::InvalidationOnly, 5);
        let mut outcomes = Vec::new();
        let mut start = Slot::ZERO;
        for i in 0..30 {
            let b = server.run_cycle();
            let connected = i % 2 == 0; // miss every other cycle
            outcomes.extend(exec.run_cycle(&b, start, connected).unwrap());
            start = start.plus(b.total_slots());
        }
        // 5-read queries at think-time 2 cannot finish within one cycle
        // here only if they span cycles; any that do must abort
        for o in &outcomes {
            if !o.committed() {
                assert!(matches!(
                    o.aborted,
                    Some(AbortReason::Disconnected)
                        | Some(AbortReason::Invalidated)
                        | Some(AbortReason::VersionUnavailable)
                ));
            }
        }
        let validator = bpush_core::validator::SerializabilityValidator::new(server.history());
        for o in outcomes.iter().filter(|o| o.committed()) {
            validator.check(&o.reads).unwrap();
        }
    }

    #[test]
    fn executor_budget_reaches_done() {
        let mut server = BroadcastServer::new(server_config(), ServerOptions::plain(), 3).unwrap();
        let mut exec = executor_for(Method::InvalidationOnly, 3);
        assert!(!exec.is_done());
        let mut start = Slot::ZERO;
        for _ in 0..50 {
            let b = server.run_cycle();
            exec.run_cycle(&b, start, true).unwrap();
            start = start.plus(b.total_slots());
            if exec.is_done() {
                break;
            }
        }
        assert!(exec.is_done());
        assert!(exec.cache_stats().is_none());
        assert_eq!(exec.client(), ClientId::new(0));
    }

    #[test]
    fn observed_runs_match_bare_runs_and_reconcile() {
        let run_observed = |obs: Option<Obs>| -> (Vec<QueryOutcome>, Option<ProtocolStats>) {
            let mut server =
                BroadcastServer::new(server_config(), ServerOptions::plain(), 3).unwrap();
            let mut exec = executor_for(Method::InvalidationCache, 15);
            if let Some(obs) = obs {
                exec = exec.with_obs(obs);
            }
            let mut outcomes = Vec::new();
            let mut start = Slot::ZERO;
            for _ in 0..60 {
                let b = server.run_cycle();
                outcomes.extend(exec.run_cycle(&b, start, true).unwrap());
                start = start.plus(b.total_slots());
            }
            (outcomes, exec.protocol_stats())
        };
        let (bare, no_stats) = run_observed(None);
        assert!(no_stats.is_none(), "bare executor exposes no stats");
        let obs = Obs::recording(1 << 14);
        let (observed, stats) = run_observed(Some(obs.clone()));
        let stats = stats.expect("instrumented executor exposes stats");

        // Observation must not perturb a single outcome.
        assert_eq!(bare.len(), observed.len());
        for (a, b) in bare.iter().zip(observed.iter()) {
            assert_eq!(a.aborted, b.aborted);
            assert_eq!(a.finished, b.finished);
            assert_eq!(a.reads, b.reads);
        }

        // The event-derived counters reconcile with the decorator's
        // stats and with the outcomes themselves.
        let snap = obs.snapshot().expect("recording");
        assert_eq!(snap.counter("reads.accepted"), stats.accepts);
        assert_eq!(snap.counter("reads.rejected"), stats.rejects);
        assert_eq!(snap.counter("queries.begun"), stats.queries);
        let committed = observed.iter().filter(|o| o.committed()).count() as u64;
        assert_eq!(snap.counter("queries.committed"), committed);
        assert_eq!(
            snap.counter("queries.aborted"),
            observed.len() as u64 - committed
        );
        let h = snap.histogram("query.latency.slots").expect("latencies");
        assert_eq!(h.count(), committed);
        let cache = exec_cache_totals(&observed);
        // Every accepted cache read was a recorded hit (a hit whose
        // candidate the protocol then rejects stays a hit, hence >=).
        assert!(snap.counter("cache.hits") >= u64::from(cache));
        assert!(cache > 0, "the caching method must see hits here");
    }

    fn exec_cache_totals(outcomes: &[QueryOutcome]) -> u32 {
        outcomes.iter().map(|o| o.cache_reads).sum()
    }

    #[test]
    fn invalid_client_config_rejected() {
        let bad = ClientConfig {
            reads_per_query: 0,
            ..client_config()
        };
        assert!(QueryExecutor::new(
            ClientId::new(0),
            bad,
            Method::InvalidationOnly.build_protocol(),
            None,
            1,
            0
        )
        .is_err());
    }
}
