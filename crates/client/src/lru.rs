//! A small LRU map used by the client cache (§5.1: "the cache
//! replacement policy is LRU").

use std::borrow::Borrow;
use std::collections::BTreeMap;

/// A bounded map with least-recently-used eviction.
///
/// Reads and writes *touch* the entry; inserting into a full map evicts
/// the least recently touched one. `O(log n)` per operation.
///
/// # Example
/// ```
/// use bpush_client::lru::LruMap;
/// let mut m = LruMap::new(2);
/// m.insert("a", 1);
/// m.insert("b", 2);
/// m.get(&"a"); // touch a
/// let evicted = m.insert("c", 3);
/// assert_eq!(evicted, Some(("b", 2)), "b was least recently used");
/// assert!(m.contains(&"a") && m.contains(&"c"));
/// ```
#[derive(Debug, Clone)]
pub struct LruMap<K, V> {
    capacity: usize,
    tick: u64,
    entries: BTreeMap<K, (u64, V)>,
    by_tick: BTreeMap<u64, K>,
}

impl<K: Ord + Clone, V> LruMap<K, V> {
    /// Creates a map holding at most `capacity` entries. A capacity of
    /// zero makes every insert evict the inserted entry immediately
    /// (i.e. the map stays empty), which models a disabled cache.
    pub fn new(capacity: usize) -> Self {
        LruMap {
            capacity,
            tick: 0,
            entries: BTreeMap::new(),
            by_tick: BTreeMap::new(),
        }
    }

    /// Maximum number of entries.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Current number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the map is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    fn next_tick(&mut self) -> u64 {
        self.tick += 1;
        self.tick
    }

    /// Looks up and touches an entry.
    pub fn get<Q>(&mut self, key: &Q) -> Option<&V>
    where
        K: Borrow<Q>,
        Q: Ord + ?Sized,
    {
        let tick = self.next_tick();
        let (k, (old_tick, _)) = self.entries.get_key_value(key)?;
        let k = k.clone();
        let old = *old_tick;
        self.by_tick.remove(&old);
        self.by_tick.insert(tick, k.clone());
        // lint: allow(panic) — caller just found the key in entries; maps move in lockstep
        let entry = self.entries.get_mut(key).expect("just found");
        entry.0 = tick;
        Some(&entry.1)
    }

    /// Looks up and touches an entry, mutably.
    pub fn get_mut<Q>(&mut self, key: &Q) -> Option<&mut V>
    where
        K: Borrow<Q>,
        Q: Ord + ?Sized,
    {
        self.get(key)?;
        self.entries.get_mut(key).map(|(_, v)| v)
    }

    /// Looks up without touching (no recency update).
    pub fn peek<Q>(&self, key: &Q) -> Option<&V>
    where
        K: Borrow<Q>,
        Q: Ord + ?Sized,
    {
        self.entries.get(key).map(|(_, v)| v)
    }

    /// Looks up mutably without touching.
    pub fn peek_mut<Q>(&mut self, key: &Q) -> Option<&mut V>
    where
        K: Borrow<Q>,
        Q: Ord + ?Sized,
    {
        self.entries.get_mut(key).map(|(_, v)| v)
    }

    /// Whether `key` is present (does not touch).
    pub fn contains<Q>(&self, key: &Q) -> bool
    where
        K: Borrow<Q>,
        Q: Ord + ?Sized,
    {
        self.entries.contains_key(key)
    }

    /// Inserts (or replaces) an entry, touching it, and returns the
    /// evicted least-recently-used entry if the map overflowed (or the
    /// inserted pair itself at capacity zero).
    pub fn insert(&mut self, key: K, value: V) -> Option<(K, V)> {
        if self.capacity == 0 {
            return Some((key, value));
        }
        let tick = self.next_tick();
        if let Some((old_tick, _)) = self.entries.get(&key) {
            self.by_tick.remove(old_tick);
        }
        self.by_tick.insert(tick, key.clone());
        self.entries.insert(key, (tick, value));
        if self.entries.len() > self.capacity {
            let (&oldest, _) = self
                .by_tick
                .iter()
                .next()
                // lint: allow(panic) — guarded by the overflow check above
                .expect("overflow implies nonempty");
            // lint: allow(panic) — oldest was just read out of by_tick
            let victim = self.by_tick.remove(&oldest).expect("just seen");
            // lint: allow(panic) — entries and by_tick are kept in lockstep by every mutation
            let (_, v) = self.entries.remove(&victim).expect("indexed");
            return Some((victim, v));
        }
        None
    }

    /// Removes an entry.
    pub fn remove<Q>(&mut self, key: &Q) -> Option<V>
    where
        K: Borrow<Q>,
        Q: Ord + ?Sized,
    {
        let (tick, v) = self.entries.remove(key)?;
        self.by_tick.remove(&tick);
        Some(v)
    }

    /// Drops all entries.
    pub fn clear(&mut self) {
        self.entries.clear();
        self.by_tick.clear();
    }

    /// Iterates over `(key, value)` in unspecified order, without
    /// touching.
    pub fn iter(&self) -> impl Iterator<Item = (&K, &V)> {
        self.entries.iter().map(|(k, (_, v))| (k, v))
    }

    /// Iterates mutably over values in unspecified order, without
    /// touching.
    pub fn values_mut(&mut self) -> impl Iterator<Item = &mut V> {
        self.entries.values_mut().map(|(_, v)| v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn evicts_least_recently_used() {
        let mut m = LruMap::new(3);
        assert_eq!(m.capacity(), 3);
        m.insert(1, "a");
        m.insert(2, "b");
        m.insert(3, "c");
        m.get(&1);
        m.get(&2);
        let evicted = m.insert(4, "d");
        assert_eq!(evicted, Some((3, "c")));
        assert_eq!(m.len(), 3);
    }

    #[test]
    fn reinsert_replaces_without_eviction() {
        let mut m = LruMap::new(2);
        m.insert(1, "a");
        m.insert(2, "b");
        assert_eq!(m.insert(1, "a2"), None);
        assert_eq!(m.len(), 2);
        assert_eq!(m.peek(&1), Some(&"a2"));
        // 2 is now the LRU entry
        assert_eq!(m.insert(3, "c"), Some((2, "b")));
    }

    #[test]
    fn peek_does_not_touch() {
        let mut m = LruMap::new(2);
        m.insert(1, "a");
        m.insert(2, "b");
        m.peek(&1); // no touch: 1 stays LRU
        assert_eq!(m.insert(3, "c"), Some((1, "a")));
    }

    #[test]
    fn get_mut_touches_and_mutates() {
        let mut m = LruMap::new(2);
        m.insert(1, 10);
        m.insert(2, 20);
        *m.get_mut(&1).unwrap() += 5;
        assert_eq!(m.peek(&1), Some(&15));
        assert_eq!(m.insert(3, 30), Some((2, 20)));
    }

    #[test]
    fn capacity_zero_holds_nothing() {
        let mut m = LruMap::new(0);
        assert_eq!(m.insert(1, "a"), Some((1, "a")));
        assert!(m.is_empty());
        assert!(!m.contains(&1));
    }

    #[test]
    fn remove_and_clear() {
        let mut m = LruMap::new(4);
        m.insert(1, "a");
        m.insert(2, "b");
        assert_eq!(m.remove(&1), Some("a"));
        assert_eq!(m.remove(&1), None);
        assert_eq!(m.len(), 1);
        m.clear();
        assert!(m.is_empty());
        // internal index cleared too: inserts work normally after
        m.insert(3, "c");
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn iter_covers_all_entries() {
        let mut m = LruMap::new(4);
        for i in 0..4 {
            m.insert(i, i * 10);
        }
        let mut items: Vec<_> = m.iter().map(|(&k, &v)| (k, v)).collect();
        items.sort();
        assert_eq!(items, vec![(0, 0), (1, 10), (2, 20), (3, 30)]);
        for v in m.values_mut() {
            *v += 1;
        }
        assert_eq!(m.peek(&2), Some(&21));
    }

    #[test]
    fn heavy_churn_respects_capacity() {
        let mut m = LruMap::new(8);
        for i in 0..1000 {
            m.insert(i % 50, i);
            assert!(m.len() <= 8);
        }
        // index and map stay in sync
        let indexed: usize = m.iter().count();
        assert_eq!(indexed, m.len());
    }
}
