//! The client cache (§4): LRU pages kept coherent by invalidation +
//! autoprefetch, with the versioned and multiversion extensions.

use bpush_broadcast::{Bcast, InvalidationReport, ItemRecord};
use bpush_core::{CacheMode, ReadCandidate, Source};
use bpush_types::{BucketId, Cycle, ItemId, ItemValue, TxnId};

use crate::lru::LruMap;

/// One cached (current-partition) entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Entry {
    value: ItemValue,
    last_writer_tag: Option<TxnId>,
    /// Earliest state the value is known current at: the fetch cycle for
    /// version-less modes, the value's version when versions are on air
    /// (multiversion cache mode).
    valid_from: Cycle,
    /// Latest state the value is known current at (inclusive).
    valid_through: Cycle,
    /// Whether the entry is coherent: known equal to the current value.
    /// Cleared by invalidation (then the entry awaits autoprefetch) and
    /// by unrecoverable report gaps.
    coherent: bool,
}

/// A retained old version (multiversion caching, §4.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct OldEntry {
    value: ItemValue,
    last_writer_tag: Option<TxnId>,
    valid_from: Cycle,
    /// Exclusive: the state at which the superseding version took over.
    valid_until: Cycle,
}

/// Cache configuration resolved for a client.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CacheParams {
    /// The organization required by the protocol in use.
    pub mode: CacheMode,
    /// Pages for current versions.
    pub current_capacity: u32,
    /// Pages for old versions (multiversion mode only).
    pub old_capacity: u32,
    /// Items per broadcast bucket — cache invalidation is page (bucket)
    /// grained (§4).
    pub items_per_bucket: u32,
}

/// Statistics the experiments report.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that fell through to the broadcast.
    pub misses: u64,
    /// Pages refreshed by autoprefetch.
    pub autoprefetches: u64,
}

/// The client cache: an LRU current partition kept coherent by
/// invalidation + autoprefetch (§4), plus — in multiversion mode — an
/// old-version partition that serves as the client-side version store
/// (§4.2, split-cache design).
#[derive(Debug)]
pub struct ClientCache {
    params: CacheParams,
    current: LruMap<ItemId, Entry>,
    old: LruMap<(ItemId, Cycle), OldEntry>,
    /// The last cycle whose report was processed.
    last_heard: Option<Cycle>,
    /// State since which the client has heard reports continuously; the
    /// basis for backdating `valid_from` below the fetch cycle.
    knowledge_since: Option<Cycle>,
    /// Per item, the version floor derived from heard reports: an update
    /// reported for cycle `u` means a new version current from `u + 1`.
    /// Items absent from the map are known unchanged since
    /// `knowledge_since`.
    update_floor: std::collections::BTreeMap<ItemId, Cycle>,
    stats: CacheStats,
}

impl ClientCache {
    /// Creates a cache.
    ///
    /// # Panics
    /// Panics if `items_per_bucket` is zero, or if an old-version
    /// capacity is configured outside multiversion mode.
    pub fn new(params: CacheParams) -> Self {
        assert!(
            params.items_per_bucket > 0,
            "items_per_bucket must be positive"
        );
        assert!(
            params.old_capacity == 0 || params.mode == CacheMode::Multiversion,
            "old-version capacity requires multiversion mode"
        );
        ClientCache {
            current: LruMap::new(params.current_capacity as usize),
            old: LruMap::new(params.old_capacity as usize),
            params,
            last_heard: None,
            knowledge_since: None,
            update_floor: std::collections::BTreeMap::new(),
            stats: CacheStats::default(),
        }
    }

    /// The parameters in use.
    pub fn params(&self) -> CacheParams {
        self.params
    }

    /// Running statistics.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Entries currently cached (current partition).
    pub fn len(&self) -> usize {
        self.current.len()
    }

    /// Whether the current partition is empty.
    pub fn is_empty(&self) -> bool {
        self.current.is_empty()
    }

    /// Old versions currently retained.
    pub fn old_len(&self) -> usize {
        self.old.len()
    }

    /// The broadcast bucket (cache page) holding `item`.
    pub fn bucket_of(&self, item: ItemId) -> BucketId {
        BucketId::new(item.index() / self.params.items_per_bucket)
    }

    fn valid_from_for(&self, record: &ItemRecord, fetched: Cycle) -> Cycle {
        match self.params.mode {
            // Versions are on air in multiversion mode.
            CacheMode::Multiversion => record.value().version(),
            // Otherwise, backdate from the fetch cycle using what the
            // continuous report stream proves: the value cannot be newer
            // than the item's last reported update, nor older knowledge
            // than when we started listening (§4.1 — the client derives
            // the value's effective version from the reports themselves).
            CacheMode::None | CacheMode::Plain | CacheMode::Versioned => {
                match self.knowledge_since {
                    Some(since) => {
                        let floor = self
                            .update_floor
                            .get(&record.item())
                            .copied()
                            .unwrap_or(since)
                            .max(since);
                        floor.min(fetched)
                    }
                    None => fetched,
                }
            }
        }
    }

    /// Processes the invalidation report heard at the beginning of a
    /// cycle. If the report's window does not cover every cycle since the
    /// last one heard, all entries lose coherence (their values may have
    /// changed silently) and are queued for autoprefetch.
    pub fn on_report(&mut self, report: &InvalidationReport) {
        let n = report.cycle();
        let covered = match self.last_heard {
            None => self.current.is_empty(),
            Some(h) => n.number() <= h.number().saturating_add(u64::from(report.window())),
        };
        if !covered {
            for entry in self.current.values_mut() {
                entry.coherent = false;
            }
            // report knowledge is no longer continuous: reset it
            self.knowledge_since = Some(n);
            self.update_floor.clear();
        } else {
            if self.knowledge_since.is_none() {
                self.knowledge_since = Some(n);
            }
            for (item, update_cycle) in report.dated_items() {
                let floor = self.update_floor.entry(item).or_insert(Cycle::ZERO);
                *floor = (*floor).max(update_cycle.next());
            }
            let keys: Vec<ItemId> = self.current.iter().map(|(&k, _)| k).collect();
            let mut displaced = Vec::new();
            for item in keys {
                let bucket = BucketId::new(item.index() / self.params.items_per_bucket);
                let update = report.bucket_update_cycle(bucket);
                // lint: allow(panic) — key came from this same map moments ago
                let entry = self.current.peek_mut(&item).expect("key just listed");
                if !entry.coherent {
                    continue;
                }
                // An update recorded at cycle u supersedes the value that
                // was current at state u; updates before the entry's
                // verified bound were already reflected in it.
                let stale = update.is_some_and(|u| u >= entry.valid_through);
                if stale {
                    entry.coherent = false;
                    displaced.push((item, *entry));
                } else {
                    entry.valid_through = n;
                }
            }
            // Multiversion mode: keep the displaced values as old
            // versions, valid through the last state they were verified
            // current at (conservative after covered gaps).
            if self.params.mode == CacheMode::Multiversion {
                for (item, entry) in displaced {
                    self.retain_old(item, entry, entry.valid_through.next());
                }
            }
        }
        self.last_heard = Some(n);
    }

    /// The client missed `cycle` entirely: nothing to do immediately —
    /// coherence is re-established (or torn down) by the window check at
    /// the next heard report.
    pub fn on_missed_cycle(&mut self, _cycle: Cycle) {}

    fn retain_old(&mut self, item: ItemId, entry: Entry, superseded_at: Cycle) {
        let old = OldEntry {
            value: entry.value,
            last_writer_tag: entry.last_writer_tag,
            valid_from: entry.valid_from,
            valid_until: superseded_at,
        };
        self.old.insert((item, entry.valid_from), old);
    }

    /// Autoprefetch (§4): refresh every incoherent page whose new value is
    /// on the given bcast.
    pub fn autoprefetch(&mut self, bcast: &Bcast) {
        let stale: Vec<ItemId> = self
            .current
            .iter()
            .filter(|(_, e)| !e.coherent)
            .map(|(&k, _)| k)
            .collect();
        for item in stale {
            if let Some(record) = bcast.current(item) {
                let record = *record;
                let fetched = bcast.cycle();
                let valid_from = self.valid_from_for(&record, fetched);
                if let Some(e) = self.current.peek_mut(&item) {
                    *e = Entry {
                        value: record.value(),
                        last_writer_tag: record.last_writer(),
                        valid_from,
                        valid_through: fetched,
                        coherent: true,
                    };
                    self.stats.autoprefetches += 1;
                }
            } else {
                // no longer broadcast: drop the page
                self.current.remove(&item);
            }
        }
    }

    /// Inserts (demand-caches) a record just read off the broadcast.
    pub fn insert_from_broadcast(&mut self, record: &ItemRecord, cycle: Cycle) {
        let valid_from = self.valid_from_for(record, cycle);
        let entry = Entry {
            value: record.value(),
            last_writer_tag: record.last_writer(),
            valid_from,
            valid_through: cycle,
            coherent: true,
        };
        let item = record.item();
        // In multiversion mode, a replaced coherent value moves to the
        // old partition if the new value actually supersedes it.
        if self.params.mode == CacheMode::Multiversion {
            if let Some(prev) = self.current.peek(&item).copied() {
                if prev.value != entry.value && prev.valid_from < entry.valid_from {
                    self.retain_old(item, prev, entry.valid_from);
                }
            }
        }
        self.current.insert(item, entry);
    }

    fn candidate(entry: &Entry) -> ReadCandidate {
        ReadCandidate {
            value: entry.value,
            last_writer_tag: entry.last_writer_tag,
            valid_from: entry.valid_from,
            valid_until: if entry.coherent {
                None
            } else {
                Some(entry.valid_through.next())
            },
            source: if entry.coherent {
                Source::CacheCurrent
            } else {
                Source::CacheOld
            },
        }
    }

    /// Looks up a value for `item` current at database state `state`,
    /// touching LRU recency on a hit and recording hit/miss statistics.
    ///
    /// The current partition is consulted first; in multiversion mode the
    /// old-version partition is searched next.
    pub fn lookup(&mut self, item: ItemId, state: Cycle) -> Option<ReadCandidate> {
        if let Some(entry) = self.current.peek(&item) {
            let cand = Self::candidate(entry);
            if cand.current_at(state) {
                self.current.get(&item); // touch
                self.stats.hits += 1;
                return Some(cand);
            }
        }
        if self.params.mode == CacheMode::Multiversion {
            let versions: Vec<(ItemId, Cycle)> = self
                .old
                .iter()
                .filter(|(&(i, _), _)| i == item)
                .map(|(&k, _)| k)
                .collect();
            for key in versions {
                // lint: allow(panic) — key came from this same map moments ago
                let e = *self.old.peek(&key).expect("key just listed");
                let cand = ReadCandidate {
                    value: e.value,
                    last_writer_tag: e.last_writer_tag,
                    valid_from: e.valid_from,
                    valid_until: Some(e.valid_until),
                    source: Source::CacheOld,
                };
                if cand.current_at(state) {
                    self.old.get(&key); // touch
                    self.stats.hits += 1;
                    return Some(cand);
                }
            }
        }
        self.stats.misses += 1;
        None
    }

    /// The earliest state at which the client can *prove* (from its
    /// continuously heard invalidation reports) that `item`'s current
    /// value was already current — `None` when report knowledge is not
    /// continuous. Used to certify broadcast reads for pinned queries
    /// without transmitted version numbers (§4.1).
    pub fn provable_floor(&self, item: ItemId) -> Option<Cycle> {
        let since = self.knowledge_since?;
        Some(
            self.update_floor
                .get(&item)
                .copied()
                .unwrap_or(since)
                .max(since),
        )
    }

    /// Whether `item` has a coherent cached current value (no staleness).
    pub fn has_current(&self, item: ItemId) -> bool {
        self.current.peek(&item).is_some_and(|e| e.coherent)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bpush_broadcast::organization::Flat;
    use bpush_broadcast::ControlInfo;
    use bpush_types::Granularity;

    fn params(mode: CacheMode) -> CacheParams {
        CacheParams {
            mode,
            current_capacity: 4,
            old_capacity: if mode == CacheMode::Multiversion {
                4
            } else {
                0
            },
            items_per_bucket: 1,
        }
    }

    fn record(item: u32, written_cycle: Option<u64>) -> ItemRecord {
        let value = match written_cycle {
            Some(c) => ItemValue::written_by(TxnId::new(Cycle::new(c), 0)),
            None => ItemValue::initial(),
        };
        ItemRecord::new(ItemId::new(item), value, value.writer())
    }

    fn report(cycle: u64, items: &[u32]) -> InvalidationReport {
        InvalidationReport::new(
            Cycle::new(cycle),
            1,
            items.iter().map(|&i| ItemId::new(i)),
            Granularity::Item,
            1,
        )
    }

    fn bcast_with(cycle: u64, records: Vec<ItemRecord>) -> Bcast {
        Flat::new(1).assemble(
            Cycle::new(cycle),
            ControlInfo::empty(Cycle::new(cycle)),
            records,
            Vec::new(),
        )
    }

    #[test]
    fn insert_and_current_lookup() {
        let mut c = ClientCache::new(params(CacheMode::Plain));
        c.on_report(&report(1, &[]));
        c.insert_from_broadcast(&record(3, Some(0)), Cycle::new(1));
        assert!(c.has_current(ItemId::new(3)));
        let cand = c.lookup(ItemId::new(3), Cycle::new(1)).expect("hit");
        assert_eq!(cand.source, Source::CacheCurrent);
        assert!(
            cand.current_at(Cycle::new(5)),
            "coherent entries stay current"
        );
        assert_eq!(c.stats().hits, 1);
        assert!(c.lookup(ItemId::new(9), Cycle::new(1)).is_none());
        assert_eq!(c.stats().misses, 1);
    }

    #[test]
    fn invalidation_marks_stale_and_autoprefetch_refreshes() {
        let mut c = ClientCache::new(params(CacheMode::Plain));
        c.on_report(&report(1, &[]));
        c.insert_from_broadcast(&record(3, Some(0)), Cycle::new(1));
        c.on_report(&report(2, &[3]));
        assert!(!c.has_current(ItemId::new(3)));
        // current-state lookup now misses...
        assert!(c.lookup(ItemId::new(3), Cycle::new(2)).is_none());
        // ...but the stale value still answers for the pre-update state
        let cand = c.lookup(ItemId::new(3), Cycle::new(1)).expect("stale hit");
        assert_eq!(cand.source, Source::CacheOld);
        assert_eq!(cand.valid_until, Some(Cycle::new(2)));
        // autoprefetch from the new bcast restores coherence
        let b = bcast_with(2, vec![record(3, Some(1))]);
        c.autoprefetch(&b);
        assert!(c.has_current(ItemId::new(3)));
        assert_eq!(c.stats().autoprefetches, 1);
        let cand = c.lookup(ItemId::new(3), Cycle::new(2)).expect("fresh");
        assert_eq!(cand.value.version(), Cycle::new(2));
    }

    #[test]
    fn multiversion_mode_retains_old_versions() {
        let mut c = ClientCache::new(params(CacheMode::Multiversion));
        c.on_report(&report(1, &[]));
        c.insert_from_broadcast(&record(3, Some(0)), Cycle::new(1)); // version 1
        c.on_report(&report(2, &[3]));
        let b = bcast_with(2, vec![record(3, Some(1))]); // version 2
        c.autoprefetch(&b);
        assert_eq!(c.old_len(), 1, "displaced version retained");
        // the old version answers reads pinned at state 1
        let cand = c
            .lookup(ItemId::new(3), Cycle::new(1))
            .expect("old version");
        assert_eq!(cand.source, Source::CacheOld);
        assert_eq!(cand.value.version(), Cycle::new(1));
        // and the new one answers current reads
        let cand = c.lookup(ItemId::new(3), Cycle::new(2)).expect("current");
        assert_eq!(cand.value.version(), Cycle::new(2));
    }

    #[test]
    fn multiversion_valid_from_uses_value_version() {
        let mut c = ClientCache::new(params(CacheMode::Multiversion));
        c.on_report(&report(5, &[]));
        // value written long ago (version 1), fetched at cycle 5
        c.insert_from_broadcast(&record(3, Some(0)), Cycle::new(5));
        // multiversion mode knows it was current since state 1
        let cand = c.lookup(ItemId::new(3), Cycle::new(2)).expect("hit");
        assert_eq!(cand.valid_from, Cycle::new(1));
        // plain mode would only know from the fetch cycle
        let mut p = ClientCache::new(params(CacheMode::Plain));
        p.on_report(&report(5, &[]));
        p.insert_from_broadcast(&record(3, Some(0)), Cycle::new(5));
        assert!(p.lookup(ItemId::new(3), Cycle::new(2)).is_none());
    }

    #[test]
    fn uncovered_gap_tears_down_coherence() {
        let mut c = ClientCache::new(params(CacheMode::Plain));
        c.on_report(&report(1, &[]));
        c.insert_from_broadcast(&record(3, Some(0)), Cycle::new(1));
        // miss cycles 2-3; window-1 report at 4 cannot cover them
        c.on_missed_cycle(Cycle::new(2));
        c.on_missed_cycle(Cycle::new(3));
        c.on_report(&report(4, &[]));
        assert!(!c.has_current(ItemId::new(3)), "gap invalidates everything");
        // stale value still usable for the pre-gap state
        let cand = c.lookup(ItemId::new(3), Cycle::new(1)).expect("stale");
        assert_eq!(cand.valid_until, Some(Cycle::new(2)));
    }

    #[test]
    fn windowed_report_preserves_coherence_across_gap() {
        let mut c = ClientCache::new(params(CacheMode::Plain));
        c.on_report(&InvalidationReport::new(
            Cycle::new(1),
            3,
            [],
            Granularity::Item,
            1,
        ));
        c.insert_from_broadcast(&record(3, Some(0)), Cycle::new(1));
        // miss cycles 2-3, resume with a window-3 report at 4
        let r = InvalidationReport::new(Cycle::new(4), 3, [ItemId::new(9)], Granularity::Item, 1);
        c.on_report(&r);
        assert!(c.has_current(ItemId::new(3)), "window covered the gap");
    }

    #[test]
    fn bucket_granular_invalidation() {
        let mut c = ClientCache::new(CacheParams {
            items_per_bucket: 4,
            ..params(CacheMode::Plain)
        });
        c.on_report(&InvalidationReport::new(
            Cycle::new(1),
            1,
            [],
            Granularity::Item,
            4,
        ));
        c.insert_from_broadcast(&record(1, Some(0)), Cycle::new(1));
        c.insert_from_broadcast(&record(6, Some(0)), Cycle::new(1));
        // item 2 shares bucket 0 with cached item 1
        let r = InvalidationReport::new(Cycle::new(2), 1, [ItemId::new(2)], Granularity::Item, 4);
        c.on_report(&r);
        assert!(!c.has_current(ItemId::new(1)), "same-bucket invalidation");
        assert!(c.has_current(ItemId::new(6)), "other bucket untouched");
    }

    #[test]
    fn capacity_evicts_lru() {
        let mut c = ClientCache::new(params(CacheMode::Plain));
        c.on_report(&report(1, &[]));
        for i in 0..4 {
            c.insert_from_broadcast(&record(i, Some(0)), Cycle::new(1));
        }
        // touch items 0-2, then overflow
        for i in 0..3 {
            c.lookup(ItemId::new(i), Cycle::new(1));
        }
        c.insert_from_broadcast(&record(9, Some(0)), Cycle::new(1));
        assert_eq!(c.len(), 4);
        assert!(!c.has_current(ItemId::new(3)), "LRU item evicted");
        assert!(c.has_current(ItemId::new(9)));
    }

    #[test]
    fn autoprefetch_drops_items_off_air() {
        let mut c = ClientCache::new(params(CacheMode::Plain));
        c.on_report(&report(1, &[]));
        c.insert_from_broadcast(&record(3, Some(0)), Cycle::new(1));
        c.on_report(&report(2, &[3]));
        let b = bcast_with(2, vec![record(0, None)]); // item 3 not on air
        c.autoprefetch(&b);
        assert_eq!(c.len(), 0);
    }

    #[test]
    #[should_panic(expected = "multiversion mode")]
    fn old_capacity_requires_multiversion() {
        let _ = ClientCache::new(CacheParams {
            mode: CacheMode::Plain,
            current_capacity: 4,
            old_capacity: 2,
            items_per_bucket: 1,
        });
    }
}
