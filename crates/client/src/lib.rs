//! The broadcast-push client runtime.
//!
//! Pairs a [`bpush_core::ReadOnlyProtocol`] with the machinery a real
//! client needs (§4, §5.1 of *Pitoura & Chrysanthis 1999*):
//!
//! * [`ClientCache`] — an LRU cache kept coherent by invalidation +
//!   autoprefetch, with the versioned (§4.1) and split multiversion
//!   (§4.2) extensions,
//! * [`QueryExecutor`] — runs queries against the broadcast: samples
//!   Zipf-skewed readsets, waits for items' slots, thinks between reads,
//!   tracks spans and latency, injects disconnections, and reports a
//!   [`QueryOutcome`] per query,
//! * [`lru::LruMap`] — the replacement policy building block.
//!
//! # Example
//!
//! ```
//! use bpush_client::{CacheParams, ClientCache, QueryExecutor};
//! use bpush_core::Method;
//! use bpush_server::{BroadcastServer, ServerOptions};
//! use bpush_types::{ClientConfig, ClientId, ServerConfig, Slot};
//!
//! let sc = ServerConfig { broadcast_size: 100, update_range: 50,
//!     server_read_range: 100, updates_per_cycle: 10,
//!     ..ServerConfig::default() };
//! let cc = ClientConfig { read_range: 100, reads_per_query: 4,
//!     ..ClientConfig::default() };
//! let mut server = BroadcastServer::new(sc, ServerOptions::plain(), 1)?;
//! let mut client = QueryExecutor::new(
//!     ClientId::new(0), cc, Method::InvalidationOnly.build_protocol(),
//!     None, 5, 42)?;
//! let mut start = Slot::ZERO;
//! let mut finished = Vec::new();
//! for _ in 0..40 {
//!     let bcast = server.run_cycle();
//!     finished.extend(client.run_cycle(&bcast, start, true)?);
//!     start = start.plus(bcast.total_slots());
//! }
//! assert_eq!(finished.len(), 5);
//! # Ok::<(), bpush_types::BpushError>(())
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]
#![warn(missing_debug_implementations)]

mod cache;
mod executor;
pub mod lru;
pub mod session;
pub mod wire;

pub use cache::{CacheParams, CacheStats, ClientCache};
pub use executor::{CacheDecision, QueryExecutor, QueryOutcome, ScriptedCacheDecision};
pub use session::{BroadcastSession, ReadStep, TxnHandle};
pub use wire::{WireClient, WireTxn};
