//! The embeddable client API: run read-only transactions against a
//! broadcast you tune into yourself.
//!
//! [`QueryExecutor`](crate::QueryExecutor) simulates a client end to end;
//! `BroadcastSession` is the piece a real application embeds instead. The
//! application owns the radio loop: it hands each cycle's bcast to
//! [`BroadcastSession::on_bcast`], asks where to tune for each read, and
//! delivers what it heard. The session runs the protocol (any method from
//! [`bpush_core::Method`]), keeps the cache coherent, and decides
//! commit/abort.
//!
//! ```text
//! app loop:                      session:
//!   hear cycle start      ──────▶ on_bcast(&bcast)
//!   t = begin()           ◀────── transaction handle
//!   read(t, x)?           ──────▶ Done(value) | Tune{slot} | NextCycle
//!   tune to slot, hear x  ──────▶ deliver(t, x)  → value
//!   commit(t)             ──────▶ readset (consistent!) or abort reason
//! ```

use bpush_broadcast::Bcast;
use bpush_core::validator::ReadRecord;
use bpush_core::{
    AbortReason, CacheMode, ReadCandidate, ReadDirective, ReadOnlyProtocol, ReadOutcome, Source,
};
use bpush_types::{Cycle, ItemId, QueryId};

use crate::cache::ClientCache;

/// Where the next read of a transaction will come from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
// bpush-lint: protocol_enum — session read automaton state
pub enum ReadStep {
    /// The read completed from the cache; the value is recorded.
    Done,
    /// Tune to this slot of the current bcast, then call
    /// [`BroadcastSession::deliver`] for the item.
    Tune {
        /// Slot within the current bcast carrying the needed value.
        slot: u64,
    },
    /// The needed bucket has already passed this cycle; retry after the
    /// next [`BroadcastSession::on_bcast`].
    NextCycle,
}

/// Handle to an in-flight read-only transaction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TxnHandle(QueryId);

#[derive(Debug)]
struct ActiveTxn {
    id: QueryId,
    reads: Vec<ReadRecord>,
}

/// An embeddable broadcast-push client: protocol + cache, application-
/// driven.
///
/// # Example
///
/// ```
/// use bpush_client::session::{BroadcastSession, ReadStep};
/// use bpush_core::Method;
/// use bpush_server::{BroadcastServer, ServerOptions};
/// use bpush_types::{ItemId, ServerConfig};
///
/// let config = ServerConfig { broadcast_size: 50, update_range: 25,
///     server_read_range: 50, updates_per_cycle: 5,
///     ..ServerConfig::default() };
/// let mut server = BroadcastServer::new(config, ServerOptions::plain(), 1)?;
/// let mut session = BroadcastSession::new(Method::InvalidationOnly.build_protocol(), None);
///
/// let bcast = server.run_cycle();
/// session.on_bcast(&bcast);
/// let txn = session.begin();
/// let step = session.read(txn, ItemId::new(3), &bcast)?;
/// if let ReadStep::Tune { .. } = step {
///     session.deliver(txn, ItemId::new(3), &bcast)?;
/// }
/// let readset = session.commit(txn)?;
/// assert_eq!(readset.len(), 1);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug)]
pub struct BroadcastSession {
    protocol: Box<dyn ReadOnlyProtocol>,
    cache: Option<ClientCache>,
    now: Option<Cycle>,
    next_id: QueryId,
    active: Vec<ActiveTxn>,
}

impl BroadcastSession {
    /// Creates a session around a protocol and an optional cache. The
    /// cache's [`CacheMode`] should match
    /// [`ReadOnlyProtocol::cache_mode`]; a missing cache is always
    /// acceptable (the protocol then works broadcast-only).
    pub fn new(protocol: Box<dyn ReadOnlyProtocol>, cache: Option<ClientCache>) -> Self {
        if let (Some(cache), mode) = (&cache, protocol.cache_mode()) {
            debug_assert!(
                mode == CacheMode::None || cache.params().mode == mode,
                "cache mode should match the protocol's requirement"
            );
        }
        BroadcastSession {
            protocol,
            cache,
            now: None,
            next_id: QueryId::new(0),
            active: Vec::new(),
        }
    }

    /// The protocol's reporting name.
    pub fn protocol_name(&self) -> &'static str {
        self.protocol.name()
    }

    /// Number of transactions currently in flight.
    pub fn active_transactions(&self) -> usize {
        self.active.len()
    }

    /// Processes the control segment of a freshly heard bcast. Call once
    /// per cycle, before any read of that cycle.
    pub fn on_bcast(&mut self, bcast: &Bcast) {
        self.protocol.on_control(bcast.control());
        if let Some(cache) = &mut self.cache {
            cache.on_report(bcast.control().invalidation());
            cache.autoprefetch(bcast);
        }
        self.now = Some(bcast.cycle());
    }

    /// Tells the session the client missed `cycle` entirely.
    pub fn on_missed_cycle(&mut self, cycle: Cycle) {
        self.protocol.on_missed_cycle(cycle);
        if let Some(cache) = &mut self.cache {
            cache.on_missed_cycle(cycle);
        }
    }

    /// Starts a read-only transaction.
    ///
    /// # Panics
    /// Panics if no bcast has been heard yet ([`BroadcastSession::on_bcast`]).
    pub fn begin(&mut self) -> TxnHandle {
        // lint: allow(panic) — documented panic: callers must hear a bcast first
        let now = self.now.expect("hear a bcast before starting transactions");
        let id = self.next_id;
        self.next_id = id.next();
        self.protocol.begin_query(id, now);
        self.active.push(ActiveTxn {
            id,
            reads: Vec::new(),
        });
        TxnHandle(id)
    }

    fn txn_index(&self, handle: TxnHandle) -> usize {
        self.active
            .iter()
            .position(|t| t.id == handle.0)
            // lint: allow(panic) — documented panic: stale handles are a caller bug
            .expect("unknown or finished transaction handle")
    }

    /// Attempts to read `item`, given the slot the application is
    /// currently listening at within this bcast. Either completes from
    /// the cache ([`ReadStep::Done`]), tells the application where to
    /// tune, or reports that the needed bucket has already passed this
    /// cycle ([`ReadStep::NextCycle`]: retry after the next
    /// [`BroadcastSession::on_bcast`]).
    ///
    /// Call [`BroadcastSession::read`] for the common
    /// start-of-cycle case (`position = 0`).
    ///
    /// # Errors
    /// Returns the abort reason if the transaction cannot proceed; the
    /// transaction is dropped and its handle becomes invalid.
    ///
    /// # Panics
    /// Panics if the handle is unknown (already committed or aborted).
    pub fn read_at(
        &mut self,
        handle: TxnHandle,
        item: ItemId,
        bcast: &Bcast,
        position: u64,
    ) -> Result<ReadStep, AbortReason> {
        let idx = self.txn_index(handle);
        let now = bcast.cycle();
        let constraint = match self.protocol.read_directive(handle.0, item, now) {
            ReadDirective::Doom(reason) => {
                self.drop_txn(idx);
                return Err(reason);
            }
            ReadDirective::Read(c) => c,
        };
        // 1. cache
        if let Some(cand) = self
            .cache
            .as_mut()
            .and_then(|c| c.lookup(item, constraint.state))
        {
            return self.apply(idx, item, &cand, now).map(|()| ReadStep::Done);
        }
        if constraint.cache_only {
            self.drop_txn(idx);
            return Err(AbortReason::VersionUnavailable);
        }
        // 2. broadcast: where is the value?
        match Self::locate(bcast, item, constraint.state, self.cache.as_ref()) {
            None => {
                self.drop_txn(idx);
                Err(AbortReason::VersionUnavailable)
            }
            Some((slot, _)) if slot < position => Ok(ReadStep::NextCycle),
            Some((slot, _)) => Ok(ReadStep::Tune { slot }),
        }
    }

    /// [`BroadcastSession::read_at`] from the beginning of the bcast.
    ///
    /// # Errors
    /// Returns the abort reason if the transaction cannot proceed.
    ///
    /// # Panics
    /// Panics if the handle is unknown.
    pub fn read(
        &mut self,
        handle: TxnHandle,
        item: ItemId,
        bcast: &Bcast,
    ) -> Result<ReadStep, AbortReason> {
        self.read_at(handle, item, bcast, 0)
    }

    /// Delivers the bucket the application tuned to after a
    /// [`ReadStep::Tune`], completing the read.
    ///
    /// # Errors
    /// Returns the abort reason if the protocol rejects the value; the
    /// transaction is dropped.
    ///
    /// # Panics
    /// Panics if the handle is unknown.
    pub fn deliver(
        &mut self,
        handle: TxnHandle,
        item: ItemId,
        bcast: &Bcast,
    ) -> Result<bpush_types::ItemValue, AbortReason> {
        let idx = self.txn_index(handle);
        let now = bcast.cycle();
        let constraint = match self.protocol.read_directive(handle.0, item, now) {
            ReadDirective::Doom(reason) => {
                self.drop_txn(idx);
                return Err(reason);
            }
            ReadDirective::Read(c) => c,
        };
        let Some((_, cand)) = Self::locate(bcast, item, constraint.state, self.cache.as_ref())
        else {
            self.drop_txn(idx);
            return Err(AbortReason::VersionUnavailable);
        };
        let value = cand.value;
        self.apply(idx, item, &cand, now)?;
        // demand-cache current values, as a real client would
        if cand.source == Source::BroadcastCurrent {
            if let (Some(cache), Some(rec)) = (&mut self.cache, bcast.current(item)) {
                cache.insert_from_broadcast(rec, now);
            }
        }
        Ok(value)
    }

    fn apply(
        &mut self,
        idx: usize,
        item: ItemId,
        cand: &ReadCandidate,
        now: Cycle,
    ) -> Result<(), AbortReason> {
        let id = self.active[idx].id;
        match self.protocol.apply_read(id, item, cand, now) {
            ReadOutcome::Accepted => {
                self.active[idx]
                    .reads
                    .push(ReadRecord::new(item, cand.value));
                Ok(())
            }
            ReadOutcome::Rejected(reason) => {
                self.drop_txn(idx);
                Err(reason)
            }
        }
    }

    fn locate(
        bcast: &Bcast,
        item: ItemId,
        state: Cycle,
        cache: Option<&ClientCache>,
    ) -> Option<(u64, ReadCandidate)> {
        let record = bcast.current(item)?;
        if record.value().version() <= state {
            let slot = bcast.slot_of_current(item)?;
            let mut cand = ReadCandidate::from_broadcast(record);
            // without versions on air, clamp validity to report knowledge
            if let Some(cache) = cache {
                if cache.params().mode != CacheMode::Multiversion {
                    cand.valid_from = cache.provable_floor(item).unwrap_or(bcast.cycle());
                }
            }
            return cand.current_at(state).then_some((slot, cand));
        }
        let chain = bcast.old_versions_of(item);
        let mut successor = record.value().version();
        for &(slot, value) in chain {
            if value.version() <= state {
                let cand = ReadCandidate {
                    value,
                    last_writer_tag: value.writer(),
                    valid_from: value.version(),
                    valid_until: Some(successor),
                    source: Source::BroadcastOld,
                };
                return cand.current_at(state).then_some((slot, cand));
            }
            successor = value.version();
        }
        None
    }

    fn drop_txn(&mut self, idx: usize) {
        let txn = self.active.remove(idx);
        self.protocol.finish_query(txn.id);
    }

    /// Commits the transaction, returning its (consistent) readset.
    ///
    /// # Errors
    /// Never fails for the shipped methods — once every read was
    /// accepted, commitment is local — but the signature leaves room for
    /// methods with commit-time certification.
    ///
    /// # Panics
    /// Panics if the handle is unknown.
    pub fn commit(&mut self, handle: TxnHandle) -> Result<Vec<ReadRecord>, AbortReason> {
        let idx = self.txn_index(handle);
        let txn = self.active.remove(idx);
        self.protocol.finish_query(txn.id);
        Ok(txn.reads)
    }

    /// Abandons the transaction.
    ///
    /// # Panics
    /// Panics if the handle is unknown.
    pub fn abort(&mut self, handle: TxnHandle) {
        let idx = self.txn_index(handle);
        self.drop_txn(idx);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::CacheParams;
    use bpush_core::Method;
    use bpush_server::{BroadcastServer, ServerOptions};
    use bpush_types::ServerConfig;

    fn server() -> BroadcastServer {
        BroadcastServer::new(
            ServerConfig {
                broadcast_size: 40,
                update_range: 20,
                server_read_range: 40,
                updates_per_cycle: 5,
                txns_per_cycle: 5,
                offset: 0,
                ..ServerConfig::default()
            },
            ServerOptions::plain(),
            9,
        )
        .unwrap()
    }

    #[test]
    fn single_cycle_transaction_commits() {
        let mut srv = server();
        let mut s = BroadcastSession::new(Method::InvalidationOnly.build_protocol(), None);
        let bcast = srv.run_cycle();
        s.on_bcast(&bcast);
        assert_eq!(s.protocol_name(), "inv-only");
        let t = s.begin();
        assert_eq!(s.active_transactions(), 1);
        for i in [1u32, 5, 9] {
            match s.read(t, ItemId::new(i), &bcast).unwrap() {
                ReadStep::Tune { slot } => {
                    assert!(slot < bcast.total_slots());
                    s.deliver(t, ItemId::new(i), &bcast).unwrap();
                }
                other => panic!("expected a tune step, got {other:?}"),
            }
        }
        let reads = s.commit(t).unwrap();
        assert_eq!(reads.len(), 3);
        assert_eq!(s.active_transactions(), 0);
    }

    #[test]
    fn invalidation_aborts_across_cycles() {
        let mut srv = server();
        let mut s = BroadcastSession::new(Method::InvalidationOnly.build_protocol(), None);
        let b0 = srv.run_cycle();
        s.on_bcast(&b0);
        let t = s.begin();
        // read every hot item so the next cycle's updates must hit one
        for i in 0..20u32 {
            if let Ok(ReadStep::Tune { .. }) = s.read(t, ItemId::new(i), &b0) {
                s.deliver(t, ItemId::new(i), &b0).unwrap();
            }
        }
        let b1 = srv.run_cycle();
        s.on_bcast(&b1);
        // the transaction is now doomed: 5 updates hit the 20 hot items
        let result = s.read(t, ItemId::new(21), &b1);
        assert_eq!(result, Err(AbortReason::Invalidated));
        assert_eq!(s.active_transactions(), 0, "aborted handle released");
    }

    #[test]
    fn cache_serves_done_steps() {
        let mut srv = server();
        let cache = ClientCache::new(CacheParams {
            mode: CacheMode::Plain,
            current_capacity: 10,
            old_capacity: 0,
            items_per_bucket: 1,
        });
        let mut s = BroadcastSession::new(Method::InvalidationCache.build_protocol(), Some(cache));
        let b0 = srv.run_cycle();
        s.on_bcast(&b0);
        let t = s.begin();
        assert!(matches!(
            s.read(t, ItemId::new(3), &b0).unwrap(),
            ReadStep::Tune { .. }
        ));
        s.deliver(t, ItemId::new(3), &b0).unwrap();
        s.commit(t).unwrap();
        // a second transaction reads the same item straight from cache
        let t2 = s.begin();
        assert_eq!(s.read(t2, ItemId::new(3), &b0).unwrap(), ReadStep::Done);
        let reads = s.commit(t2).unwrap();
        assert_eq!(reads.len(), 1);
    }

    #[test]
    fn interleaved_transactions_are_independent() {
        let mut srv = server();
        let mut s = BroadcastSession::new(Method::Sgt.build_protocol(), None);
        let b0 = srv.run_cycle();
        s.on_bcast(&b0);
        let t1 = s.begin();
        let t2 = s.begin();
        assert_eq!(s.active_transactions(), 2);
        if let Ok(ReadStep::Tune { .. }) = s.read(t1, ItemId::new(1), &b0) {
            s.deliver(t1, ItemId::new(1), &b0).unwrap();
        }
        if let Ok(ReadStep::Tune { .. }) = s.read(t2, ItemId::new(2), &b0) {
            s.deliver(t2, ItemId::new(2), &b0).unwrap();
        }
        s.abort(t1);
        let reads = s.commit(t2).unwrap();
        assert_eq!(reads.len(), 1);
        assert_eq!(s.active_transactions(), 0);
    }

    #[test]
    fn committed_readsets_validate() {
        let mut srv = server();
        let mut s = BroadcastSession::new(Method::InvalidationOnly.build_protocol(), None);
        let mut committed = Vec::new();
        for _ in 0..20 {
            let bcast = srv.run_cycle();
            s.on_bcast(&bcast);
            let t = s.begin();
            let mut ok = true;
            for i in [2u32, 7, 11] {
                match s.read(t, ItemId::new(i), &bcast) {
                    Ok(ReadStep::Tune { .. }) => {
                        if s.deliver(t, ItemId::new(i), &bcast).is_err() {
                            ok = false;
                            break;
                        }
                    }
                    Ok(_) => {}
                    Err(_) => {
                        ok = false;
                        break;
                    }
                }
            }
            if ok {
                committed.push(s.commit(t).unwrap());
            }
        }
        assert!(!committed.is_empty());
        let validator = bpush_core::validator::SerializabilityValidator::new(srv.history());
        for reads in &committed {
            validator.check(reads).unwrap();
        }
    }

    #[test]
    fn read_at_reports_passed_slots() {
        let mut srv = server();
        let mut s = BroadcastSession::new(Method::InvalidationOnly.build_protocol(), None);
        let b = srv.run_cycle();
        s.on_bcast(&b);
        let t = s.begin();
        let slot = b.slot_of_current(ItemId::new(5)).unwrap();
        // listening past the item's slot: the bucket is gone this cycle
        assert_eq!(
            s.read_at(t, ItemId::new(5), &b, slot + 1).unwrap(),
            ReadStep::NextCycle
        );
        // the transaction is still alive and succeeds next cycle
        let b2 = srv.run_cycle();
        s.on_bcast(&b2);
        match s.read_at(t, ItemId::new(5), &b2, 0).unwrap() {
            ReadStep::Tune { .. } => {
                s.deliver(t, ItemId::new(5), &b2).unwrap();
            }
            other => panic!("{other:?}"),
        }
        assert_eq!(s.commit(t).unwrap().len(), 1);
    }

    #[test]
    #[should_panic(expected = "unknown or finished")]
    fn stale_handle_panics() {
        let mut srv = server();
        let mut s = BroadcastSession::new(Method::InvalidationOnly.build_protocol(), None);
        let b = srv.run_cycle();
        s.on_bcast(&b);
        let t = s.begin();
        s.commit(t).unwrap();
        let _ = s.commit(t);
    }

    #[test]
    #[should_panic(expected = "hear a bcast")]
    fn begin_before_bcast_panics() {
        let mut s = BroadcastSession::new(Method::InvalidationOnly.build_protocol(), None);
        let _ = s.begin();
    }
}
