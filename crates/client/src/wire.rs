//! The wire-fed client: bytes in, directives out.
//!
//! [`WireClient`] is the sans-IO form of
//! [`BroadcastSession`](crate::BroadcastSession): where the session
//! consumes in-memory
//! [`Bcast`](bpush_broadcast::Bcast) structs, the wire client consumes
//! the framed byte stream a transport delivers
//! ([`bpush_broadcast::feed`]) and reconstructs everything it needs —
//! control reports, data records, the directory — from the segments
//! alone. It owns no socket and no clock: the embedding transport calls
//! [`WireClient::push`] with whatever bytes arrived (any chunking), and
//! the client surfaces [`ReadDirective`]s and read outcomes. The same
//! state machine therefore runs unmodified under the simulator, the
//! model checker, and a future socket transport.
//!
//! ```text
//! transport loop:                 wire client:
//!   bytes arrive          ──────▶ push(chunk)        (segments decoded)
//!   t = begin()           ◀────── transaction handle
//!   read(t, x)?           ──────▶ value | abort reason
//!   commit(t)             ──────▶ readset (consistent!)
//! ```

use std::collections::BTreeMap;

use bpush_broadcast::feed::{decode_segment, DecodedSegment, WireFeed};
use bpush_broadcast::wire::WireParams;
use bpush_broadcast::{Directory, ItemRecord};
use bpush_core::validator::ReadRecord;
use bpush_core::{AbortReason, ReadCandidate, ReadDirective, ReadOnlyProtocol, ReadOutcome};
use bpush_types::{BpushError, Cycle, ItemId, ItemValue, QueryId};

/// Handle to an in-flight read-only transaction on a [`WireClient`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WireTxn(QueryId);

/// A client fed by the broadcast byte stream instead of in-memory
/// structs.
///
/// # Example
/// ```
/// use bpush_broadcast::feed::encode_bcast_segments;
/// use bpush_broadcast::wire::WireParams;
/// use bpush_client::wire::WireClient;
/// use bpush_core::Method;
/// use bpush_server::{BroadcastServer, ServerOptions};
/// use bpush_types::{ItemId, ServerConfig};
///
/// let config = ServerConfig { broadcast_size: 50, update_range: 25,
///     server_read_range: 50, updates_per_cycle: 5,
///     ..ServerConfig::default() };
/// let mut server = BroadcastServer::new(config, ServerOptions::plain(), 1)?;
/// let params = WireParams::derive(50, 4, 8, 8);
/// let mut client = WireClient::new(Method::InvalidationOnly.build_protocol(), params);
///
/// let bcast = server.run_cycle();
/// client.push(&encode_bcast_segments(&bcast, params))?;
/// let t = client.begin();
/// let value = client.read(t, ItemId::new(3)).expect("readable");
/// let readset = client.commit(t);
/// assert_eq!(readset.len(), 1);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug)]
pub struct WireClient {
    protocol: Box<dyn ReadOnlyProtocol>,
    params: WireParams,
    feed: WireFeed,
    now: Option<Cycle>,
    records: BTreeMap<ItemId, ItemRecord>,
    directory: Option<Directory>,
    next_id: QueryId,
    active: Vec<(QueryId, Vec<ReadRecord>)>,
}

impl WireClient {
    /// Creates a wire client around any protocol. `params` are the
    /// deployment's agreed wire widths (both ends must use the same).
    pub fn new(protocol: Box<dyn ReadOnlyProtocol>, params: WireParams) -> Self {
        WireClient {
            protocol,
            params,
            feed: WireFeed::new(),
            now: None,
            records: BTreeMap::new(),
            directory: None,
            next_id: QueryId::new(0),
            active: Vec::new(),
        }
    }

    /// The protocol's reporting name.
    pub fn protocol_name(&self) -> &'static str {
        self.protocol.name()
    }

    /// The wrapped protocol (e.g. to snapshot or read its counters).
    pub fn protocol(&self) -> &dyn ReadOnlyProtocol {
        &*self.protocol
    }

    /// The cycle of the last control segment heard, if any.
    pub fn now(&self) -> Option<Cycle> {
        self.now
    }

    /// The most recent directory segment heard, if any.
    pub fn directory(&self) -> Option<&Directory> {
        self.directory.as_ref()
    }

    /// Feeds transport bytes (any chunk size) and processes every
    /// segment that completes: control segments drive the protocol,
    /// data segments refresh the current-version table, directory
    /// segments replace the cached directory.
    ///
    /// # Errors
    /// Returns [`BpushError::InvalidConfig`] on a malformed stream; the
    /// transport must resynchronize before feeding more bytes.
    pub fn push(&mut self, chunk: &[u8]) -> Result<(), BpushError> {
        self.feed.push(chunk);
        loop {
            let Some(seg) = self.feed.pop()? else {
                return Ok(());
            };
            match decode_segment(seg, self.params)? {
                DecodedSegment::Control(ctrl) => {
                    self.protocol.on_control(&ctrl);
                    self.now = Some(ctrl.cycle());
                }
                DecodedSegment::Data(_, records) => {
                    self.records = records.into_iter().map(|r| (r.item(), r)).collect();
                }
                DecodedSegment::Directory(dir) => {
                    self.directory = Some(dir);
                }
            }
        }
    }

    /// Tells the client it missed `cycle` entirely (disconnection).
    pub fn missed_cycle(&mut self, cycle: Cycle) {
        self.protocol.on_missed_cycle(cycle);
    }

    /// Starts a read-only transaction.
    ///
    /// # Panics
    /// Panics if no control segment has been heard yet.
    pub fn begin(&mut self) -> WireTxn {
        // lint: allow(panic) — documented panic: callers must hear a cycle first
        let now = self.now.expect("hear a control segment before beginning");
        let id = self.next_id;
        self.next_id = id.next();
        self.protocol.begin_query(id, now);
        self.active.push((id, Vec::new()));
        WireTxn(id)
    }

    /// The protocol's directive for reading `item` now — the raw
    /// bytes-in/directives-out surface. [`WireClient::read`] is the
    /// convenience that also resolves the value.
    ///
    /// # Panics
    /// Panics if no control segment has been heard yet.
    pub fn directive(&self, txn: WireTxn, item: ItemId) -> ReadDirective {
        // lint: allow(panic) — documented panic: callers must hear a cycle first
        let now = self.now.expect("hear a control segment before reading");
        self.protocol.read_directive(txn.0, item, now)
    }

    fn txn_index(&self, txn: WireTxn) -> usize {
        self.active
            .iter()
            .position(|(id, _)| *id == txn.0)
            // lint: allow(panic) — documented panic: stale handles are a caller bug
            .expect("unknown or finished wire transaction")
    }

    /// Reads `item` from the last heard data segment, subject to the
    /// protocol's directive.
    ///
    /// # Errors
    /// Returns the abort reason if the transaction is doomed, the
    /// needed version is not on air, or the protocol rejects the value;
    /// the transaction is dropped and its handle becomes invalid.
    ///
    /// # Panics
    /// Panics if the handle is unknown or no cycle has been heard.
    pub fn read(&mut self, txn: WireTxn, item: ItemId) -> Result<ItemValue, AbortReason> {
        let idx = self.txn_index(txn);
        // lint: allow(panic) — documented panic: callers must hear a cycle first
        let now = self.now.expect("hear a control segment before reading");
        let constraint = match self.protocol.read_directive(txn.0, item, now) {
            ReadDirective::Doom(reason) => {
                self.drop_txn(idx);
                return Err(reason);
            }
            ReadDirective::Read(c) => c,
        };
        let candidate = match self.records.get(&item) {
            Some(rec) => ReadCandidate::from_broadcast(rec),
            None => {
                self.drop_txn(idx);
                return Err(AbortReason::VersionUnavailable);
            }
        };
        if !candidate.current_at(constraint.state) {
            self.drop_txn(idx);
            return Err(AbortReason::VersionUnavailable);
        }
        match self.protocol.apply_read(txn.0, item, &candidate, now) {
            ReadOutcome::Accepted => {
                let value = candidate.value;
                if let Some((_, reads)) = self.active.get_mut(idx) {
                    reads.push(ReadRecord::new(item, value));
                }
                Ok(value)
            }
            ReadOutcome::Rejected(reason) => {
                self.drop_txn(idx);
                Err(reason)
            }
        }
    }

    fn drop_txn(&mut self, idx: usize) {
        let (id, _) = self.active.remove(idx);
        self.protocol.finish_query(id);
    }

    /// Commits the transaction, returning its (consistent) readset.
    ///
    /// # Panics
    /// Panics if the handle is unknown.
    pub fn commit(&mut self, txn: WireTxn) -> Vec<ReadRecord> {
        let idx = self.txn_index(txn);
        let (id, reads) = self.active.remove(idx);
        self.protocol.finish_query(id);
        reads
    }

    /// Abandons the transaction.
    ///
    /// # Panics
    /// Panics if the handle is unknown.
    pub fn abort(&mut self, txn: WireTxn) {
        let idx = self.txn_index(txn);
        self.drop_txn(idx);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::session::{BroadcastSession, ReadStep};
    use bpush_broadcast::feed::encode_bcast_segments;
    use bpush_core::Method;
    use bpush_server::{BroadcastServer, ServerOptions};
    use bpush_types::ServerConfig;

    fn server(sgt: bool) -> BroadcastServer {
        BroadcastServer::new(
            ServerConfig {
                broadcast_size: 40,
                update_range: 20,
                server_read_range: 40,
                updates_per_cycle: 5,
                txns_per_cycle: 5,
                offset: 0,
                ..ServerConfig::default()
            },
            if sgt {
                ServerOptions::sgt()
            } else {
                ServerOptions::plain()
            },
            9,
        )
        .unwrap()
    }

    fn params() -> WireParams {
        WireParams::derive(40, 4, 8, 8)
    }

    /// The same query script, run struct-fed and wire-fed, commits and
    /// aborts identically for every method.
    #[test]
    fn wire_fed_matches_struct_fed_sessions() {
        let mut total_commits = 0usize;
        for method in Method::ALL {
            let sgt = matches!(method, Method::Sgt | Method::SgtCache);
            let mut srv_a = server(sgt);
            let mut srv_b = server(sgt);
            let mut session = BroadcastSession::new(method.build_protocol(), None);
            let mut wire = WireClient::new(method.build_protocol(), params());
            let mut outcomes_a = Vec::new();
            let mut outcomes_b = Vec::new();
            for cycle in 0..12u32 {
                let bcast_a = srv_a.run_cycle();
                let bcast_b = srv_b.run_cycle();
                session.on_bcast(&bcast_a);
                wire.push(&encode_bcast_segments(&bcast_b, params()))
                    .unwrap();
                let ta = session.begin();
                let tb = wire.begin();
                let items = [cycle % 7, cycle % 11 + 7, 39 - cycle % 5];
                let mut alive_a = true;
                for &i in &items {
                    if !alive_a {
                        break;
                    }
                    match session.read(ta, ItemId::new(i), &bcast_a) {
                        Ok(ReadStep::Tune { .. }) => {
                            if session.deliver(ta, ItemId::new(i), &bcast_a).is_err() {
                                alive_a = false;
                            }
                        }
                        Ok(_) => {}
                        Err(_) => alive_a = false,
                    }
                }
                outcomes_a.push(if alive_a {
                    Some(session.commit(ta).unwrap().len())
                } else {
                    None
                });
                let mut alive_b = true;
                for &i in &items {
                    if !alive_b {
                        break;
                    }
                    if wire.read(tb, ItemId::new(i)).is_err() {
                        alive_b = false;
                    }
                }
                outcomes_b.push(if alive_b {
                    Some(wire.commit(tb).len())
                } else {
                    None
                });
            }
            assert_eq!(outcomes_a, outcomes_b, "{method}");
            total_commits += outcomes_a.iter().flatten().count();
        }
        assert!(total_commits > 0, "the script must commit somewhere");
    }

    /// Chunking the byte stream differently never changes behaviour.
    #[test]
    fn chunk_boundaries_are_invisible() {
        let run = |chunk: usize| {
            let mut srv = server(true);
            let mut wire = WireClient::new(Method::Sgt.build_protocol(), params());
            let mut committed = 0usize;
            for _ in 0..8 {
                let bytes = encode_bcast_segments(&srv.run_cycle(), params());
                for piece in bytes.chunks(chunk) {
                    wire.push(piece).unwrap();
                }
                let t = wire.begin();
                if wire.read(t, ItemId::new(2)).is_ok() && wire.read(t, ItemId::new(9)).is_ok() {
                    committed += wire.commit(t).len();
                }
            }
            committed
        };
        let reference = run(1024);
        assert!(reference > 0, "the script must commit at least once");
        for chunk in [1usize, 3, 13] {
            assert_eq!(run(chunk), reference, "chunk size {chunk}");
        }
    }

    /// Committed wire-fed readsets satisfy the paper's correctness
    /// criterion against the server's ground truth.
    #[test]
    fn wire_fed_readsets_validate() {
        let mut srv = server(false);
        let mut wire = WireClient::new(Method::InvalidationOnly.build_protocol(), params());
        let mut committed = Vec::new();
        for _ in 0..20 {
            let bytes = encode_bcast_segments(&srv.run_cycle(), params());
            wire.push(&bytes).unwrap();
            let t = wire.begin();
            let ok = [2u32, 7, 11]
                .iter()
                .all(|&i| wire.read(t, ItemId::new(i)).is_ok());
            if ok {
                committed.push(wire.commit(t));
            }
        }
        assert!(!committed.is_empty());
        let validator = bpush_core::validator::SerializabilityValidator::new(srv.history());
        for reads in &committed {
            validator.check(reads).unwrap();
        }
    }

    /// Directives surface raw, before any value is resolved.
    #[test]
    fn directives_out() {
        let mut srv = server(false);
        let mut wire = WireClient::new(Method::InvalidationOnly.build_protocol(), params());
        wire.push(&encode_bcast_segments(&srv.run_cycle(), params()))
            .unwrap();
        assert_eq!(wire.protocol_name(), "inv-only");
        assert_eq!(wire.now(), Some(Cycle::ZERO));
        let t = wire.begin();
        assert!(matches!(
            wire.directive(t, ItemId::new(1)),
            ReadDirective::Read(_)
        ));
        wire.abort(t);
    }

    /// Garbage on the stream is an error, not a panic, and valid traffic
    /// can resume on a fresh feed.
    #[test]
    fn malformed_streams_error_cleanly() {
        let mut wire = WireClient::new(Method::InvalidationOnly.build_protocol(), params());
        assert!(wire.push(&[0xFF; 32]).is_err());
    }
}
