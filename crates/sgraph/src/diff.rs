//! The per-cycle serialization-graph difference the server broadcasts.

use bpush_types::{Cycle, TxnId};

/// The difference between consecutive server serialization graphs (§3.3):
/// the transactions committed during one broadcast cycle together with
/// their conflict edges to (earlier or same-cycle) committed transactions.
///
/// Because server histories are strict, all edges run from earlier to
/// later transactions in the serial order (Claim 1), so a diff never
/// carries an edge into a previous cycle's subgraph.
///
/// # Example
/// ```
/// use bpush_sgraph::GraphDiff;
/// use bpush_types::{Cycle, TxnId};
/// let c = Cycle::new(3);
/// let t0 = TxnId::new(c, 0);
/// let t1 = TxnId::new(c, 1);
/// let diff = GraphDiff::new(c, vec![t0, t1], vec![(t0, t1)]);
/// assert_eq!(diff.cycle(), c);
/// assert_eq!(diff.committed().len(), 2);
/// assert_eq!(diff.edges(), &[(t0, t1)]);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GraphDiff {
    cycle: Cycle,
    committed: Vec<TxnId>,
    edges: Vec<(TxnId, TxnId)>,
}

impl GraphDiff {
    /// Creates a diff for the transactions committed during `cycle`.
    ///
    /// # Panics
    /// In debug builds, panics if a listed commit or an edge endpoint
    /// violates the strict-history direction invariant (`from < to`, and
    /// every `to` committed during `cycle`).
    pub fn new(cycle: Cycle, committed: Vec<TxnId>, edges: Vec<(TxnId, TxnId)>) -> Self {
        debug_assert!(committed.iter().all(|t| t.cycle() == cycle));
        debug_assert!(edges.iter().all(|&(from, to)| from < to));
        debug_assert!(edges.iter().all(|&(_, to)| to.cycle() == cycle));
        GraphDiff {
            cycle,
            committed,
            edges,
        }
    }

    /// An empty diff (a cycle with no commits).
    pub fn empty(cycle: Cycle) -> Self {
        GraphDiff::new(cycle, Vec::new(), Vec::new())
    }

    /// The broadcast cycle whose commits this diff describes.
    pub fn cycle(&self) -> Cycle {
        self.cycle
    }

    /// Transactions committed during [`GraphDiff::cycle`].
    pub fn committed(&self) -> &[TxnId] {
        &self.committed
    }

    /// Conflict edges `(older, newer)` incident to the new commits.
    pub fn edges(&self) -> &[(TxnId, TxnId)] {
        &self.edges
    }

    /// Whether the diff carries no information.
    pub fn is_empty(&self) -> bool {
        self.committed.is_empty() && self.edges.is_empty()
    }

    /// Broadcast size of this diff in abstract units, per the §3.3 size
    /// model: each edge is a pair of transaction identifiers; identifiers
    /// cost `log(N)` bits within a known cycle plus `log(S)` bits of cycle
    /// version, rounded up to whole units of size `tid_size`.
    pub fn size_units(&self, tid_size: u32) -> u64 {
        self.committed.len() as u64 * u64::from(tid_size)
            + self.edges.len() as u64 * 2 * u64::from(tid_size)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(cycle: u64, seq: u32) -> TxnId {
        TxnId::new(Cycle::new(cycle), seq)
    }

    #[test]
    fn empty_diff() {
        let d = GraphDiff::empty(Cycle::new(4));
        assert!(d.is_empty());
        assert_eq!(d.cycle(), Cycle::new(4));
        assert_eq!(d.size_units(1), 0);
    }

    #[test]
    fn accessors_and_size() {
        let d = GraphDiff::new(
            Cycle::new(2),
            vec![t(2, 0), t(2, 1)],
            vec![(t(1, 3), t(2, 0)), (t(2, 0), t(2, 1))],
        );
        assert!(!d.is_empty());
        assert_eq!(d.committed(), &[t(2, 0), t(2, 1)]);
        assert_eq!(d.edges().len(), 2);
        // 2 commits * 1 + 2 edges * 2 = 6 units at tid_size 1
        assert_eq!(d.size_units(1), 6);
        assert_eq!(d.size_units(2), 12);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic]
    fn edge_direction_invariant_checked_in_debug() {
        let _ = GraphDiff::new(Cycle::new(2), vec![t(2, 0)], vec![(t(2, 0), t(1, 0))]);
    }
}
