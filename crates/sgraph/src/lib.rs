//! Conflict serialization graphs for the SGT read-only transaction method.
//!
//! §3.3 of *Pitoura & Chrysanthis 1999* validates client queries by
//! **serialization-graph testing**: the server broadcasts, each cycle, the
//! *difference* of its conflict serialization graph (the edges incident to
//! transactions committed during the previous cycle), and every client
//! maintains a local copy of the graph extended with its own active
//! read-only transactions. A read is accepted only if it closes no cycle.
//!
//! This crate provides:
//!
//! * [`SerializationGraph`] — the graph itself on a dense `u32` node
//!   interner with forward and reverse adjacency, with incremental edge
//!   insertion, allocation-free cycle/path queries, per-cycle subgraph
//!   bookkeeping (`SG^i` in the paper), and the Lemma-1 pruning rule
//!   ([`SerializationGraph::prune_before`]),
//! * [`baseline::BaselineGraph`] — the original `BTreeMap`
//!   implementation, kept as differential-test oracle and benchmark
//!   baseline,
//! * [`GraphDiff`] — the per-cycle difference the server broadcasts,
//! * [`Node`] — graph nodes: committed server transactions or local
//!   read-only queries.
//!
//! # Example
//!
//! ```
//! use bpush_sgraph::{Node, SerializationGraph};
//! use bpush_types::{Cycle, QueryId, TxnId};
//!
//! let mut g = SerializationGraph::new();
//! let t1 = TxnId::new(Cycle::new(1), 0);
//! let t2 = TxnId::new(Cycle::new(2), 0);
//! let r = QueryId::new(0);
//!
//! g.add_edge(Node::Txn(t1), Node::Txn(t2)); // server conflict t1 -> t2
//! g.add_edge(Node::Query(r), Node::Txn(t1)); // t1 overwrote something r read
//!
//! // r now wants to read a value written by t2: edge t2 -> r would close
//! // the cycle r -> t1 -> t2 -> r, so the read must be rejected.
//! assert!(g.would_close_cycle(Node::Txn(t2), Node::Query(r)));
//! // and reading from t1 directly closes r -> t1 -> r as well.
//! assert!(g.would_close_cycle(Node::Txn(t1), Node::Query(r)));
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod baseline;
mod diff;
mod graph;
mod node;

pub use diff::GraphDiff;
pub use graph::{CycleDetected, SerializationGraph};
pub use node::Node;
