//! The pre-interning `BTreeMap`-based serialization graph.
//!
//! This is the original implementation of [`crate::SerializationGraph`],
//! kept verbatim (modulo the rename) for two jobs:
//!
//! * **differential oracle** — the property tests in
//!   `crates/sgraph/tests/proptests.rs` replay random operation
//!   sequences against both graphs and require identical answers;
//! * **benchmark baseline** — `cargo xtask bench` and
//!   `crates/bench/benches/substrate.rs` time the interned graph
//!   against this one in the same process, so the recorded speedup is
//!   measured, not remembered.
//!
//! It is *not* used by any protocol; production code always goes through
//! the interned graph.

use std::collections::{BTreeMap, BTreeSet};

use bpush_types::{Cycle, QueryId, TxnId};

use crate::diff::GraphDiff;
use crate::graph::CycleDetected;
use crate::node::Node;

/// A conflict serialization graph (§3.3) on ordered maps — the reference
/// implementation. See [`crate::SerializationGraph`] for the semantics;
/// the two are observationally identical.
///
/// `remove_query` and `prune_before` scan every adjacency list
/// (O(V·E)); `path_exists` allocates a fresh visited set per call. Those
/// costs are exactly what the interned graph removes.
#[derive(Debug, Clone, Default)]
pub struct BaselineGraph {
    /// Outgoing adjacency. Presence in the map also records node
    /// membership (nodes may have no edges).
    out_edges: BTreeMap<Node, Vec<Node>>,
    /// Commit-cycle index of transaction nodes, for pruning.
    by_cycle: BTreeMap<Cycle, Vec<TxnId>>,
    /// Total number of directed edges.
    edge_count: usize,
}

impl BaselineGraph {
    /// Creates an empty graph.
    pub fn new() -> Self {
        BaselineGraph::default()
    }

    /// Number of nodes currently in the graph.
    pub fn node_count(&self) -> usize {
        self.out_edges.len()
    }

    /// Number of directed edges currently in the graph.
    pub fn edge_count(&self) -> usize {
        self.edge_count
    }

    /// Whether the graph has no nodes.
    pub fn is_empty(&self) -> bool {
        self.out_edges.is_empty()
    }

    /// Whether `node` is present.
    pub fn contains(&self, node: Node) -> bool {
        self.out_edges.contains_key(&node)
    }

    /// Inserts a node (idempotent).
    pub fn add_node(&mut self, node: Node) {
        if self.out_edges.contains_key(&node) {
            return;
        }
        self.out_edges.insert(node, Vec::new());
        if let Node::Txn(t) = node {
            self.by_cycle.entry(t.cycle()).or_default().push(t);
        }
    }

    /// Inserts a directed edge `from → to`, inserting the endpoints if
    /// needed. Returns `true` if the edge is new.
    pub fn add_edge(&mut self, from: Node, to: Node) -> bool {
        self.add_node(from);
        self.add_node(to);
        let succ = self
            .out_edges
            .get_mut(&from)
            // lint: allow(panic) — the endpoint entry was inserted earlier in this method
            .expect("endpoint inserted above");
        if succ.contains(&to) {
            return false;
        }
        succ.push(to);
        self.edge_count += 1;
        true
    }

    /// The successors of `node`, or an empty slice for unknown nodes.
    pub fn successors(&self, node: Node) -> &[Node] {
        self.out_edges.get(&node).map_or(&[], Vec::as_slice)
    }

    /// Whether a directed path `from →* to` exists (`path_exists(n, n)`
    /// is `true` only when `n` lies on a cycle).
    pub fn path_exists(&self, from: Node, to: Node) -> bool {
        if !self.contains(from) || !self.contains(to) {
            return false;
        }
        let mut stack: Vec<Node> = self.successors(from).to_vec();
        let mut visited: BTreeSet<Node> = BTreeSet::new();
        while let Some(n) = stack.pop() {
            if n == to {
                return true;
            }
            if visited.insert(n) {
                stack.extend_from_slice(self.successors(n));
            }
        }
        false
    }

    /// Whether inserting the edge `from → to` would close a cycle —
    /// the SGT acceptance test. The edge is *not* inserted.
    pub fn would_close_cycle(&self, from: Node, to: Node) -> bool {
        if from == to {
            return true;
        }
        self.path_exists(to, from)
    }

    /// Inserts `from → to` only if it closes no cycle.
    pub fn try_add_edge(&mut self, from: Node, to: Node) -> Result<bool, CycleDetected> {
        if self.would_close_cycle(from, to) {
            return Err(CycleDetected { from, to });
        }
        Ok(self.add_edge(from, to))
    }

    /// Whether the whole graph is acyclic (serialization theorem check).
    pub fn is_acyclic(&self) -> bool {
        // Iterative three-color DFS.
        #[derive(Clone, Copy, PartialEq)]
        enum Color {
            White,
            Gray,
            Black,
        }
        let mut color: BTreeMap<Node, Color> =
            self.out_edges.keys().map(|&n| (n, Color::White)).collect();
        for &start in self.out_edges.keys() {
            if color[&start] != Color::White {
                continue;
            }
            // stack of (node, next-successor-index)
            let mut stack: Vec<(Node, usize)> = vec![(start, 0)];
            color.insert(start, Color::Gray);
            while let Some(&mut (n, ref mut idx)) = stack.last_mut() {
                let succ = self.successors(n);
                if *idx < succ.len() {
                    let next = succ[*idx];
                    *idx += 1;
                    match color[&next] {
                        Color::Gray => return false,
                        Color::White => {
                            color.insert(next, Color::Gray);
                            stack.push((next, 0));
                        }
                        Color::Black => {}
                    }
                } else {
                    color.insert(n, Color::Black);
                    stack.pop();
                }
            }
        }
        true
    }

    /// Applies a broadcast [`GraphDiff`]: inserts the newly committed
    /// transactions and their conflict edges.
    pub fn apply_diff(&mut self, diff: &GraphDiff) {
        for &t in diff.committed() {
            self.add_node(Node::Txn(t));
        }
        for &(from, to) in diff.edges() {
            self.add_edge(Node::Txn(from), Node::Txn(to));
        }
    }

    /// Removes a query node and all its incident edges, by scanning every
    /// adjacency list.
    pub fn remove_query(&mut self, query: QueryId) {
        let node = Node::Query(query);
        if let Some(succ) = self.out_edges.remove(&node) {
            self.edge_count -= succ.len();
        }
        for succ in self.out_edges.values_mut() {
            let before = succ.len();
            succ.retain(|&n| n != node);
            self.edge_count -= before - succ.len();
        }
    }

    /// Lemma-1 pruning: drops every transaction committed before `bound`
    /// together with its incident edges, by scanning every adjacency
    /// list.
    pub fn prune_before(&mut self, bound: Cycle) {
        let stale: Vec<TxnId> = {
            let mut stale = Vec::new();
            for (&cycle, txns) in self.by_cycle.range(..bound) {
                debug_assert!(cycle < bound);
                stale.extend_from_slice(txns);
            }
            stale
        };
        if stale.is_empty() {
            return;
        }
        let stale_nodes: BTreeSet<Node> = stale.iter().map(|&t| Node::Txn(t)).collect();
        for node in &stale_nodes {
            if let Some(succ) = self.out_edges.remove(node) {
                self.edge_count -= succ.len();
            }
        }
        for succ in self.out_edges.values_mut() {
            let before = succ.len();
            succ.retain(|n| !stale_nodes.contains(n));
            self.edge_count -= before - succ.len();
        }
        self.by_cycle = self.by_cycle.split_off(&bound);
    }

    /// Drops the entire graph content.
    pub fn clear(&mut self) {
        self.out_edges.clear();
        self.by_cycle.clear();
        self.edge_count = 0;
    }

    /// Iterates over all nodes in unspecified order.
    pub fn nodes(&self) -> impl Iterator<Item = Node> + '_ {
        self.out_edges.keys().copied()
    }

    /// The earliest commit cycle still retained, if any transaction nodes
    /// exist.
    pub fn earliest_cycle(&self) -> Option<Cycle> {
        self.by_cycle.keys().next().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn nt(cycle: u64, seq: u32) -> Node {
        Node::Txn(TxnId::new(Cycle::new(cycle), seq))
    }

    fn nq(q: u64) -> Node {
        Node::Query(QueryId::new(q))
    }

    #[test]
    fn baseline_keeps_the_original_semantics() {
        let mut g = BaselineGraph::new();
        assert!(g.add_edge(nt(0, 0), nt(1, 0)));
        assert!(!g.add_edge(nt(0, 0), nt(1, 0)));
        g.add_edge(nq(1), nt(0, 0));
        assert_eq!(g.edge_count(), 2);
        assert!(g.would_close_cycle(nt(1, 0), nq(1)));
        assert!(!g.path_exists(nt(1, 0), nt(1, 0)));
        g.remove_query(QueryId::new(1));
        assert_eq!(g.edge_count(), 1);
        g.prune_before(Cycle::new(1));
        assert_eq!(g.node_count(), 1);
        assert_eq!(g.earliest_cycle(), Some(Cycle::new(1)));
        assert!(g.is_acyclic());
    }

    #[test]
    fn baseline_try_add_edge_matches() {
        let mut g = BaselineGraph::new();
        g.add_edge(nt(0, 0), nt(1, 0));
        assert!(g.try_add_edge(nt(1, 0), nt(0, 0)).is_err());
        assert!(g.try_add_edge(nt(1, 0), nt(2, 0)).unwrap());
    }
}
